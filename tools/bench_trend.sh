#!/usr/bin/env bash
# BENCH_*.json trajectory check — CI tier 1 (wired into tools/ci.sh).
#
# Runs the in-tree `bench_trend` binary over every BENCH_*.json at the
# repo root:
#   - each file must parse with the in-tree JSON parser (crates/obs),
#   - each known bench family must carry its required top-level keys,
#   - BENCH_10.json (paper parity) must be a full-shape run with zero
#     failed bounds, and — when a committed previous version exists —
#     its headline metrics must not regress beyond the stated margin.
#
# The baseline for the trend check is the last committed BENCH_10.json
# (`git show HEAD:BENCH_10.json`), so a working-tree regeneration is
# always compared against what the previous PR shipped. Outside a git
# checkout (or before BENCH_10 was first committed) the trend check is
# skipped and only schema validation runs.
#
# BENCH_7.json does not exist by design: PR 7 (chaos/self-healing)
# shipped no bench artifact. The checker validates the files it is
# given and never requires contiguous numbering.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

files=()
for f in BENCH_*.json; do
  [ -e "$f" ] || continue
  files+=("$f")
done
if [ "${#files[@]}" -eq 0 ]; then
  echo "bench_trend.sh: no BENCH_*.json files at repo root" >&2
  exit 1
fi

cargo build -q --offline --release -p sparker-bench --bin bench_trend

baseline_args=()
tmp_baseline=""
if git rev-parse --verify -q HEAD >/dev/null 2>&1 \
   && git cat-file -e HEAD:BENCH_10.json 2>/dev/null; then
  tmp_baseline="$(mktemp)"
  trap 'rm -f "$tmp_baseline"' EXIT
  git show HEAD:BENCH_10.json > "$tmp_baseline"
  baseline_args=(--baseline "$tmp_baseline")
else
  echo "bench_trend.sh: no committed BENCH_10.json baseline; schema checks only"
fi

./target/release/bench_trend "${baseline_args[@]}" "${files[@]}"
