#!/usr/bin/env bash
# Tiered CI driver — one command from a clean checkout, fully offline.
#
#   tier 1  hermeticity + build + full test suite, warnings denied
#           (tools/check_hermetic.sh under RUSTFLAGS="-D warnings";
#           check_hermetic's own steps 4-12 cover the chaos gate, trace
#           export, sparse ablation, the hot-path perf gate, the
#           3-process launch_cluster smoke, the chaos_cluster kill-plan
#           smoke, the multi-job scheduler smoke, the auto-tuned
#           collectives smoke, and the paper-parity eval smoke), plus the
#           BENCH_*.json trajectory check (tools/bench_trend.sh)
#   tier 2  chaos + property suites, each under an explicit wall-clock
#           bound (a timeout means a fault path regressed into a hang)
#   tier 3  bench smoke: the self-asserting harnesses in --smoke shape,
#           including paper_eval as its own timed step
#
# Usage: tools/ci.sh [--tier N]
#   --tier N   run only tier N's steps (1, 2 or 3) — lets paper_eval and
#              friends be timed in isolation and future tooling diff CI
#              wall-clock per tier across PRs.
#
# Every step's wall-clock is recorded and printed as a summary at the end,
# and the same data is written machine-readably to results/ci_summary.json
# — ALWAYS, even when a step fails, so CI output is diagnosable without a
# rerun. Schema:
#
#   {
#     "ci": "tools/ci.sh",
#     "tier_filter": "all" | "1" | "2" | "3",
#     "steps": [
#       {"tier": N, "name": "...", "seconds": S, "status": "ok"}
#       // status: "ok" | "FAILED" | "skipped" (after the first failure);
#       // "seconds" is 0 for skipped steps.
#     ],
#     "failed_tier": "",   // first failing tier, "" when green
#     "failed_step": "",   // first failing step name, "" when green
#     "passed": true
#   }
#
# On failure the script exits non-zero naming the first failed tier/step.
set -uo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

tier_filter="all"
if [ "${1:-}" = "--tier" ]; then
  case "${2:-}" in
    1|2|3) tier_filter="$2" ;;
    *) echo "usage: tools/ci.sh [--tier N] (N in 1..3)" >&2; exit 2 ;;
  esac
fi

steps=()       # "tier<TAB>name<TAB>seconds<TAB>status"
failed_tier=""
failed_step=""

# run <tier> <name> <cmd...> — times the command; on failure records the
# first failing tier/step and skips every later step. With --tier N, steps
# of other tiers are silently omitted.
run() {
  local tier="$1" name="$2"
  shift 2
  if [ "$tier_filter" != "all" ] && [ "$tier" != "$tier_filter" ]; then
    return
  fi
  if [ -n "$failed_tier" ]; then
    steps+=("$tier	$name	0	skipped")
    return
  fi
  echo "==> [tier $tier] $name"
  local t0 t1 status
  t0=$(date +%s)
  if "$@"; then
    status=ok
  else
    status=FAILED
    failed_tier="$tier"
    failed_step="$name"
  fi
  t1=$(date +%s)
  steps+=("$tier	$name	$((t1 - t0))	$status")
}

# Prints the human summary and writes results/ci_summary.json. Runs on
# every exit path (trap), so a tier-1 failure still leaves the parsed
# summary and the JSON artifact behind.
emit_summary() {
  echo
  echo "tier  step                wall   status"
  echo "---------------------------------------"
  local s tier name secs status
  for s in "${steps[@]}"; do
    IFS='	' read -r tier name secs status <<<"$s"
    printf "%-5s %-19s %-6s %s\n" "$tier" "$name" "${secs}s" "$status"
  done

  mkdir -p results
  {
    printf '{\n  "ci": "tools/ci.sh",\n  "tier_filter": "%s",\n  "steps": [' "$tier_filter"
    local first=1
    for s in "${steps[@]}"; do
      IFS='	' read -r tier name secs status <<<"$s"
      [ "$first" = 1 ] || printf ','
      first=0
      printf '\n    {"tier": %s, "name": "%s", "seconds": %s, "status": "%s"}' \
        "$tier" "$name" "$secs" "$status"
    done
    printf '\n  ],\n  "failed_tier": "%s",\n  "failed_step": "%s",\n  "passed": %s\n}\n' \
      "$failed_tier" "$failed_step" "$([ -z "$failed_tier" ] && echo true || echo false)"
  } > results/ci_summary.json
  echo
  echo "wrote results/ci_summary.json"
}
trap emit_summary EXIT

# --- tier 1: hermetic build + tests, warnings denied ---------------------
RUSTFLAGS="-D warnings" run 1 "check_hermetic" tools/check_hermetic.sh
run 1 "bench_trend"        tools/bench_trend.sh

# --- tier 2: chaos + property suites under timeouts ----------------------
run 2 "chaos_collectives"  timeout 180 cargo test -q --offline -p sparker-repro --test chaos_collectives
run 2 "fault_tolerance"    timeout 180 cargo test -q --offline -p sparker-repro --test fault_tolerance
run 2 "prop_payload"       timeout 180 cargo test -q --offline -p sparker-repro --test prop_payload
run 2 "prop_pool"          timeout 180 cargo test -q --offline -p sparker-repro --test prop_pool
run 2 "prop_collectives"   timeout 180 cargo test -q --offline -p sparker-repro --test prop_collectives
run 2 "prop_sparse"        timeout 180 cargo test -q --offline -p sparker-repro --test prop_sparse
run 2 "prop_ml"            timeout 180 cargo test -q --offline -p sparker-repro --test prop_ml
run 2 "prop_tcp_frames"    timeout 180 cargo test -q --offline -p sparker-repro --test prop_tcp_frames
run 2 "tcp_reconnect"      timeout 180 cargo test -q --offline -p sparker-repro --test tcp_reconnect
run 2 "prop_sched"         timeout 180 cargo test -q --offline -p sparker-repro --test prop_sched
run 2 "prop_tuner"         timeout 180 cargo test -q --offline -p sparker-repro --test prop_tuner
run 2 "chaos_cluster"      timeout 180 cargo run -q --offline --release -p sparker-bench --bin chaos_cluster -- --smoke
run 2 "paper_eval_tests"   timeout 180 cargo test -q --offline -p sparker-repro --test paper_eval

# --- tier 3: bench smoke (self-asserting harnesses) ----------------------
run 3 "bench_hotpath"      timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_hotpath -- --smoke
run 3 "ablation_sparse"    timeout 180 cargo run -q --offline --release -p sparker-bench --bin ablation_sparse_density -- --smoke
run 3 "bench_transport"    timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_transport -- --smoke
run 3 "launch_cluster"     timeout 180 cargo run -q --offline --release -p sparker-bench --bin launch_cluster -- --smoke
run 3 "bench_jobs"         timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_jobs -- --smoke
run 3 "bench_collectives"  timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_collectives -- --smoke
run 3 "paper_eval"         timeout 180 cargo run -q --offline --release -p sparker-repro --bin paper_eval -- --smoke

# --- summary (also emitted by the EXIT trap as results/ci_summary.json) --
if [ -n "$failed_tier" ]; then
  echo
  echo "CI FAILED at tier $failed_tier (step: $failed_step)"
  exit 1
fi
echo
echo "CI passed: all selected tiers green, fully offline"
