#!/usr/bin/env bash
# Tiered CI driver — one command from a clean checkout, fully offline.
#
#   tier 1  hermeticity + build + full test suite, warnings denied
#           (tools/check_hermetic.sh under RUSTFLAGS="-D warnings";
#           check_hermetic's own steps 4-11 cover the chaos gate, trace
#           export, sparse ablation, the hot-path perf gate, the
#           3-process launch_cluster smoke, the chaos_cluster kill-plan
#           smoke, the multi-job scheduler smoke, and the auto-tuned
#           collectives smoke)
#   tier 2  chaos + property suites, each under an explicit wall-clock
#           bound (a timeout means a fault path regressed into a hang)
#   tier 3  bench smoke: the self-asserting harnesses in --smoke shape
#
# Every step's wall-clock is recorded and printed as a summary at the end.
# On failure the script exits non-zero naming the first failed tier/step.
set -uo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

steps=()       # "tier<TAB>name<TAB>seconds<TAB>status"
failed_tier=""
failed_step=""

# run <tier> <name> <cmd...> — times the command; on failure records the
# first failing tier/step and skips every later step.
run() {
  local tier="$1" name="$2"
  shift 2
  if [ -n "$failed_tier" ]; then
    steps+=("$tier	$name	-	skipped")
    return
  fi
  echo "==> [tier $tier] $name"
  local t0 t1 status
  t0=$(date +%s)
  if "$@"; then
    status=ok
  else
    status=FAILED
    failed_tier="$tier"
    failed_step="$name"
  fi
  t1=$(date +%s)
  steps+=("$tier	$name	$((t1 - t0))s	$status")
}

# --- tier 1: hermetic build + tests, warnings denied ---------------------
RUSTFLAGS="-D warnings" run 1 "check_hermetic" tools/check_hermetic.sh

# --- tier 2: chaos + property suites under timeouts ----------------------
run 2 "chaos_collectives"  timeout 180 cargo test -q --offline -p sparker-repro --test chaos_collectives
run 2 "fault_tolerance"    timeout 180 cargo test -q --offline -p sparker-repro --test fault_tolerance
run 2 "prop_payload"       timeout 180 cargo test -q --offline -p sparker-repro --test prop_payload
run 2 "prop_pool"          timeout 180 cargo test -q --offline -p sparker-repro --test prop_pool
run 2 "prop_collectives"   timeout 180 cargo test -q --offline -p sparker-repro --test prop_collectives
run 2 "prop_sparse"        timeout 180 cargo test -q --offline -p sparker-repro --test prop_sparse
run 2 "prop_ml"            timeout 180 cargo test -q --offline -p sparker-repro --test prop_ml
run 2 "prop_tcp_frames"    timeout 180 cargo test -q --offline -p sparker-repro --test prop_tcp_frames
run 2 "tcp_reconnect"      timeout 180 cargo test -q --offline -p sparker-repro --test tcp_reconnect
run 2 "prop_sched"         timeout 180 cargo test -q --offline -p sparker-repro --test prop_sched
run 2 "prop_tuner"         timeout 180 cargo test -q --offline -p sparker-repro --test prop_tuner
run 2 "chaos_cluster"      timeout 180 cargo run -q --offline --release -p sparker-bench --bin chaos_cluster -- --smoke

# --- tier 3: bench smoke (self-asserting harnesses) ----------------------
run 3 "bench_hotpath"      timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_hotpath -- --smoke
run 3 "ablation_sparse"    timeout 180 cargo run -q --offline --release -p sparker-bench --bin ablation_sparse_density -- --smoke
run 3 "bench_transport"    timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_transport -- --smoke
run 3 "launch_cluster"     timeout 180 cargo run -q --offline --release -p sparker-bench --bin launch_cluster -- --smoke
run 3 "bench_jobs"         timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_jobs -- --smoke
run 3 "bench_collectives"  timeout 180 cargo run -q --offline --release -p sparker-bench --bin bench_collectives -- --smoke

# --- summary -------------------------------------------------------------
echo
echo "tier  step                wall   status"
echo "---------------------------------------"
for s in "${steps[@]}"; do
  IFS='	' read -r tier name secs status <<<"$s"
  printf "%-5s %-19s %-6s %s\n" "$tier" "$name" "$secs" "$status"
done

if [ -n "$failed_tier" ]; then
  echo
  echo "CI FAILED at tier $failed_tier (step: $failed_step)"
  exit 1
fi
echo
echo "CI passed: all three tiers green, fully offline"
