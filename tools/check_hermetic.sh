#!/usr/bin/env bash
# Hermeticity gate: the workspace must build and test with zero network
# access and zero external crates. Run from anywhere; part of tier-1 verify
# (see README.md / DESIGN.md "Dependencies").
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. Manifest audit — every dependency in every workspace manifest must be
#    an in-repo path dependency, either directly (`path = ...`) or through
#    `[workspace.dependencies]` (`workspace = true`, which the root maps to
#    paths). Anything else is a registry/git dep and breaks offline builds.
for manifest in Cargo.toml crates/*/Cargo.toml; do
  bad=$(awk '
    /^\[/ { in_deps = ($0 ~ /dependencies(\]|\.)/) ; next }
    in_deps && NF && $0 !~ /^[[:space:]]*#/ {
      if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
        print
    }
  ' "$manifest")
  if [ -n "$bad" ]; then
    echo "ERROR: non-path dependency in $manifest:"
    echo "$bad" | sed 's/^/    /'
    fail=1
  fi
done

# 2. Lockfile audit — no package may resolve to a registry or git source.
#    Name the offending packages (a bare source URL is useless for fixing).
if [ -f Cargo.lock ]; then
  offenders=$(awk '/^name = /{n=$3} /^source = /{print n " <- " $0}' Cargo.lock | sort -u)
  if [ -n "$offenders" ]; then
    echo "ERROR: Cargo.lock resolves these packages from a registry/git source:"
    echo "$offenders" | sed 's/^/    /'
    echo "    remediation: replace each with an in-repo path dependency" \
         "(path = \"crates/<name>\" or a [workspace.dependencies] entry)," \
         "then run 'cargo build --offline' to regenerate Cargo.lock."
    fail=1
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "hermeticity audit FAILED (fix the manifests before building)"
  exit 1
fi

# 3. The tier-1 commands themselves, forced offline. CARGO_NET_OFFLINE
#    belt-and-braces the --offline flags so nothing can reach a registry
#    even through a config override.
export CARGO_NET_OFFLINE=true
cargo build --release --offline
cargo test -q --offline --workspace
cargo build --offline --benches

# Deadline-bounded smoke runner for steps 4-12: all of them are "run this
# cargo invocation offline, fail the gate on non-zero or on a hang".
smoke() {
  local sub="$1"
  shift
  timeout 120 cargo "$sub" -q --offline "$@"
}

# 4. Chaos gate — the transport-fault-injection suite, run explicitly and
#    under a wall-clock bound. Its seeds are fixed (deterministic, offline);
#    every wait in the collectives is deadline-bounded, so a timeout here
#    means a fault path regressed into a hang.
smoke test -p sparker-repro --test chaos_collectives

# 5. Trace-export smoke — runs a traced training run, exports Chrome trace
#    JSON, re-parses it with the in-repo parser, and checks every span-layer
#    emitted (the example exits non-zero if any check fails). Still fully
#    offline: sparker-obs is std-only and the export lands under results/.
smoke run --release --example trace_run

# 6. Sparse-aggregation smoke — runs the density ablation in --smoke shape
#    (small dim, densities 100% and 1%). The binary itself asserts the
#    acceptance bounds: all variants numerically equal, sparse/adaptive
#    ≥5x fewer wire bytes than dense at 1% density, and adaptive no worse
#    than dense (plus per-segment header) at 100%. Crate path-only-ness is
#    already covered by the step-1 crates/*/Cargo.toml glob.
smoke run --release -p sparker-bench --bin ablation_sparse_density -- --smoke

# 7. Hot-path perf-regression gate — bench_hotpath asserts its own bounds:
#    pooled path allocates >=10x fewer frames than unpooled, chunk-pipelined
#    ring is bit-exact with unpipelined, striped IMM totals equal the
#    single-lock totals. Writes results/bench_hotpath.json + BENCH_5.json.
smoke run --release -p sparker-bench --bin bench_hotpath -- --smoke

# 8. Multi-process smoke — launch_cluster spawns 3 real executor OS
#    processes over localhost TCP and runs the full splitAggregate matrix
#    (dense, sparse, injected-failure retry, executor kill → survivor
#    ring re-formation), asserting every answer bit-exact against the oracle. A
#    timeout here means the socket transport or the recovery path hangs.
smoke run --release -p sparker-bench --bin launch_cluster -- --smoke

# 9. OS-level chaos smoke — chaos_cluster spawns 4 executor processes and
#    SIGKILLs one mid-collective (--plan kill): the survivors must detect
#    the death by heartbeat/reset, the driver must publish a new membership
#    view, and the retry must re-form the ring over the survivors (never
#    the tree fallback) and still match the oracle bit-for-bit. Its own
#    watchdog exits 86 on a hang, under this step's timeout regardless.
smoke run --release -p sparker-bench --bin chaos_cluster -- --plan kill

# 10. Multi-job scheduler smoke — bench_jobs drives the sparker-sched
#     admission queue with 4 concurrent client threads over 4 engine lanes,
#     asserting every scheduled result bit-exact against the serial oracle,
#     a jobs/s floor, the fair-share victim-p99 bound (which FIFO must
#     break), and typed queue-full/backpressure rejections. Writes
#     results/bench_jobs.json + BENCH_8.json.
smoke run --release -p sparker-bench --bin bench_jobs -- --smoke

# 11. Auto-tuned collectives smoke — bench_collectives in --smoke shape:
#     scores the full algorithm ladder in the DES (selector within the
#     calibrated margin of the best static choice, hierarchical beats the
#     flat ring at AWS scale for dense >=1 MiB), then calibrates a cost
#     model from real traced flat-ring runs and drives a live hierarchical
#     allreduce with the selected configuration, bit-exact against the
#     oracle. Writes results/bench_collectives.json + BENCH_9.json.
smoke run --release -p sparker-bench --bin bench_collectives -- --smoke

# 12. Paper-parity eval smoke — paper_eval in --smoke shape (reduced
#     24-executor/96-core cluster, 3 workloads, shortened ladders): replays
#     the paper's headline experiments plus the elastic DES scenarios and
#     checks every named bound at smoke thresholds, writing
#     results/paper_eval.json (the full-shape BENCH_10.json is only written
#     by the full run). Deterministic and DES-only, so it adds seconds, not
#     minutes; a timeout means the sweep or a bound check regressed.
smoke run --release -p sparker-repro --bin paper_eval -- --smoke

echo "hermetic check passed: built and tested fully offline, path-only deps"
