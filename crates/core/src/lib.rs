//! # Sparker — *Spark* with *E*fficient *R*eduction
//!
//! Rust reproduction of **"Sparker: Efficient Reduction for More Scalable
//! Machine Learning with Spark"** (Yu, Cao, Shan, Wang, Tang, Chen —
//! ICPP 2021), including every substrate the paper depends on: a mini
//! Spark-like engine, a shaped communication layer, scalable reduction
//! collectives, an MLlib-like model zoo, synthetic Table 2 datasets, and a
//! discrete-event cluster simulator for paper-scale experiments.
//!
//! ## The paper in one paragraph
//!
//! MLlib's training loop spends most of its time in `treeAggregate`, whose
//! *reduction* phase gets **slower** as the cluster grows, because Spark's
//! aggregation interface treats aggregators as opaque objects and therefore
//! cannot use bandwidth-optimal reduction algorithms that split the reduced
//! value. Sparker adds a **split aggregation interface** (`splitOp` /
//! `reduceOp`-on-segments / `concatOp`), implements ring reduce-scatter over
//! a parallel directed ring of executors through a purpose-built
//! low-latency communicator, and merges task results **in memory** per
//! executor before any serialization. Result: up to 6.47× faster
//! aggregation and 1.81× geometric-mean end-to-end training speedup.
//!
//! ## Quickstart
//!
//! ```
//! use sparker::prelude::*;
//!
//! // An in-process "cluster": 4 executors x 2 cores.
//! let cluster = LocalCluster::local(4, 2);
//!
//! // A dataset of dense vectors, generated on the executors.
//! let dim = 1024;
//! let data = cluster.generate(8, move |p| {
//!     vec![vec![p as f64; dim]; 4] // 4 vectors per partition
//! });
//!
//! // Spark's treeAggregate (the baseline)...
//! let (tree_sum, _) = data
//!     .tree_aggregate(
//!         F64Array(vec![0.0; dim]),
//!         |mut acc, v| {
//!             for (a, x) in acc.0.iter_mut().zip(v) {
//!                 *a += x;
//!             }
//!             acc
//!         },
//!         |mut a, b| {
//!             for (x, y) in a.0.iter_mut().zip(b.0) {
//!                 *x += y;
//!             }
//!             a
//!         },
//!         TreeAggOpts::default(),
//!     )
//!     .unwrap();
//!
//! // ...and Sparker's splitAggregate (the contribution).
//! let (split_sum, metrics) = data
//!     .split_aggregate(
//!         F64Array(vec![0.0; dim]),
//!         |mut acc, v| {
//!             for (a, x) in acc.0.iter_mut().zip(v) {
//!                 *a += x;
//!             }
//!             acc
//!         },
//!         sparker::dense::merge,
//!         sparker::dense::split,
//!         sparker::dense::merge_segments,
//!         sparker::dense::concat,
//!         SplitAggOpts::default(),
//!     )
//!     .unwrap();
//!
//! assert_eq!(tree_sum.0, sparker::dense::to_vec(split_sum));
//! assert_eq!(metrics.strategy.name(), "split");
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`sparker_obs`] | span tracing, metrics, Chrome-trace + Fig 2 exporters |
//! | [`sparker_net`] | codec, shaped transports, PDR topology |
//! | [`sparker_collectives`] | ring reduce-scatter, tree, halving, allreduce |
//! | [`sparker_sparse`] | sparse & density-adaptive segments (SparCML-style SSAR) |
//! | [`sparker_engine`] | RDDs, driver/executors, tree & split aggregation, IMM |
//! | [`sparker_ml`] | LR / SVM / LDA with the `AggregationMode` switch |
//! | [`sparker_data`] | RNG, libsvm, synthetic Table 2 datasets |
//! | [`sparker_tuner`] | calibrated cost model + collective algorithm selector |
//! | `sparker-sim` | discrete-event simulator for paper-scale figures |

pub use sparker_collectives as collectives;
pub use sparker_data as data;
pub use sparker_engine as engine;
pub use sparker_ml as ml;
pub use sparker_net as net;
pub use sparker_obs as obs;
pub use sparker_tuner as tuner;

/// Ready-made SAI callbacks for dense `f64` aggregators (the shape every
/// paper workload uses — Figure 7's `Array[Double]` pairs).
pub mod dense {
    pub use sparker_ml::aggregator::{
        merge_dense as merge, merge_segments, split_dense as split, zeros,
    };
    use sparker_collectives::segment::SumSegment;
    use sparker_net::codec::F64Array;

    /// `concatOp` returning the segment type (engine signature).
    pub fn concat(segments: Vec<SumSegment>) -> SumSegment {
        SumSegment(sparker_ml::aggregator::concat_dense(segments).0)
    }

    /// Unwraps a concatenated segment into a plain vector.
    pub fn to_vec(seg: SumSegment) -> Vec<f64> {
        seg.0
    }

    /// Unwraps a dense aggregator into a plain vector.
    pub fn agg_to_vec(agg: F64Array) -> Vec<f64> {
        agg.0
    }
}

/// Ready-made SAI callbacks for **sparse** aggregators: the executor-local
/// value is a [`SparseAccum`], segments are density-adaptive
/// [`DenseOrSparse`] (sparse on the wire until merge fill-in crosses the
/// threshold, then dense — SparCML-style SSAR).
///
/// [`SparseAccum`]: sparker_sparse::SparseAccum
/// [`DenseOrSparse`]: sparker_sparse::DenseOrSparse
pub mod sparse {
    pub use sparker_ml::aggregator::{
        concat_adaptive as concat, fold_doc_counts_sparse, fold_logistic_sparse,
        merge_adaptive_segments as merge_segments, merge_sparse as merge,
        split_adaptive as split, split_sparse, zeros_sparse as zeros,
    };
    pub use sparker_sparse::{
        dense_wire_bytes, DenseOrSparse, SparseAccum, SparseSegment,
        DEFAULT_DENSITY_THRESHOLD, NEVER_DENSIFY,
    };
}

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use sparker_collectives::segment::{slice_bounds, SumSegment, U64SumSegment};
    pub use sparker_engine::cluster::LocalCluster;
    pub use sparker_engine::config::ClusterSpec;
    pub use sparker_engine::cost::CostModel;
    pub use sparker_engine::dataset::Dataset;
    pub use sparker_engine::metrics::{AggMetrics, AggStrategy};
    pub use sparker_engine::ops::allreduce_aggregate::{
        allreduce_aggregate, executor_copy_slot, AllReduceOutput,
    };
    pub use sparker_engine::ops::split_aggregate::{
        ImmMode, RsAlgorithm, SelectorOpts, SplitAggOpts,
    };
    pub use sparker_engine::ops::tree_aggregate::TreeAggOpts;
    pub use sparker_ml::glm::AggregationMode;
    pub use sparker_ml::lbfgs::LbfgsConfig;
    pub use sparker_ml::lda::{LdaConfig, LdaModel};
    pub use sparker_ml::logistic::LogisticRegression;
    pub use sparker_ml::point::LabeledPoint;
    pub use sparker_ml::svm::LinearSvm;
    pub use sparker_net::codec::{F64Array, Payload};
    pub use sparker_net::profile::{NetProfile, TransportKind};
    pub use sparker_net::topology::RingOrder;
    pub use sparker_sparse::{DenseOrSparse, SparseAccum, SparseSegment};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let cluster = LocalCluster::local(2, 1);
        let ds = cluster.parallelize(vec![1u64, 2, 3, 4], 2);
        let (sum, m) = ds
            .tree_aggregate(0u64, |a, x| a + *x, |a, b| a + b, TreeAggOpts::default())
            .unwrap();
        assert_eq!(sum, 10);
        assert_eq!(m.strategy, AggStrategy::Tree);
    }

    #[test]
    fn sparse_helpers_roundtrip() {
        let mut acc = crate::sparse::zeros(10);
        acc.add(2, 1.5);
        acc.add(7, -3.0);
        let segs: Vec<DenseOrSparse> = (0..3).map(|i| crate::sparse::split(&acc, i, 3)).collect();
        assert!(segs.iter().all(DenseOrSparse::is_sparse));
        let back = crate::sparse::concat(segs);
        assert_eq!(back.to_dense(), acc.to_dense());
    }

    #[test]
    fn dense_helpers_roundtrip() {
        let agg = F64Array(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let segs: Vec<SumSegment> = (0..3).map(|i| crate::dense::split(&agg, i, 3)).collect();
        let back = crate::dense::concat(segs);
        assert_eq!(crate::dense::to_vec(back), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
