//! libsvm sparse-format I/O.
//!
//! The paper's four classification datasets ship in libsvm format:
//!
//! ```text
//! <label> <index>:<value> <index>:<value> ...
//! ```
//!
//! with 1-based, strictly increasing indices. We parse into
//! [`SparseExample`] (0-based indices internally) and write back out, so
//! real datasets can replace the synthetic stand-ins without code changes.

use crate::synth::SparseExample;

/// A libsvm parse failure, with 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "libsvm parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one libsvm line. Labels `+1`, `1`, `-1`, `0` are normalized to
/// ±1 (`0 → -1`, matching MLlib's binary convention for SVM).
pub fn parse_line(line: &str, lineno: usize) -> Result<SparseExample, ParseError> {
    let err = |message: String| ParseError { line: lineno, message };
    let mut fields = line.split_whitespace();
    let label_str = fields.next().ok_or_else(|| err("empty line".into()))?;
    let raw: f64 = label_str
        .parse()
        .map_err(|e| err(format!("bad label {label_str:?}: {e}")))?;
    let label = if raw > 0.0 { 1.0 } else { -1.0 };

    let mut indices = Vec::new();
    let mut values = Vec::new();
    let mut prev: i64 = -1;
    for field in fields {
        if field.starts_with('#') {
            break; // trailing comment
        }
        let (idx_str, val_str) = field
            .split_once(':')
            .ok_or_else(|| err(format!("expected index:value, got {field:?}")))?;
        let idx: u32 = idx_str
            .parse()
            .map_err(|e| err(format!("bad index {idx_str:?}: {e}")))?;
        if idx == 0 {
            return Err(err("libsvm indices are 1-based; found 0".into()));
        }
        let zero_based = (idx - 1) as i64;
        if zero_based <= prev {
            return Err(err(format!("indices must be strictly increasing at {idx}")));
        }
        prev = zero_based;
        let val: f64 = val_str
            .parse()
            .map_err(|e| err(format!("bad value {val_str:?}: {e}")))?;
        indices.push(idx - 1);
        values.push(val);
    }
    Ok(SparseExample { label, indices, values })
}

/// Parses a whole libsvm document (skips blank lines).
pub fn parse(text: &str) -> Result<Vec<SparseExample>, ParseError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l, i + 1))
        .collect()
}

/// Writes one example as a libsvm line (1-based indices).
pub fn write_line(ex: &SparseExample, out: &mut String) {
    out.push_str(if ex.label > 0.0 { "+1" } else { "-1" });
    for (i, v) in ex.indices.iter().zip(&ex.values) {
        out.push(' ');
        out.push_str(&(i + 1).to_string());
        out.push(':');
        // Shortest roundtrip representation.
        out.push_str(&format!("{v}"));
    }
    out.push('\n');
}

/// Serializes a dataset to libsvm text.
pub fn write(examples: &[SparseExample]) -> String {
    let mut out = String::new();
    for ex in examples {
        write_line(ex, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_line() {
        let ex = parse_line("+1 1:0.5 3:2 10:-1.5", 1).unwrap();
        assert_eq!(ex.label, 1.0);
        assert_eq!(ex.indices, vec![0, 2, 9]);
        assert_eq!(ex.values, vec![0.5, 2.0, -1.5]);
    }

    #[test]
    fn zero_label_normalizes_to_minus_one() {
        assert_eq!(parse_line("0 1:1", 1).unwrap().label, -1.0);
        assert_eq!(parse_line("-1 1:1", 1).unwrap().label, -1.0);
        assert_eq!(parse_line("1 1:1", 1).unwrap().label, 1.0);
    }

    #[test]
    fn label_only_line_is_valid() {
        let ex = parse_line("+1", 1).unwrap();
        assert!(ex.indices.is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_line("", 1).is_err());
        assert!(parse_line("x 1:1", 1).is_err());
        assert!(parse_line("+1 0:1", 1).is_err(), "0 index is invalid");
        assert!(parse_line("+1 2:1 2:2", 1).is_err(), "non-increasing");
        assert!(parse_line("+1 3:1 2:2", 1).is_err(), "decreasing");
        assert!(parse_line("+1 a:1", 1).is_err());
        assert!(parse_line("+1 1:b", 1).is_err());
        assert!(parse_line("+1 1", 1).is_err(), "missing colon");
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("1 1:1\n\nbad").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn trailing_comment_ignored() {
        let ex = parse_line("+1 1:2 # a comment", 1).unwrap();
        assert_eq!(ex.indices, vec![0]);
    }

    #[test]
    fn roundtrip_through_text() {
        let gen = crate::synth::ClassificationGen::new(3, 100, 8);
        let examples: Vec<_> = (0..50).map(|i| gen.sample(i)).collect();
        let text = write(&examples);
        let back = parse(&text).unwrap();
        assert_eq!(back, examples);
    }

    #[test]
    fn parse_skips_blank_lines() {
        let got = parse("+1 1:1\n\n\n-1 2:2\n").unwrap();
        assert_eq!(got.len(), 2);
    }
}
