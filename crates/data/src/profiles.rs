//! The paper's Table 2 as data.
//!
//! Each profile records a real dataset's load-bearing shape: sample/document
//! count, feature-space or vocabulary size, and per-sample density. A
//! `scale` factor shrinks the *sample count* (compute volume) while a
//! separate `feature_scale` shrinks the *aggregator dimension* (reduction
//! volume), so benchmarks can dial compute and communication independently —
//! the paper's whole point is their ratio.

use crate::synth::{ClassificationGen, CorpusGen};

/// What the dataset is used for (Table 2's "Task" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    Classification,
    TopicModel,
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Paper's dataset name ("avazu", "kdd12", …).
    pub name: &'static str,
    pub task: TaskKind,
    /// Samples (classification) or documents (topic model) in the paper.
    pub paper_samples: u64,
    /// Features (classification) or dictionary size (topic model).
    pub paper_features: u64,
    /// Typical non-zeros per sample / words per document (approximate,
    /// from the public dataset statistics).
    pub nnz_per_sample: usize,
    /// Multiplier on sample count for a run (1.0 = paper scale).
    pub scale: f64,
    /// Multiplier on feature/vocabulary dimension for a run.
    pub feature_scale: f64,
    /// RNG seed for the synthetic stand-in.
    pub seed: u64,
}

impl DatasetProfile {
    /// Effective sample count after scaling (min 1).
    pub fn samples(&self) -> u64 {
        ((self.paper_samples as f64 * self.scale) as u64).max(1)
    }

    /// Effective feature dimension after scaling (min 16).
    pub fn features(&self) -> usize {
        ((self.paper_features as f64 * self.feature_scale) as usize).max(16)
    }

    /// Builder: scales sample count.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.scale = scale;
        self
    }

    /// Builder: scales feature/vocabulary dimension.
    pub fn feature_scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.feature_scale = scale;
        self
    }

    /// Classification generator for this profile.
    ///
    /// # Panics
    /// Panics for topic-model profiles.
    pub fn classification_gen(&self) -> ClassificationGen {
        assert_eq!(self.task, TaskKind::Classification, "{} is not a classification set", self.name);
        let features = self.features();
        ClassificationGen::new(self.seed, features, self.nnz_per_sample.min(features / 2).max(1))
    }

    /// Corpus generator for this profile with `num_topics` topics.
    ///
    /// # Panics
    /// Panics for classification profiles.
    pub fn corpus_gen(&self, num_topics: usize) -> CorpusGen {
        assert_eq!(self.task, TaskKind::TopicModel, "{} is not a corpus", self.name);
        let vocab = self.features();
        CorpusGen::new(self.seed, vocab, num_topics.min(vocab), self.nnz_per_sample)
    }

    /// Size in bytes of the dense `f64` aggregator a GLM gradient over this
    /// dataset produces (gradient + loss + count).
    pub fn glm_aggregator_bytes(&self) -> u64 {
        (self.features() as u64 + 2) * 8
    }

    /// Size in bytes of the LDA sufficient-statistics aggregator
    /// (K × V matrix + K totals).
    pub fn lda_aggregator_bytes(&self, num_topics: usize) -> u64 {
        (num_topics as u64 * self.features() as u64 + num_topics as u64) * 8
    }
}

/// avazu: 45,006,431 samples × 1,000,000 features (CTR prediction).
pub fn avazu() -> DatasetProfile {
    DatasetProfile {
        name: "avazu",
        task: TaskKind::Classification,
        paper_samples: 45_006_431,
        paper_features: 1_000_000,
        nnz_per_sample: 15,
        scale: 1.0,
        feature_scale: 1.0,
        seed: 0xA4A2 ^ 0x5EED,
    }
}

/// criteo: 51,882,752 samples × 1,000,000 features.
pub fn criteo() -> DatasetProfile {
    DatasetProfile {
        name: "criteo",
        task: TaskKind::Classification,
        paper_samples: 51_882_752,
        paper_features: 1_000_000,
        nnz_per_sample: 39,
        scale: 1.0,
        feature_scale: 1.0,
        seed: 0xC417E0,
    }
}

/// kdd10: 8,918,054 samples × 20,216,830 features.
pub fn kdd10() -> DatasetProfile {
    DatasetProfile {
        name: "kdd10",
        task: TaskKind::Classification,
        paper_samples: 8_918_054,
        paper_features: 20_216_830,
        nnz_per_sample: 30,
        scale: 1.0,
        feature_scale: 1.0,
        seed: 0x10DD,
    }
}

/// kdd12: 149,639,105 samples × 54,686,452 features.
pub fn kdd12() -> DatasetProfile {
    DatasetProfile {
        name: "kdd12",
        task: TaskKind::Classification,
        paper_samples: 149_639_105,
        paper_features: 54_686_452,
        nnz_per_sample: 11,
        scale: 1.0,
        feature_scale: 1.0,
        seed: 0x12DD,
    }
}

/// enron: 39,861 documents, 28,102-word dictionary.
pub fn enron() -> DatasetProfile {
    DatasetProfile {
        name: "enron",
        task: TaskKind::TopicModel,
        paper_samples: 39_861,
        paper_features: 28_102,
        nnz_per_sample: 160,
        scale: 1.0,
        feature_scale: 1.0,
        seed: 0xE7707,
    }
}

/// nytimes: 300,000 documents, 102,660-word dictionary.
pub fn nytimes() -> DatasetProfile {
    DatasetProfile {
        name: "nytimes",
        task: TaskKind::TopicModel,
        paper_samples: 300_000,
        paper_features: 102_660,
        nnz_per_sample: 230,
        scale: 1.0,
        feature_scale: 1.0,
        seed: 0x24_7177,
    }
}

/// All Table 2 profiles in the paper's order.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![avazu(), criteo(), kdd10(), kdd12(), enron(), nytimes()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_match_paper() {
        let p = kdd12();
        assert_eq!(p.paper_samples, 149_639_105);
        assert_eq!(p.paper_features, 54_686_452);
        assert_eq!(nytimes().paper_features, 102_660);
        assert_eq!(all_profiles().len(), 6);
    }

    #[test]
    fn scaling_shrinks_samples_and_features_independently() {
        let p = avazu().scaled(1e-5).feature_scaled(0.01);
        assert_eq!(p.samples(), 450);
        assert_eq!(p.features(), 10_000);
    }

    #[test]
    fn generators_match_task_kind() {
        let c = avazu().scaled(1e-6).feature_scaled(1e-3);
        let g = c.classification_gen();
        let s = g.sample(0);
        assert!(s.indices.iter().all(|&i| (i as usize) < c.features()));

        let t = enron().feature_scaled(0.01);
        let g = t.corpus_gen(10);
        let d = g.document(0);
        assert!(d.words.iter().all(|&(w, _)| (w as usize) < t.features()));
    }

    #[test]
    #[should_panic(expected = "is not a corpus")]
    fn classification_profile_rejects_corpus_gen() {
        avazu().corpus_gen(10);
    }

    #[test]
    fn aggregator_sizes_reflect_paper_hierarchy() {
        // kdd12's gradient aggregator dwarfs avazu's; nytimes' LDA stats
        // dwarf enron's — that hierarchy drives Figure 17's speedups.
        assert!(kdd12().glm_aggregator_bytes() > 50 * avazu().glm_aggregator_bytes());
        assert!(nytimes().lda_aggregator_bytes(100) > 3 * enron().lda_aggregator_bytes(100));
        // nytimes K=100: ~82 MB of doubles, the paper's "significantly large".
        let mb = nytimes().lda_aggregator_bytes(100) as f64 / (1024.0 * 1024.0);
        assert!((70.0..90.0).contains(&mb), "nytimes LDA aggregator {mb} MB");
    }

    #[test]
    fn minimum_clamps() {
        let p = enron().scaled(1e-12).feature_scaled(1e-12);
        assert_eq!(p.samples(), 1);
        assert_eq!(p.features(), 16);
    }
}
