//! Deterministic, splittable pseudo-randomness.
//!
//! Synthetic partitions must be generated independently on their executors
//! (no driver-side materialization) and reproducibly across runs and
//! backends (threaded engine vs simulator). SplitMix64 gives both: a tiny,
//! statistically solid generator whose streams are derived by seed
//! arithmetic, so partition `p` of dataset seed `s` always yields the same
//! items everywhere.

/// SplitMix64 PRNG (Steele, Lea & Flood; the seeding generator of the
/// xoshiro family).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives the generator for stream (e.g. partition) `stream` of `seed`.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        // Mix the stream id through one round so adjacent streams decorrelate.
        let mut g = Self::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        g.next_u64();
        g
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. Uses rejection-free Lemire reduction; the bias
    /// for n ≪ 2^64 is negligible for data generation.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates sample of `k` distinct values from `0..n`.
    ///
    /// Uses a partial shuffle over a dense index map only when `k` is a
    /// large fraction of `n`; otherwise rejection sampling with a scratch
    /// set, which is O(k) for the sparse regime data generation lives in.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(k as u64 <= n, "cannot sample {k} distinct from {n}");
        if k == 0 {
            return Vec::new();
        }
        if (k as u64) * 4 >= n {
            // Dense regime: partial Fisher-Yates.
            let mut idx: Vec<u64> = (0..n).collect();
            for i in 0..k {
                let j = i as u64 + self.next_below(n - i as u64);
                idx.swap(i, j as usize);
            }
            idx.truncate(k);
            idx
        } else {
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let v = self.next_below(n);
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Zipf sampler over `{0, …, n−1}` with exponent `s`, via inverse-CDF on a
/// precomputed table. Table construction is O(n); sampling is O(log n).
///
/// Bag-of-words corpora (enron, nytimes in Table 2) have Zipfian word
/// frequencies, which is what makes LDA's word-topic count matrix dense in
/// common words and sparse in the tail.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }

    pub fn support(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = SplitMix64::for_stream(42, 0);
        let mut b = SplitMix64::for_stream(42, 1);
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 hit in 1000 draws");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut g = SplitMix64::new(1234);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = g.next_gaussian();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut g = SplitMix64::new(5);
        for (n, k) in [(100u64, 10usize), (100, 90), (10, 10), (1_000_000, 50)] {
            let s = g.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn sample_distinct_zero_k() {
        let mut g = SplitMix64::new(5);
        assert!(g.sample_distinct(10, 0).is_empty());
    }

    #[test]
    fn zipf_is_monotonically_decreasing_in_rank() {
        let z = Zipf::new(1000, 1.1);
        let mut g = SplitMix64::new(77);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut g)] += 1;
        }
        // Head ranks dominate tail ranks decisively.
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[500..510].iter().sum();
        assert!(head > tail * 20, "head {head}, tail {tail}");
        assert!(counts[0] > counts[99], "rank 0 must beat rank 99");
    }

    #[test]
    fn zipf_samples_in_support() {
        let z = Zipf::new(50, 1.0);
        let mut g = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut g) < 50);
        }
        assert_eq!(z.support(), 50);
    }
}
