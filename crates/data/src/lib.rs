//! # sparker-data
//!
//! Dataset substrate for the Sparker reproduction.
//!
//! The paper evaluates on six real datasets (Table 2): four libsvm-format
//! classification sets (avazu, criteo, kdd10, kdd12 — up to 149 M samples ×
//! 54 M features) and two UCI bag-of-words corpora (enron, nytimes). Those
//! datasets are tens of gigabytes and gated behind external hosting, so this
//! crate provides:
//!
//! * [`rng`] — a deterministic, splittable PRNG (SplitMix64) plus Gaussian
//!   and Zipf samplers, so every partition of a synthetic dataset can be
//!   generated independently and reproducibly on its executor;
//! * [`libsvm`] — a parser/writer for the libsvm sparse format, so real
//!   datasets drop in when available;
//! * [`synth`] — synthetic generators matching the *load-bearing* properties
//!   of Table 2: sample count, feature-space size, per-sample sparsity, and
//!   (for corpora) vocabulary size and Zipfian word frequencies. For this
//!   paper the aggregator size (features / K·V) relative to compute is what
//!   drives every result;
//! * [`profiles`] — the Table 2 rows as data, each with a `scale` factor to
//!   shrink sample counts to laptop scale while keeping aggregator
//!   dimensions meaningful.
//!
//! Real data interoperates through the libsvm format, losslessly:
//!
//! ```
//! use sparker_data::synth::SparseExample;
//!
//! let examples = vec![SparseExample {
//!     label: 1.0,
//!     indices: vec![0, 3],
//!     values: vec![0.5, -1.0],
//! }];
//! let text = sparker_data::libsvm::write(&examples);
//! assert_eq!(sparker_data::libsvm::parse(&text).unwrap(), examples);
//! ```

pub mod libsvm;
pub mod profiles;
pub mod rng;
pub mod synth;

pub use profiles::{DatasetProfile, TaskKind};
pub use rng::SplitMix64;
pub use synth::{ClassificationGen, CorpusGen, Document, SparseExample};
