//! Synthetic dataset generators.
//!
//! Two generators stand in for the paper's real datasets:
//!
//! * [`ClassificationGen`] — sparse binary classification (avazu/criteo/
//!   kdd10/kdd12 stand-in). A fixed ground-truth weight vector is derived
//!   from the seed; each sample draws `nnz` distinct features, Gaussian
//!   values, and a label from the logistic of the true margin. Feature 0
//!   acts as an intercept so the classes are separable enough for training
//!   curves to move.
//! * [`CorpusGen`] — bag-of-words documents (enron/nytimes stand-in) from a
//!   simple topic mixture: each synthetic topic is a Zipf distribution over
//!   a shifted slice of the vocabulary, each document mixes 1–3 topics.
//!
//! Both generate *per partition* with stream-split RNGs: partition `p` is
//! identical no matter which executor, run, or backend generates it.

use crate::rng::{SplitMix64, Zipf};

/// A sparse labelled example (indices strictly increasing).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseExample {
    /// +1.0 / -1.0 (0.0/1.0 accepted by parsers; generators emit ±1).
    pub label: f64,
    pub indices: Vec<u32>,
    pub values: Vec<f64>,
}

impl SparseExample {
    /// Dot product against a dense weight vector.
    pub fn dot(&self, w: &[f64]) -> f64 {
        self.indices
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| w.get(i as usize).copied().unwrap_or(0.0) * v)
            .sum()
    }

    pub fn nnz(&self) -> usize {
        self.indices.len()
    }
}

/// Sparse binary-classification generator.
#[derive(Debug, Clone)]
pub struct ClassificationGen {
    pub seed: u64,
    pub num_features: usize,
    /// Non-zeros per sample (including the intercept feature 0).
    pub nnz_per_sample: usize,
    /// Fraction of features carrying true signal; the rest are noise.
    pub signal_fraction: f64,
}

impl ClassificationGen {
    pub fn new(seed: u64, num_features: usize, nnz_per_sample: usize) -> Self {
        assert!(num_features >= 2);
        assert!(nnz_per_sample >= 1 && nnz_per_sample <= num_features);
        Self { seed, num_features, nnz_per_sample, signal_fraction: 0.3 }
    }

    /// The ground-truth weight of feature `i` (derived, not stored: the
    /// feature space can be huge).
    pub fn true_weight(&self, i: u32) -> f64 {
        let mut g = SplitMix64::for_stream(self.seed ^ 0xFEED_FACE, i as u64);
        let active = g.next_f64() < self.signal_fraction;
        if i == 0 {
            0.5 // intercept
        } else if active {
            2.0 * g.next_gaussian()
        } else {
            0.0
        }
    }

    /// Generates sample `index` (global index across the dataset).
    pub fn sample(&self, index: u64) -> SparseExample {
        let mut g = SplitMix64::for_stream(self.seed, index);
        let mut indices: Vec<u32> = if self.nnz_per_sample > 1 {
            let mut idx = g
                .sample_distinct((self.num_features - 1) as u64, self.nnz_per_sample - 1)
                .into_iter()
                .map(|v| (v + 1) as u32)
                .collect::<Vec<_>>();
            idx.push(0); // intercept
            idx.sort_unstable();
            idx
        } else {
            vec![0]
        };
        indices.dedup();
        let values: Vec<f64> = indices
            .iter()
            .map(|&i| if i == 0 { 1.0 } else { g.next_gaussian().abs() + 0.1 })
            .collect();
        let margin: f64 = indices
            .iter()
            .zip(&values)
            .map(|(&i, &v)| self.true_weight(i) * v)
            .sum();
        let p = 1.0 / (1.0 + (-margin).exp());
        let label = if g.next_f64() < p { 1.0 } else { -1.0 };
        SparseExample { label, indices, values }
    }

    /// Generates the samples of one partition.
    pub fn partition(&self, partition: usize, partitions: usize, total_samples: u64) -> Vec<SparseExample> {
        let per = total_samples / partitions as u64;
        let rem = total_samples % partitions as u64;
        let start = partition as u64 * per + (partition as u64).min(rem);
        let count = per + u64::from((partition as u64) < rem);
        (start..start + count).map(|i| self.sample(i)).collect()
    }
}

/// A bag-of-words document: (word id, count) pairs, ids strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    pub words: Vec<(u32, u32)>,
}

impl Document {
    pub fn total_words(&self) -> u64 {
        self.words.iter().map(|&(_, c)| c as u64).sum()
    }
}

/// Topic-mixture corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGen {
    pub seed: u64,
    pub vocab_size: usize,
    pub num_topics: usize,
    /// Words drawn per document (before counting duplicates).
    pub doc_length: usize,
    zipf: Zipf,
}

impl CorpusGen {
    pub fn new(seed: u64, vocab_size: usize, num_topics: usize, doc_length: usize) -> Self {
        assert!(vocab_size >= num_topics);
        assert!(num_topics >= 1 && doc_length >= 1);
        Self { seed, vocab_size, num_topics, doc_length, zipf: Zipf::new(vocab_size, 1.05) }
    }

    /// Generates document `index`.
    pub fn document(&self, index: u64) -> Document {
        let mut g = SplitMix64::for_stream(self.seed ^ 0xD0C5, index);
        // 1-3 topics per document.
        let k = 1 + g.next_below(3) as usize;
        let topics: Vec<usize> = (0..k)
            .map(|_| g.next_below(self.num_topics as u64) as usize)
            .collect();
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..self.doc_length {
            let topic = topics[g.next_below(k as u64) as usize];
            // Each topic reads the global Zipf through a topic-specific
            // rotation of the vocabulary, giving topics distinct heads.
            let raw = self.zipf.sample(&mut g);
            let word = ((raw + topic * (self.vocab_size / self.num_topics)) % self.vocab_size) as u32;
            *counts.entry(word).or_insert(0u32) += 1;
        }
        Document { words: counts.into_iter().collect() }
    }

    /// Generates the documents of one partition.
    pub fn partition(&self, partition: usize, partitions: usize, total_docs: u64) -> Vec<Document> {
        let per = total_docs / partitions as u64;
        let rem = total_docs % partitions as u64;
        let start = partition as u64 * per + (partition as u64).min(rem);
        let count = per + u64::from((partition as u64) < rem);
        (start..start + count).map(|i| self.document(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let g = ClassificationGen::new(11, 1000, 10);
        assert_eq!(g.sample(5), g.sample(5));
        assert_ne!(g.sample(5), g.sample(6));
    }

    #[test]
    fn sample_shape_is_valid() {
        let g = ClassificationGen::new(11, 1000, 10);
        for i in 0..200 {
            let s = g.sample(i);
            assert!(s.label == 1.0 || s.label == -1.0);
            assert!(s.nnz() <= 10 && s.nnz() >= 1);
            assert!(s.indices.windows(2).all(|w| w[0] < w[1]), "sorted unique indices");
            assert!(s.indices.iter().all(|&i| (i as usize) < 1000));
            assert_eq!(s.indices.len(), s.values.len());
            assert!(s.indices.contains(&0), "intercept present");
        }
    }

    #[test]
    fn labels_correlate_with_true_margin() {
        let g = ClassificationGen::new(13, 500, 20);
        let mut agree = 0;
        let n = 2000;
        for i in 0..n {
            let s = g.sample(i);
            let margin: f64 = s
                .indices
                .iter()
                .zip(&s.values)
                .map(|(&j, &v)| g.true_weight(j) * v)
                .sum();
            if (margin > 0.0 && s.label > 0.0) || (margin <= 0.0 && s.label < 0.0) {
                agree += 1;
            }
        }
        let rate = agree as f64 / n as f64;
        assert!(rate > 0.7, "signal too weak: agreement {rate}");
    }

    #[test]
    fn partitions_tile_the_dataset() {
        let g = ClassificationGen::new(17, 100, 5);
        let total: Vec<_> = (0..4).flat_map(|p| g.partition(p, 4, 10)).collect();
        let direct: Vec<_> = (0..10).map(|i| g.sample(i)).collect();
        assert_eq!(total, direct);
    }

    #[test]
    fn partition_sizes_balance() {
        let g = ClassificationGen::new(17, 100, 5);
        let sizes: Vec<usize> = (0..3).map(|p| g.partition(p, 3, 10).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn documents_are_deterministic_and_sorted() {
        let g = CorpusGen::new(23, 5000, 10, 100);
        let d = g.document(3);
        assert_eq!(d, g.document(3));
        assert!(d.words.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(d.total_words(), 100);
        assert!(d.words.iter().all(|&(w, _)| (w as usize) < 5000));
    }

    #[test]
    fn corpus_partitions_tile() {
        let g = CorpusGen::new(29, 1000, 5, 50);
        let total: Vec<_> = (0..3).flat_map(|p| g.partition(p, 3, 7)).collect();
        let direct: Vec<_> = (0..7).map(|i| g.document(i)).collect();
        assert_eq!(total, direct);
    }

    #[test]
    fn topics_have_distinct_heads() {
        // Documents from different dominant topics should have different
        // most-frequent words (topic rotation works).
        let g = CorpusGen::new(31, 10_000, 10, 400);
        let mut heads = std::collections::HashSet::new();
        for i in 0..30 {
            let d = g.document(i);
            let head = d.words.iter().max_by_key(|&&(_, c)| c).unwrap().0;
            heads.insert(head / (10_000 / 10)); // which vocab slice
        }
        assert!(heads.len() >= 3, "topic structure collapsed: {heads:?}");
    }
}
