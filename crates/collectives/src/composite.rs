//! Derived split aggregation for composite aggregators.
//!
//! The paper's §6 sketches a future direction: "compiler techniques may be
//! used to analyze the aggregator to generate split aggregation code
//! without user-defined code." This module is that idea as a library:
//! describe an aggregator's layout once — a struct of `f64` arrays plus
//! scalars, exactly the shape of MLlib's aggregators (Figure 7's
//! `Agg { sum1, sum2 }`) — and [`CompositeLayout`] derives `splitOp`,
//! `reduceOp` and `concatOp` mechanically. No per-model splitting code.
//!
//! The derivation views the aggregator as one logical `f64` vector
//! (`field₀ ‖ field₁ ‖ … ‖ scalars`), slices it with the same balanced
//! bounds as [`slice_bounds`], and reassembles on concat. All derived
//! callbacks satisfy the SAI laws the property tests pin down:
//! `concat(split(u)) == u` and split∘reduce ≡ reduce∘split.

use sparker_net::codec::{Decoder, Encoder, Payload};
use sparker_net::error::{NetError, NetResult};

use crate::segment::{slice_bounds, SumSegment};

/// A struct-of-arrays aggregator: named `f64` fields plus trailing scalars,
/// all of which merge by element-wise addition.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeAgg {
    fields: Vec<Vec<f64>>,
    scalars: Vec<f64>,
}

impl CompositeAgg {
    /// Zero-initialized aggregator with the given field lengths and scalar
    /// count.
    pub fn zeros(field_lens: &[usize], num_scalars: usize) -> Self {
        Self {
            fields: field_lens.iter().map(|&l| vec![0.0; l]).collect(),
            scalars: vec![0.0; num_scalars],
        }
    }

    /// Wraps existing arrays.
    pub fn from_parts(fields: Vec<Vec<f64>>, scalars: Vec<f64>) -> Self {
        Self { fields, scalars }
    }

    pub fn field(&self, i: usize) -> &[f64] {
        &self.fields[i]
    }

    pub fn field_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.fields[i]
    }

    pub fn scalar(&self, i: usize) -> f64 {
        self.scalars[i]
    }

    pub fn scalar_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.scalars[i]
    }

    /// The layout this aggregator conforms to.
    pub fn layout(&self) -> CompositeLayout {
        CompositeLayout {
            field_lens: self.fields.iter().map(Vec::len).collect(),
            num_scalars: self.scalars.len(),
        }
    }

    /// Element-wise merge (every field and scalar sums).
    pub fn merge(&mut self, other: CompositeAgg) {
        assert_eq!(self.fields.len(), other.fields.len(), "field count mismatch");
        for (a, b) in self.fields.iter_mut().zip(other.fields) {
            assert_eq!(a.len(), b.len(), "field length mismatch");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        assert_eq!(self.scalars.len(), other.scalars.len(), "scalar count mismatch");
        for (x, y) in self.scalars.iter_mut().zip(other.scalars) {
            *x += y;
        }
    }

    /// Reads the element at logical (flattened) index `i`.
    fn logical_get(&self, mut i: usize) -> f64 {
        for f in &self.fields {
            if i < f.len() {
                return f[i];
            }
            i -= f.len();
        }
        self.scalars[i]
    }

    /// Writes the element at logical index `i`.
    fn logical_set(&mut self, mut i: usize, v: f64) {
        for f in &mut self.fields {
            if i < f.len() {
                f[i] = v;
                return;
            }
            i -= f.len();
        }
        self.scalars[i] = v;
    }
}

impl Payload for CompositeAgg {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_usize(self.fields.len());
        for f in &self.fields {
            enc.put_f64_slice(f);
        }
        enc.put_f64_slice(&self.scalars);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        let nf = dec.get_usize()?;
        let mut fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            fields.push(dec.get_f64_vec()?);
        }
        let scalars = dec.get_f64_vec()?;
        Ok(Self { fields, scalars })
    }
    fn size_hint(&self) -> usize {
        8 + self.fields.iter().map(|f| 8 + 8 * f.len()).sum::<usize>() + 8 + 8 * self.scalars.len()
    }
}

/// The derived layout: everything needed to generate SAI callbacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeLayout {
    pub field_lens: Vec<usize>,
    pub num_scalars: usize,
}

impl CompositeLayout {
    pub fn new(field_lens: Vec<usize>, num_scalars: usize) -> Self {
        Self { field_lens, num_scalars }
    }

    /// Total logical length (all fields + scalars).
    pub fn total_len(&self) -> usize {
        self.field_lens.iter().sum::<usize>() + self.num_scalars
    }

    /// Derived `splitOp`: logical slice `i` of `n` as a [`SumSegment`].
    ///
    /// Cross-field boundaries are handled transparently; scalars ride in
    /// the final slice. O(segment length) like a hand-written slice.
    pub fn split(&self, agg: &CompositeAgg, i: usize, n: usize) -> SumSegment {
        debug_assert_eq!(agg.layout(), *self, "aggregator does not match layout");
        let (lo, hi) = slice_bounds(self.total_len(), i, n);
        SumSegment((lo..hi).map(|j| agg.logical_get(j)).collect())
    }

    /// Derived `concatOp`: segments in index order back into the composite.
    ///
    /// # Errors
    /// Fails if the segments' total length does not match the layout.
    pub fn concat(&self, segments: Vec<SumSegment>) -> NetResult<CompositeAgg> {
        let total: usize = segments.iter().map(|s| s.0.len()).sum();
        if total != self.total_len() {
            return Err(NetError::Codec(format!(
                "concat: {total} elements for layout of {}",
                self.total_len()
            )));
        }
        let mut agg = CompositeAgg::zeros(&self.field_lens, self.num_scalars);
        let mut idx = 0;
        for seg in segments {
            for v in seg.0 {
                agg.logical_set(idx, v);
                idx += 1;
            }
        }
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;

    /// Figure 7's `Agg { sum1, sum2 }` plus a loss scalar.
    fn fig7_agg(seed: f64) -> CompositeAgg {
        let sum1: Vec<f64> = (0..10).map(|i| seed + i as f64).collect();
        let sum2: Vec<f64> = (0..7).map(|i| seed * 2.0 - i as f64).collect();
        CompositeAgg::from_parts(vec![sum1, sum2], vec![seed * 10.0])
    }

    #[test]
    fn concat_inverts_split_across_field_boundaries() {
        let agg = fig7_agg(3.5);
        let layout = agg.layout();
        assert_eq!(layout.total_len(), 18);
        for n in [1usize, 2, 3, 5, 18, 25] {
            let segs: Vec<SumSegment> = (0..n).map(|i| layout.split(&agg, i, n)).collect();
            let back = layout.concat(segs).unwrap();
            assert_eq!(back, agg, "n={n}");
        }
    }

    #[test]
    fn split_then_reduce_equals_reduce_then_split() {
        let a = fig7_agg(1.0);
        let b = fig7_agg(-2.25);
        let layout = a.layout();
        let n = 5;
        let mut merged = a.clone();
        merged.merge(b.clone());
        for i in 0..n {
            let direct = layout.split(&merged, i, n);
            let mut via_segs = layout.split(&a, i, n);
            via_segs.merge_from(&layout.split(&b, i, n));
            assert_eq!(direct, via_segs, "segment {i}");
        }
    }

    #[test]
    fn scalars_survive_the_roundtrip() {
        let agg = fig7_agg(7.0);
        let layout = agg.layout();
        let segs: Vec<SumSegment> = (0..4).map(|i| layout.split(&agg, i, 4)).collect();
        let back = layout.concat(segs).unwrap();
        assert_eq!(back.scalar(0), 70.0);
    }

    #[test]
    fn merge_sums_fields_and_scalars() {
        let mut a = CompositeAgg::zeros(&[2, 3], 1);
        a.field_mut(0)[0] = 1.0;
        *a.scalar_mut(0) = 5.0;
        let mut b = CompositeAgg::zeros(&[2, 3], 1);
        b.field_mut(0)[0] = 2.0;
        b.field_mut(1)[2] = 4.0;
        *b.scalar_mut(0) = -1.0;
        a.merge(b);
        assert_eq!(a.field(0), &[3.0, 0.0]);
        assert_eq!(a.field(1), &[0.0, 0.0, 4.0]);
        assert_eq!(a.scalar(0), 4.0);
    }

    #[test]
    fn codec_roundtrip() {
        let agg = fig7_agg(-0.5);
        let back = CompositeAgg::from_frame(agg.to_frame()).unwrap();
        assert_eq!(back, agg);
    }

    #[test]
    fn concat_rejects_wrong_totals() {
        let layout = CompositeLayout::new(vec![4], 0);
        assert!(layout.concat(vec![SumSegment(vec![1.0; 3])]).is_err());
    }

    #[test]
    #[should_panic(expected = "field length mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = CompositeAgg::zeros(&[2], 0);
        a.merge(CompositeAgg::zeros(&[3], 0));
    }

    #[test]
    fn empty_fields_are_fine() {
        let agg = CompositeAgg::zeros(&[0, 5, 0], 2);
        let layout = agg.layout();
        assert_eq!(layout.total_len(), 7);
        let segs: Vec<SumSegment> = (0..3).map(|i| layout.split(&agg, i, 3)).collect();
        assert_eq!(layout.concat(segs).unwrap(), agg);
    }
}
