//! Binomial-tree reduction (the non-splitting baseline).
//!
//! This is the shape of reduction Spark's `treeAggregate` performs:
//! whole aggregators hop between executors in `⌈log₂N⌉` rounds, and every
//! round moves full-size objects. Per-rank traffic is `O(log N)` aggregators
//! versus the ring's `(N−1)/N` of one aggregator — which is exactly why
//! tree reduction stops scaling once aggregators are large (Figure 16).

use sparker_net::codec::Payload;
use sparker_net::error::NetResult;

use crate::comm::RingComm;
use crate::segment::Segment;

/// Reduces `value` across all ranks into rank `root` with a binomial tree.
///
/// Returns `Some(reduced)` at `root`, `None` elsewhere. Merge order is
/// deterministic for a given cluster size.
pub fn binomial_tree_reduce<S: Segment>(
    comm: &RingComm,
    value: S,
    root: usize,
) -> NetResult<Option<S>> {
    binomial_tree_reduce_by(comm, value, root, &|acc: &mut S, incoming: S| {
        acc.merge_from(&incoming)
    })
}

/// Closure-merge variant of [`binomial_tree_reduce`], for user `reduceOp`s.
pub fn binomial_tree_reduce_by<V, F>(
    comm: &RingComm,
    value: V,
    root: usize,
    merge: &F,
) -> NetResult<Option<V>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let n = comm.size();
    assert!(root < n, "root {root} out of {n} ranks");
    let mut acc = value;
    // Work in root-relative rank space so any root works.
    let rel = (comm.rank() + n - root) % n;
    let mut mask = 1usize;
    while mask < n {
        if rel & mask != 0 {
            // Our subtree is complete: hand it to the parent and stop.
            let parent = ((rel - mask) + root) % n;
            comm.send_to_rank(parent, 0, acc.to_frame())?;
            return Ok(None);
        }
        if rel + mask < n {
            let child = ((rel + mask) + root) % n;
            let incoming = V::from_frame(comm.recv_from_rank(child, 0)?)?;
            merge(&mut acc, incoming);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// Number of sequential rounds a binomial reduction over `n` ranks takes.
pub fn tree_rounds(n: usize) -> usize {
    assert!(n > 0);
    usize::BITS as usize - (n - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::U64SumSegment;
    use crate::testing::{run_ring_cluster, RingClusterSpec};

    fn check_tree(nodes: usize, epn: usize, root: usize) {
        let spec = RingClusterSpec::unshaped(nodes, epn, 1);
        let n = spec.total_executors();
        let results = run_ring_cluster(&spec, |comm| {
            let v = U64SumSegment(vec![comm.rank() as u64 + 1; 4]);
            binomial_tree_reduce(&comm, v, root).unwrap()
        });
        let want: u64 = (1..=n as u64).sum();
        for (rank, r) in results.iter().enumerate() {
            if rank == root {
                let seg = r.as_ref().expect("root must hold the result");
                assert!(seg.0.iter().all(|&v| v == want));
            } else {
                assert!(r.is_none(), "non-root rank {rank} returned a value");
            }
        }
    }

    #[test]
    fn tree_reduce_power_of_two() {
        check_tree(4, 2, 0);
    }

    #[test]
    fn tree_reduce_non_power_of_two() {
        check_tree(3, 2, 0);
        check_tree(7, 1, 0);
    }

    #[test]
    fn tree_reduce_nonzero_root() {
        check_tree(2, 3, 4);
        check_tree(5, 1, 2);
    }

    #[test]
    fn tree_reduce_single_rank() {
        check_tree(1, 1, 0);
    }

    #[test]
    fn rounds_formula() {
        assert_eq!(tree_rounds(1), 0);
        assert_eq!(tree_rounds(2), 1);
        assert_eq!(tree_rounds(3), 2);
        assert_eq!(tree_rounds(4), 2);
        assert_eq!(tree_rounds(5), 3);
        assert_eq!(tree_rounds(48), 6);
    }
}
