//! # sparker-collectives
//!
//! Scalable reduction algorithms over the `sparker-net` substrate.
//!
//! The Sparker paper's core argument is that Spark cannot use "scalable
//! reduction" — reduction algorithms that *split* the reduced value to gain
//! parallelism — because its aggregation interface treats aggregators as
//! opaque objects. This crate implements those algorithms, generic over a
//! [`Segment`] type (the paper's aggregator-segment type `V`):
//!
//! * [`ring::ring_reduce_scatter`] — the algorithm Sparker uses (§4.2,
//!   Figure 11): bandwidth-optimal, each of `N` executors ends up with
//!   `1/N`-th of the reduced value having moved only `(N-1)/N` of its data.
//!   Runs over the parallel directed ring with `P` channels: the value is
//!   split into `P·N` segments and `P` threads run independent rings, thread
//!   `i` on channel `i` over segment range `[i·N, (i+1)·N)`. The chunked
//!   variants ([`ring::ring_reduce_scatter_chunked`]) additionally split each
//!   logical segment into `C` chunks and software-pipeline send/merge within
//!   every ring step — depth pipelining on top of the PDR's width.
//! * [`tree::binomial_tree_reduce`] — the non-splitting baseline shaped like
//!   Spark's own `treeAggregate` reduction: `⌈log₂N⌉` rounds, whole
//!   aggregators on every hop.
//! * [`halving::recursive_halving_reduce_scatter`] — the Rabenseifner-style
//!   alternative (cited by the paper as state of the art), used for the
//!   algorithm ablation.
//! * [`allreduce::ring_allreduce`] / [`gather`] — reduce-scatter composed
//!   with allgather/gather, completing the MPI-style collective family.
//! * [`hierarchical`] — the two-level path: intra-node fold to an elected
//!   node leader, chunked ring over leaders only, optional intra-node
//!   broadcast; NIC bytes shrink by the executors-per-node factor.
//!
//! All algorithms are written against [`comm::RingComm`] — a rank-bound view
//! of a transport plus ring topology — so the same code runs unshaped in unit
//! tests, shaped in benchmarks, and inside the engine's executors.

pub mod allreduce;
pub mod comm;
pub mod composite;
pub mod gather;
pub mod halving;
pub mod hierarchical;
pub mod ring;
pub mod segment;
pub mod testing;
pub mod tree;

pub use comm::RingComm;
pub use hierarchical::{
    hierarchical_allreduce, hierarchical_allreduce_chunked_by, hierarchical_reduce_scatter,
    hierarchical_reduce_scatter_chunked_by, hierarchical_segment_count, node_topology_of,
};
pub use composite::{CompositeAgg, CompositeLayout};
pub use ring::{
    ring_reduce_scatter, ring_reduce_scatter_by, ring_reduce_scatter_chunked,
    ring_reduce_scatter_chunked_by, OwnedSegment,
};
pub use segment::{Segment, SumSegment, U64SumSegment};
