//! Recursive-halving reduce-scatter (Rabenseifner-style).
//!
//! The MPI literature the paper cites (Thakur, Rabenseifner & Gropp) uses
//! recursive halving for reduce-scatter at large message sizes:
//! `log₂N` rounds, each exchanging half of the remaining index range with a
//! partner at distance `N/2, N/4, …`. Total per-rank traffic matches the
//! ring's `(N−1)/N`, but in far fewer, larger messages — better when latency
//! dominates, worse on hierarchical topologies where distant partners cross
//! node boundaries every round. We implement it as the ablation alternative
//! to [`crate::ring::ring_reduce_scatter`].
//!
//! Non-power-of-two sizes use the standard pre-fold: the first `2r` ranks
//! (where `r = N − 2^⌊log₂N⌋`) pair up, odd ranks fold their whole vector
//! into their even partner and drop out of the scatter phase, leaving a
//! power-of-two active set.

use sparker_net::codec::{Decoder, Encoder, Payload};
use sparker_net::error::{NetError, NetResult};

use crate::comm::RingComm;
use crate::ring::OwnedSegment;
use crate::segment::Segment;

fn encode_range<V: Payload>(segs: &[V], lo: usize, hi: usize) -> sparker_net::ByteBuf {
    let mut enc = Encoder::new();
    enc.put_usize(hi - lo);
    for s in &segs[lo..hi] {
        s.encode_into(&mut enc);
    }
    enc.finish()
}

fn merge_range<V, F>(
    segs: &mut [V],
    lo: usize,
    hi: usize,
    frame: sparker_net::ByteBuf,
    merge: &F,
) -> NetResult<()>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let mut dec = Decoder::new(frame);
    let count = dec.get_usize()?;
    if count != hi - lo {
        return Err(NetError::Codec(format!(
            "halving exchange expected {} segments, got {count}",
            hi - lo
        )));
    }
    for seg in &mut segs[lo..hi] {
        let incoming = V::decode_from(&mut dec)?;
        merge(seg, incoming);
    }
    Ok(())
}

/// Runs recursive-halving reduce-scatter on channel 0.
///
/// `segments.len()` must be a multiple of the largest power of two ≤ N so
/// every halving round splits evenly. Active ranks return their contiguous
/// block of fully-reduced segments; folded-out ranks return an empty vec.
pub fn recursive_halving_reduce_scatter<S: Segment>(
    comm: &RingComm,
    segments: Vec<S>,
) -> NetResult<Vec<OwnedSegment<S>>> {
    recursive_halving_reduce_scatter_by(comm, segments, &|acc: &mut S, incoming: S| {
        acc.merge_from(&incoming)
    })
}

/// Closure-merge variant of [`recursive_halving_reduce_scatter`].
pub fn recursive_halving_reduce_scatter_by<V, F>(
    comm: &RingComm,
    segments: Vec<V>,
    merge: &F,
) -> NetResult<Vec<OwnedSegment<V>>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let n = comm.size();
    let m = segments.len();
    if n == 1 {
        return Ok(segments
            .into_iter()
            .enumerate()
            .map(|(index, segment)| OwnedSegment { index, segment })
            .collect());
    }
    // Largest power of two <= n.
    let mut p2 = 1usize;
    while p2 * 2 <= n {
        p2 *= 2;
    }
    if m == 0 || !m.is_multiple_of(p2) {
        return Err(NetError::InvalidAddress(format!(
            "segment count {m} must be a positive multiple of {p2} for {n} ranks"
        )));
    }
    let r = n - p2;
    let rank = comm.rank();
    let mut segments = segments;

    let (ep_op, ep_attempt) = comm.epoch();
    let step_event = |name: &str, t0: Option<std::time::Instant>, round: usize, peer: usize, bytes: u64| {
        if let Some(t0) = t0 {
            sparker_obs::trace::event_dur(
                sparker_obs::Layer::Step,
                name,
                t0,
                &[
                    ("round", round as u64),
                    ("rank", rank as u64),
                    ("peer", peer as u64),
                    ("bytes", bytes),
                    ("op", ep_op),
                    ("epoch", ep_attempt as u64),
                ],
            );
        }
    };

    // Pre-fold: ranks 0..2r pair up (even, odd). Odd ranks fold everything
    // into the even partner and drop out.
    let active_rank: Option<usize> = if rank < 2 * r {
        let t0 = sparker_obs::enabled().then(std::time::Instant::now);
        if rank % 2 == 1 {
            let frame = encode_range(&segments, 0, m);
            let bytes = frame.len() as u64;
            comm.send_to_rank(rank - 1, 0, frame)?;
            step_event("halving.fold", t0, 0, rank - 1, bytes);
            None
        } else {
            let frame = comm.recv_from_rank(rank + 1, 0)?;
            let bytes = frame.len() as u64;
            merge_range(&mut segments, 0, m, frame, merge)?;
            step_event("halving.fold", t0, 0, rank + 1, bytes);
            Some(rank / 2)
        }
    } else {
        Some(rank - r)
    };

    let Some(arank) = active_rank else {
        return Ok(Vec::new());
    };

    // Maps an active rank back to its ring rank for addressing.
    let ring_rank_of = |a: usize| -> usize {
        if a < r {
            2 * a
        } else {
            a + r
        }
    };

    // Recursive halving among the p2 active ranks.
    let (mut lo, mut hi) = (0usize, m);
    let mut dist = p2 / 2;
    let mut round = 0usize;
    while dist >= 1 {
        let partner = arank ^ dist;
        let mid = lo + (hi - lo) / 2;
        let keep_low = arank & dist == 0;
        let (keep, give) = if keep_low {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let t0 = sparker_obs::enabled().then(std::time::Instant::now);
        let out_frame = encode_range(&segments, give.0, give.1);
        let out_bytes = out_frame.len() as u64;
        comm.send_to_rank(ring_rank_of(partner), 0, out_frame)?;
        let frame = comm.recv_from_rank(ring_rank_of(partner), 0)?;
        merge_range(&mut segments, keep.0, keep.1, frame, merge)?;
        step_event("halving.step", t0, round + 1, ring_rank_of(partner), out_bytes);
        lo = keep.0;
        hi = keep.1;
        dist /= 2;
        round += 1;
    }

    Ok(segments
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i >= lo && *i < hi)
        .map(|(index, segment)| OwnedSegment { index, segment })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::U64SumSegment;
    use crate::testing::{run_ring_cluster, RingClusterSpec};

    fn check_halving(nodes: usize, epn: usize, m: usize) {
        let spec = RingClusterSpec::unshaped(nodes, epn, 1);
        let n = spec.total_executors();
        let per_rank = run_ring_cluster(&spec, |comm| {
            let segs: Vec<U64SumSegment> = (0..m)
                .map(|g| U64SumSegment(vec![(comm.rank() as u64 + 1) * 100 + g as u64; 3]))
                .collect();
            recursive_halving_reduce_scatter(&comm, segs).unwrap()
        });
        let mut seen = vec![false; m];
        for owned in &per_rank {
            // Each active rank owns a contiguous block.
            for w in owned.windows(2) {
                assert_eq!(w[1].index, w[0].index + 1, "non-contiguous block");
            }
            for o in owned {
                assert!(!seen[o.index], "segment {} owned twice", o.index);
                seen[o.index] = true;
                let want: u64 = (0..n).map(|r| (r as u64 + 1) * 100 + o.index as u64).sum();
                assert!(o.segment.0.iter().all(|&v| v == want), "segment {}", o.index);
            }
        }
        assert!(seen.iter().all(|&s| s), "all segments covered");
    }

    #[test]
    fn halving_power_of_two() {
        check_halving(4, 1, 8);
        check_halving(2, 4, 16);
    }

    #[test]
    fn halving_non_power_of_two_prefolds() {
        check_halving(3, 1, 4); // p2 = 2
        check_halving(6, 1, 8); // p2 = 4
        check_halving(5, 1, 12); // p2 = 4
    }

    #[test]
    fn halving_single_rank() {
        check_halving(1, 1, 4);
    }

    #[test]
    fn halving_rejects_indivisible_segment_count() {
        let spec = RingClusterSpec::unshaped(4, 1, 1);
        let errs = run_ring_cluster(&spec, |comm| {
            let segs: Vec<U64SumSegment> =
                (0..3).map(|g| U64SumSegment(vec![g as u64; 2])).collect();
            recursive_halving_reduce_scatter(&comm, segs).is_err()
        });
        assert!(errs.iter().all(|&e| e));
    }
}
