//! Rank-bound communicator: one executor's view of the ring.
//!
//! Collective algorithms address peers by *ring rank*, not executor id; the
//! mapping between the two is the topology-awareness policy (see
//! [`sparker_net::topology`]). A [`RingComm`] owns that translation plus the
//! per-channel send/recv primitives, so algorithm code reads like its MPI
//! counterpart.
//!
//! # Epoch fencing and gang cancellation
//!
//! Every frame a `RingComm` sends is wrapped in an `(op, attempt)` epoch
//! header (see [`sparker_net::epoch`]); `recv` silently discards frames whose
//! epoch does not match its own, so a frame left over from a failed stage
//! attempt can never be consumed by the retry. A comm may also carry a shared
//! cancel token ([`with_cancel`](RingComm::with_cancel)) and a receive
//! deadline ([`with_recv_deadline`](RingComm::with_recv_deadline)): receives
//! then poll in bounded quanta, aborting with [`NetError::Cancelled`] the
//! moment a gang peer fails, or [`NetError::Timeout`] when the deadline
//! passes — a dead ring neighbour stalls a task for the deadline, never
//! forever.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparker_net::ByteBuf;

use sparker_net::epoch;
use sparker_net::error::{NetError, NetResult};
use sparker_net::topology::RingTopology;
use sparker_net::transport::Transport;

/// How often a receive wakes up to check the cancel token / deadline.
const POLL_QUANTUM: Duration = Duration::from_millis(10);

/// A transport bound to one ring rank.
#[derive(Clone)]
pub struct RingComm {
    net: Arc<dyn Transport>,
    ring: Arc<RingTopology>,
    rank: usize,
    /// `(op, attempt)` stamped on every outgoing frame and required of every
    /// incoming one.
    epoch: (u64, u32),
    /// Gang cancel token; set means "abandon the collective now".
    cancel: Option<Arc<AtomicBool>>,
    /// Upper bound on any single receive; `None` blocks indefinitely.
    recv_deadline: Option<Duration>,
}

impl RingComm {
    /// Binds `net` to the executor occupying `rank` in `ring`, at epoch
    /// `(0, 0)` with no cancel token and no receive deadline.
    pub fn new(net: Arc<dyn Transport>, ring: Arc<RingTopology>, rank: usize) -> Self {
        assert!(rank < ring.size(), "rank {rank} out of ring of {}", ring.size());
        assert!(
            ring.parallelism() <= net.channels(),
            "ring parallelism {} exceeds transport channels {}",
            ring.parallelism(),
            net.channels()
        );
        Self { net, ring, rank, epoch: (0, 0), cancel: None, recv_deadline: None }
    }

    /// Stamps this comm with a collective epoch. Both ends of every link must
    /// agree (the driver hands all gang tasks the same `(op, attempt)`).
    pub fn with_epoch(mut self, op: u64, attempt: u32) -> Self {
        self.epoch = (op, attempt);
        self
    }

    /// Attaches the gang's shared cancel token.
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Bounds every receive: a silent peer fails the call with
    /// [`NetError::Timeout`] after `deadline` instead of blocking forever.
    pub fn with_recv_deadline(mut self, deadline: Duration) -> Self {
        self.recv_deadline = Some(deadline);
        self
    }

    /// Derives a communicator bound to `rank` in `sub` — a different ring
    /// over the *same* transport (e.g. the node-leader ring of a
    /// hierarchical collective). Epoch, cancel token, and receive deadline
    /// carry over, so sub-ring traffic stays fenced to the same collective
    /// attempt and aborts with the same gang.
    pub fn subring(&self, sub: Arc<RingTopology>, rank: usize) -> RingComm {
        assert!(rank < sub.size(), "rank {rank} out of ring of {}", sub.size());
        assert!(
            sub.parallelism() <= self.net.channels(),
            "ring parallelism {} exceeds transport channels {}",
            sub.parallelism(),
            self.net.channels()
        );
        Self {
            net: self.net.clone(),
            ring: sub,
            rank,
            epoch: self.epoch,
            cancel: self.cancel.clone(),
            recv_deadline: self.recv_deadline,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.ring.size()
    }

    /// Channel parallelism of the PDR (the paper's `P`).
    pub fn parallelism(&self) -> usize {
        self.ring.parallelism()
    }

    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// The `(op, attempt)` epoch this comm stamps on its frames.
    pub fn epoch(&self) -> (u64, u32) {
        self.epoch
    }

    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.load(Ordering::Relaxed))
    }

    /// Sends to the next rank around the ring on `channel`.
    pub fn send_next(&self, channel: usize, msg: ByteBuf) -> NetResult<()> {
        self.send_to_rank(self.ring.next(self.rank), channel, msg)
    }

    /// Receives from the previous rank around the ring on `channel`.
    pub fn recv_prev(&self, channel: usize) -> NetResult<ByteBuf> {
        self.recv_from_rank(self.ring.prev(self.rank), channel)
    }

    /// Sends to an arbitrary rank (tree/halving algorithms).
    pub fn send_to_rank(&self, rank: usize, channel: usize, msg: ByteBuf) -> NetResult<()> {
        if self.cancelled() {
            return Err(NetError::Cancelled);
        }
        let me = self.ring.executor_at(self.rank).id;
        let to = self.ring.executor_at(rank).id;
        let wrapped = epoch::wrap(self.epoch.0, self.epoch.1, &msg);
        // Wrapping copied the payload into the outgoing frame; if the caller
        // encoded it from the pool (and holds no other reference) the
        // allocation is reusable right now.
        sparker_net::pool::global().recycle_frame(msg);
        self.net.send(me, to, channel, wrapped)
    }

    /// Receives from an arbitrary rank, honouring this comm's deadline.
    pub fn recv_from_rank(&self, rank: usize, channel: usize) -> NetResult<ByteBuf> {
        self.recv_fenced(rank, channel, self.recv_deadline)
    }

    /// Receives from an arbitrary rank with an explicit deadline (overrides
    /// the comm-level one; used by tests to turn deadlocks into failures).
    pub fn recv_from_rank_timeout(
        &self,
        rank: usize,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        self.recv_fenced(rank, channel, Some(timeout))
    }

    /// The fenced receive loop: polls in bounded quanta so cancellation and
    /// the deadline are observed even while the link is silent, and discards
    /// frames from other epochs.
    fn recv_fenced(
        &self,
        rank: usize,
        channel: usize,
        deadline: Option<Duration>,
    ) -> NetResult<ByteBuf> {
        let me = self.ring.executor_at(self.rank).id;
        let from = self.ring.executor_at(rank).id;
        let expire = deadline.map(|d| Instant::now() + d);
        loop {
            if self.cancelled() {
                return Err(NetError::Cancelled);
            }
            // Wait one quantum, or less if the deadline is nearer; an elapsed
            // deadline still grants a zero-length poll so an already-queued
            // frame beats a timeout.
            let mut quantum = POLL_QUANTUM;
            if let Some(expire) = expire {
                quantum = quantum.min(expire.saturating_duration_since(Instant::now()));
            }
            match self.net.recv_timeout(me, from, channel, quantum) {
                Ok(frame) => {
                    let (op, attempt, payload) = epoch::unwrap(frame)?;
                    if (op, attempt) == self.epoch {
                        return Ok(payload);
                    }
                    // Stale epoch: a leftover from a failed attempt (or an
                    // op that already tore down). Discard and keep waiting;
                    // the dead frame's allocation goes back to the pool.
                    sparker_net::pool::global().recycle_frame(payload);
                }
                Err(NetError::Timeout) => {
                    if let Some(expire) = expire {
                        if Instant::now() >= expire {
                            return Err(NetError::Timeout);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_net::topology::{round_robin_layout, RingOrder};
    use sparker_net::transport::MeshTransport;

    fn comm_pair() -> (RingComm, RingComm) {
        let execs = round_robin_layout(2, 1, 1);
        let net = MeshTransport::unshaped(&execs, 2);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::ById, 2));
        (
            RingComm::new(net.clone(), ring.clone(), 0),
            RingComm::new(net, ring, 1),
        )
    }

    #[test]
    fn ring_send_recv_by_rank() {
        let (a, b) = comm_pair();
        a.send_next(0, ByteBuf::from_static(b"fwd")).unwrap();
        assert_eq!(&b.recv_prev(0).unwrap()[..], b"fwd");
        b.send_next(1, ByteBuf::from_static(b"wrap")).unwrap();
        assert_eq!(&a.recv_prev(1).unwrap()[..], b"wrap");
    }

    #[test]
    fn topology_aware_rank_differs_from_executor_id() {
        // Round-robin over 2 nodes: executors 0,2 on node-000; 1,3 on node-001.
        // Topology-aware order: [0, 2, 1, 3] => executor 2 has rank 1.
        let execs = round_robin_layout(2, 2, 1);
        let net = MeshTransport::unshaped(&execs, 1);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::TopologyAware, 1));
        assert_eq!(ring.executor_at(1).id.0, 2);
        let c = RingComm::new(net, ring, 1);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 4);
    }

    #[test]
    #[should_panic(expected = "out of ring")]
    fn rank_out_of_range_panics() {
        let execs = round_robin_layout(2, 1, 1);
        let net = MeshTransport::unshaped(&execs, 1);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::ById, 1));
        RingComm::new(net, ring, 5);
    }

    #[test]
    #[should_panic(expected = "exceeds transport channels")]
    fn parallelism_beyond_channels_panics() {
        let execs = round_robin_layout(2, 1, 1);
        let net = MeshTransport::unshaped(&execs, 1);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::ById, 4));
        RingComm::new(net, ring, 0);
    }

    #[test]
    fn stale_epoch_frames_are_discarded() {
        let (a, b) = comm_pair();
        let a_old = a.clone().with_epoch(7, 0);
        let a_new = a.with_epoch(7, 1);
        let b_new = b.with_epoch(7, 1);
        // A stale attempt-0 frame arrives first; the attempt-1 receiver must
        // skip it and deliver the attempt-1 frame.
        a_old.send_next(0, ByteBuf::from_static(b"stale")).unwrap();
        a_new.send_next(0, ByteBuf::from_static(b"fresh")).unwrap();
        assert_eq!(&b_new.recv_prev(0).unwrap()[..], b"fresh");
    }

    #[test]
    fn mismatched_epoch_times_out_rather_than_misdelivers() {
        let (a, b) = comm_pair();
        let b = b.with_epoch(1, 1);
        a.send_next(0, ByteBuf::from_static(b"old-epoch")).unwrap();
        assert_eq!(
            b.recv_from_rank_timeout(0, 0, Duration::from_millis(30)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn cancel_token_aborts_a_blocked_recv() {
        let (_a, b) = comm_pair();
        let token = Arc::new(AtomicBool::new(false));
        let b = b.with_cancel(token.clone());
        let t = std::thread::spawn(move || b.recv_prev(0));
        std::thread::sleep(Duration::from_millis(30));
        token.store(true, Ordering::Relaxed);
        assert_eq!(t.join().unwrap(), Err(NetError::Cancelled));
    }

    #[test]
    fn cancel_token_fails_sends_immediately() {
        let (a, _b) = comm_pair();
        let token = Arc::new(AtomicBool::new(true));
        let a = a.with_cancel(token);
        assert_eq!(a.send_next(0, ByteBuf::new()), Err(NetError::Cancelled));
    }

    #[test]
    fn recv_deadline_bounds_a_silent_link() {
        let (_a, b) = comm_pair();
        let b = b.with_recv_deadline(Duration::from_millis(25));
        let start = Instant::now();
        assert_eq!(b.recv_prev(0), Err(NetError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn corrupt_frame_is_a_codec_error() {
        let execs = round_robin_layout(2, 1, 1);
        let net = MeshTransport::unshaped(&execs, 1);
        let ring = Arc::new(RingTopology::new(execs.clone(), RingOrder::ById, 1));
        let b = RingComm::new(net.clone(), ring, 1);
        // Raw (unwrapped) bytes on the wire: the fence must reject them.
        use sparker_net::transport::Transport as _;
        net.send(
            execs[0].id,
            execs[1].id,
            0,
            ByteBuf::from_static(b"not an epoch frame"),
        )
        .unwrap();
        assert!(matches!(b.recv_prev(0), Err(NetError::Codec(_))));
    }
}
