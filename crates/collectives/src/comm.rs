//! Rank-bound communicator: one executor's view of the ring.
//!
//! Collective algorithms address peers by *ring rank*, not executor id; the
//! mapping between the two is the topology-awareness policy (see
//! [`sparker_net::topology`]). A [`RingComm`] owns that translation plus the
//! per-channel send/recv primitives, so algorithm code reads like its MPI
//! counterpart.

use std::sync::Arc;
use std::time::Duration;

use sparker_net::ByteBuf;

use sparker_net::error::NetResult;
use sparker_net::topology::RingTopology;
use sparker_net::transport::Transport;

/// A transport bound to one ring rank.
#[derive(Clone)]
pub struct RingComm {
    net: Arc<dyn Transport>,
    ring: Arc<RingTopology>,
    rank: usize,
}

impl RingComm {
    /// Binds `net` to the executor occupying `rank` in `ring`.
    pub fn new(net: Arc<dyn Transport>, ring: Arc<RingTopology>, rank: usize) -> Self {
        assert!(rank < ring.size(), "rank {rank} out of ring of {}", ring.size());
        assert!(
            ring.parallelism() <= net.channels(),
            "ring parallelism {} exceeds transport channels {}",
            ring.parallelism(),
            net.channels()
        );
        Self { net, ring, rank }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.ring.size()
    }

    /// Channel parallelism of the PDR (the paper's `P`).
    pub fn parallelism(&self) -> usize {
        self.ring.parallelism()
    }

    pub fn ring(&self) -> &RingTopology {
        &self.ring
    }

    /// Sends to the next rank around the ring on `channel`.
    pub fn send_next(&self, channel: usize, msg: ByteBuf) -> NetResult<()> {
        self.send_to_rank(self.ring.next(self.rank), channel, msg)
    }

    /// Receives from the previous rank around the ring on `channel`.
    pub fn recv_prev(&self, channel: usize) -> NetResult<ByteBuf> {
        self.recv_from_rank(self.ring.prev(self.rank), channel)
    }

    /// Sends to an arbitrary rank (tree/halving algorithms).
    pub fn send_to_rank(&self, rank: usize, channel: usize, msg: ByteBuf) -> NetResult<()> {
        let me = self.ring.executor_at(self.rank).id;
        let to = self.ring.executor_at(rank).id;
        self.net.send(me, to, channel, msg)
    }

    /// Receives from an arbitrary rank.
    pub fn recv_from_rank(&self, rank: usize, channel: usize) -> NetResult<ByteBuf> {
        let me = self.ring.executor_at(self.rank).id;
        let from = self.ring.executor_at(rank).id;
        self.net.recv(me, from, channel)
    }

    /// Receives from an arbitrary rank with a deadline (used by tests to
    /// turn deadlocks into failures).
    pub fn recv_from_rank_timeout(
        &self,
        rank: usize,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        let me = self.ring.executor_at(self.rank).id;
        let from = self.ring.executor_at(rank).id;
        self.net.recv_timeout(me, from, channel, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_net::topology::{round_robin_layout, RingOrder};
    use sparker_net::transport::MeshTransport;

    fn comm_pair() -> (RingComm, RingComm) {
        let execs = round_robin_layout(2, 1, 1);
        let net = MeshTransport::unshaped(&execs, 2);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::ById, 2));
        (
            RingComm::new(net.clone(), ring.clone(), 0),
            RingComm::new(net, ring, 1),
        )
    }

    #[test]
    fn ring_send_recv_by_rank() {
        let (a, b) = comm_pair();
        a.send_next(0, ByteBuf::from_static(b"fwd")).unwrap();
        assert_eq!(&b.recv_prev(0).unwrap()[..], b"fwd");
        b.send_next(1, ByteBuf::from_static(b"wrap")).unwrap();
        assert_eq!(&a.recv_prev(1).unwrap()[..], b"wrap");
    }

    #[test]
    fn topology_aware_rank_differs_from_executor_id() {
        // Round-robin over 2 nodes: executors 0,2 on node-000; 1,3 on node-001.
        // Topology-aware order: [0, 2, 1, 3] => executor 2 has rank 1.
        let execs = round_robin_layout(2, 2, 1);
        let net = MeshTransport::unshaped(&execs, 1);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::TopologyAware, 1));
        assert_eq!(ring.executor_at(1).id.0, 2);
        let c = RingComm::new(net, ring, 1);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 4);
    }

    #[test]
    #[should_panic(expected = "out of ring")]
    fn rank_out_of_range_panics() {
        let execs = round_robin_layout(2, 1, 1);
        let net = MeshTransport::unshaped(&execs, 1);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::ById, 1));
        RingComm::new(net, ring, 5);
    }

    #[test]
    #[should_panic(expected = "exceeds transport channels")]
    fn parallelism_beyond_channels_panics() {
        let execs = round_robin_layout(2, 1, 1);
        let net = MeshTransport::unshaped(&execs, 1);
        let ring = Arc::new(RingTopology::new(execs, RingOrder::ById, 4));
        RingComm::new(net, ring, 0);
    }
}
