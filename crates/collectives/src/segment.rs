//! The aggregator-segment abstraction (the paper's type `V`).
//!
//! A [`Segment`] is a value that can be (a) moved across executors through
//! the codec and (b) merged element-wise with another segment of the same
//! shape. Collective algorithms only ever merge segments with equal index
//! ranges, so implementations may assume `self` and `other` describe the
//! same slice of the underlying aggregator.

use sparker_net::codec::{Decoder, Encoder, Payload};
use sparker_net::error::NetResult;

/// A mergeable, wire-encodable segment of an aggregator.
pub trait Segment: Payload + Send + 'static {
    /// Merges `other` into `self` (the paper's `reduceOp` on segments).
    ///
    /// Must be associative and commutative up to the tolerance the
    /// application accepts (floating-point sums reorder across topologies).
    fn merge_from(&mut self, other: &Self);

    /// Wire size of this segment, used by benches for accounting.
    ///
    /// Defaults to [`Payload::size_hint`], which every impl in this
    /// workspace keeps exact (asserted by the `prop_payload` suite), so
    /// there is a single wire-bytes number across benches and metrics.
    fn payload_bytes(&self) -> usize {
        self.size_hint()
    }
}

/// Element-wise summing segment of `f64`s — the shape of every MLlib
/// gradient/statistics aggregator in the paper.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SumSegment(pub Vec<f64>);

impl SumSegment {
    pub fn zeros(n: usize) -> Self {
        Self(vec![0.0; n])
    }
}

impl Payload for SumSegment {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_f64_slice(&self.0);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        Ok(Self(dec.get_f64_vec()?))
    }
    fn size_hint(&self) -> usize {
        8 + 8 * self.0.len()
    }
}

impl Segment for SumSegment {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.0.len(), other.0.len(), "segment shape mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += *b;
        }
    }
}

/// Element-wise wrapping-sum segment of `u64`s — used by the aggregation
/// micro-benchmarks (the paper sums arrays of 8-byte integers).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct U64SumSegment(pub Vec<u64>);

impl U64SumSegment {
    pub fn zeros(n: usize) -> Self {
        Self(vec![0; n])
    }
}

impl Payload for U64SumSegment {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64_slice(&self.0);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        Ok(Self(dec.get_u64_vec()?))
    }
    fn size_hint(&self) -> usize {
        8 + 8 * self.0.len()
    }
}

impl Segment for U64SumSegment {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.0.len(), other.0.len(), "segment shape mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = a.wrapping_add(*b);
        }
    }
}

/// Splits a flat slice into `n` near-equal contiguous pieces; piece `i` gets
/// the remainder spread over the first `len % n` pieces. This is the
/// `splitOp` every array-backed aggregator uses.
pub fn slice_bounds(len: usize, i: usize, n: usize) -> (usize, usize) {
    assert!(n > 0 && i < n, "invalid split index {i} of {n}");
    let base = len / n;
    let rem = len % n;
    let start = i * base + i.min(rem);
    let end = start + base + usize::from(i < rem);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_segment_merges_elementwise() {
        let mut a = SumSegment(vec![1.0, 2.0, 3.0]);
        a.merge_from(&SumSegment(vec![0.5, -2.0, 10.0]));
        assert_eq!(a.0, vec![1.5, 0.0, 13.0]);
    }

    #[test]
    #[should_panic(expected = "segment shape mismatch")]
    fn mismatched_shapes_panic() {
        let mut a = SumSegment(vec![1.0]);
        a.merge_from(&SumSegment(vec![1.0, 2.0]));
    }

    #[test]
    fn u64_segment_wraps() {
        let mut a = U64SumSegment(vec![u64::MAX]);
        a.merge_from(&U64SumSegment(vec![2]));
        assert_eq!(a.0, vec![1]);
    }

    #[test]
    fn segments_roundtrip_codec() {
        let s = SumSegment(vec![1.5, -2.0]);
        let back = SumSegment::from_frame(s.to_frame()).unwrap();
        assert_eq!(back, s);
        let u = U64SumSegment(vec![7, 8]);
        let back = U64SumSegment::from_frame(u.to_frame()).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn slice_bounds_cover_exactly() {
        for len in [0usize, 1, 7, 12, 100] {
            for n in [1usize, 2, 3, 5, 12] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..n {
                    let (s, e) = slice_bounds(len, i, n);
                    assert_eq!(s, prev_end, "pieces must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len);
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn slice_bounds_are_balanced() {
        // No piece differs from another by more than one element.
        let n = 7;
        let sizes: Vec<usize> = (0..n)
            .map(|i| {
                let (s, e) = slice_bounds(100, i, n);
                e - s
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "invalid split index")]
    fn slice_bounds_rejects_bad_index() {
        slice_bounds(10, 3, 3);
    }
}
