//! Ring-based reduce-scatter over the parallel directed ring.
//!
//! This is the algorithm Sparker builds split aggregation on (§4.2,
//! Figure 11). For `N` ranks the aggregator is split into `P·N` segments
//! (`P` = PDR channel parallelism). `P` worker threads run independent
//! N-segment rings: thread `t` communicates exclusively on channel `t` and
//! reduces the segment range `[t·N, (t+1)·N)` — exactly the paper's mapping.
//!
//! Per ring, each of the `N-1` iterations sends segment `(rank − step) mod N`
//! to the next rank while merging the segment received from the previous
//! rank into `(rank − step − 1) mod N`. After the last iteration the rank
//! holds the fully-reduced segment `(rank + 1) mod N`: every segment has
//! visited every rank exactly once, so each rank moved only `(N−1)/N` of one
//! aggregator regardless of `N` — that is the bandwidth-optimality that
//! makes split aggregation scale nearly flat in Figure 16.

//! # Chunk pipelining (depth on top of the PDR's width)
//!
//! On top of the `P`-wide channel parallelism, each logical segment can be
//! split into `C` pipeline chunks (SparCML-style depth pipelining): within a
//! ring step the send of chunk `k` is issued *before* the receive+merge of
//! chunk `k−1`, so chunk `k`'s wire time overlaps chunk `k−1`'s decode and
//! merge instead of serializing behind it. The chunked path performs exactly
//! the same merge calls in exactly the same order as the unpipelined
//! schedule over the same segments — only send timing changes — so results
//! are bit-exact (see DESIGN.md §5f). Chunks ride the same epoch-fenced,
//! FIFO-per-link frames as whole segments, so fault handling (retry, gang
//! cancel, tree fallback) composes unchanged.

use sparker_net::codec::Payload;
use sparker_net::error::{NetError, NetResult};
use sparker_net::pool;

use crate::comm::RingComm;
use crate::segment::Segment;

/// A fully-reduced segment owned by this rank after reduce-scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedSegment<S> {
    /// Global segment index in `0..P·N·C`.
    pub index: usize,
    pub segment: S,
}

/// Runs reduce-scatter over the PDR using [`Segment::merge_from`].
///
/// `segments` must contain exactly `P·N` segments: the caller (the engine's
/// split-aggregation path) produces them by calling the user's `splitOp`
/// with indices `0..P·N`. Returns the `P` segments this rank owns, with
/// their global indices, sorted by index.
///
/// # Errors
/// Propagates transport errors; all worker threads are joined first.
pub fn ring_reduce_scatter<S: Segment>(
    comm: &RingComm,
    segments: Vec<S>,
) -> NetResult<Vec<OwnedSegment<S>>> {
    ring_reduce_scatter_chunked(comm, segments, 1)
}

/// Chunk-pipelined variant of [`ring_reduce_scatter`]: `segments` holds
/// `P·N·C` entries (`C` = `chunks`), each logical ring position owning `C`
/// consecutive physical chunks. See the module docs for the pipelining rule.
pub fn ring_reduce_scatter_chunked<S: Segment>(
    comm: &RingComm,
    segments: Vec<S>,
    chunks: usize,
) -> NetResult<Vec<OwnedSegment<S>>> {
    ring_reduce_scatter_chunked_by(
        comm,
        segments,
        &|acc: &mut S, incoming: S| acc.merge_from(&incoming),
        chunks,
    )
}

/// Closure-merge variant of [`ring_reduce_scatter`]: the paper's SAI passes
/// `reduceOp` as a user callback, so the engine cannot rely on a trait impl.
/// `merge` must be associative/commutative like [`Segment::merge_from`].
pub fn ring_reduce_scatter_by<V, F>(
    comm: &RingComm,
    segments: Vec<V>,
    merge: &F,
) -> NetResult<Vec<OwnedSegment<V>>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    ring_reduce_scatter_chunked_by(comm, segments, merge, 1)
}

/// Chunk-pipelined, closure-merge reduce-scatter — the most general form.
///
/// `segments` must contain exactly `P·N·chunks` entries, laid out so that
/// channel `t` covers global indices `[t·N·C, (t+1)·N·C)` and logical ring
/// position `j` within a channel covers `C` consecutive physical chunks.
/// With `chunks == 1` this is exactly the classic unpipelined ring. Returns
/// the `P·C` physical segments this rank owns, sorted by global index.
pub fn ring_reduce_scatter_chunked_by<V, F>(
    comm: &RingComm,
    segments: Vec<V>,
    merge: &F,
    chunks: usize,
) -> NetResult<Vec<OwnedSegment<V>>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let n = comm.size();
    let p = comm.parallelism();
    if chunks == 0 {
        return Err(NetError::InvalidAddress(
            "ring_reduce_scatter needs chunks >= 1".into(),
        ));
    }
    if segments.len() != p * n * chunks {
        return Err(NetError::InvalidAddress(format!(
            "ring_reduce_scatter needs P*N*C = {} segments, got {}",
            p * n * chunks,
            segments.len()
        )));
    }
    // Single rank: nothing to exchange; it owns every segment.
    if n == 1 {
        return Ok(segments
            .into_iter()
            .enumerate()
            .map(|(index, segment)| OwnedSegment { index, segment })
            .collect());
    }

    let mut segments = segments;
    let rank = comm.rank();
    let owned_local = (rank + 1) % n;

    let mut results: Vec<NetResult<()>> = Vec::with_capacity(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (t, slots) in segments.chunks_mut(n * chunks).enumerate() {
            let comm = comm.clone();
            handles.push(scope.spawn(move || ring_pass(&comm, t, slots, merge, chunks)));
        }
        for h in handles {
            results.push(h.join().expect("ring worker panicked"));
        }
    });
    results.into_iter().collect::<NetResult<Vec<_>>>()?;

    // After the passes, channel t's fully-reduced logical segment sits at
    // local position (rank + 1) % N — i.e. the C physical chunks under it;
    // move those out without cloning.
    let owned = segments
        .into_iter()
        .enumerate()
        .filter(|(index, _)| (index / chunks) % n == owned_local)
        .map(|(index, segment)| OwnedSegment { index, segment })
        .collect();
    Ok(owned)
}

/// One channel's reduce-scatter pass over its `N·C` physical chunks, in
/// place. After return, the `C` chunks at logical position `(rank + 1) % N`
/// hold the fully-reduced segment.
///
/// Per step the chunk schedule is software-pipelined: the send of chunk `k`
/// is issued before the receive+merge of chunk `k−1`, so while chunk `k`
/// crosses the wire the previous chunk is decoded and merged. The merges
/// themselves run in chunk order `0..C`, identical to the sequential
/// schedule — pipelining reorders only communication, which is what keeps
/// the result bit-exact.
fn ring_pass<V, F>(
    comm: &RingComm,
    channel: usize,
    slots: &mut [V],
    merge: &F,
    chunks: usize,
) -> NetResult<()>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let n = comm.size();
    let rank = comm.rank();
    let (op, attempt) = comm.epoch();
    let pool = pool::global();
    for step in 0..n - 1 {
        let send_j = (rank + n - step) % n;
        let recv_j = (rank + 2 * n - step - 1) % n;
        let started = sparker_obs::enabled().then(std::time::Instant::now);
        let mut sent_bytes = 0u64;
        let mut recv_bytes = 0u64;
        // Pipeline prologue: chunk 0 goes out before any merge of this step.
        {
            let frame = slots[send_j * chunks].to_frame_pooled(pool);
            sent_bytes += frame.len() as u64;
            comm.send_next(channel, frame)?;
        }
        for c in 1..=chunks {
            // Send chunk c (if any) ahead of merging chunk c-1.
            if c < chunks {
                let frame = slots[send_j * chunks + c].to_frame_pooled(pool);
                sent_bytes += frame.len() as u64;
                comm.send_next(channel, frame)?;
            }
            let incoming_frame = comm.recv_prev(channel)?;
            recv_bytes += incoming_frame.len() as u64;
            let incoming = V::from_frame_pooled(incoming_frame, pool)?;
            merge(&mut slots[recv_j * chunks + (c - 1)], incoming);
        }
        if let Some(t0) = started {
            sparker_obs::trace::event_dur(
                sparker_obs::Layer::Step,
                "ring.step",
                t0,
                &[
                    ("step", step as u64),
                    ("channel", channel as u64),
                    ("rank", rank as u64),
                    ("peer", ((rank + 1) % n) as u64),
                    ("send_bytes", sent_bytes),
                    ("recv_bytes", recv_bytes),
                    ("chunks", chunks as u64),
                    ("op", op),
                    ("epoch", attempt as u64),
                ],
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{SumSegment, U64SumSegment};
    use crate::testing::{run_ring_cluster, RingClusterSpec};

    /// Builds rank-specific segments: rank r, global segment g holds value
    /// base(r, g) in every element, so the reduced segment g must hold
    /// sum over ranks of base(r, g).
    fn seed_segments(rank: usize, total: usize, elems: usize) -> Vec<U64SumSegment> {
        (0..total)
            .map(|g| U64SumSegment(vec![(rank as u64 + 1) * 1000 + g as u64; elems]))
            .collect()
    }

    fn expected_reduced(g: usize, n: usize) -> u64 {
        (0..n).map(|r| (r as u64 + 1) * 1000 + g as u64).sum()
    }

    fn check_reduce_scatter(nodes: usize, epn: usize, parallelism: usize, elems: usize) {
        let spec = RingClusterSpec::unshaped(nodes, epn, parallelism);
        let n = spec.total_executors();
        let total = parallelism * n;
        let per_rank = run_ring_cluster(&spec, |comm| {
            let segs = seed_segments(comm.rank(), total, elems);
            ring_reduce_scatter(&comm, segs).unwrap()
        });
        // Every global segment owned exactly once, fully reduced.
        let mut seen = vec![false; total];
        for (rank, owned) in per_rank.iter().enumerate() {
            assert_eq!(owned.len(), parallelism, "rank {rank} owns P segments");
            for o in owned {
                assert!(!seen[o.index], "segment {} owned twice", o.index);
                seen[o.index] = true;
                let want = expected_reduced(o.index, n);
                assert!(o.segment.0.iter().all(|&v| v == want), "segment {} wrong", o.index);
                assert_eq!(o.segment.0.len(), elems);
                // Ownership mapping: thread t of rank r owns t*n + (r+1)%n.
                assert_eq!(o.index % n, (rank + 1) % n);
            }
        }
        assert!(seen.iter().all(|&s| s), "all segments covered");
    }

    /// Figure 5's concept, executable: splitting the aggregators lets the
    /// reduction of 4 objects proceed as 3 (here 4) independent segment
    /// reductions, each landing fully reduced on a different executor —
    /// versus the non-splittable case where one reducer must see all data.
    #[test]
    fn split_parallelism_demo() {
        let spec = RingClusterSpec::unshaped(1, 4, 1);
        let per_rank = run_ring_cluster(&spec, |comm| {
            // V_i split into segments V_{i,1..4}.
            let segs: Vec<U64SumSegment> =
                (0..4).map(|j| U64SumSegment(vec![(comm.rank() * 10 + j) as u64])).collect();
            ring_reduce_scatter(&comm, segs).unwrap()
        });
        // Each of the 4 reduced segments V_{*,j} lives on a distinct
        // executor: 4-way parallelism over what tree reduction serializes.
        let owners: std::collections::HashSet<usize> = per_rank
            .iter()
            .enumerate()
            .flat_map(|(rank, owned)| owned.iter().map(move |_| rank))
            .collect();
        assert_eq!(owners.len(), 4, "every executor owns one reduced segment");
        for owned in &per_rank {
            for o in owned {
                let want: u64 = (0..4).map(|r| (r * 10 + o.index) as u64).sum();
                assert_eq!(o.segment.0[0], want);
            }
        }
    }

    #[test]
    fn reduce_scatter_two_ranks() {
        check_reduce_scatter(2, 1, 1, 5);
    }

    #[test]
    fn reduce_scatter_four_ranks_matches_figure_11() {
        check_reduce_scatter(1, 4, 1, 3);
    }

    #[test]
    fn reduce_scatter_parallel_channels() {
        check_reduce_scatter(2, 3, 4, 8);
    }

    #[test]
    fn reduce_scatter_single_rank_degenerate() {
        check_reduce_scatter(1, 1, 2, 4);
    }

    #[test]
    fn reduce_scatter_odd_sizes() {
        check_reduce_scatter(3, 1, 2, 7);
        check_reduce_scatter(5, 1, 1, 1);
    }

    #[test]
    fn wrong_segment_count_is_an_error() {
        let spec = RingClusterSpec::unshaped(1, 2, 1);
        let errs = run_ring_cluster(&spec, |comm| {
            // 3 segments for P*N = 2.
            let segs = seed_segments(comm.rank(), 3, 2);
            // Both ranks must take the error path before any communication,
            // otherwise one rank would block forever.
            ring_reduce_scatter(&comm, segs).is_err()
        });
        assert_eq!(errs, vec![true, true]);
    }

    fn check_chunked(nodes: usize, epn: usize, parallelism: usize, chunks: usize, elems: usize) {
        let spec = RingClusterSpec::unshaped(nodes, epn, parallelism);
        let n = spec.total_executors();
        let total = parallelism * n * chunks;
        let per_rank = run_ring_cluster(&spec, |comm| {
            let segs = seed_segments(comm.rank(), total, elems);
            ring_reduce_scatter_chunked(&comm, segs, chunks).unwrap()
        });
        let mut seen = vec![false; total];
        for (rank, owned) in per_rank.iter().enumerate() {
            assert_eq!(owned.len(), parallelism * chunks, "rank {rank} owns P*C chunks");
            for o in owned {
                assert!(!seen[o.index], "chunk {} owned twice", o.index);
                seen[o.index] = true;
                let want = expected_reduced(o.index, n);
                assert!(o.segment.0.iter().all(|&v| v == want), "chunk {} wrong", o.index);
                // Ownership mapping over logical positions: (idx/C) % N == (r+1) % N.
                assert_eq!((o.index / chunks) % n, (rank + 1) % n);
            }
        }
        assert!(seen.iter().all(|&s| s), "all chunks covered");
    }

    #[test]
    fn chunked_matches_expected_sums() {
        check_chunked(1, 4, 1, 2, 3);
        check_chunked(2, 2, 2, 3, 5);
        check_chunked(3, 1, 1, 4, 1);
    }

    #[test]
    fn chunks_one_degenerates_to_unpipelined() {
        // Same inputs through the chunked entry point with C=1 and the
        // classic entry point must produce identical owned segments.
        let spec = RingClusterSpec::unshaped(1, 3, 2);
        let n = spec.total_executors();
        let total = 2 * n;
        let chunked = run_ring_cluster(&spec, |comm| {
            let segs = seed_segments(comm.rank(), total, 4);
            ring_reduce_scatter_chunked(&comm, segs, 1).unwrap()
        });
        let plain = run_ring_cluster(&spec, |comm| {
            let segs = seed_segments(comm.rank(), total, 4);
            ring_reduce_scatter(&comm, segs).unwrap()
        });
        assert_eq!(chunked, plain);
    }

    #[test]
    fn chunked_equals_unchunked_reduction() {
        // Integer data: any merge association is exact, so the multiset of
        // reduced values must be identical across chunk counts.
        let spec = RingClusterSpec::unshaped(1, 4, 1);
        let n = 4;
        for chunks in [1usize, 2, 4] {
            let total = n * chunks;
            let per_rank = run_ring_cluster(&spec, |comm| {
                let segs = seed_segments(comm.rank(), total, 2);
                ring_reduce_scatter_chunked(&comm, segs, chunks).unwrap()
            });
            for owned in &per_rank {
                for o in owned {
                    let want = expected_reduced(o.index, n);
                    assert!(o.segment.0.iter().all(|&v| v == want));
                }
            }
        }
    }

    #[test]
    fn chunked_wrong_count_or_zero_chunks_is_an_error() {
        let spec = RingClusterSpec::unshaped(1, 2, 1);
        let errs = run_ring_cluster(&spec, |comm| {
            // P*N*C = 4 but we pass 2; and chunks = 0 is always invalid.
            let bad_count =
                ring_reduce_scatter_chunked(&comm, seed_segments(comm.rank(), 2, 1), 2).is_err();
            let zero_chunks =
                ring_reduce_scatter_chunked(&comm, seed_segments(comm.rank(), 2, 1), 0).is_err();
            bad_count && zero_chunks
        });
        assert_eq!(errs, vec![true, true]);
    }

    #[test]
    fn float_segments_sum_correctly() {
        let spec = RingClusterSpec::unshaped(1, 3, 1);
        let n = 3;
        let per_rank = run_ring_cluster(&spec, |comm| {
            let segs: Vec<SumSegment> = (0..n)
                .map(|g| SumSegment(vec![0.5 * (comm.rank() + 1) as f64 + g as f64; 4]))
                .collect();
            ring_reduce_scatter(&comm, segs).unwrap()
        });
        for owned in &per_rank {
            for o in owned {
                let want: f64 = (0..n).map(|r| 0.5 * (r + 1) as f64 + o.index as f64).sum();
                for &v in &o.segment.0 {
                    assert!((v - want).abs() < 1e-12);
                }
            }
        }
    }
}
