//! Ring allreduce: reduce-scatter followed by ring allgather.
//!
//! Sparker itself only needs reduce-scatter + gather-to-driver, but the
//! bandwidth-optimal allreduce of Patarasuk & Yuan (the paper's reference
//! \[17\]) is the natural extension and is what parameter-server-free ML
//! systems standardized on. We provide it both as an extension feature and
//! to cross-check the reduce-scatter implementation (allreduce must equal a
//! sequential reduction on every rank).


use sparker_net::error::{NetError, NetResult};

use crate::comm::RingComm;
use crate::ring::OwnedSegment;
use crate::segment::Segment;

/// Ring allgather over one channel: every rank starts holding the global
/// block owned after reduce-scatter (`(rank + 1) % N` of this channel's
/// range) and after `N−1` forwarding steps holds all `N`. Pure forwarding:
/// needs only the wire format, no merge.
pub(crate) fn ring_allgather_pass<S: sparker_net::codec::Payload>(
    comm: &RingComm,
    channel: usize,
    owned: S,
    n: usize,
) -> NetResult<Vec<S>> {
    let rank = comm.rank();
    let (op, attempt) = comm.epoch();
    let pool = sparker_net::pool::global();
    let mut blocks: Vec<Option<S>> = (0..n).map(|_| None).collect();
    let own_idx = (rank + 1) % n;
    let mut current = owned.to_frame_pooled(pool);
    blocks[own_idx] = Some(owned);
    for step in 0..n - 1 {
        let started = sparker_obs::enabled().then(std::time::Instant::now);
        let sent_bytes = current.len() as u64;
        comm.send_next(channel, current.clone())?;
        let incoming = comm.recv_prev(channel)?;
        // The previous rank forwarded the block it acquired at step-1, which
        // is global index (prev_rank + 1 - step) mod n = (rank - step) mod n.
        let idx = (rank + n - step) % n;
        blocks[idx] = Some(S::from_frame(incoming.clone())?);
        if let Some(t0) = started {
            sparker_obs::trace::event_dur(
                sparker_obs::Layer::Step,
                "allgather.step",
                t0,
                &[
                    ("step", step as u64),
                    ("channel", channel as u64),
                    ("rank", rank as u64),
                    ("peer", ((rank + 1) % n) as u64),
                    ("send_bytes", sent_bytes),
                    ("recv_bytes", incoming.len() as u64),
                    ("op", op),
                    ("epoch", attempt as u64),
                ],
            );
        }
        current = incoming;
    }
    // The last received frame is never forwarded; hand it back to the pool.
    pool.recycle_frame(current);
    blocks
        .into_iter()
        .enumerate()
        .map(|(i, b)| b.ok_or_else(|| NetError::Codec(format!("allgather missed block {i}"))))
        .collect()
}

/// Bandwidth-optimal ring allreduce over the PDR.
///
/// Takes the same `P·N` segments as [`crate::ring::ring_reduce_scatter`]
/// and returns all
/// `P·N` fully-reduced segments, in global order, on **every** rank.
pub fn ring_allreduce<S: Segment>(comm: &RingComm, segments: Vec<S>) -> NetResult<Vec<S>> {
    ring_allreduce_by(comm, segments, &|acc: &mut S, incoming: S| acc.merge_from(&incoming))
}

/// Closure-merge variant of [`ring_allreduce`], for user `reduceOp`s.
pub fn ring_allreduce_by<V, F>(comm: &RingComm, segments: Vec<V>, merge: &F) -> NetResult<Vec<V>>
where
    V: sparker_net::codec::Payload,
    F: Fn(&mut V, V) + Sync,
{
    let n = comm.size();
    let p = comm.parallelism();
    let owned = crate::ring::ring_reduce_scatter_by(comm, segments, merge)?;
    if n == 1 {
        return Ok(owned.into_iter().map(|o| o.segment).collect());
    }
    debug_assert_eq!(owned.len(), p);

    let mut per_channel: Vec<NetResult<Vec<V>>> = Vec::with_capacity(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for OwnedSegment { index, segment } in owned {
            let comm = comm.clone();
            let t = index / n;
            handles.push(scope.spawn(move || ring_allgather_pass(&comm, t, segment, n)));
        }
        for h in handles {
            per_channel.push(h.join().expect("allgather worker panicked"));
        }
    });

    let mut out = Vec::with_capacity(p * n);
    for blocks in per_channel {
        out.extend(blocks?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::U64SumSegment;
    use crate::testing::{run_ring_cluster, RingClusterSpec};

    fn check_allreduce(nodes: usize, epn: usize, parallelism: usize) {
        let spec = RingClusterSpec::unshaped(nodes, epn, parallelism);
        let n = spec.total_executors();
        let total = parallelism * n;
        let per_rank = run_ring_cluster(&spec, |comm| {
            let segs: Vec<U64SumSegment> = (0..total)
                .map(|g| U64SumSegment(vec![(comm.rank() as u64 + 1) * 10 + g as u64; 2]))
                .collect();
            ring_allreduce(&comm, segs).unwrap()
        });
        for result in &per_rank {
            assert_eq!(result.len(), total);
            for (g, seg) in result.iter().enumerate() {
                let want: u64 = (0..n).map(|r| (r as u64 + 1) * 10 + g as u64).sum();
                assert!(seg.0.iter().all(|&v| v == want), "segment {g}: {seg:?}");
            }
        }
    }

    #[test]
    fn allreduce_small_ring() {
        check_allreduce(1, 2, 1);
        check_allreduce(1, 4, 1);
    }

    #[test]
    fn allreduce_parallel_channels() {
        check_allreduce(2, 2, 3);
    }

    #[test]
    fn allreduce_odd_ring() {
        check_allreduce(3, 1, 2);
        check_allreduce(5, 1, 1);
    }

    #[test]
    fn allreduce_single_rank() {
        check_allreduce(1, 1, 2);
    }
}
