//! Multi-rank test/bench harness.
//!
//! Collectives involve every rank simultaneously, so exercising them needs
//! one thread per executor. [`run_ring_cluster`] builds a layout, mesh and
//! ring, spawns one thread per rank, runs the supplied closure on each, and
//! returns the per-rank results in rank order. Used by unit tests, property
//! tests, integration tests and the figure harnesses alike.

use std::sync::Arc;

use sparker_net::profile::{NetProfile, TransportKind};
use sparker_net::topology::{round_robin_layout, RingOrder, RingTopology};
use sparker_net::transport::MeshTransport;

use crate::comm::RingComm;

/// Cluster shape for a harness run.
#[derive(Debug, Clone)]
pub struct RingClusterSpec {
    pub nodes: usize,
    pub executors_per_node: usize,
    /// PDR channel parallelism (the paper's `P`).
    pub parallelism: usize,
    pub order: RingOrder,
    pub profile: NetProfile,
    pub kind: TransportKind,
}

impl RingClusterSpec {
    /// Unshaped spec used by correctness tests.
    pub fn unshaped(nodes: usize, executors_per_node: usize, parallelism: usize) -> Self {
        Self {
            nodes,
            executors_per_node,
            parallelism,
            order: RingOrder::TopologyAware,
            profile: NetProfile::unshaped(),
            kind: TransportKind::ScalableComm,
        }
    }

    pub fn total_executors(&self) -> usize {
        self.nodes * self.executors_per_node
    }
}

/// Runs `f` on every rank of a freshly-built ring cluster, one OS thread per
/// rank, and returns results indexed by rank.
pub fn run_ring_cluster<R, F>(spec: &RingClusterSpec, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(RingComm) -> R + Send + Sync,
{
    let execs = round_robin_layout(spec.nodes, spec.executors_per_node, 1);
    let net = MeshTransport::new(
        &execs,
        spec.parallelism,
        spec.profile.clone(),
        spec.kind,
    );
    let ring = Arc::new(RingTopology::new(execs, spec.order, spec.parallelism));
    run_on_ring(net, ring, &f)
}

/// Runs `f` on every rank of an existing mesh+ring. Results in rank order.
pub fn run_on_ring<R, F>(
    net: Arc<MeshTransport>,
    ring: Arc<RingTopology>,
    f: &F,
) -> Vec<R>
where
    R: Send,
    F: Fn(RingComm) -> R + Send + Sync,
{
    let n = ring.size();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for (rank, slot) in results.iter_mut().enumerate() {
            let comm = RingComm::new(net.clone(), ring.clone(), rank);
            let f = &f;
            handles.push(s.spawn(move || {
                *slot = Some(f(comm));
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    });
    results.into_iter().map(|r| r.expect("rank produced no result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rank_runs_once() {
        let spec = RingClusterSpec::unshaped(2, 3, 1);
        let got = run_ring_cluster(&spec, |c| (c.rank(), c.size()));
        assert_eq!(got.len(), 6);
        for (rank, (r, n)) in got.iter().enumerate() {
            assert_eq!(*r, rank);
            assert_eq!(*n, 6);
        }
    }

    #[test]
    fn ranks_can_talk_to_each_other() {
        let spec = RingClusterSpec::unshaped(1, 4, 1);
        let sums = run_ring_cluster(&spec, |c| {
            // Each rank sends its rank to next; receives prev's rank.
            c.send_next(0, sparker_net::ByteBuf::from(vec![c.rank() as u8])).unwrap();
            let m = c.recv_prev(0).unwrap();
            m[0] as usize
        });
        assert_eq!(sums, vec![3, 0, 1, 2]);
    }
}
