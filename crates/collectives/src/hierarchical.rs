//! Two-level hierarchical collectives: intra-node fold, inter-node ring.
//!
//! The paper's topology-aware ordering (§4, Figure 14) makes a *flat* ring
//! cheap by letting all but one hop per node stay on shared memory. This
//! module goes one level further: instead of threading the ring through
//! every executor, each node first *folds* its executors' contributions
//! into an elected node leader over intra-node links (the same striped
//! shared-memory path the IMM uses), then only the `L` leaders run the
//! chunk-pipelined ring reduce-scatter of [`crate::ring`] across the NICs,
//! and — for the allreduce form — each leader finally broadcasts the
//! result back to its node. The inter-node ring moves `(L−1)/L` of one
//! aggregator per NIC instead of `(N−1)/N` per *executor*, so NIC bytes
//! shrink by the executors-per-node factor.
//!
//! # Leader election and the segment space
//!
//! Node groups come from [`NodeTopology::group`] — the same `(host, id)`
//! sort as the topology-aware ring, so every rank derives the identical
//! grouping without coordination. The leader is each group's lowest-id
//! member; after a failure, re-grouping the survivor view re-elects
//! deterministically. The global segment space is `P·L·C` (channels ×
//! leaders × pipeline chunks): *every* rank splits its aggregator the same
//! way, non-leaders end the reduce-scatter owning nothing, and each leader
//! owns `P·C` fully-reduced physical chunks.
//!
//! # Bit-exactness and fault composition
//!
//! Fold merges run in member-id order, then the leader ring performs the
//! same merge schedule as the flat ring over `L` ranks — on integer-valued
//! data (the repo's oracle convention) any association is exact, so the
//! result is bit-identical to the flat path and to a sequential reduction.
//! All traffic flows through the caller's [`RingComm`], so epoch fencing,
//! gang cancellation, and receive deadlines apply unchanged: a killed
//! leader surfaces as `Timeout`/`Cancelled` on its group and ring
//! neighbours, which the engine turns into a retry over the survivor view
//! (with a freshly elected leader) or the tree fallback — never a hang.

use std::sync::Arc;

use sparker_net::codec::Payload;
use sparker_net::error::{NetError, NetResult};
use sparker_net::pool;
use sparker_net::topology::{ExecutorInfo, NodeTopology, RingOrder, RingTopology};

use crate::allreduce::ring_allgather_pass;
use crate::comm::RingComm;
use crate::ring::{ring_reduce_scatter_chunked_by, OwnedSegment};
use crate::segment::Segment;

/// Node grouping of a ring's members, by hostname locality key.
pub fn node_topology_of(ring: &RingTopology) -> NodeTopology {
    let infos: Vec<ExecutorInfo> = ring.iter().cloned().collect();
    NodeTopology::group(&infos)
}

/// Number of segments every rank must pass to the hierarchical paths:
/// `P·L·C`, where `L` is the number of node groups (= leaders).
pub fn hierarchical_segment_count(ring: &RingTopology, chunks: usize) -> usize {
    ring.parallelism() * node_topology_of(ring).num_nodes() * chunks
}

/// Hierarchical reduce-scatter with [`Segment::merge_from`], `C = 1`.
pub fn hierarchical_reduce_scatter<S: Segment>(
    comm: &RingComm,
    segments: Vec<S>,
) -> NetResult<Vec<OwnedSegment<S>>> {
    hierarchical_reduce_scatter_chunked_by(
        comm,
        segments,
        &|acc: &mut S, incoming: S| acc.merge_from(&incoming),
        1,
    )
}

/// Hierarchical reduce-scatter: intra-node fold to the elected leader,
/// then the chunk-pipelined leader ring. `segments` must hold exactly
/// [`hierarchical_segment_count`] entries on **every** rank (both sides of
/// a mismatch error out before any communication). Leaders return their
/// `P·C` owned chunks with global indices in `0..P·L·C`, sorted;
/// non-leaders return an empty set.
pub fn hierarchical_reduce_scatter_chunked_by<V, F>(
    comm: &RingComm,
    segments: Vec<V>,
    merge: &F,
    chunks: usize,
) -> NetResult<Vec<OwnedSegment<V>>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let topo = validate(comm, segments.len(), chunks)?;
    // Every executor its own node: the leader ring IS the flat ring.
    if topo.num_nodes() == comm.size() {
        return ring_reduce_scatter_chunked_by(comm, segments, merge, chunks);
    }
    match fold_phase(comm, &topo, segments, merge, chunks)? {
        Folded::NonLeader => Ok(Vec::new()),
        Folded::Leader { segments, sub } => {
            ring_reduce_scatter_chunked_by(&sub, segments, merge, chunks)
        }
    }
}

/// Hierarchical allreduce with [`Segment::merge_from`], `C = 1`.
pub fn hierarchical_allreduce<S: Segment>(comm: &RingComm, segments: Vec<S>) -> NetResult<Vec<S>> {
    hierarchical_allreduce_chunked_by(
        comm,
        segments,
        &|acc: &mut S, incoming: S| acc.merge_from(&incoming),
        1,
    )
}

/// Full hierarchical allreduce: fold, leader ring reduce-scatter +
/// allgather, then intra-node broadcast. Every rank returns all `P·L·C`
/// fully-reduced segments in global order.
pub fn hierarchical_allreduce_chunked_by<V, F>(
    comm: &RingComm,
    segments: Vec<V>,
    merge: &F,
    chunks: usize,
) -> NetResult<Vec<V>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let topo = validate(comm, segments.len(), chunks)?;
    if topo.num_nodes() == comm.size() {
        return allreduce_chunked_on(comm, segments, merge, chunks);
    }
    let me = comm.ring().executor_at(comm.rank()).id;
    match fold_phase(comm, &topo, segments, merge, chunks)? {
        Folded::Leader { segments, sub } => {
            let mut reduced = allreduce_chunked_on(&sub, segments, merge, chunks)?;
            let group = &topo.groups()[topo.group_of(me)];
            bcast_phase(comm, group, &mut reduced, chunks * sub.size())?;
            Ok(reduced)
        }
        Folded::NonLeader => {
            let group = &topo.groups()[topo.group_of(me)];
            let leader_rank = comm.ring().rank_of(group.leader().id);
            let p = comm.parallelism();
            let lc = topo.num_nodes() * chunks;
            let mut per_channel: Vec<NetResult<Vec<V>>> = Vec::with_capacity(p);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(p);
                for t in 0..p {
                    let comm = comm.clone();
                    handles.push(scope.spawn(move || recv_bcast(&comm, t, leader_rank, lc)));
                }
                for h in handles {
                    per_channel.push(h.join().expect("hier bcast worker panicked"));
                }
            });
            let mut out = Vec::with_capacity(p * lc);
            for blocks in per_channel {
                out.extend(blocks?);
            }
            Ok(out)
        }
    }
}

/// Symmetric pre-communication validation; returns the node grouping.
fn validate(comm: &RingComm, got: usize, chunks: usize) -> NetResult<NodeTopology> {
    if chunks == 0 {
        return Err(NetError::InvalidAddress(
            "hierarchical collective needs chunks >= 1".into(),
        ));
    }
    let topo = node_topology_of(comm.ring());
    let want = comm.parallelism() * topo.num_nodes() * chunks;
    if got != want {
        return Err(NetError::InvalidAddress(format!(
            "hierarchical collective needs P*L*C = {want} segments, got {got}"
        )));
    }
    Ok(topo)
}

/// Outcome of the intra-node fold for one rank.
enum Folded<V> {
    /// This rank sent its contribution to its node leader; it plays no
    /// further part in the reduce-scatter.
    NonLeader,
    /// This rank is a node leader: `segments` now hold the node's folded
    /// contribution and `sub` is its comm on the leaders-only ring.
    Leader { segments: Vec<V>, sub: RingComm },
}

/// Phase 1: members stream their `P·L·C` segments to their node leader
/// (channel `t` carries channel `t`'s slot range); the leader merges them
/// in member-id order. Leaders come back with the leaders-only sub-ring
/// comm (same transport, epoch, cancel token, and deadline).
fn fold_phase<V, F>(
    comm: &RingComm,
    topo: &NodeTopology,
    mut segments: Vec<V>,
    merge: &F,
    chunks: usize,
) -> NetResult<Folded<V>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let ring = comm.ring();
    let me = ring.executor_at(comm.rank()).id;
    let group = &topo.groups()[topo.group_of(me)];
    let p = comm.parallelism();
    let lc = topo.num_nodes() * chunks;

    if !topo.is_leader(me) {
        let leader_rank = ring.rank_of(group.leader().id);
        let mut results: Vec<NetResult<()>> = Vec::with_capacity(p);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            // chunks_mut: exclusive slices make the spawn need only V: Send,
            // matching the flat ring's bounds (send_fold merely reads).
            for (t, slots) in segments.chunks_mut(lc).enumerate() {
                let comm = comm.clone();
                handles.push(scope.spawn(move || send_fold(&comm, t, leader_rank, slots)));
            }
            for h in handles {
                results.push(h.join().expect("hier fold worker panicked"));
            }
        });
        results.into_iter().collect::<NetResult<Vec<_>>>()?;
        return Ok(Folded::NonLeader);
    }

    let mut results: Vec<NetResult<()>> = Vec::with_capacity(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (t, slots) in segments.chunks_mut(lc).enumerate() {
            let comm = comm.clone();
            let members = &group.members;
            handles.push(scope.spawn(move || recv_fold(&comm, t, members, slots, merge)));
        }
        for h in handles {
            results.push(h.join().expect("hier fold worker panicked"));
        }
    });
    results.into_iter().collect::<NetResult<Vec<_>>>()?;

    let sub = Arc::new(RingTopology::new(topo.leaders(), RingOrder::TopologyAware, p));
    let sub_rank = sub.rank_of(me);
    Ok(Folded::Leader { segments, sub: comm.subring(sub, sub_rank) })
}

/// One channel of a member's fold: its `L·C` slots, in order, to the leader.
fn send_fold<V: Payload>(
    comm: &RingComm,
    channel: usize,
    leader_rank: usize,
    slots: &[V],
) -> NetResult<()> {
    let pool = pool::global();
    let (op, attempt) = comm.epoch();
    let started = sparker_obs::enabled().then(std::time::Instant::now);
    let mut sent_bytes = 0u64;
    for s in slots {
        let frame = s.to_frame_pooled(pool);
        sent_bytes += frame.len() as u64;
        comm.send_to_rank(leader_rank, channel, frame)?;
    }
    if let Some(t0) = started {
        sparker_obs::trace::event_dur(
            sparker_obs::Layer::Step,
            "hier.fold",
            t0,
            &[
                ("channel", channel as u64),
                ("rank", comm.rank() as u64),
                ("peer", leader_rank as u64),
                ("send_bytes", sent_bytes),
                ("recv_bytes", 0),
                ("op", op),
                ("epoch", attempt as u64),
            ],
        );
    }
    Ok(())
}

/// One channel of a leader's fold: merge each non-leader member's slots
/// (members in id order, slots in order — the deterministic schedule).
fn recv_fold<V, F>(
    comm: &RingComm,
    channel: usize,
    members: &[ExecutorInfo],
    slots: &mut [V],
    merge: &F,
) -> NetResult<()>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let pool = pool::global();
    let ring = comm.ring();
    let (op, attempt) = comm.epoch();
    for m in &members[1..] {
        let from = ring.rank_of(m.id);
        let started = sparker_obs::enabled().then(std::time::Instant::now);
        let mut recv_bytes = 0u64;
        for slot in slots.iter_mut() {
            let frame = comm.recv_from_rank(from, channel)?;
            recv_bytes += frame.len() as u64;
            let incoming = V::from_frame_pooled(frame, pool)?;
            merge(slot, incoming);
        }
        if let Some(t0) = started {
            sparker_obs::trace::event_dur(
                sparker_obs::Layer::Step,
                "hier.fold",
                t0,
                &[
                    ("channel", channel as u64),
                    ("rank", comm.rank() as u64),
                    ("peer", from as u64),
                    ("send_bytes", 0),
                    ("recv_bytes", recv_bytes),
                    ("op", op),
                    ("epoch", attempt as u64),
                ],
            );
        }
    }
    Ok(())
}

/// Phase 3 (allreduce only): the leader streams the fully-reduced segments
/// back to each of its node's members, channel by channel.
fn bcast_phase<V: Payload>(
    comm: &RingComm,
    group: &sparker_net::topology::NodeGroup,
    reduced: &mut [V],
    lc: usize,
) -> NetResult<()> {
    let ring = comm.ring();
    let p = comm.parallelism();
    let mut results: Vec<NetResult<()>> = Vec::with_capacity(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        // Exclusive slices for V: Send (the threads only read them).
        for (t, slots) in reduced.chunks_mut(lc).enumerate() {
            let comm = comm.clone();
            let members = &group.members;
            handles.push(scope.spawn(move || {
                let pool = pool::global();
                let (op, attempt) = comm.epoch();
                for m in &members[1..] {
                    let to = ring.rank_of(m.id);
                    let started = sparker_obs::enabled().then(std::time::Instant::now);
                    let mut sent_bytes = 0u64;
                    for s in slots.iter() {
                        let frame = s.to_frame_pooled(pool);
                        sent_bytes += frame.len() as u64;
                        comm.send_to_rank(to, t, frame)?;
                    }
                    if let Some(t0) = started {
                        sparker_obs::trace::event_dur(
                            sparker_obs::Layer::Step,
                            "hier.bcast",
                            t0,
                            &[
                                ("channel", t as u64),
                                ("rank", comm.rank() as u64),
                                ("peer", to as u64),
                                ("send_bytes", sent_bytes),
                                ("recv_bytes", 0),
                                ("op", op),
                                ("epoch", attempt as u64),
                            ],
                        );
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            results.push(h.join().expect("hier bcast worker panicked"));
        }
    });
    results.into_iter().collect::<NetResult<Vec<_>>>()?;
    Ok(())
}

/// One channel of a member's broadcast receive: `lc` slots, in order.
fn recv_bcast<V: Payload>(
    comm: &RingComm,
    channel: usize,
    leader_rank: usize,
    lc: usize,
) -> NetResult<Vec<V>> {
    let pool = pool::global();
    let mut out = Vec::with_capacity(lc);
    for _ in 0..lc {
        let frame = comm.recv_from_rank(leader_rank, channel)?;
        out.push(V::from_frame_pooled(frame, pool)?);
    }
    Ok(out)
}

/// Chunk-aware allreduce on an arbitrary ring comm: chunked reduce-scatter,
/// then one allgather per `(channel, chunk-stream)` pair. With `C = 1` this
/// is exactly [`crate::allreduce::ring_allreduce_by`]'s schedule.
fn allreduce_chunked_on<V, F>(
    comm: &RingComm,
    segments: Vec<V>,
    merge: &F,
    chunks: usize,
) -> NetResult<Vec<V>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    let n = comm.size();
    let p = comm.parallelism();
    let owned = ring_reduce_scatter_chunked_by(comm, segments, merge, chunks)?;
    if n == 1 {
        return Ok(owned.into_iter().map(|o| o.segment).collect());
    }
    debug_assert_eq!(owned.len(), p * chunks);

    // Channel t owns the C physical chunks of logical position (rank+1)%n
    // in its range; allgather each chunk stream c = 0..C in turn. Owned
    // chunks are moved into their channel's thread (no clone, V: Send).
    let mut by_channel: Vec<Vec<OwnedSegment<V>>> = (0..p).map(|_| Vec::new()).collect();
    for o in owned {
        by_channel[o.index / (n * chunks)].push(o);
    }
    let mut per_channel: Vec<NetResult<Vec<(usize, V)>>> = Vec::with_capacity(p);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (t, mine) in by_channel.into_iter().enumerate() {
            let comm = comm.clone();
            handles.push(scope.spawn(move || {
                let mut placed = Vec::with_capacity(n * chunks);
                for o in mine {
                    let c = o.index % chunks;
                    let blocks = ring_allgather_pass(&comm, t, o.segment, n)?;
                    for (j, b) in blocks.into_iter().enumerate() {
                        placed.push((t * n * chunks + j * chunks + c, b));
                    }
                }
                Ok(placed)
            }));
        }
        for h in handles {
            per_channel.push(h.join().expect("hier allgather worker panicked"));
        }
    });

    let mut out: Vec<Option<V>> = (0..p * n * chunks).map(|_| None).collect();
    for placed in per_channel {
        for (idx, v) in placed? {
            out[idx] = Some(v);
        }
    }
    out.into_iter()
        .enumerate()
        .map(|(i, b)| b.ok_or_else(|| NetError::Codec(format!("allgather missed block {i}"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ring_reduce_scatter_chunked;
    use crate::segment::U64SumSegment;
    use crate::testing::{run_ring_cluster, RingClusterSpec};

    /// Rank r's global segment g holds `(r+1)*1000 + g` everywhere.
    fn seed(rank: usize, total: usize, elems: usize) -> Vec<U64SumSegment> {
        (0..total)
            .map(|g| U64SumSegment(vec![(rank as u64 + 1) * 1000 + g as u64; elems]))
            .collect()
    }

    fn expected(g: usize, n: usize) -> u64 {
        (0..n).map(|r| (r as u64 + 1) * 1000 + g as u64).sum()
    }

    fn check_hier_reduce_scatter(nodes: usize, epn: usize, p: usize, chunks: usize, elems: usize) {
        let spec = RingClusterSpec::unshaped(nodes, epn, p);
        let n = spec.total_executors();
        let total = p * nodes * chunks;
        let per_rank = run_ring_cluster(&spec, move |comm| {
            let segs = seed(comm.rank(), total, elems);
            let owned = hierarchical_reduce_scatter_chunked_by(
                &comm,
                segs,
                &|a: &mut U64SumSegment, b| a.merge_from(&b),
                chunks,
            )
            .unwrap();
            let leader = node_topology_of(comm.ring())
                .is_leader(comm.ring().executor_at(comm.rank()).id);
            (leader, owned)
        });
        let mut seen = vec![false; total];
        for (leader, owned) in &per_rank {
            if !leader {
                assert!(owned.is_empty(), "non-leaders own nothing");
                continue;
            }
            assert_eq!(owned.len(), p * chunks, "leaders own P*C chunks");
            for o in owned {
                assert!(!seen[o.index], "chunk {} owned twice", o.index);
                seen[o.index] = true;
                let want = expected(o.index, n);
                assert!(o.segment.0.iter().all(|&v| v == want), "chunk {} wrong", o.index);
                assert_eq!(o.segment.0.len(), elems);
            }
        }
        assert!(seen.iter().all(|&s| s), "all chunks covered");
        assert_eq!(
            per_rank.iter().filter(|(l, _)| *l).count(),
            nodes,
            "one leader per node"
        );
    }

    #[test]
    fn hier_reduce_scatter_two_nodes() {
        check_hier_reduce_scatter(2, 4, 1, 1, 3);
    }

    #[test]
    fn hier_reduce_scatter_chunked_parallel() {
        check_hier_reduce_scatter(2, 3, 2, 2, 5);
        check_hier_reduce_scatter(3, 2, 2, 3, 1);
    }

    #[test]
    fn hier_reduce_scatter_single_node_degenerate() {
        // One node: no inter-node ring at all; the leader folds everything.
        check_hier_reduce_scatter(1, 4, 2, 2, 2);
        check_hier_reduce_scatter(1, 1, 1, 1, 1);
    }

    #[test]
    fn hier_every_rank_its_own_node_equals_flat_ring() {
        // epn = 1: L == N, the hierarchical path must BE the flat path.
        let spec = RingClusterSpec::unshaped(4, 1, 2);
        let chunks = 2;
        let total = 2 * 4 * chunks;
        let hier = run_ring_cluster(&spec, move |comm| {
            hierarchical_reduce_scatter_chunked_by(
                &comm,
                seed(comm.rank(), total, 3),
                &|a: &mut U64SumSegment, b| a.merge_from(&b),
                chunks,
            )
            .unwrap()
        });
        let flat = run_ring_cluster(&spec, move |comm| {
            ring_reduce_scatter_chunked(&comm, seed(comm.rank(), total, 3), chunks).unwrap()
        });
        assert_eq!(hier, flat);
    }

    fn check_hier_allreduce(nodes: usize, epn: usize, p: usize, chunks: usize) {
        let spec = RingClusterSpec::unshaped(nodes, epn, p);
        let n = spec.total_executors();
        let total = p * nodes * chunks;
        let per_rank = run_ring_cluster(&spec, move |comm| {
            hierarchical_allreduce_chunked_by(
                &comm,
                seed(comm.rank(), total, 2),
                &|a: &mut U64SumSegment, b| a.merge_from(&b),
                chunks,
            )
            .unwrap()
        });
        for result in &per_rank {
            assert_eq!(result.len(), total);
            for (g, s) in result.iter().enumerate() {
                let want = expected(g, n);
                assert!(s.0.iter().all(|&v| v == want), "segment {g}: {s:?}");
            }
        }
    }

    #[test]
    fn hier_allreduce_matches_oracle_everywhere() {
        check_hier_allreduce(2, 3, 1, 1);
        check_hier_allreduce(2, 2, 2, 2);
        check_hier_allreduce(3, 2, 1, 2);
        check_hier_allreduce(1, 3, 2, 1);
        check_hier_allreduce(4, 1, 1, 2);
    }

    #[test]
    fn hier_wrong_count_is_a_symmetric_error() {
        let spec = RingClusterSpec::unshaped(2, 2, 1);
        let errs = run_ring_cluster(&spec, |comm| {
            // P*L*C = 2 but we pass 3; and chunks = 0 is always invalid.
            let bad = hierarchical_reduce_scatter_chunked_by(
                &comm,
                seed(comm.rank(), 3, 1),
                &|a: &mut U64SumSegment, b| a.merge_from(&b),
                1,
            )
            .is_err();
            let zero = hierarchical_reduce_scatter_chunked_by(
                &comm,
                seed(comm.rank(), 2, 1),
                &|a: &mut U64SumSegment, b| a.merge_from(&b),
                0,
            )
            .is_err();
            bad && zero
        });
        assert!(errs.iter().all(|&e| e));
    }

    #[test]
    fn hier_segment_count_helper_matches() {
        let spec = RingClusterSpec::unshaped(3, 2, 2);
        let counts = run_ring_cluster(&spec, |comm| {
            hierarchical_segment_count(comm.ring(), 4)
        });
        assert!(counts.iter().all(|&c| c == 2 * 3 * 4));
    }
}
