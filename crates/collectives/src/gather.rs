//! Gather: collecting reduce-scattered segments to a single rank.
//!
//! Sparker's split aggregation finishes by gathering each executor's
//! fully-reduced segments into the driver (via Spark's `collect`), where the
//! user's `concatOp` reassembles them (§4.2). Inside the collectives layer
//! we provide the executor-side equivalent: gather to a chosen root rank.

use sparker_net::codec::{Decoder, Encoder};
use sparker_net::error::{NetError, NetResult};

use crate::comm::RingComm;
use crate::ring::OwnedSegment;
use crate::segment::Segment;

fn encode_owned<S: Segment>(owned: &[OwnedSegment<S>]) -> sparker_net::ByteBuf {
    let mut enc = Encoder::new();
    enc.put_usize(owned.len());
    for o in owned {
        enc.put_usize(o.index);
        o.segment.encode_into(&mut enc);
    }
    enc.finish()
}

fn decode_owned<S: Segment>(frame: sparker_net::ByteBuf) -> NetResult<Vec<OwnedSegment<S>>> {
    let mut dec = Decoder::new(frame);
    let count = dec.get_usize()?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let index = dec.get_usize()?;
        let segment = S::decode_from(&mut dec)?;
        out.push(OwnedSegment { index, segment });
    }
    Ok(out)
}

/// Gathers every rank's owned segments into `root`.
///
/// At `root`, returns all segments sorted by global index (and verifies the
/// index space `0..total` is covered exactly once); elsewhere returns `None`.
pub fn gather_segments<S: Segment>(
    comm: &RingComm,
    owned: Vec<OwnedSegment<S>>,
    root: usize,
    total: usize,
) -> NetResult<Option<Vec<S>>> {
    let n = comm.size();
    assert!(root < n);
    if comm.rank() != root {
        comm.send_to_rank(root, 0, encode_owned(&owned))?;
        return Ok(None);
    }
    let mut all = owned;
    for rank in 0..n {
        if rank == root {
            continue;
        }
        let frame = comm.recv_from_rank(rank, 0)?;
        all.extend(decode_owned(frame)?);
    }
    all.sort_by_key(|o| o.index);
    if all.len() != total {
        return Err(NetError::Codec(format!(
            "gather expected {total} segments, got {}",
            all.len()
        )));
    }
    for (i, o) in all.iter().enumerate() {
        if o.index != i {
            return Err(NetError::Codec(format!(
                "gather segment index mismatch at {i}: got {}",
                o.index
            )));
        }
    }
    Ok(Some(all.into_iter().map(|o| o.segment).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ring_reduce_scatter;
    use crate::segment::U64SumSegment;
    use crate::testing::{run_ring_cluster, RingClusterSpec};

    #[test]
    fn reduce_scatter_then_gather_equals_full_reduction() {
        let spec = RingClusterSpec::unshaped(2, 2, 2);
        let n = spec.total_executors();
        let total = 2 * n;
        let results = run_ring_cluster(&spec, |comm| {
            let segs: Vec<U64SumSegment> = (0..total)
                .map(|g| U64SumSegment(vec![comm.rank() as u64 + g as u64; 3]))
                .collect();
            let owned = ring_reduce_scatter(&comm, segs).unwrap();
            gather_segments(&comm, owned, 0, total).unwrap()
        });
        for (rank, r) in results.iter().enumerate() {
            if rank == 0 {
                let segs = r.as_ref().unwrap();
                assert_eq!(segs.len(), total);
                for (g, seg) in segs.iter().enumerate() {
                    let want: u64 = (0..n).map(|r| r as u64 + g as u64).sum();
                    assert!(seg.0.iter().all(|&v| v == want));
                }
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn gather_to_nonzero_root() {
        let spec = RingClusterSpec::unshaped(1, 3, 1);
        let results = run_ring_cluster(&spec, |comm| {
            let owned = vec![OwnedSegment {
                index: (comm.rank() + 1) % comm.size(),
                segment: U64SumSegment(vec![comm.rank() as u64]),
            }];
            gather_segments(&comm, owned, 2, 3).unwrap()
        });
        assert!(results[0].is_none() && results[1].is_none());
        let segs = results[2].as_ref().unwrap();
        // Segment g was owned by rank (g + n - 1) % n = g - 1 mod 3.
        assert_eq!(segs[0].0, vec![2]);
        assert_eq!(segs[1].0, vec![0]);
        assert_eq!(segs[2].0, vec![1]);
    }

    #[test]
    fn gather_detects_missing_segments() {
        let spec = RingClusterSpec::unshaped(1, 2, 1);
        let results = run_ring_cluster(&spec, |comm| {
            // Both ranks claim segment 0: duplicate + missing index 1.
            let owned = vec![OwnedSegment {
                index: 0,
                segment: U64SumSegment(vec![1]),
            }];
            gather_segments(&comm, owned, 0, 2)
        });
        assert!(results[0].is_err());
        assert!(matches!(results[1], Ok(None)));
    }
}
