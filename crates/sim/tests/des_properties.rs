//! Property tests on the discrete-event engine: the invariants any valid
//! schedule must satisfy, for randomly generated op DAGs.

use proptest::prelude::*;

use sparker_sim::des::{DesParams, OpGraph, OpKind};

fn params(executors: usize, cores: usize) -> DesParams {
    DesParams {
        executors,
        cores_per_executor: cores,
        node_of_executor: (0..executors).map(|e| e % 2).collect(),
        nodes: 2,
        stream_bandwidth: 1000.0,
        nic_bandwidth: 2000.0,
        intra_bandwidth: 10_000.0,
        latency: 0.01,
        intra_latency: 0.001,
    }
}

/// Builds a random DAG: op i depends on a random subset of earlier ops.
fn random_graph(
    executors: usize,
    kinds: &[(u8, f64)], // (kind selector, magnitude)
    deps: &[Vec<usize>],
) -> OpGraph {
    let mut g = OpGraph::new();
    for (i, &(kind, mag)) in kinds.iter().enumerate() {
        let dep_ids: Vec<usize> = deps[i].iter().copied().filter(|&d| d < i).collect();
        match kind % 4 {
            0 => {
                g.compute(i % executors, mag.abs() % 2.0, dep_ids);
            }
            1 => {
                g.xfer(i % executors, (i + 1) % executors, 0, (mag.abs() % 1e4) + 1.0, dep_ids);
            }
            2 => {
                g.driver(mag.abs() % 0.5, dep_ids);
            }
            _ => {
                g.barrier(dep_ids);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn finish_times_respect_dependencies(
        kinds in proptest::collection::vec((any::<u8>(), any::<f64>()), 1..40),
        raw_deps in proptest::collection::vec(proptest::collection::vec(0usize..40, 0..4), 40),
    ) {
        let g = random_graph(3, &kinds, &raw_deps);
        let r = g.run(&params(3, 2));
        for (id, op) in g.ops.iter().enumerate() {
            for &d in &op.deps {
                prop_assert!(
                    r.finish[id] >= r.finish[d] - 1e-12,
                    "op {id} finished before its dependency {d}"
                );
            }
            prop_assert!(r.finish[id].is_finite());
            prop_assert!(r.finish[id] >= 0.0);
        }
        prop_assert!((r.makespan - r.finish.iter().copied().fold(0.0, f64::max)).abs() < 1e-12);
    }

    #[test]
    fn more_cores_never_slow_compute_down(
        durations in proptest::collection::vec(0.01f64..1.0, 1..20),
    ) {
        let build = || {
            let mut g = OpGraph::new();
            for (i, &d) in durations.iter().enumerate() {
                g.compute(i % 2, d, vec![]);
            }
            g
        };
        let slow = build().run(&params(2, 1)).makespan;
        let fast = build().run(&params(2, 4)).makespan;
        prop_assert!(fast <= slow + 1e-12, "more cores slowed things down: {slow} -> {fast}");
    }

    #[test]
    fn makespan_at_least_critical_path_duration(
        durations in proptest::collection::vec(0.01f64..1.0, 1..15),
    ) {
        // A pure chain: makespan must be >= the sum of durations.
        let mut g = OpGraph::new();
        let mut prev: Option<usize> = None;
        let mut total = 0.0;
        for &d in &durations {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.compute(0, d, deps));
            total += d;
        }
        let r = g.run(&params(1, 4));
        prop_assert!(r.makespan >= total - 1e-9);
        prop_assert!(r.makespan <= total + 1e-9, "chain has no contention: exact");
    }

    #[test]
    fn delays_add_no_resource_contention(count in 1usize..50, secs in 0.001f64..0.5) {
        // N parallel delays on no resources finish simultaneously.
        let mut g = OpGraph::new();
        for _ in 0..count {
            g.delay(secs, vec![]);
        }
        let r = g.run(&params(1, 1));
        prop_assert!((r.makespan - secs).abs() < 1e-12);
    }
}

#[test]
fn delay_op_is_pure_latency() {
    let mut g = OpGraph::new();
    let a = g.compute(0, 1.0, vec![]);
    let d = g.delay(0.5, vec![a]);
    let b = g.compute(0, 1.0, vec![d]);
    let r = g.run(&params(1, 1));
    assert!((r.finish[b] - 2.5).abs() < 1e-12);
}

#[test]
fn xfer_kinds_are_visible_in_graph() {
    let mut g = OpGraph::new();
    let x = g.xfer(0, 1, 0, 100.0, vec![]);
    assert!(matches!(g.ops[x].kind, OpKind::Xfer { bytes, .. } if bytes == 100.0));
}
