//! Property tests on the discrete-event engine: the invariants any valid
//! schedule must satisfy, for randomly generated op DAGs.

use sparker_testkit::{check, tk_assert, Config};

use sparker_sim::des::{DesParams, OpGraph, OpKind};

fn cfg() -> Config {
    // Seed re-rolled when the DAG generator switched from `f64_any` (which
    // produced infinities that an inline clamp had to paper over) to finite
    // magnitudes, so the corpus exercises the new generator from scratch.
    Config::with_cases(64).with_seed(0x5e5_d35_0002)
}

fn params(executors: usize, cores: usize) -> DesParams {
    DesParams {
        executors,
        cores_per_executor: cores,
        node_of_executor: (0..executors).map(|e| e % 2).collect(),
        nodes: 2,
        stream_bandwidth: 1000.0,
        nic_bandwidth: 2000.0,
        intra_bandwidth: 10_000.0,
        latency: 0.01,
        intra_latency: 0.001,
    }
}

/// Builds a random DAG: op i depends on a random subset of earlier ops.
fn random_graph(
    executors: usize,
    kinds: &[(u8, f64)], // (kind selector, magnitude)
    deps: &[Vec<usize>],
) -> OpGraph {
    let mut g = OpGraph::new();
    for (i, &(kind, mag)) in kinds.iter().enumerate() {
        let dep_ids: Vec<usize> = deps[i].iter().copied().filter(|&d| d < i).collect();
        match kind % 4 {
            0 => {
                g.compute(i % executors, mag.abs() % 2.0, dep_ids);
            }
            1 => {
                g.xfer(i % executors, (i + 1) % executors, 0, (mag.abs() % 1e4) + 1.0, dep_ids);
            }
            2 => {
                g.driver(mag.abs() % 0.5, dep_ids);
            }
            _ => {
                g.barrier(dep_ids);
            }
        }
    }
    g
}

#[test]
fn finish_times_respect_dependencies() {
    check(&cfg(), |src| {
        // Finite magnitudes only: `f64_any` can draw `inf`, and
        // `inf.abs() % 2.0` is NaN, which the simulator (correctly) rejects.
        let kinds = src.vec_of(1..40, |s| (s.u8_any(), s.f64_in(0.0..1e9)));
        let raw_deps: Vec<Vec<usize>> =
            (0..40).map(|_| src.vec_of(0..4, |s| s.usize_in(0..40))).collect();
        let g = random_graph(3, &kinds, &raw_deps);
        let r = g.run(&params(3, 2));
        for (id, op) in g.ops.iter().enumerate() {
            for &d in &op.deps {
                tk_assert!(
                    r.finish[id] >= r.finish[d] - 1e-12,
                    "op {id} finished before its dependency {d}"
                );
            }
            tk_assert!(r.finish[id].is_finite(), "op {id} has non-finite finish time");
            tk_assert!(r.finish[id] >= 0.0, "op {id} finished before t=0");
        }
        let max_finish = r.finish.iter().copied().fold(0.0, f64::max);
        tk_assert!(
            (r.makespan - max_finish).abs() < 1e-12,
            "makespan {} != max finish {max_finish}",
            r.makespan
        );
        Ok(())
    });
}

#[test]
fn more_cores_never_slow_compute_down() {
    check(&cfg(), |src| {
        let durations = src.vec_of(1..20, |s| s.f64_in(0.01..1.0));
        let build = || {
            let mut g = OpGraph::new();
            for (i, &d) in durations.iter().enumerate() {
                g.compute(i % 2, d, vec![]);
            }
            g
        };
        let slow = build().run(&params(2, 1)).makespan;
        let fast = build().run(&params(2, 4)).makespan;
        tk_assert!(fast <= slow + 1e-12, "more cores slowed things down: {slow} -> {fast}");
        Ok(())
    });
}

#[test]
fn makespan_at_least_critical_path_duration() {
    check(&cfg(), |src| {
        let durations = src.vec_of(1..15, |s| s.f64_in(0.01..1.0));
        // A pure chain: makespan must be >= the sum of durations.
        let mut g = OpGraph::new();
        let mut prev: Option<usize> = None;
        let mut total = 0.0;
        for &d in &durations {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.compute(0, d, deps));
            total += d;
        }
        let r = g.run(&params(1, 4));
        tk_assert!(r.makespan >= total - 1e-9, "makespan {} beats the chain {total}", r.makespan);
        tk_assert!(r.makespan <= total + 1e-9, "chain has no contention: exact");
        Ok(())
    });
}

#[test]
fn delays_add_no_resource_contention() {
    check(&cfg(), |src| {
        let count = src.usize_in(1..50);
        let secs = src.f64_in(0.001..0.5);
        // N parallel delays on no resources finish simultaneously.
        let mut g = OpGraph::new();
        for _ in 0..count {
            g.delay(secs, vec![]);
        }
        let r = g.run(&params(1, 1));
        tk_assert!((r.makespan - secs).abs() < 1e-12, "makespan {} != {secs}", r.makespan);
        Ok(())
    });
}

#[test]
fn delay_op_is_pure_latency() {
    let mut g = OpGraph::new();
    let a = g.compute(0, 1.0, vec![]);
    let d = g.delay(0.5, vec![a]);
    let b = g.compute(0, 1.0, vec![d]);
    let r = g.run(&params(1, 1));
    assert!((r.finish[b] - 2.5).abs() < 1e-12);
}

#[test]
fn xfer_kinds_are_visible_in_graph() {
    let mut g = OpGraph::new();
    let x = g.xfer(0, 1, 0, 100.0, vec![]);
    assert!(matches!(g.ops[x].kind, OpKind::Xfer { bytes, .. } if bytes == 100.0));
}
