//! Aggregation strategy simulation.
//!
//! Builds the op-DAG of each aggregation strategy — the same step structure
//! the threaded engine executes — and runs it through the DES:
//!
//! * **Tree** — per-partition aggregators; Spark-formula shuffle rounds
//!   (serialize → transfer → deserialize+merge, whole aggregators); final
//!   serial merge at the driver.
//! * **Tree+IMM** — per-executor merge chains replace per-partition objects
//!   before any serialization.
//! * **Split** — IMM, then P-channel ring reduce-scatter over segments of
//!   `bytes / (P·N)`, then a single aggregator's worth of gather + concat at
//!   the driver.
//!
//! The returned [`AggSimResult`] carries the paper's compute/reduce split.

use sparker_net::profile::TransportKind;

use crate::cluster::SimCluster;
use crate::des::{DesParams, OpGraph, OpId, DRIVER};

/// Aggregation strategy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    Tree,
    TreeImm,
    Split { parallelism: usize, topology_aware: bool },
    /// Extension: ring reduce-scatter + allgather; the reduced value stays
    /// resident on every executor, the driver receives one copy.
    SplitAllReduce { parallelism: usize, topology_aware: bool },
}

impl Strategy {
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Tree => "tree",
            Strategy::TreeImm => "tree+imm",
            Strategy::Split { .. } => "split",
            Strategy::SplitAllReduce { .. } => "split+allreduce",
        }
    }
}

/// Simulated aggregation outcome.
#[derive(Debug, Clone, Copy)]
pub struct AggSimResult {
    /// Compute-stage time (paper: "Agg-compute").
    pub compute: f64,
    /// Reduction time (paper: "Agg-reduce").
    pub reduce: f64,
}

impl AggSimResult {
    pub fn total(&self) -> f64 {
        self.compute + self.reduce
    }
}

pub(crate) fn des_params_for(
    cluster: &SimCluster,
    kind: TransportKind,
    topology_aware: bool,
) -> DesParams {
    let mut p = cluster.des_params(topology_aware);
    let sw = kind.software_overhead().as_secs_f64();
    p.latency += sw;
    p.intra_latency += sw;
    p
}

/// Builds the compute stage: `partitions` tasks round-robin over executors,
/// each `compute_secs`; with `imm`, results chain-merge into one value per
/// executor. Returns (per-executor "value ready" op, stage barrier).
fn build_compute_stage(
    g: &mut OpGraph,
    cluster: &SimCluster,
    partitions: usize,
    compute_secs: f64,
    agg_bytes: f64,
    imm: bool,
) -> (Vec<Vec<OpId>>, OpId) {
    let e = cluster.executors();
    let merge_t = agg_bytes / cluster.merge_bandwidth;
    let mut per_exec_values: Vec<Vec<OpId>> = vec![Vec::new(); e];
    let mut imm_chain: Vec<Option<OpId>> = vec![None; e];
    for p in 0..partitions {
        let exec = p % e;
        let task = g.compute(exec, compute_secs, vec![]);
        if imm {
            let dep = match imm_chain[exec] {
                None => task,
                Some(prev) => g.compute(exec, merge_t, vec![task, prev]),
            };
            imm_chain[exec] = Some(dep);
        } else {
            per_exec_values[exec].push(task);
        }
    }
    if imm {
        for (exec, chain) in imm_chain.into_iter().enumerate() {
            if let Some(op) = chain {
                per_exec_values[exec].push(op);
            }
        }
    }
    let all: Vec<OpId> = per_exec_values.iter().flatten().copied().collect();
    let barrier = g.barrier(all);
    (per_exec_values, barrier)
}

/// Spark's tree-aggregation scale factor for depth 2.
fn tree_scale(partitions: usize) -> usize {
    ((partitions as f64).sqrt().ceil() as usize).max(2)
}

/// Simulates one aggregation of `agg_bytes` over `partitions` partitions,
/// where building each partition's aggregator takes `compute_secs`.
pub fn simulate_aggregation(
    cluster: &SimCluster,
    strategy: Strategy,
    agg_bytes: f64,
    partitions: usize,
    compute_secs: f64,
) -> AggSimResult {
    assert!(partitions >= 1);
    let e = cluster.executors();
    let ser_t = agg_bytes / cluster.ser_bandwidth;
    let deser_t = agg_bytes / cluster.deser_bandwidth;
    let merge_t = agg_bytes / cluster.merge_bandwidth;
    let control = cluster.bm_control_latency;

    match strategy {
        Strategy::Tree | Strategy::TreeImm => {
            let imm = strategy == Strategy::TreeImm;
            let params = des_params_for(cluster, TransportKind::MpiRef, true);
            let mut g = OpGraph::new();
            let (per_exec, barrier) =
                build_compute_stage(&mut g, cluster, partitions, compute_secs, agg_bytes, imm);

            // Holder list: (executor, op producing its value).
            let mut holders: Vec<(usize, OpId)> = per_exec
                .iter()
                .enumerate()
                .flat_map(|(exec, ops)| ops.iter().map(move |&op| (exec, op)))
                .collect();

            let scale = tree_scale(partitions);
            while holders.len() > scale + holders.len() / scale {
                let m = (holders.len() / scale).max(1);
                // Spark's hash partitioner spreads reducers roughly uniformly
                // over the cluster; stride the target executors so they do
                // not pile onto one node.
                let stride = (e / m.min(e)).max(1);
                let dst_of = |j: usize| (j * stride) % e;
                // Merge chains per target slot.
                let mut target_chain: Vec<Option<OpId>> = vec![None; m];
                for (i, (src, value)) in holders.iter().enumerate() {
                    let j = i % m;
                    let dst = dst_of(j);
                    let ser = g.compute(*src, ser_t, vec![*value]);
                    let x = g.xfer(*src, dst, 0, agg_bytes, vec![ser]);
                    // Control RPCs pipeline across fetches; only the
                    // deserialize+merge occupies the reducer's core.
                    let fetched = g.delay(control, vec![x]);
                    let mut deps = vec![fetched];
                    if let Some(prev) = target_chain[j] {
                        deps.push(prev);
                    }
                    let merge = g.compute(dst, deser_t + merge_t, deps);
                    target_chain[j] = Some(merge);
                }
                holders = target_chain
                    .into_iter()
                    .enumerate()
                    .map(|(j, op)| (dst_of(j), op.expect("target produced")))
                    .collect();
            }

            // Final: remaining aggregators to the driver, merged serially.
            let mut last = barrier;
            for (src, value) in &holders {
                let ser = g.compute(*src, ser_t, vec![*value]);
                let x = g.xfer(*src, DRIVER, 0, agg_bytes, vec![ser]);
                let fetched = g.delay(control, vec![x]);
                last = g.driver(deser_t + merge_t, vec![fetched]);
            }
            let r = g.run(&params);
            let compute = r.finish[barrier];
            AggSimResult { compute, reduce: r.finish[last] - compute }
        }
        #[allow(clippy::needless_range_loop)]
        Strategy::Split { parallelism, topology_aware }
        | Strategy::SplitAllReduce { parallelism, topology_aware } => {
            let allreduce = matches!(strategy, Strategy::SplitAllReduce { .. });
            let params = des_params_for(cluster, TransportKind::ScalableComm, topology_aware);
            let mut g = OpGraph::new();
            // Split aggregation always computes with IMM.
            let (per_exec, barrier) =
                build_compute_stage(&mut g, cluster, partitions, compute_secs, agg_bytes, true);
            let value_of: Vec<OpId> = per_exec
                .iter()
                .map(|ops| ops.last().copied().unwrap_or(barrier))
                .collect();

            let p = parallelism.max(1);
            let seg_bytes = agg_bytes / (p * e) as f64;
            // Parallel split on P cores.
            let split_t = (agg_bytes / p as f64) / cluster.merge_bandwidth;
            #[allow(clippy::needless_range_loop)]
            let splits: Vec<Vec<OpId>> = (0..e)
                .map(|exec| {
                    (0..p)
                        .map(|_| g.compute(exec, split_t, vec![value_of[exec], barrier]))
                        .collect()
                })
                .collect();

            // Ring reduce-scatter per channel.
            let seg_merge_t = seg_bytes / cluster.merge_bandwidth;
            let mut last_merge: Vec<Vec<OpId>> = vec![Vec::new(); e];
            if e > 1 {
                for t in 0..p {
                    // send_ready[r]: op whose completion allows r's next send.
                    let mut send_ready: Vec<OpId> = (0..e).map(|r| splits[r][t]).collect();
                    for _step in 0..e - 1 {
                        let xfers: Vec<OpId> = (0..e)
                            .map(|r| {
                                g.xfer((r) % e, (r + 1) % e, t, seg_bytes, vec![send_ready[r]])
                            })
                            .collect();
                        for r in 0..e {
                            let from_prev = xfers[(r + e - 1) % e];
                            let merge = g.compute(r, seg_merge_t, vec![from_prev]);
                            send_ready[r] = merge;
                        }
                    }
                    for (r, &m) in send_ready.iter().enumerate() {
                        last_merge[r].push(m);
                    }
                }
            } else {
                for (r, s) in splits.iter().enumerate() {
                    last_merge[r] = s.clone();
                }
            }

            let concat = if allreduce {
                // Allgather: N-1 forwarding steps per channel; each step
                // moves one owned block (seg_bytes) along the ring.
                let mut hold: Vec<OpId> = (0..e)
                    .map(|r| g.barrier(last_merge[r].clone()))
                    .collect();
                if e > 1 {
                    for t in 0..p {
                        let mut cur = hold.clone();
                        for _step in 0..e - 1 {
                            let xfers: Vec<OpId> = (0..e)
                                .map(|r| g.xfer(r, (r + 1) % e, t, seg_bytes, vec![cur[r]]))
                                .collect();
                            for r in 0..e {
                                cur[r] = xfers[(r + e - 1) % e];
                            }
                        }
                        for r in 0..e {
                            hold[r] = g.barrier(vec![hold[r], cur[r]]);
                        }
                    }
                }
                // Executor-side concat (memcpy) everywhere, in parallel.
                let concats: Vec<OpId> =
                    (0..e).map(|r| g.compute(r, merge_t, vec![hold[r]])).collect();
                // One executor reports a single copy to the driver.
                let ser = g.compute(0, agg_bytes / cluster.ser_bandwidth, vec![concats[0]]);
                let x = g.xfer(0, DRIVER, 0, agg_bytes, vec![ser]);
                let fetched = g.delay(control, vec![x]);
                let report = g.driver(agg_bytes / cluster.deser_bandwidth, vec![fetched]);
                let mut all = concats;
                all.push(report);
                g.barrier(all)
            } else {
                // Gather: each executor ships its owned 1/E of the aggregator.
                let owned_bytes = agg_bytes / e as f64;
                let mut driver_ops = Vec::with_capacity(e);
                for r in 0..e {
                    let ser =
                        g.compute(r, owned_bytes / cluster.ser_bandwidth, last_merge[r].clone());
                    let x = g.xfer(r, DRIVER, 0, owned_bytes, vec![ser]);
                    let fetched = g.delay(control, vec![x]);
                    driver_ops.push(g.driver(owned_bytes / cluster.deser_bandwidth, vec![fetched]));
                }
                // concatOp: one aggregator-sized memcpy at the driver.
                g.driver(merge_t, driver_ops)
            };

            let r = g.run(&params);
            let compute = r.finish[barrier];
            AggSimResult { compute, reduce: r.finish[concat] - compute }
        }
    }
}

/// Simulates just the reduce-scatter primitive (Figures 14–15): `executors`
/// ranks, one `msg_bytes` aggregator each, pre-split, no gather.
pub fn simulate_reduce_scatter(
    cluster: &SimCluster,
    msg_bytes: f64,
    parallelism: usize,
    topology_aware: bool,
) -> f64 {
    let e = cluster.executors();
    if e <= 1 {
        return 0.0;
    }
    let params = des_params_for(cluster, TransportKind::ScalableComm, topology_aware);
    let p = parallelism.max(1);
    let seg_bytes = msg_bytes / (p * e) as f64;
    let seg_merge_t = seg_bytes / cluster.merge_bandwidth;
    let mut g = OpGraph::new();
    let mut finals = Vec::new();
    for t in 0..p {
        let mut send_ready: Vec<Option<OpId>> = vec![None; e];
        for _step in 0..e - 1 {
            let xfers: Vec<OpId> = (0..e)
                .map(|r| {
                    let deps = send_ready[r].map(|d| vec![d]).unwrap_or_default();
                    g.xfer(r, (r + 1) % e, t, seg_bytes, deps)
                })
                .collect();
            for r in 0..e {
                let from_prev = xfers[(r + e - 1) % e];
                let merge = g.compute(r, seg_merge_t, vec![from_prev]);
                send_ready[r] = Some(merge);
            }
        }
        finals.extend(send_ready.into_iter().flatten());
    }
    let end = g.barrier(finals);
    let r = g.run(&params);
    r.finish[end]
}

/// Closed-form MPI reduce-scatter reference (Figure 15): MPICH's pairwise
/// exchange — `E−1` rounds of `msg/E`-sized exchanges at full wire speed.
/// Latency-dominated at small sizes, which is why it scales *worse* than
/// the topology-aware ring (the paper observes exactly this).
pub fn mpi_reduce_scatter(cluster: &SimCluster, msg_bytes: f64) -> f64 {
    let e = cluster.executors();
    if e <= 1 {
        return 0.0;
    }
    let lat = cluster.profile.inter_node.latency.as_secs_f64();
    let seg = msg_bytes / e as f64;
    let bw = cluster.profile.mpi_bandwidth;
    let merge_bw = cluster.merge_bandwidth * 2.0; // native merge, no JVM
    (e - 1) as f64 * (lat + seg / bw + seg / merge_bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    fn bic(nodes: usize) -> SimCluster {
        SimCluster::bic().with_nodes(nodes)
    }

    #[test]
    fn split_beats_tree_for_large_aggregators() {
        let c = bic(8);
        let bytes = 256.0 * MB;
        let tree = simulate_aggregation(&c, Strategy::Tree, bytes, 192, 0.1);
        let split = simulate_aggregation(
            &c,
            Strategy::Split { parallelism: 4, topology_aware: true },
            bytes,
            192,
            0.1,
        );
        let speedup = tree.total() / split.total();
        assert!(
            speedup > 3.0,
            "paper: ~6.5x at 256MB/8 nodes; simulated {speedup:.2}x (tree {:.2}s split {:.2}s)",
            tree.total(),
            split.total()
        );
    }

    #[test]
    fn all_strategies_similar_for_tiny_aggregators() {
        let c = bic(8);
        let bytes = 1024.0;
        let tree = simulate_aggregation(&c, Strategy::Tree, bytes, 192, 0.01).total();
        let split = simulate_aggregation(
            &c,
            Strategy::Split { parallelism: 4, topology_aware: true },
            bytes,
            192,
            0.01,
        )
        .total();
        let ratio = tree / split;
        assert!((0.3..3.0).contains(&ratio), "1KB messages should be a wash: {ratio}");
    }

    #[test]
    fn tree_reduction_grows_with_nodes_split_stays_flat() {
        let bytes = 256.0 * MB;
        let tree_1 = simulate_aggregation(&bic(1), Strategy::Tree, bytes, 24, 0.1).reduce;
        let tree_8 = simulate_aggregation(&bic(8), Strategy::Tree, bytes, 192, 0.1).reduce;
        let split_1 = simulate_aggregation(
            &bic(1),
            Strategy::Split { parallelism: 4, topology_aware: true },
            bytes,
            24,
            0.1,
        )
        .reduce;
        let split_8 = simulate_aggregation(
            &bic(8),
            Strategy::Split { parallelism: 4, topology_aware: true },
            bytes,
            192,
            0.1,
        )
        .reduce;
        assert!(tree_8 > tree_1 * 1.2, "tree reduce must grow: {tree_1} -> {tree_8}");
        assert!(
            split_8 < split_1 * 1.6,
            "split reduce should stay near-flat: {split_1} -> {split_8}"
        );
    }

    #[test]
    fn imm_helps_tree_at_large_sizes() {
        let c = bic(8);
        let bytes = 256.0 * MB;
        let tree = simulate_aggregation(&c, Strategy::Tree, bytes, 192, 0.1).total();
        let imm = simulate_aggregation(&c, Strategy::TreeImm, bytes, 192, 0.1).total();
        let speedup = tree / imm;
        assert!((1.1..3.0).contains(&speedup), "paper: 1.46x; simulated {speedup:.2}x");
    }

    #[test]
    fn parallelism_speeds_up_reduce_scatter() {
        let c = SimCluster::bic(); // 48 executors, 8 nodes (paper Fig 14)
        let t1 = simulate_reduce_scatter(&c, 256.0 * MB, 1, true);
        let t8 = simulate_reduce_scatter(&c, 256.0 * MB, 8, true);
        let speedup = t1 / t8;
        assert!((2.0..4.5).contains(&speedup), "paper: 3.06x; simulated {speedup:.2}x");
    }

    #[test]
    fn topology_awareness_speeds_up_reduce_scatter() {
        let c = SimCluster::bic();
        let aware = simulate_reduce_scatter(&c, 256.0 * MB, 4, true);
        let unaware = simulate_reduce_scatter(&c, 256.0 * MB, 4, false);
        let speedup = unaware / aware;
        // Paper: 2.76x. The store-and-forward NIC model over-penalizes the
        // unaware ring somewhat (real TCP flows interleave), so accept a
        // wider band on the high side.
        assert!((1.8..7.0).contains(&speedup), "paper: 2.76x; simulated {speedup:.2}x");
    }

    #[test]
    fn small_message_reduce_scatter_is_latency_bound() {
        // 256KB: time grows ~linearly with executor count (paper Fig 15).
        // The paper's sweep spreads executors over the fixed 8-node cluster.
        let t6 = simulate_reduce_scatter(&SimCluster::bic().with_total_executors(6), 256.0 * 1024.0, 4, true);
        let t48 = simulate_reduce_scatter(&SimCluster::bic(), 256.0 * 1024.0, 4, true);
        let ratio = t48 / t6;
        assert!((3.0..12.0).contains(&ratio), "paper: 5.3x; simulated {ratio:.2}x");
    }

    #[test]
    fn large_message_reduce_scatter_is_nearly_flat() {
        let t6 = simulate_reduce_scatter(&SimCluster::bic().with_total_executors(6), 256.0 * MB, 4, true);
        let t48 = simulate_reduce_scatter(&SimCluster::bic(), 256.0 * MB, 4, true);
        let ratio = t48 / t6;
        assert!(ratio < 2.2, "paper: 1.27x; simulated {ratio:.2}x");
    }

    #[test]
    fn mpi_reference_scales_linearly() {
        let small = 256.0 * 1024.0;
        let m6 = mpi_reduce_scatter(&SimCluster::bic().with_total_executors(6), small);
        let m48 = mpi_reduce_scatter(&SimCluster::bic(), small);
        assert!(m48 / m6 > 2.5, "pairwise exchange is latency-linear: {}", m48 / m6);
    }

    #[test]
    fn allreduce_strategy_pays_the_allgather_but_stays_ring_class() {
        let c = bic(8);
        let bytes = 256.0 * MB;
        let split = simulate_aggregation(
            &c,
            Strategy::Split { parallelism: 4, topology_aware: true },
            bytes,
            192,
            0.1,
        );
        let allred = simulate_aggregation(
            &c,
            Strategy::SplitAllReduce { parallelism: 4, topology_aware: true },
            bytes,
            192,
            0.1,
        );
        // Allgather roughly doubles ring traffic: reduce grows, but stays
        // far below tree aggregation.
        assert!(allred.reduce >= split.reduce * 0.9, "{} vs {}", allred.reduce, split.reduce);
        assert!(allred.reduce < split.reduce * 4.0, "{} vs {}", allred.reduce, split.reduce);
        let tree = simulate_aggregation(&c, Strategy::Tree, bytes, 192, 0.1);
        assert!(allred.total() < tree.total() / 2.0);
        assert_eq!(
            Strategy::SplitAllReduce { parallelism: 4, topology_aware: true }.name(),
            "split+allreduce"
        );
    }

    #[test]
    fn allreduce_training_removes_broadcast_and_model_update_from_driver() {
        use crate::mlrun::simulate_training;
        use crate::workloads::by_name;
        let w = by_name("LDA-N").unwrap();
        let c = crate::cluster::SimCluster::aws();
        let split = simulate_training(
            &c,
            &w,
            Strategy::Split { parallelism: 4, topology_aware: true },
            Some(15),
        );
        let allred = simulate_training(
            &c,
            &w,
            Strategy::SplitAllReduce { parallelism: 4, topology_aware: true },
            Some(15),
        );
        assert!(allred.driver < split.driver, "{} vs {}", allred.driver, split.driver);
        assert!(allred.non_agg < split.non_agg, "{} vs {}", allred.non_agg, split.non_agg);
    }

    #[test]
    fn single_executor_degenerates_gracefully() {
        let c = SimCluster::bic().with_nodes(1).with_executors(1, 4);
        let r = simulate_aggregation(
            &c,
            Strategy::Split { parallelism: 4, topology_aware: true },
            MB,
            4,
            0.05,
        );
        assert!(r.compute > 0.0 && r.reduce >= 0.0);
        assert_eq!(simulate_reduce_scatter(&c, MB, 4, true), 0.0);
    }
}
