//! End-to-end training simulation (Figures 1–4, 17, 18).
//!
//! One training run = `iterations ×` (broadcast → compute+aggregate →
//! driver update), decomposed the way the paper decomposes its stacked
//! bars:
//!
//! * **Driver** — non-scalable driver work: task scheduling (per task!),
//!   stage bookkeeping, and the model update. Grows with core count, which
//!   is why the paper's Figure 18 shows the driver becoming the *next*
//!   bottleneck once Sparker removes reduction.
//! * **Non-agg** — scalable work outside aggregation: broadcasting the
//!   model to executors, input iteration overheads.
//! * **Agg-compute** — the first stage of the aggregation (gradient /
//!   sufficient-statistics computation).
//! * **Agg-reduce** — everything between compute-stage completion and the
//!   driver holding the reduced aggregator.

use crate::aggsim::{simulate_aggregation, Strategy};
use crate::cluster::SimCluster;
use crate::workloads::Workload;

/// The paper's four-way time decomposition, in seconds (whole run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingBreakdown {
    pub driver: f64,
    pub non_agg: f64,
    pub agg_compute: f64,
    pub agg_reduce: f64,
}

impl TrainingBreakdown {
    pub fn total(&self) -> f64 {
        self.driver + self.non_agg + self.agg_compute + self.agg_reduce
    }

    /// Aggregation share of end-to-end time (Figure 2's stat).
    pub fn agg_fraction(&self) -> f64 {
        (self.agg_compute + self.agg_reduce) / self.total()
    }
}

/// Partitions per stage: Spark convention of 2 tasks per core slot.
pub fn default_partitions(cluster: &SimCluster) -> usize {
    2 * cluster.total_cores()
}

/// Simulates a full training run of `workload` on `cluster` with the given
/// aggregation strategy; `iterations` overrides the per-cluster default
/// when `Some`.
pub fn simulate_training(
    cluster: &SimCluster,
    workload: &Workload,
    strategy: Strategy,
    iterations: Option<usize>,
) -> TrainingBreakdown {
    let iters = iterations.unwrap_or_else(|| workload.iterations(cluster.name)) as f64;
    let partitions = default_partitions(cluster);
    let per_partition_secs =
        workload.samples as f64 * workload.per_sample_cost() / partitions as f64;

    // One aggregation, simulated through the DES.
    let agg = simulate_aggregation(
        cluster,
        strategy,
        workload.agg_bytes(),
        partitions,
        per_partition_secs,
    );

    // Driver: schedule every task of the compute stage, run stage
    // bookkeeping, apply the model update. With the allreduce extension the
    // update runs on the executors (the value is resident there), so the
    // driver keeps only the scheduling work.
    let allreduce = matches!(strategy, Strategy::SplitAllReduce { .. });
    let stages = 3.0;
    let mut driver_per_iter =
        cluster.driver_per_task * partitions as f64 + cluster.driver_per_stage * stages;
    if !allreduce {
        driver_per_iter += workload.agg_bytes() / cluster.merge_bandwidth;
    }

    // Non-agg: torrent broadcast of the model (driver uploads ~2 copies at
    // NIC rate, then nodes exchange in parallel) plus fixed per-iteration
    // overhead. The allreduce extension keeps the model resident on the
    // executors, so no broadcast happens at all.
    let bcast = if allreduce { 0.0 } else { workload.broadcast_bytes() };
    let non_agg_per_iter = 2.0 * bcast / cluster.profile.nic_bandwidth
        + (cluster.nodes as f64).log2().max(1.0)
            * cluster.profile.inter_node.latency.as_secs_f64()
        + 0.05;

    TrainingBreakdown {
        driver: iters * driver_per_iter,
        non_agg: iters * non_agg_per_iter,
        agg_compute: iters * agg.compute,
        agg_reduce: iters * agg.reduce,
    }
}

/// Geometric mean helper used by the figure harnesses.
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{all_workloads, by_name};

    fn bic(nodes: usize) -> SimCluster {
        SimCluster::bic().with_nodes(nodes)
    }

    #[test]
    fn figure1_shape_mllib_scales_poorly() {
        // 8-node vs 1-node speedups under vanilla tree aggregation.
        let mut speedups = Vec::new();
        for w in all_workloads() {
            let t1 = simulate_training(&bic(1), &w, Strategy::Tree, None).total();
            let t8 = simulate_training(&bic(8), &w, Strategy::Tree, None).total();
            speedups.push((w.name, t1 / t8));
        }
        let gm = geo_mean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        // Paper: geo-mean 1.25x, best 2.49x (LDA-N), worst 0.73x (LR-K).
        assert!((0.8..2.2).contains(&gm), "geo-mean speedup {gm:.2} (paper 1.25)");
        let lrk = speedups.iter().find(|(n, _)| *n == "LR-K").unwrap().1;
        assert!(lrk < 1.3, "LR-K must barely scale (paper 0.73x): {lrk:.2}");
        let ldan = speedups.iter().find(|(n, _)| *n == "LDA-N").unwrap().1;
        assert!(ldan > lrk, "LDA-N (2.49x) scales better than LR-K (0.73x)");
        for (name, s) in &speedups {
            assert!(*s < 6.0, "{name} speedup {s:.2} suspiciously close to perfect");
        }
    }

    #[test]
    fn figure2_shape_aggregation_dominates() {
        // Paper: tree aggregation is ~67% (geo-mean) of end-to-end time on
        // 8-node BIC.
        let fracs: Vec<f64> = all_workloads()
            .iter()
            .map(|w| simulate_training(&bic(8), w, Strategy::Tree, None).agg_fraction())
            .collect();
        let gm = geo_mean(&fracs);
        assert!((0.45..0.9).contains(&gm), "agg share {gm:.2} (paper 0.67)");
    }

    #[test]
    fn figure3_shape_compute_scales_reduce_does_not() {
        let w = by_name("LDA-N").unwrap();
        let one = simulate_training(&bic(1), &w, Strategy::Tree, Some(40));
        let eight = simulate_training(&bic(8), &w, Strategy::Tree, Some(40));
        let compute_speedup = one.agg_compute / eight.agg_compute;
        assert!(compute_speedup > 3.0, "compute speedup {compute_speedup:.2} (paper 4.47)");
        assert!(
            eight.agg_reduce > one.agg_reduce,
            "reduce must anti-scale: {:.1}s -> {:.1}s (paper 111s -> 187s)",
            one.agg_reduce,
            eight.agg_reduce
        );
    }

    #[test]
    fn figure17_shape_sparker_speedups() {
        // End-to-end Sparker vs Spark on BIC: geo-mean 1.60x in the paper.
        let split = Strategy::Split { parallelism: 4, topology_aware: true };
        let mut speedups = Vec::new();
        for w in all_workloads() {
            let spark = simulate_training(&bic(8), &w, Strategy::Tree, None).total();
            let sparker = simulate_training(&bic(8), &w, split, None).total();
            speedups.push(spark / sparker);
        }
        let gm = geo_mean(&speedups);
        assert!((1.2..2.6).contains(&gm), "geo-mean {gm:.2} (paper 1.60)");
        assert!(speedups.iter().all(|&s| s > 0.9), "Sparker should never lose: {speedups:?}");
    }

    #[test]
    fn figure18_shape_driver_becomes_the_new_bottleneck() {
        let w = by_name("LDA-N").unwrap();
        let split = Strategy::Split { parallelism: 4, topology_aware: true };
        let aws = SimCluster::aws();
        let big = simulate_training(&aws, &w, split, Some(15));
        // With reduction fixed, driver time should rival or exceed reduce.
        assert!(
            big.driver > big.agg_reduce,
            "driver {:.1}s should dominate reduce {:.1}s at 960 cores",
            big.driver,
            big.agg_reduce
        );
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[2.0]) - 2.0).abs() < 1e-12);
    }
}
