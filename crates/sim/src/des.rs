//! The discrete-event engine.
//!
//! Work is a DAG of [`Op`]s. Each op waits for its dependencies, then
//! acquires the resources its kind implies and runs for a duration derived
//! from the cluster model. Scheduling is earliest-ready-first: among ops
//! whose dependencies are satisfied, the one whose ready time is smallest
//! acquires resources first — the property that makes serial-resource
//! (NIC, stream) queueing faithful.
//!
//! Resources:
//!
//! * **core pools** — one per executor plus one for the driver; an op
//!   occupies one slot (compute, serialize, merge);
//! * **serial resources** — NIC ingress/egress per node, per-stream channel
//!   marks; transfers occupy all of theirs simultaneously, store-and-forward
//!   style, exactly mirroring `sparker_net::transport::MeshTransport`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in seconds.
pub type SimTime = f64;

/// Index of an op in its graph.
pub type OpId = usize;

/// A multi-slot resource (an executor's cores).
#[derive(Debug, Clone)]
pub struct CorePool {
    /// Min-heap of slot free times.
    slots: BinaryHeap<Reverse<ordered::F64>>,
}

impl CorePool {
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0);
        Self { slots: (0..cores).map(|_| Reverse(ordered::F64(0.0))).collect() }
    }

    /// Acquires one slot at or after `ready` for `dur`; returns (start, end).
    pub fn acquire(&mut self, ready: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        let Reverse(ordered::F64(free)) = self.slots.pop().expect("pool has slots");
        let start = free.max(ready);
        let end = start + dur;
        self.slots.push(Reverse(ordered::F64(end)));
        (start, end)
    }
}

/// A serial resource (NIC direction, stream): one occupant at a time.
#[derive(Debug, Clone, Default)]
pub struct Serial {
    free_at: SimTime,
}

impl Serial {
    /// Occupies the resource at or after `ready` for `dur`.
    pub fn acquire(&mut self, ready: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(ready);
        let end = start + dur;
        self.free_at = end;
        (start, end)
    }
}

/// Totally-ordered f64 for heaps (no NaNs enter the simulator).
mod ordered {
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("NaN in simulator time")
        }
    }
}

/// What an op does, and therefore which resources it occupies.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// CPU work on one core slot of `executor` for `secs`.
    Compute { executor: usize, secs: f64 },
    /// CPU work on the driver core.
    DriverWork { secs: f64 },
    /// A message: occupies the stream `(src_exec, dst_exec, channel)`, the
    /// source node's egress NIC and the destination node's ingress NIC
    /// (skipped intra-node), then completes after the link latency.
    Xfer { src_exec: usize, dst_exec: usize, channel: usize, bytes: f64 },
    /// Pure latency: occupies no resource (pipelined control RPCs).
    Delay { secs: f64 },
    /// Synchronization only.
    Barrier,
}

/// One node of the DAG.
#[derive(Debug, Clone)]
pub struct Op {
    pub kind: OpKind,
    pub deps: Vec<OpId>,
}

/// Resource/timing parameters the DES needs (a distilled cluster model).
#[derive(Debug, Clone)]
pub struct DesParams {
    pub executors: usize,
    pub cores_per_executor: usize,
    /// Node index of each executor.
    pub node_of_executor: Vec<usize>,
    pub nodes: usize,
    /// Single-stream bandwidth (bytes/sec).
    pub stream_bandwidth: f64,
    /// NIC line rate per direction (bytes/sec).
    pub nic_bandwidth: f64,
    /// Intra-node stream bandwidth.
    pub intra_bandwidth: f64,
    /// One-way latency, inter-node.
    pub latency: f64,
    /// One-way latency, intra-node.
    pub intra_latency: f64,
}

/// Result of running a graph.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completion time of every op.
    pub finish: Vec<SimTime>,
    /// Completion time of the whole graph.
    pub makespan: SimTime,
}

/// A DAG of ops plus builder helpers.
#[derive(Debug, Default)]
pub struct OpGraph {
    pub ops: Vec<Op>,
}

impl OpGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, kind: OpKind, deps: Vec<OpId>) -> OpId {
        self.ops.push(Op { kind, deps });
        self.ops.len() - 1
    }

    pub fn compute(&mut self, executor: usize, secs: f64, deps: Vec<OpId>) -> OpId {
        self.push(OpKind::Compute { executor, secs }, deps)
    }

    pub fn driver(&mut self, secs: f64, deps: Vec<OpId>) -> OpId {
        self.push(OpKind::DriverWork { secs }, deps)
    }

    pub fn xfer(
        &mut self,
        src_exec: usize,
        dst_exec: usize,
        channel: usize,
        bytes: f64,
        deps: Vec<OpId>,
    ) -> OpId {
        self.push(OpKind::Xfer { src_exec, dst_exec, channel, bytes }, deps)
    }

    pub fn barrier(&mut self, deps: Vec<OpId>) -> OpId {
        self.push(OpKind::Barrier, deps)
    }

    /// Pure latency with no resource occupancy.
    pub fn delay(&mut self, secs: f64, deps: Vec<OpId>) -> OpId {
        self.push(OpKind::Delay { secs }, deps)
    }

    /// Runs the graph to completion under `params`.
    ///
    /// # Panics
    /// Panics on dependency cycles or out-of-range executor indices.
    pub fn run(&self, params: &DesParams) -> RunResult {
        let n = self.ops.len();
        let mut indegree: Vec<usize> = vec![0; n];
        let mut dependents: Vec<Vec<OpId>> = vec![Vec::new(); n];
        for (id, op) in self.ops.iter().enumerate() {
            indegree[id] = op.deps.len();
            for &d in &op.deps {
                assert!(d < id, "deps must point backwards (op {id} depends on {d})");
                dependents[d].push(id);
            }
        }

        let mut cores: Vec<CorePool> = (0..params.executors)
            .map(|_| CorePool::new(params.cores_per_executor))
            .collect();
        let mut driver_core = Serial::default();
        let mut nic_out: Vec<Serial> = vec![Serial::default(); params.nodes + 1];
        let mut nic_in: Vec<Serial> = vec![Serial::default(); params.nodes + 1];
        let mut streams: std::collections::HashMap<(usize, usize, usize), Serial> =
            std::collections::HashMap::new();

        // Ready heap keyed by ready time (max of dep finishes).
        let mut ready_at: Vec<SimTime> = vec![0.0; n];
        let mut finish: Vec<SimTime> = vec![0.0; n];
        let mut heap: BinaryHeap<Reverse<(ordered::F64, OpId)>> = BinaryHeap::new();
        for (id, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                heap.push(Reverse((ordered::F64(0.0), id)));
            }
        }

        // The driver occupies node index `params.nodes` for NIC purposes.
        let driver_node = params.nodes;
        let node_of = |exec: usize| -> usize {
            if exec == usize::MAX {
                driver_node
            } else {
                params.node_of_executor[exec]
            }
        };

        let mut done = 0;
        while let Some(Reverse((ordered::F64(ready), id))) = heap.pop() {
            let end = match &self.ops[id].kind {
                OpKind::Barrier => ready,
                OpKind::Delay { secs } => ready + secs,
                OpKind::Compute { executor, secs } => {
                    let (_, end) = cores[*executor].acquire(ready, *secs);
                    end
                }
                OpKind::DriverWork { secs } => {
                    let (_, end) = driver_core.acquire(ready, *secs);
                    end
                }
                OpKind::Xfer { src_exec, dst_exec, channel, bytes } => {
                    let src_node = node_of(*src_exec);
                    let dst_node = node_of(*dst_exec);
                    let same = src_node == dst_node;
                    let (bw, lat) = if same {
                        (params.intra_bandwidth, params.intra_latency)
                    } else {
                        (params.stream_bandwidth, params.latency)
                    };
                    let stream_t = if bw.is_finite() { bytes / bw } else { 0.0 };
                    let stream = streams
                        .entry((*src_exec, *dst_exec, *channel))
                        .or_default();
                    let (_, stream_end) = stream.acquire(ready, stream_t);
                    let mut end = stream_end;
                    if !same && params.nic_bandwidth.is_finite() {
                        let nic_t = bytes / params.nic_bandwidth;
                        let (_, out_end) = nic_out[src_node].acquire(ready, nic_t);
                        let (_, in_end) = nic_in[dst_node].acquire(ready.max(out_end - nic_t), nic_t);
                        end = end.max(out_end).max(in_end);
                    }
                    end + lat
                }
            };
            finish[id] = end;
            done += 1;
            for &dep in &dependents[id] {
                ready_at[dep] = ready_at[dep].max(end);
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    heap.push(Reverse((ordered::F64(ready_at[dep]), dep)));
                }
            }
        }
        assert_eq!(done, n, "dependency cycle: {} ops never became ready", n - done);

        let makespan = finish.iter().copied().fold(0.0, f64::max);
        RunResult { finish, makespan }
    }
}

/// Executor index alias used by transfers addressed to the driver.
pub const DRIVER: usize = usize::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    fn params(executors: usize, cores: usize) -> DesParams {
        DesParams {
            executors,
            cores_per_executor: cores,
            node_of_executor: (0..executors).map(|e| e % 2).collect(),
            nodes: 2,
            stream_bandwidth: 100.0, // 100 B/s for easy math
            nic_bandwidth: 200.0,
            intra_bandwidth: 1000.0,
            latency: 0.5,
            intra_latency: 0.1,
            }
    }

    #[test]
    fn independent_computes_run_in_parallel_up_to_cores() {
        let p = params(1, 2);
        let mut g = OpGraph::new();
        for _ in 0..4 {
            g.compute(0, 1.0, vec![]);
        }
        let r = g.run(&p);
        // 4 ops, 2 cores, 1s each -> 2s.
        assert!((r.makespan - 2.0).abs() < 1e-9, "{}", r.makespan);
    }

    #[test]
    fn dependencies_serialize() {
        let p = params(1, 4);
        let mut g = OpGraph::new();
        let a = g.compute(0, 1.0, vec![]);
        let b = g.compute(0, 1.0, vec![a]);
        let c = g.compute(0, 1.0, vec![b]);
        let r = g.run(&p);
        assert!((r.finish[c] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn xfer_time_is_bytes_over_bandwidth_plus_latency() {
        let p = params(2, 1);
        let mut g = OpGraph::new();
        // exec 0 (node 0) -> exec 1 (node 1): inter-node.
        let x = g.xfer(0, 1, 0, 100.0, vec![]);
        let r = g.run(&p);
        // 100 B at 100 B/s stream (NIC is faster) + 0.5 latency.
        assert!((r.finish[x] - 1.5).abs() < 1e-9, "{}", r.finish[x]);
    }

    #[test]
    fn intra_node_xfer_uses_fast_path() {
        let p = params(4, 1);
        let mut g = OpGraph::new();
        // exec 0 and exec 2 are both on node 0.
        let x = g.xfer(0, 2, 0, 100.0, vec![]);
        let r = g.run(&p);
        assert!((r.finish[x] - 0.2).abs() < 1e-9, "{}", r.finish[x]);
    }

    #[test]
    fn nic_serializes_concurrent_flows() {
        let p = params(4, 1);
        let mut g = OpGraph::new();
        // Two flows leave node 0 (exec 0 and exec 2) for node 1 on distinct
        // streams: each alone would take 100/100 = 1s; the shared 200 B/s
        // egress NIC adds 0.5s serialization for the second.
        g.xfer(0, 1, 0, 100.0, vec![]);
        g.xfer(2, 3, 0, 100.0, vec![]);
        let r = g.run(&p);
        // First flow: max(1.0 stream, 0.5 NIC) + 0.5 = 1.5.
        // Second flow NIC slot: [0.5, 1.0) -> still within its 1s stream time.
        // Both finish at 1.5; NIC only binds when streams are fast.
        assert!((r.makespan - 1.5).abs() < 1e-9, "{}", r.makespan);

        // Make the streams fast so the NIC becomes the bottleneck.
        let mut p2 = params(4, 1);
        p2.stream_bandwidth = 1e9;
        let mut g2 = OpGraph::new();
        g2.xfer(0, 1, 0, 100.0, vec![]);
        g2.xfer(2, 3, 0, 100.0, vec![]);
        let r2 = g2.run(&p2);
        // NIC: 0.5s each, serialized -> second finishes at 1.0 + latency.
        assert!((r2.makespan - 1.5).abs() < 1e-9, "{}", r2.makespan);
    }

    #[test]
    fn driver_transfers_use_driver_nic() {
        let p = params(2, 1);
        let mut g = OpGraph::new();
        let a = g.xfer(0, DRIVER, 0, 100.0, vec![]);
        let b = g.xfer(1, DRIVER, 0, 100.0, vec![]);
        let r = g.run(&p);
        // Driver ingress NIC (200 B/s) serializes: 0.5s each.
        // Streams are 1s each (parallel), so they dominate; both end ~1.5.
        assert!(r.finish[a] <= 1.5 + 1e-9 && r.finish[b] <= 1.5 + 1e-9);
        let mut p2 = p.clone();
        p2.stream_bandwidth = 1e9;
        let r2 = g.run(&p2);
        // Now ingress NIC binds: 0.5 + 0.5 serialized; makespan 1.0 + 0.5 lat.
        assert!((r2.makespan - 1.5).abs() < 1e-9, "{}", r2.makespan);
    }

    #[test]
    fn barrier_waits_for_all_deps() {
        let p = params(1, 4);
        let mut g = OpGraph::new();
        let a = g.compute(0, 1.0, vec![]);
        let b = g.compute(0, 3.0, vec![]);
        let bar = g.barrier(vec![a, b]);
        let c = g.compute(0, 1.0, vec![bar]);
        let r = g.run(&p);
        assert!((r.finish[c] - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "deps must point backwards")]
    fn forward_deps_rejected() {
        let mut g = OpGraph::new();
        g.ops.push(Op { kind: OpKind::Barrier, deps: vec![1] });
        g.ops.push(Op { kind: OpKind::Barrier, deps: vec![] });
        g.run(&params(1, 1));
    }
}
