//! DES ground truth for the tuner's algorithm menu.
//!
//! Builds the op-graph of every candidate in [`sparker_tuner::Algo`] — the
//! same step structure the threaded collectives execute — and runs it
//! through the DES. The tuner's alpha-beta model (DESIGN.md §5j) is a
//! closed-form approximation of exactly these graphs, so this module is
//! where the selector's contract is pinned at paper scale (120 executors /
//! 960 cores, shapes the threaded engine cannot reach): the selected
//! algorithm's simulated reduce-scatter time is never worse than the best
//! static choice by more than the calibrated margin.
//!
//! Like [`crate::aggsim::simulate_reduce_scatter`], only the reduce-scatter
//! phase is simulated — the gather-to-driver tail is common to every
//! algorithm and cancels out of the ranking (the same argument
//! [`CostModel::predict`] makes).

use sparker_net::profile::TransportKind;
use sparker_tuner::{Algo, CostModel};

use crate::aggsim::des_params_for;
use crate::cluster::SimCluster;
use crate::des::{DesParams, OpGraph, OpId};

/// Simulates one reduce-scatter of `msg_bytes` per executor under `algo`,
/// over `parallelism` PDR channels, topology-aware placement. Returns the
/// virtual wall-clock seconds of the collective.
pub fn simulate_algo(
    cluster: &SimCluster,
    algo: Algo,
    msg_bytes: f64,
    parallelism: usize,
) -> f64 {
    let e = cluster.executors();
    if e <= 1 {
        return 0.0;
    }
    let params = des_params_for(cluster, TransportKind::ScalableComm, true);
    let p = parallelism.max(1);
    let mut g = OpGraph::new();
    let finals = match algo {
        Algo::FlatRing => build_ring(&mut g, cluster, msg_bytes, p, 1),
        Algo::ChunkedRing(c) => build_ring(&mut g, cluster, msg_bytes, p, c as usize),
        Algo::Halving => build_halving(&mut g, cluster, msg_bytes, p),
        Algo::Tree => build_tree(&mut g, cluster, msg_bytes),
        Algo::Hierarchical => build_hierarchical(&mut g, cluster, &params, msg_bytes, p),
    };
    let end = g.barrier(finals);
    let r = g.run(&params);
    r.finish[end]
}

/// Simulated seconds for every candidate, in canonical order — the DES
/// counterpart of [`sparker_tuner::Selector::rank`].
pub fn simulate_rank(
    cluster: &SimCluster,
    msg_bytes: f64,
    parallelism: usize,
) -> Vec<(Algo, f64)> {
    Algo::candidates()
        .into_iter()
        .map(|a| (a, simulate_algo(cluster, a, msg_bytes, parallelism)))
        .collect()
}

/// The cost model the DES ground truth is judged against: same network
/// profile, same merge bandwidth — the calibration [`CostModel::from_profile`]
/// would produce on this cluster.
pub fn model_for(cluster: &SimCluster, margin_permille: u32) -> CostModel {
    CostModel::from_profile(&cluster.profile, cluster.merge_bandwidth, margin_permille)
}

/// The calibrated selector tolerance, as a multiplicative factor, for one
/// job size. Two regimes (EXPERIMENTS.md, "auto-tuned collectives"):
///
/// * **bandwidth regime** (≥ 256 KiB) — the model's terms dominate and the
///   selector must sit within the model's own `margin_permille`;
/// * **latency regime** (< 256 KiB) — every candidate finishes in well
///   under a millisecond and the model's alphas omit per-transfer software
///   overhead, so rankings between near-tied candidates can flip; a wider
///   500‰ tolerance applies where the absolute penalty is immaterial.
pub fn ground_truth_margin(model: &CostModel, msg_bytes: f64) -> f64 {
    const LATENCY_REGIME_BYTES: f64 = 256.0 * 1024.0;
    const LATENCY_REGIME_MARGIN_PERMILLE: f64 = 500.0;
    if msg_bytes >= LATENCY_REGIME_BYTES {
        1.0 + model.margin_permille as f64 / 1000.0
    } else {
        1.0 + LATENCY_REGIME_MARGIN_PERMILLE / 1000.0
    }
}

/// Ring reduce-scatter with `chunks`-way pipelining: per channel, each
/// segment is cut into `chunks` pieces that ride the same stream — while
/// one piece merges on a core, the next occupies the wire (the overlap the
/// engine's `ring_reduce_scatter_chunked_by` buys).
fn build_ring(
    g: &mut OpGraph,
    cluster: &SimCluster,
    msg_bytes: f64,
    p: usize,
    chunks: usize,
) -> Vec<OpId> {
    let e = cluster.executors();
    let c = chunks.max(1);
    let piece = msg_bytes / (p * e * c) as f64;
    let merge_t = piece / cluster.merge_bandwidth;
    let mut finals = Vec::new();
    for t in 0..p {
        for _q in 0..c {
            let mut send_ready: Vec<Option<OpId>> = vec![None; e];
            for _step in 0..e - 1 {
                let xfers: Vec<OpId> = (0..e)
                    .map(|r| {
                        let deps = send_ready[r].map(|d| vec![d]).unwrap_or_default();
                        g.xfer(r, (r + 1) % e, t, piece, deps)
                    })
                    .collect();
                for r in 0..e {
                    let from_prev = xfers[(r + e - 1) % e];
                    send_ready[r] = Some(g.compute(r, merge_t, vec![from_prev]));
                }
            }
            finals.extend(send_ready.into_iter().flatten());
        }
    }
    finals
}

/// Recursive-halving reduce-scatter: `ceil(log2 E)` rounds of pairwise
/// exchanges at distance E/2, E/4, … with halving block sizes. Under
/// packed placement the long-distance rounds cross the NIC with every
/// executor of a node sending at once — the contention the topology-aware
/// ring avoids, and the reason halving loses at scale despite fewer rounds.
fn build_halving(g: &mut OpGraph, cluster: &SimCluster, msg_bytes: f64, p: usize) -> Vec<OpId> {
    let e = cluster.executors();
    let mut finals = Vec::new();
    for t in 0..p {
        let mut cur: Vec<Option<OpId>> = vec![None; e];
        let mut block = (msg_bytes / p as f64) / 2.0;
        let mut d = e.next_power_of_two() / 2;
        while d >= 1 {
            let merge_t = block / cluster.merge_bandwidth;
            let prev = cur.clone();
            for r in 0..e {
                let partner = r ^ d;
                // Ranks whose partner falls off the (non-power-of-two) end
                // sit the round out; both directions are built from `r`.
                if partner >= e || partner < r {
                    continue;
                }
                let deps_r = prev[r].map(|x| vec![x]).unwrap_or_default();
                let deps_p = prev[partner].map(|x| vec![x]).unwrap_or_default();
                let to_partner = g.xfer(r, partner, t, block, deps_r);
                let to_r = g.xfer(partner, r, t, block, deps_p);
                let mut mp = vec![to_partner];
                mp.extend(prev[partner]);
                cur[partner] = Some(g.compute(partner, merge_t, mp));
                let mut mr = vec![to_r];
                mr.extend(prev[r]);
                cur[r] = Some(g.compute(r, merge_t, mr));
            }
            block /= 2.0;
            d /= 2;
        }
        finals.extend(cur.into_iter().flatten());
    }
    finals
}

/// Binomial tree over whole aggregators — the non-splitting baseline. Every
/// level serializes, ships, deserializes and merges the *entire* value, so
/// the cost per round never shrinks (Figures 1–4's anti-scaling).
fn build_tree(g: &mut OpGraph, cluster: &SimCluster, msg_bytes: f64) -> Vec<OpId> {
    let e = cluster.executors();
    let ser_t = msg_bytes / cluster.ser_bandwidth;
    let deser_merge_t =
        msg_bytes / cluster.deser_bandwidth + msg_bytes / cluster.merge_bandwidth;
    let mut cur: Vec<Option<OpId>> = vec![None; e];
    let mut d = 1;
    while d < e {
        for r in (0..e).step_by(2 * d) {
            let src = r + d;
            if src >= e {
                continue;
            }
            let ser_deps = cur[src].map(|x| vec![x]).unwrap_or_default();
            let ser = g.compute(src, ser_t, ser_deps);
            let x = g.xfer(src, r, 0, msg_bytes, vec![ser]);
            let mut deps = vec![x];
            deps.extend(cur[r]);
            cur[r] = Some(g.compute(r, deser_merge_t, deps));
        }
        d *= 2;
    }
    match cur[0] {
        Some(root) => vec![root],
        None => Vec::new(),
    }
}

/// Two-level hierarchical reduce-scatter: members stream their channel
/// slices to the node leader over shared memory (leader chain-merges), then
/// the leaders alone run the flat ring over `msg/(P·L)` segments — one NIC
/// flow per node, the fewest inter-node steps of the family.
fn build_hierarchical(
    g: &mut OpGraph,
    cluster: &SimCluster,
    params: &DesParams,
    msg_bytes: f64,
    p: usize,
) -> Vec<OpId> {
    // Node groups under the topology-aware placement the params encode.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); params.nodes];
    for (exec, &node) in params.node_of_executor.iter().enumerate() {
        groups[node].push(exec);
    }
    groups.retain(|m| !m.is_empty());
    let leaders: Vec<usize> = groups.iter().map(|m| m[0]).collect();
    let l = leaders.len();

    // Fold: per channel, each member ships msg/P to its leader.
    let slice = msg_bytes / p as f64;
    let slice_merge_t = slice / cluster.merge_bandwidth;
    let mut leader_ready: Vec<Vec<OpId>> = Vec::with_capacity(l);
    for members in &groups {
        let leader = members[0];
        let mut per_channel = Vec::with_capacity(p);
        for t in 0..p {
            let mut chain: Option<OpId> = None;
            for &m in &members[1..] {
                let x = g.xfer(m, leader, t, slice, vec![]);
                let mut deps = vec![x];
                deps.extend(chain);
                chain = Some(g.compute(leader, slice_merge_t, deps));
            }
            per_channel.push(chain.unwrap_or_else(|| g.barrier(vec![])));
        }
        leader_ready.push(per_channel);
    }

    if l <= 1 {
        return leader_ready.into_iter().flatten().collect();
    }
    // Leaders-only ring over msg/(P·L) segments.
    let seg = msg_bytes / (p * l) as f64;
    let seg_merge_t = seg / cluster.merge_bandwidth;
    let mut finals = Vec::new();
    for t in 0..p {
        let mut send_ready: Vec<OpId> = (0..l).map(|gi| leader_ready[gi][t]).collect();
        for _step in 0..l - 1 {
            let xfers: Vec<OpId> = (0..l)
                .map(|i| g.xfer(leaders[i], leaders[(i + 1) % l], t, seg, vec![send_ready[i]]))
                .collect();
            for i in 0..l {
                let from_prev = xfers[(i + l - 1) % l];
                send_ready[i] = g.compute(leaders[i], seg_merge_t, vec![from_prev]);
            }
        }
        finals.extend(send_ready);
    }
    finals
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_tuner::{JobShape, Selector};

    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;

    fn best_static(times: &[(Algo, f64)]) -> (Algo, f64) {
        times
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    }

    fn time_of(times: &[(Algo, f64)], algo: Algo) -> f64 {
        times.iter().find(|(a, _)| *a == algo).unwrap().1
    }

    /// The tentpole's ground truth, at the paper's AWS scale (120 executors
    /// / 960 cores): for every shape in the sweep, the tuner's pick is
    /// never worse than the best static choice by more than the calibrated
    /// margin.
    #[test]
    fn selector_within_margin_of_best_static_at_paper_scale() {
        let c = SimCluster::aws();
        assert_eq!(c.executors(), 120);
        assert_eq!(c.total_cores(), 960);
        let model = model_for(&c, 150);
        let sel = Selector::new(model);
        let p = 4;
        for bytes in [KB, 4.0 * KB, 64.0 * KB, 256.0 * KB, MB, 4.0 * MB] {
            let shape = JobShape::dense(bytes as u64, c.executors(), c.nodes, p);
            let d = sel.select(&shape);
            let times = simulate_rank(&c, bytes, p);
            let (best_algo, best) = best_static(&times);
            let chosen = time_of(&times, d.algo);
            let margin = ground_truth_margin(&model, bytes);
            assert!(
                chosen <= best * margin,
                "{} B: selected {:?} = {chosen:.4}s, best static {best_algo:?} = {best:.4}s \
                 (margin {margin:.2}); table: {times:?}",
                bytes as u64,
                d.algo,
            );
        }
    }

    /// Same contract on the BIC shape (48 executors / 8 nodes) so the
    /// margin holds on both Table 1 clusters, not just the one it was
    /// eyeballed on.
    #[test]
    fn selector_within_margin_on_bic_cluster() {
        let c = SimCluster::bic();
        let model = model_for(&c, 150);
        let sel = Selector::new(model);
        let p = 4;
        for bytes in [4.0 * KB, 64.0 * KB, 256.0 * KB, MB, 4.0 * MB] {
            let shape = JobShape::dense(bytes as u64, c.executors(), c.nodes, p);
            let d = sel.select(&shape);
            let times = simulate_rank(&c, bytes, p);
            let (best_algo, best) = best_static(&times);
            let chosen = time_of(&times, d.algo);
            let margin = ground_truth_margin(&model, bytes);
            assert!(
                chosen <= best * margin,
                "{} B: selected {:?} = {chosen:.4}s, best static {best_algo:?} = {best:.4}s \
                 (margin {margin:.2}); table: {times:?}",
                bytes as u64,
                d.algo,
            );
        }
    }

    /// The DES agrees with the model's headline claim: two-level beats the
    /// flat ring for large dense aggregators on a multi-node cluster.
    #[test]
    fn hierarchical_beats_flat_ring_at_paper_scale_in_the_des() {
        let c = SimCluster::aws();
        for bytes in [MB, 4.0 * MB] {
            let hier = simulate_algo(&c, Algo::Hierarchical, bytes, 4);
            let flat = simulate_algo(&c, Algo::FlatRing, bytes, 4);
            assert!(
                hier < flat,
                "{} B: hier {hier:.4}s must beat flat ring {flat:.4}s",
                bytes as u64
            );
        }
    }

    /// Whole-aggregator tree is the anti-scaling baseline in the DES too.
    #[test]
    fn tree_is_never_the_best_static_choice_at_scale() {
        let c = SimCluster::aws();
        let times = simulate_rank(&c, 4.0 * MB, 4);
        let (best_algo, _) = best_static(&times);
        assert_ne!(best_algo, Algo::Tree);
        assert!(time_of(&times, Algo::Tree) > 2.0 * best_static(&times).1);
    }

    /// One executor per node: the hierarchical fold is empty and the
    /// leaders' ring *is* the flat ring — times match to DES precision.
    #[test]
    fn hierarchical_degenerates_when_every_rank_is_its_own_node() {
        let c = SimCluster::bic().with_nodes(8).with_executors(1, 4);
        let hier = simulate_algo(&c, Algo::Hierarchical, MB, 2);
        let flat = simulate_algo(&c, Algo::FlatRing, MB, 2);
        let rel = (hier - flat).abs() / flat.max(1e-12);
        assert!(rel < 1e-9, "degenerate hier {hier} vs flat {flat}");
    }

    #[test]
    fn single_executor_is_free() {
        let c = SimCluster::bic().with_nodes(1).with_executors(1, 4);
        for algo in Algo::candidates() {
            assert_eq!(simulate_algo(&c, algo, MB, 4), 0.0);
        }
    }

    #[test]
    fn chunking_overlap_pays_off_only_with_bytes_to_hide() {
        let c = SimCluster::aws();
        // Tiny: nothing to overlap — chunking is a wash (within 1%).
        let flat_small = simulate_algo(&c, Algo::FlatRing, 64.0 * KB, 4);
        let c8_small = simulate_algo(&c, Algo::ChunkedRing(8), 64.0 * KB, 4);
        assert!(
            (c8_small - flat_small).abs() < 0.01 * flat_small,
            "{c8_small} vs {flat_small}"
        );
        // Large: merge hides behind the wire and the ring gets faster.
        let flat_big = simulate_algo(&c, Algo::FlatRing, 4.0 * MB, 4);
        let c8_big = simulate_algo(&c, Algo::ChunkedRing(8), 4.0 * MB, 4);
        assert!(c8_big < flat_big, "{c8_big} vs {flat_big}");
    }
}
