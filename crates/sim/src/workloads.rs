//! The paper's nine workloads (Table 2 × Table 3) as simulation inputs.
//!
//! Per-sample compute costs are calibrated against the paper's one anchor
//! with absolute numbers: LDA-N on BIC takes 1152 s of compute at 24 cores
//! over 40 iterations (Figure 3) → ≈ 2.3 core-ms per document per
//! iteration, i.e. ≈ 20 ns per (inner-iteration × word × topic) operation —
//! a plausible JVM floating-point cost. GLM costs use 50 ns per non-zero
//! (sparse unboxing + FMA in MLlib's axpy path).

/// Model family of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Gradient-descent GLM (LR or SVM — same aggregation structure).
    Glm,
    /// LDA topic model (sufficient-statistics aggregation).
    Lda,
}

/// One (model, dataset) pair of the evaluation.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper's label ("LR-K", "LDA-N", …).
    pub name: &'static str,
    pub kind: WorkloadKind,
    /// Samples (GLM) or documents (LDA).
    pub samples: u64,
    /// Feature dimension (GLM) or vocabulary (LDA).
    pub features: u64,
    /// Non-zeros per sample / words per document.
    pub nnz: u64,
    /// Topics (LDA only).
    pub topics: u64,
    /// Training iterations on BIC (Figure 1/2/17 use these).
    pub iterations_bic: usize,
    /// Training iterations on AWS (the paper shortened LDA-N to 15).
    pub iterations_aws: usize,
}

/// LDA E-step inner iterations (matches `sparker_ml::lda` default).
pub const LDA_INNER_ITERS: f64 = 5.0;
/// Calibrated per-op costs (seconds).
pub const LDA_OP_COST: f64 = 20e-9;
pub const GLM_NNZ_COST: f64 = 50e-9;

impl Workload {
    /// Aggregator payload in bytes: gradient+scalars for GLMs, K×V
    /// sufficient statistics (+ totals) for LDA.
    pub fn agg_bytes(&self) -> f64 {
        match self.kind {
            WorkloadKind::Glm => (self.features + 2) as f64 * 8.0,
            WorkloadKind::Lda => (self.topics * self.features + self.topics) as f64 * 8.0,
        }
    }

    /// Broadcast payload per iteration (weights / topic matrix).
    pub fn broadcast_bytes(&self) -> f64 {
        match self.kind {
            WorkloadKind::Glm => self.features as f64 * 8.0,
            WorkloadKind::Lda => (self.topics * self.features) as f64 * 8.0,
        }
    }

    /// Compute cost of one sample for one iteration, in seconds.
    pub fn per_sample_cost(&self) -> f64 {
        match self.kind {
            WorkloadKind::Glm => self.nnz as f64 * GLM_NNZ_COST,
            WorkloadKind::Lda => {
                LDA_INNER_ITERS * self.nnz as f64 * self.topics as f64 * LDA_OP_COST
            }
        }
    }

    pub fn iterations(&self, cluster_name: &str) -> usize {
        if cluster_name == "aws" {
            self.iterations_aws
        } else {
            self.iterations_bic
        }
    }
}

fn glm(name: &'static str, samples: u64, features: u64, nnz: u64) -> Workload {
    Workload {
        name,
        kind: WorkloadKind::Glm,
        samples,
        features,
        nnz,
        topics: 0,
        iterations_bic: 100,
        iterations_aws: 100,
    }
}

/// All nine workloads in the paper's Figure 1/17 order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "LDA-E",
            kind: WorkloadKind::Lda,
            samples: 39_861,
            features: 28_102,
            nnz: 160,
            topics: 100,
            iterations_bic: 40,
            iterations_aws: 15,
        },
        Workload {
            name: "LDA-N",
            kind: WorkloadKind::Lda,
            samples: 300_000,
            features: 102_660,
            nnz: 230,
            topics: 100,
            iterations_bic: 40,
            iterations_aws: 15,
        },
        glm("LR-A", 45_006_431, 1_000_000, 15),
        glm("LR-C", 51_882_752, 1_000_000, 39),
        glm("LR-K", 8_918_054, 20_216_830, 30),
        glm("SVM-A", 45_006_431, 1_000_000, 15),
        glm("SVM-C", 51_882_752, 1_000_000, 39),
        glm("SVM-K", 8_918_054, 20_216_830, 30),
        glm("SVM-K12", 149_639_105, 54_686_452, 11),
    ]
}

/// Looks a workload up by its paper label.
pub fn by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_workloads_in_paper_order() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 9);
        assert_eq!(ws[1].name, "LDA-N");
        assert_eq!(ws.last().unwrap().name, "SVM-K12");
    }

    #[test]
    fn aggregator_sizes_match_paper_arithmetic() {
        let mb = 1024.0 * 1024.0;
        let ldan = by_name("LDA-N").unwrap();
        assert!((78.0..79.0).contains(&(ldan.agg_bytes() / mb)), "LDA-N ~78 MiB");
        let lrk = by_name("LR-K").unwrap();
        assert!((154.0..155.0).contains(&(lrk.agg_bytes() / mb)), "LR-K ~154 MiB");
        let k12 = by_name("SVM-K12").unwrap();
        assert!((417.0..418.0).contains(&(k12.agg_bytes() / mb)), "SVM-K12 ~417 MiB");
    }

    #[test]
    fn lda_n_compute_calibration_anchor() {
        // Paper Figure 3: 1152s of compute at 24 cores over 40 iterations.
        let w = by_name("LDA-N").unwrap();
        let per_iter_core_secs = w.samples as f64 * w.per_sample_cost();
        let wall_at_24_cores = per_iter_core_secs * 40.0 / 24.0;
        assert!(
            (900.0..1400.0).contains(&wall_at_24_cores),
            "calibration drifted: {wall_at_24_cores:.0}s vs paper 1152s"
        );
    }

    #[test]
    fn reduction_heavy_workloads_have_big_aggregators() {
        // The paper: LDA-N, LR-K, SVM-K, SVM-K12 speed up >2x on AWS because
        // their aggregators are large relative to compute.
        let heavy = ["LDA-N", "LR-K", "SVM-K", "SVM-K12"];
        let mb = 1024.0 * 1024.0;
        for name in heavy {
            let w = by_name(name).unwrap();
            assert!(w.agg_bytes() / mb > 50.0, "{name}: {} MiB", w.agg_bytes() / mb);
        }
        // ...and the modest speedups (avazu/criteo) have small ones.
        for name in ["LR-A", "SVM-C"] {
            let w = by_name(name).unwrap();
            assert!(w.agg_bytes() / mb < 10.0, "{name}: {} MiB", w.agg_bytes() / mb);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("LR-Z").is_none());
    }
}
