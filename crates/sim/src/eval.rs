//! The paper-parity evaluation harness (DESIGN.md §5k).
//!
//! One deterministic sweep regenerates every headline experiment of the
//! paper at paper scale and asserts each claim as a named bound:
//!
//! * **Fig 1–4** — anti-scaling of vanilla tree-aggregate: end-to-end
//!   speedup saturates while agg-reduce *grows* with node count;
//! * **Fig 14/16** — aggregation-stage speedup of split aggregation over
//!   tree, and the {flat ring, chunked ring, halving, hierarchical} ×
//!   {dense, sparse} ladder with the auto-tuner's pick checked against DES
//!   ground truth under a model calibrated *from DES traces*;
//! * **Fig 17** — geo-mean end-to-end LR/SVM/LDA speedup;
//! * **elastic scenarios** the paper never ran ([`crate::elastic`]):
//!   executor leave with survivor ring re-formation, join at a job
//!   boundary, SIGSTOP-style straggler, flapping link, lost frame with
//!   epoch-fenced retry — all driven by `net::fault` plans;
//! * **stacked configuration** — sparse + pipelined + auto-tuned against
//!   the vanilla dense flat ring.
//!
//! Determinism discipline: every number is pure-f64 DES arithmetic, every
//! scenario choice derives from the config seed via a splitmix step, and
//! every serialization uses fixed-precision formatting with no timestamps
//! — two runs with the same config are byte-identical.
//!
//! The harness never panics on a failed claim: [`run_paper_eval`] always
//! returns the full [`EvalReport`], and [`EvalReport::check`] converts the
//! first violated bound into a typed [`BoundViolation`] so callers (the
//! `paper_eval` bin, CI, tests) decide how to fail.

use std::fmt;
use std::time::Duration;

use sparker_obs::export::{figures_json, FigureSeries};
use sparker_obs::metrics;
use sparker_tuner::{calibrate_from_samples, Algo, CostModel, JobShape, Selector};

use crate::aggsim::{des_params_for, simulate_aggregation, Strategy};
use crate::algosim::{ground_truth_margin, model_for, simulate_algo, simulate_rank};
use crate::cluster::SimCluster;
use crate::elastic::{
    simulate_dropped_frame, simulate_executor_join, simulate_executor_leave, simulate_flapping_link,
    simulate_straggler, ElasticTimings,
};
use crate::mlrun::{geo_mean, simulate_training};
use crate::workloads::{all_workloads, Workload};

const KB: f64 = 1024.0;
const MB: f64 = 1024.0 * 1024.0;

/// Sweep size: full = the paper's shapes; smoke = a 24-executor CI shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalScale {
    /// Paper scale: AWS 120 executors / 960 cores, BIC node sweep to 8.
    Full,
    /// CI scale: 24 executors / 96 cores over 4 nodes, node sweep to 4.
    Smoke,
}

impl EvalScale {
    pub fn name(&self) -> &'static str {
        match self {
            EvalScale::Full => "full",
            EvalScale::Smoke => "smoke",
        }
    }
}

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    pub scale: EvalScale,
    /// Drives scenario choices (fault victims, links, sequences).
    pub seed: u64,
    /// Replaces the DES-calibrated selector model — the mistuning injection
    /// point `tests/paper_eval.rs` uses to prove bounds actually fire.
    pub model_override: Option<CostModel>,
}

impl EvalConfig {
    pub fn full(seed: u64) -> Self {
        Self { scale: EvalScale::Full, seed, model_override: None }
    }

    pub fn smoke(seed: u64) -> Self {
        Self { scale: EvalScale::Smoke, seed, model_override: None }
    }
}

/// Direction of a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundOp {
    AtLeast,
    AtMost,
}

impl BoundOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BoundOp::AtLeast => ">=",
            BoundOp::AtMost => "<=",
        }
    }

    fn json_name(&self) -> &'static str {
        match self {
            BoundOp::AtLeast => "at_least",
            BoundOp::AtMost => "at_most",
        }
    }
}

/// One named, self-asserting claim.
#[derive(Debug, Clone)]
pub struct BoundCheck {
    /// Stable identifier, e.g. `agg_speedup_max`.
    pub name: &'static str,
    /// The paper claim (or extension) this bound encodes.
    pub claim: &'static str,
    pub measured: f64,
    pub op: BoundOp,
    pub limit: f64,
}

impl BoundCheck {
    pub fn holds(&self) -> bool {
        match self.op {
            BoundOp::AtLeast => self.measured >= self.limit,
            BoundOp::AtMost => self.measured <= self.limit,
        }
    }
}

/// Typed failure of one bound — what [`EvalReport::check`] returns instead
/// of panicking, so a mistuned configuration degrades into an error value.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundViolation {
    pub name: String,
    pub claim: String,
    pub measured: f64,
    pub op: BoundOp,
    pub limit: f64,
}

impl fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bound `{}` violated: measured {:.6} not {} {:.6} ({})",
            self.name,
            self.measured,
            self.op.symbol(),
            self.limit,
            self.claim
        )
    }
}

impl std::error::Error for BoundViolation {}

/// Everything one evaluation run produced.
#[derive(Debug, Clone)]
pub struct EvalReport {
    pub scale: EvalScale,
    pub seed: u64,
    /// Parity cluster shape (the AWS-class sweep cluster).
    pub executors: usize,
    pub cores: usize,
    pub nodes: usize,
    pub bounds: Vec<BoundCheck>,
    pub figures: Vec<FigureSeries>,
}

impl EvalReport {
    /// First violated bound as a typed error; `Ok` when every claim holds.
    pub fn check(&self) -> Result<(), BoundViolation> {
        match self.bounds.iter().find(|b| !b.holds()) {
            None => Ok(()),
            Some(b) => Err(BoundViolation {
                name: b.name.to_string(),
                claim: b.claim.to_string(),
                measured: b.measured,
                op: b.op,
                limit: b.limit,
            }),
        }
    }

    /// Measured value of a named bound, if present.
    pub fn measured(&self, name: &str) -> Option<f64> {
        self.bounds.iter().find(|b| b.name == name).map(|b| b.measured)
    }

    pub fn failed_count(&self) -> usize {
        self.bounds.iter().filter(|b| !b.holds()).count()
    }

    /// `results/paper_eval.json`: config echo + bounds + per-figure series.
    /// Deterministic — fixed-precision floats, no timestamps.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"eval\": {");
        s.push_str(&format!(
            "\"scale\": \"{}\", \"seed\": {}, \"executors\": {}, \"cores\": {}, \"nodes\": {}",
            self.scale.name(),
            self.seed,
            self.executors,
            self.cores,
            self.nodes
        ));
        s.push_str("},\n  \"bounds\": [");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"op\": \"{}\", \"measured\": {:.9}, \
                 \"limit\": {:.9}, \"pass\": {}}}",
                b.name,
                b.op.json_name(),
                b.measured,
                b.limit,
                b.holds()
            ));
        }
        s.push_str("\n  ],\n  \"figures\": ");
        s.push_str(figures_json(&self.figures).trim_end());
        s.push_str("\n}\n");
        s
    }

    /// `BENCH_10.json`: the flat headline family the trend checker diffs
    /// across commits (README "benchmark trajectory").
    pub fn bench_json(&self) -> String {
        let m = |name: &str| self.measured(name).unwrap_or(0.0);
        let mut s = String::new();
        s.push_str("{\n  \"bench\": \"paper_eval\",\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.scale == EvalScale::Smoke));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"headline\": {{\"agg_speedup_max\": {:.6}, \"geo_mean_e2e\": {:.6}, \
             \"anti_scaling_reduce_growth\": {:.6}, \"selector_parity\": {:.6}, \
             \"stacked_speedup\": {:.6}, \"elastic_recovery_ratio\": {:.6}}},\n",
            m("agg_speedup_max"),
            m("geo_mean_e2e"),
            m("anti_scaling_reduce_grows"),
            m("selector_within_margin"),
            m("stacked_speedup"),
            m("elastic_leave_bounded"),
        ));
        s.push_str(&format!(
            "  \"bounds\": {{\"checked\": {}, \"failed\": {}}}\n}}\n",
            self.bounds.len(),
            self.failed_count()
        ));
        s
    }

    /// The EXPERIMENTS.md "paper parity ledger" (claim → measured → bound →
    /// status), regenerated by `paper_eval` on every full run.
    pub fn ledger_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str("| bound | claim | measured | bound value | status |\n");
        s.push_str("|---|---|---|---|---|\n");
        for b in &self.bounds {
            s.push_str(&format!(
                "| `{}` | {} | {:.3} | {} {:.3} | {} |\n",
                b.name,
                b.claim,
                b.measured,
                b.op.symbol(),
                b.limit,
                if b.holds() { "pass" } else { "FAIL" }
            ));
        }
        s
    }
}

/// One splitmix64 step — the seed-derivation primitive for scenario
/// choices (victims, links, sequences). Deterministic, stateless.
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Calibrates the selector's cost model from DES traces: replays single
/// point-to-point transfers through the event engine at several sizes,
/// intra- and inter-node, and least-squares-fits alpha/beta from the
/// simulated `(bytes, secs)` samples — the same fit the live stack runs
/// over `collective.step` spans, fed from the simulator instead.
pub fn des_calibrated_model(cluster: &SimCluster, margin_permille: u32) -> CostModel {
    let params = des_params_for(cluster, sparker_net::profile::TransportKind::ScalableComm, true);
    let e = cluster.executors();
    // Under topology-aware placement executors 0 and 1 share a node (when
    // the node holds more than one) and 0 and e-1 never do.
    let intra_peer = 1.min(e - 1);
    let inter_peer = e - 1;
    let mut intra: Vec<(f64, f64)> = Vec::new();
    let mut inter: Vec<(f64, f64)> = Vec::new();
    for bytes in [4.0 * KB, 64.0 * KB, 256.0 * KB, MB, 4.0 * MB] {
        for (peer, samples) in [(intra_peer, &mut intra), (inter_peer, &mut inter)] {
            let mut g = crate::des::OpGraph::new();
            let x = g.xfer(0, peer, 0, bytes, vec![]);
            let r = g.run(&params);
            samples.push((bytes, r.finish[x]));
        }
    }
    // On a multi-node cluster the two sample sets exercise the two link
    // classes; keep merge throughput + margin from the profile model.
    let cal = calibrate_from_samples(&intra, &inter);
    cal.apply(&model_for(cluster, margin_permille))
}

struct Sweep {
    /// BIC-class cluster for the node sweep (figures 1–4, 16, 17).
    bic: SimCluster,
    node_sweep: Vec<usize>,
    workloads: Vec<Workload>,
    /// AWS-class cluster for the algorithm ladder + elastic scenarios.
    aws: SimCluster,
    ladder: Vec<f64>,
    fig16_mib: Vec<f64>,
    elastic_msg: f64,
}

fn sweep_for(scale: EvalScale) -> Sweep {
    match scale {
        EvalScale::Full => Sweep {
            bic: SimCluster::bic(),
            node_sweep: vec![1, 2, 4, 8],
            workloads: all_workloads(),
            aws: SimCluster::aws(),
            ladder: vec![64.0 * KB, 256.0 * KB, MB, 4.0 * MB],
            fig16_mib: vec![16.0, 64.0, 256.0],
            elastic_msg: 256.0 * MB,
        },
        EvalScale::Smoke => Sweep {
            bic: SimCluster::bic(),
            node_sweep: vec![1, 2, 4],
            workloads: all_workloads()
                .into_iter()
                .filter(|w| ["LDA-E", "LR-A", "SVM-K"].contains(&w.name))
                .collect(),
            // 24 executors / 96 cores over 4 nodes (ISSUE: reduced scale).
            aws: SimCluster::aws().with_nodes(4).with_executors(6, 4),
            ladder: vec![256.0 * KB, MB],
            fig16_mib: vec![16.0, 64.0],
            elastic_msg: 64.0 * MB,
        },
    }
}

/// Runs the whole evaluation sweep. Never panics on a failed claim; the
/// returned report carries every bound with its measured value.
pub fn run_paper_eval(cfg: &EvalConfig) -> EvalReport {
    let sw = sweep_for(cfg.scale);
    let full = cfg.scale == EvalScale::Full;
    let mut bounds: Vec<BoundCheck> = Vec::new();
    let mut figures: Vec<FigureSeries> = Vec::new();
    let mut bound = |name, claim, measured, op, limit| {
        bounds.push(BoundCheck { name, claim, measured, op, limit });
    };
    metrics::counter("eval.runs").inc();

    // ---- Fig 1–4: anti-scaling of vanilla tree aggregation ------------
    let split4 = Strategy::Split { parallelism: 4, topology_aware: true };
    let mut tree_total_geo = Vec::new();
    let mut tree_reduce_geo = Vec::new();
    let mut tree_compute_geo = Vec::new();
    let mut split_reduce_geo = Vec::new();
    for &n in &sw.node_sweep {
        let c = sw.bic.clone().with_nodes(n);
        let tree: Vec<_> = sw
            .workloads
            .iter()
            .map(|w| simulate_training(&c, w, Strategy::Tree, None))
            .collect();
        let split: Vec<_> =
            sw.workloads.iter().map(|w| simulate_training(&c, w, split4, None)).collect();
        tree_total_geo.push(geo_mean(&tree.iter().map(|t| t.total()).collect::<Vec<_>>()));
        tree_reduce_geo.push(geo_mean(&tree.iter().map(|t| t.agg_reduce).collect::<Vec<_>>()));
        tree_compute_geo.push(geo_mean(&tree.iter().map(|t| t.agg_compute).collect::<Vec<_>>()));
        split_reduce_geo.push(geo_mean(&split.iter().map(|t| t.agg_reduce).collect::<Vec<_>>()));
    }
    let nx: Vec<f64> = sw.node_sweep.iter().map(|&n| n as f64).collect();
    let speedups: Vec<f64> = tree_total_geo.iter().map(|&t| tree_total_geo[0] / t).collect();
    figures.push(FigureSeries::new(
        "fig01_anti_scaling",
        "tree_e2e_speedup_geomean",
        "nodes",
        "speedup_vs_1_node",
        nx.iter().copied().zip(speedups.iter().copied()).collect(),
    ));
    figures.push(FigureSeries::new(
        "fig03_decomposition",
        "tree_agg_reduce_geomean",
        "nodes",
        "seconds",
        nx.iter().copied().zip(tree_reduce_geo.iter().copied()).collect(),
    ));
    figures.push(FigureSeries::new(
        "fig03_decomposition",
        "tree_agg_compute_geomean",
        "nodes",
        "seconds",
        nx.iter().copied().zip(tree_compute_geo.iter().copied()).collect(),
    ));
    figures.push(FigureSeries::new(
        "fig03_decomposition",
        "split_agg_reduce_geomean",
        "nodes",
        "seconds",
        nx.iter().copied().zip(split_reduce_geo.iter().copied()).collect(),
    ));
    let last = sw.node_sweep.len() - 1;
    let monotone = (0..last)
        .map(|i| tree_reduce_geo[i + 1] / tree_reduce_geo[i])
        .fold(f64::INFINITY, f64::min);
    bound(
        "anti_scaling_monotone",
        "Fig 3: tree agg-reduce grows with every node-count step",
        monotone,
        BoundOp::AtLeast,
        1.0,
    );
    bound(
        "anti_scaling_reduce_grows",
        "Fig 3: tree agg-reduce at max nodes vs 1 node (paper: 111s -> 187s)",
        tree_reduce_geo[last] / tree_reduce_geo[0],
        BoundOp::AtLeast,
        if full { 1.2 } else { 1.1 },
    );
    bound(
        "anti_scaling_e2e_capped",
        "Fig 1: vanilla e2e speedup saturates far below linear (paper geo-mean 1.25x)",
        speedups[last],
        BoundOp::AtMost,
        2.5,
    );
    bound(
        "compute_scales",
        "Fig 3: agg-compute scales near-linearly (paper 4.47x at 8 nodes)",
        tree_compute_geo[0] / tree_compute_geo[last],
        BoundOp::AtLeast,
        if full { 3.0 } else { 2.0 },
    );
    bound(
        "split_reduce_flat",
        "Fig 16-class: split agg-reduce stays near-flat over the node sweep",
        split_reduce_geo[last] / split_reduce_geo[0],
        BoundOp::AtMost,
        1.8,
    );

    // ---- Fig 16: aggregation-stage speedup over aggregator size -------
    let c8 = sw.bic.clone().with_nodes(*sw.node_sweep.last().unwrap());
    let partitions = 2 * c8.total_cores();
    let mut agg_speedup_max: f64 = 0.0;
    let mut fig16 = Vec::new();
    for &mib in &sw.fig16_mib {
        let bytes = mib * MB;
        let tree = simulate_aggregation(&c8, Strategy::Tree, bytes, partitions, 0.05);
        let split = simulate_aggregation(&c8, split4, bytes, partitions, 0.05);
        let s = tree.total() / split.total();
        agg_speedup_max = agg_speedup_max.max(s);
        fig16.push((mib, s));
    }
    figures.push(FigureSeries::new(
        "fig16_agg_speedup",
        "tree_over_split",
        "aggregator_mib",
        "speedup",
        fig16,
    ));
    bound(
        "agg_speedup_max",
        "Fig 16: split aggregation speedup over tree (paper: 6.47x class)",
        agg_speedup_max,
        BoundOp::AtLeast,
        if full { 5.0 } else { 3.0 },
    );
    metrics::gauge("eval.agg_speedup_max_permille").set((agg_speedup_max * 1000.0) as i64);

    // ---- Fig 14/16 ladder: algorithms × density, selector parity ------
    let model = match cfg.model_override {
        Some(m) => m,
        None => des_calibrated_model(&sw.aws, 150),
    };
    let selector = Selector::new(model);
    let mut parity_worst: f64 = 0.0;
    let mut hier_vs_flat_min = f64::INFINITY;
    let mut per_algo: Vec<(Algo, Vec<(f64, f64)>)> =
        Algo::candidates().into_iter().map(|a| (a, Vec::new())).collect();
    for &density in &[1000u32, 100] {
        for &bytes in &sw.ladder {
            let shape = JobShape {
                bytes: bytes as u64,
                density_permille: density,
                executors: sw.aws.executors(),
                nodes: sw.aws.nodes,
                parallelism: 4,
            };
            let wire = model.wire_bytes(&shape);
            let times = simulate_rank(&sw.aws, wire, 4);
            let best = times
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::INFINITY, f64::min);
            let decision = selector.select(&shape);
            let chosen = times
                .iter()
                .find(|(a, _)| *a == decision.algo)
                .map(|&(_, t)| t)
                .unwrap_or(f64::INFINITY);
            let margin = ground_truth_margin(&model, wire);
            parity_worst = parity_worst.max(chosen / (best * margin));
            if density == 1000 {
                for (a, t) in &times {
                    if let Some(entry) = per_algo.iter_mut().find(|(pa, _)| pa == a) {
                        entry.1.push((bytes / KB, *t));
                    }
                }
                if bytes >= MB {
                    let flat = times.iter().find(|(a, _)| *a == Algo::FlatRing).unwrap().1;
                    let hier = times.iter().find(|(a, _)| *a == Algo::Hierarchical).unwrap().1;
                    hier_vs_flat_min = hier_vs_flat_min.min(flat / hier);
                }
            }
        }
    }
    for (a, pts) in per_algo {
        figures.push(FigureSeries::new(
            "fig14_algorithms_dense",
            a.name(),
            "message_kib",
            "seconds",
            pts,
        ));
    }
    bound(
        "selector_within_margin",
        "§5j: auto-tuner pick within calibrated margin of best static choice (DES ground truth)",
        parity_worst,
        BoundOp::AtMost,
        1.0,
    );
    bound(
        "hier_beats_flat_large",
        "Fig 16-class: hierarchical beats the flat ring for large dense aggregators",
        hier_vs_flat_min,
        BoundOp::AtLeast,
        1.05,
    );

    // ---- Fig 17: geo-mean end-to-end speedup --------------------------
    let mut e2e = Vec::new();
    for w in &sw.workloads {
        let spark = simulate_training(&c8, w, Strategy::Tree, None).total();
        let sparker = simulate_training(&c8, w, split4, None).total();
        e2e.push(spark / sparker);
    }
    figures.push(FigureSeries::new(
        "fig17_e2e_speedup",
        "split_over_tree",
        "workload_index",
        "speedup",
        e2e.iter().enumerate().map(|(i, &s)| (i as f64, s)).collect(),
    ));
    let geo_e2e = geo_mean(&e2e);
    let worst_e2e = e2e.iter().copied().fold(f64::INFINITY, f64::min);
    // Paper floor 1.60x with a 0.8 model margin -> 1.28 at full scale.
    bound(
        "geo_mean_e2e",
        "Fig 17: geo-mean end-to-end speedup (paper: 1.60x; floor = paper x 0.8 margin)",
        geo_e2e,
        BoundOp::AtLeast,
        if full { 1.28 } else { 1.1 },
    );
    bound(
        "e2e_never_loses",
        "Fig 17: split aggregation never loses end-to-end",
        worst_e2e,
        BoundOp::AtLeast,
        0.9,
    );
    metrics::gauge("eval.geo_mean_e2e_permille").set((geo_e2e * 1000.0) as i64);

    // ---- Elastic scenarios (extensions the paper never ran) -----------
    let timings = ElasticTimings::default();
    let e = sw.aws.executors();
    let victim = 1 + (splitmix(cfg.seed) % (e as u64 - 2)) as usize;
    let flap_from = (splitmix(cfg.seed ^ 1) % e as u64) as usize;
    let drop_seq = splitmix(cfg.seed ^ 2) % (e as u64 - 1);
    metrics::counter("eval.scenarios").add(5);

    let leave = simulate_executor_leave(&sw.aws, sw.elastic_msg, 4, victim, e as u64 / 2, &timings);
    bound(
        "elastic_leave_bounded",
        "extension: leave mid-collective recovers within 2.5x of the detection floor",
        leave.total_secs / (leave.clean_secs + timings.suspicion + timings.view_change),
        BoundOp::AtMost,
        2.5,
    );
    bound(
        "elastic_ring_beats_tree",
        "extension: re-formed survivor ring beats the tree fallback after a leave",
        leave.tree_fallback_secs / leave.survivor_secs,
        BoundOp::AtLeast,
        if full { 5.0 } else { 2.0 },
    );

    let join = simulate_executor_join(&sw.aws, sw.elastic_msg / 4.0, 0.05, &timings);
    bound(
        "elastic_join_speedup",
        "extension: a node's worth of joiners admitted at a boundary speeds the next iteration",
        join.before_secs / join.after_secs,
        BoundOp::AtLeast,
        1.02,
    );

    let pause = Duration::from_millis(500);
    let strag = simulate_straggler(&sw.aws, sw.elastic_msg, 4, victim, pause);
    let strag_ratio = strag.overhead_secs() / pause.as_secs_f64();
    bound(
        "straggler_overhead_lo",
        "extension: a SIGSTOP pause is not hidden by the synchronous ring",
        strag_ratio,
        BoundOp::AtLeast,
        0.7,
    );
    bound(
        "straggler_overhead_hi",
        "extension: a SIGSTOP pause does not cascade beyond itself",
        strag_ratio,
        BoundOp::AtMost,
        1.3,
    );

    let flap = simulate_flapping_link(&sw.aws, sw.elastic_msg, 4, flap_from,
        Duration::from_millis(20), 6);
    bound(
        "flap_no_amplification",
        "extension: flapping-link jitter is never amplified beyond the injected delay",
        flap.overhead_secs() / flap.injected_secs,
        BoundOp::AtMost,
        1.05,
    );

    let dropped = simulate_dropped_frame(&sw.aws, sw.elastic_msg, 4, flap_from, drop_seq, &timings);
    bound(
        "drop_detected_in_band",
        "extension: a lost frame's deadline fires within the clean makespan",
        (dropped.detect_secs - timings.deadline) / dropped.clean_secs,
        BoundOp::AtMost,
        1.05,
    );
    figures.push(FigureSeries::new(
        "elastic_scenarios",
        "total_over_clean",
        "scenario_index",
        "ratio",
        vec![
            (0.0, leave.total_secs / leave.clean_secs),
            (1.0, dropped.total_secs / dropped.clean_secs),
            (2.0, strag.faulted_secs / strag.clean_secs),
            (3.0, flap.faulted_secs / flap.clean_secs),
            (4.0, join.before_secs / join.after_secs),
        ],
    ));

    // ---- Stacked configuration: sparse + pipelined + auto-tuned -------
    let stacked_bytes = sw.elastic_msg;
    let vanilla = simulate_algo(&sw.aws, Algo::FlatRing, stacked_bytes, 1);
    let sparse_shape = JobShape {
        bytes: stacked_bytes as u64,
        density_permille: 10,
        executors: sw.aws.executors(),
        nodes: sw.aws.nodes,
        parallelism: 4,
    };
    let wire = model.wire_bytes(&sparse_shape);
    let stacked_algo = selector.select(&sparse_shape).algo;
    let stacked = simulate_algo(&sw.aws, stacked_algo, wire, 4);
    let stacked_speedup = vanilla / stacked;
    figures.push(FigureSeries::new(
        "stacked_config",
        "speedup_over_vanilla_dense_flat_ring",
        "message_mib",
        "speedup",
        vec![(stacked_bytes / MB, stacked_speedup)],
    ));
    bound(
        "stacked_speedup",
        "extension: sparse(10 permille) + pipelined + auto-tuned vs vanilla dense flat ring",
        stacked_speedup,
        BoundOp::AtLeast,
        if full { 10.0 } else { 2.0 },
    );
    metrics::gauge("eval.stacked_speedup_permille").set((stacked_speedup * 1000.0) as i64);

    let report = EvalReport {
        scale: cfg.scale,
        seed: cfg.seed,
        executors: sw.aws.executors(),
        cores: sw.aws.total_cores(),
        nodes: sw.aws.nodes,
        bounds,
        figures,
    };
    metrics::counter("eval.bounds_checked").add(report.bounds.len() as u64);
    metrics::counter("eval.bounds_failed").add(report.failed_count() as u64);
    metrics::counter("eval.figures_emitted").add(report.figures.len() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke scale holds every bound — the contract CI's step 12 rides on.
    #[test]
    fn smoke_scale_satisfies_every_bound() {
        let r = run_paper_eval(&EvalConfig::smoke(42));
        if let Err(v) = r.check() {
            panic!("{v}\nledger:\n{}", r.ledger_markdown());
        }
        assert!(r.bounds.len() >= 14, "the sweep asserts every headline claim");
        assert!(!r.figures.is_empty());
    }

    #[test]
    fn json_is_parseable_and_carries_all_bounds() {
        let r = run_paper_eval(&EvalConfig::smoke(1));
        let parsed = sparker_obs::json::parse(&r.to_json()).expect("valid json");
        let bounds = parsed.get("bounds").and_then(|v| v.as_array()).expect("bounds array");
        assert_eq!(bounds.len(), r.bounds.len());
        sparker_obs::json::parse(&r.bench_json()).expect("bench json valid");
    }

    #[test]
    fn violation_is_typed_and_descriptive() {
        let v = BoundViolation {
            name: "x".into(),
            claim: "c".into(),
            measured: 1.0,
            op: BoundOp::AtLeast,
            limit: 2.0,
        };
        let msg = format!("{v}");
        assert!(msg.contains("`x`") && msg.contains(">="), "{msg}");
    }
}
