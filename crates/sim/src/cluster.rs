//! Simulated cluster configurations (Table 1).

use sparker_net::profile::NetProfile;

use crate::des::DesParams;

/// A full simulation model of one cluster.
#[derive(Debug, Clone)]
pub struct SimCluster {
    pub name: &'static str,
    pub nodes: usize,
    pub executors_per_node: usize,
    pub cores_per_executor: usize,
    pub profile: NetProfile,
    /// Modeled JVM serializer throughput (bytes/sec).
    pub ser_bandwidth: f64,
    /// Modeled JVM deserializer throughput.
    pub deser_bandwidth: f64,
    /// Element-wise merge throughput (bytes/sec of aggregator merged).
    pub merge_bandwidth: f64,
    /// Driver-side per-task scheduling overhead (seconds per task) — the
    /// source of the paper's "Driver" component, which grows with scale.
    pub driver_per_task: f64,
    /// Fixed driver overhead per stage.
    pub driver_per_stage: f64,
    /// BlockManager-class control latency added per shuffle/result fetch.
    pub bm_control_latency: f64,
    /// Overrides the executor count (communication sweeps place e.g. 6
    /// executors across 8 nodes; `None` = `nodes × executors_per_node`).
    pub executor_override: Option<usize>,
}

const MB: f64 = 1024.0 * 1024.0;

impl SimCluster {
    /// Paper's BIC cluster: 8 nodes × 6 executors × 4 cores, 100 Gbps IPoIB.
    pub fn bic() -> Self {
        Self {
            name: "bic",
            nodes: 8,
            executors_per_node: 6,
            cores_per_executor: 4,
            profile: NetProfile::bic(),
            ser_bandwidth: 700.0 * MB,
            deser_bandwidth: 3000.0 * MB,
            merge_bandwidth: 5000.0 * MB,
            driver_per_task: 950e-6,
            driver_per_stage: 30e-3,
            bm_control_latency: 3861e-6,
            executor_override: None,
        }
    }

    /// Paper's AWS cluster: 10 × m5d.24xlarge (12 executors × 8 cores).
    pub fn aws() -> Self {
        Self {
            name: "aws",
            nodes: 10,
            executors_per_node: 12,
            cores_per_executor: 8,
            profile: NetProfile::aws(),
            ser_bandwidth: 700.0 * MB,
            deser_bandwidth: 3000.0 * MB,
            merge_bandwidth: 5000.0 * MB,
            driver_per_task: 950e-6,
            driver_per_stage: 30e-3,
            bm_control_latency: 3861e-6,
            executor_override: None,
        }
    }

    /// Shrinks the cluster to `nodes` nodes (strong-scaling sweeps).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 1);
        self.nodes = nodes;
        self
    }

    /// Reshapes executors for intra-node core sweeps (Figure 4/18 use 4-core
    /// executors below one full node).
    pub fn with_executors(mut self, executors_per_node: usize, cores: usize) -> Self {
        assert!(executors_per_node >= 1 && cores >= 1);
        self.executors_per_node = executors_per_node;
        self.cores_per_executor = cores;
        self
    }

    /// Spreads exactly `total` executors over the cluster's nodes (used by
    /// the paper's reduce-scatter sweeps, which vary executor count over a
    /// fixed 8-node cluster).
    pub fn with_total_executors(mut self, total: usize) -> Self {
        assert!(total >= 1);
        self.executor_override = Some(total);
        self
    }

    pub fn executors(&self) -> usize {
        self.executor_override
            .unwrap_or(self.nodes * self.executors_per_node)
    }

    pub fn total_cores(&self) -> usize {
        self.executors() * self.cores_per_executor
    }

    /// A cluster shape delivering exactly `cores` total cores, following the
    /// paper's strong-scaling methodology: fill executors (of
    /// `cores_per_executor` cores) within one node first, then add nodes.
    pub fn shaped_for_cores(&self, cores: usize) -> Self {
        let per_exec = self.cores_per_executor;
        let execs_needed = cores.div_ceil(per_exec);
        let full_node = self.executors_per_node;
        if execs_needed <= full_node {
            self.clone().with_nodes(1).with_executors(execs_needed.max(1), per_exec)
        } else {
            let nodes = execs_needed.div_ceil(full_node);
            self.clone().with_nodes(nodes)
        }
    }

    /// Distills into DES resource parameters, applying `parallelism`-channel
    /// stream bandwidth and topology-aware (or not) executor placement.
    pub fn des_params(&self, topology_aware: bool) -> DesParams {
        let e = self.executors();
        // Topology-aware ring order = executors packed per node (adjacent
        // ranks share nodes); unaware = round-robin (adjacent ranks on
        // different nodes), matching `sparker_net::topology` semantics.
        let node_of_executor: Vec<usize> = (0..e)
            .map(|i| {
                if topology_aware {
                    // Block placement: adjacent ring ranks share nodes.
                    i * self.nodes / e.max(self.nodes)
                } else {
                    i % self.nodes
                }
            })
            .collect();
        DesParams {
            executors: e,
            cores_per_executor: self.cores_per_executor,
            node_of_executor,
            nodes: self.nodes,
            stream_bandwidth: self.profile.per_channel_bandwidth,
            nic_bandwidth: self.profile.nic_bandwidth,
            intra_bandwidth: self.profile.intra_node.bandwidth,
            latency: self.profile.inter_node.latency.as_secs_f64(),
            intra_latency: self.profile.intra_node.latency.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes() {
        assert_eq!(SimCluster::bic().executors(), 48);
        assert_eq!(SimCluster::bic().total_cores(), 192);
        assert_eq!(SimCluster::aws().executors(), 120);
        assert_eq!(SimCluster::aws().total_cores(), 960);
    }

    #[test]
    fn shaped_for_cores_follows_paper_methodology() {
        // Figure 4/18 shrink executors to 4 cores; one node fits 24 of them.
        let aws = SimCluster::aws().with_executors(24, 4);
        let c8 = aws.shaped_for_cores(8);
        assert_eq!(c8.nodes, 1);
        assert_eq!(c8.executors(), 2);
        let c96 = aws.shaped_for_cores(96);
        assert_eq!(c96.nodes, 1);
        assert_eq!(c96.executors(), 24);
        // Beyond one node with the default shape: whole nodes.
        let aws_full = SimCluster::aws();
        let c960 = aws_full.shaped_for_cores(960);
        assert_eq!(c960.nodes, 10);
        assert_eq!(c960.total_cores(), 960);
    }

    #[test]
    fn topology_awareness_changes_placement() {
        let c = SimCluster::bic().with_nodes(2);
        let aware = c.des_params(true);
        let unaware = c.des_params(false);
        // Aware: first 6 executors on node 0; unaware: alternating.
        assert!(aware.node_of_executor[..6].iter().all(|&n| n == 0));
        assert_eq!(unaware.node_of_executor[0], 0);
        assert_eq!(unaware.node_of_executor[1], 1);
    }
}
