//! # sparker-sim
//!
//! A discrete-event simulator of the paper's two clusters, used where the
//! real (threaded, in-process) engine cannot go: 10 nodes × 96 cores,
//! 256 MB aggregators, 120-executor rings. The threaded engine and this
//! simulator consume the **same** network profiles and the same algorithm
//! step structure, so shapes agree between backends (an ablation bench
//! checks this); the simulator simply replaces wall-clock waiting with
//! virtual time.
//!
//! Architecture:
//!
//! * [`des`] — the event engine: ops with dependencies, multi-slot core
//!   pools, serial NIC/stream resources, earliest-ready-first scheduling.
//! * [`cluster`] — Table 1 as a simulation config (BIC / AWS presets).
//! * [`aggsim`] — op-graph builders for the three aggregation strategies
//!   (Tree, Tree+IMM, Split) and the reduce-scatter primitive; produces the
//!   paper's compute/reduce decomposition.
//! * [`algosim`] — op-graph builders for the tuner's full algorithm menu
//!   ([`sparker_tuner::Algo`]); the DES ground truth the calibrated
//!   selector is judged against at paper scale.
//! * [`p2p`] — closed-form point-to-point latency/throughput model
//!   (Figures 12–13).
//! * [`mlrun`] — end-to-end training-loop model for the nine Table 2 × 3
//!   workloads (Figures 1–4, 17, 18).
//! * [`workloads`] — the Table 2 × Table 3 workload grid (dataset profile ×
//!   model) the figure binaries sweep, with the paper-anchored cost
//!   constants of the calibration ledger (EXPERIMENTS.md).
//! * [`elastic`] — elastic/fault scenarios at paper scale: the DES replays
//!   [`sparker_net::fault::NetFaultPlan`] schedules (leave, join,
//!   straggler, flapping link, lost frame) against the ring collective.
//! * [`eval`] — the paper-parity evaluation harness (DESIGN.md §5k): one
//!   deterministic sweep regenerating every headline figure with each
//!   claim encoded as a named, self-asserting bound.
//!
//! The event engine is exact for uncontended chains — useful as a sanity
//! anchor before trusting contended runs:
//!
//! ```
//! use sparker_sim::des::{DesParams, OpGraph};
//!
//! let params = DesParams {
//!     executors: 1,
//!     cores_per_executor: 1,
//!     node_of_executor: vec![0],
//!     nodes: 1,
//!     stream_bandwidth: 1000.0,
//!     nic_bandwidth: 2000.0,
//!     intra_bandwidth: 10_000.0,
//!     latency: 0.01,
//!     intra_latency: 0.001,
//! };
//! let mut g = OpGraph::new();
//! let a = g.compute(0, 1.0, vec![]);
//! let b = g.compute(0, 2.0, vec![a]);
//! let r = g.run(&params);
//! assert!((r.finish[b] - 3.0).abs() < 1e-9);
//! assert!((r.makespan - 3.0).abs() < 1e-9);
//! ```

pub mod aggsim;
pub mod algosim;
pub mod cluster;
pub mod des;
pub mod elastic;
pub mod eval;
pub mod mlrun;
pub mod p2p;
pub mod workloads;

pub use aggsim::{simulate_aggregation, AggSimResult, Strategy};
pub use algosim::{ground_truth_margin, model_for, simulate_algo, simulate_rank};
pub use cluster::SimCluster;
pub use eval::{run_paper_eval, BoundCheck, BoundOp, BoundViolation, EvalConfig, EvalReport, EvalScale};
pub use mlrun::{simulate_training, TrainingBreakdown};
pub use workloads::{Workload, WorkloadKind};
