//! # sparker-sim
//!
//! A discrete-event simulator of the paper's two clusters, used where the
//! real (threaded, in-process) engine cannot go: 10 nodes × 96 cores,
//! 256 MB aggregators, 120-executor rings. The threaded engine and this
//! simulator consume the **same** network profiles and the same algorithm
//! step structure, so shapes agree between backends (an ablation bench
//! checks this); the simulator simply replaces wall-clock waiting with
//! virtual time.
//!
//! Architecture:
//!
//! * [`des`] — the event engine: ops with dependencies, multi-slot core
//!   pools, serial NIC/stream resources, earliest-ready-first scheduling.
//! * [`cluster`] — Table 1 as a simulation config (BIC / AWS presets).
//! * [`aggsim`] — op-graph builders for the three aggregation strategies
//!   (Tree, Tree+IMM, Split) and the reduce-scatter primitive; produces the
//!   paper's compute/reduce decomposition.
//! * [`p2p`] — closed-form point-to-point latency/throughput model
//!   (Figures 12–13).
//! * [`mlrun`] — end-to-end training-loop model for the nine Table 2 × 3
//!   workloads (Figures 1–4, 17, 18).

pub mod aggsim;
pub mod cluster;
pub mod des;
pub mod mlrun;
pub mod p2p;
pub mod workloads;

pub use aggsim::{simulate_aggregation, AggSimResult, Strategy};
pub use cluster::SimCluster;
pub use mlrun::{simulate_training, TrainingBreakdown};
pub use workloads::{Workload, WorkloadKind};
