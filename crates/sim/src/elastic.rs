//! Elastic and fault scenarios in the DES — the experiments the paper
//! never ran.
//!
//! The live cluster already survives all of this (PR 7's chaos tests), but
//! only at chaos-test scale. This module re-runs the same failure modes at
//! *paper* scale (120 executors / 960 cores) by replaying
//! [`sparker_net::fault::NetFaultPlan`] schedules inside the op-graph
//! simulator: the exact plan type the live `FaultyTransport` executes is
//! consulted read-only while the ring graph is built, so a scenario is
//! described once and runs against either engine.
//!
//! Conventions shared with the live transport:
//!
//! * fault-plan executor ids are DES executor indices (`ExecutorId(r)`);
//! * the send sequence on a directed link is 0-based and counted across
//!   all channels, in the order the collective emits transfers (channel
//!   0's rounds first — the same order the threaded engine opens streams);
//! * one-shot faults are consumed: a retry attempt replays the *remaining*
//!   schedule, so re-formed rings run clean unless the plan says otherwise.
//!
//! Failure handling is modeled with three timing constants
//! ([`ElasticTimings`]) mirroring the live stack's knobs: a receive
//! `deadline` (epoch-fenced retry for lost frames), a heartbeat
//! `suspicion` window (silence past it declares a peer dead), and the
//! driver's `view_change` cost (epoch bump + survivor ring re-formation).
//! Detection anchors on the DES time the faulted transfer *would* have
//! completed — the moment the receiver starts waiting in vain.

use std::collections::HashMap;
use std::time::Duration;

use sparker_net::fault::NetFaultPlan;
use sparker_net::profile::TransportKind;
use sparker_net::topology::ExecutorId;

use crate::aggsim::{des_params_for, simulate_aggregation, Strategy};
use crate::cluster::SimCluster;
use crate::des::{OpGraph, OpId};

/// Failure-handling timing constants, in DES virtual seconds. Defaults are
/// the live stack's knobs scaled to simulation time: detection must cost
/// something (otherwise recovery looks free) but not dominate every run.
#[derive(Debug, Clone, Copy)]
pub struct ElasticTimings {
    /// Heartbeat suspicion window: a peer silent this long is declared dead.
    pub suspicion: f64,
    /// Driver view change: epoch bump + survivor ring re-formation.
    pub view_change: f64,
    /// Per-transfer receive deadline before an epoch-fenced retry.
    pub deadline: f64,
}

impl Default for ElasticTimings {
    fn default() -> Self {
        Self { suspicion: 0.5, view_change: 0.05, deadline: 0.25 }
    }
}

/// Outcome of the executor-leave scenario.
#[derive(Debug, Clone, Copy)]
pub struct LeaveOutcome {
    /// Fault-free collective over all `E` members.
    pub clean_secs: f64,
    /// Time at which the survivors know the victim is dead.
    pub detect_secs: f64,
    /// Re-formed ring over the `E-1` survivors.
    pub survivor_secs: f64,
    /// The naive fallback: whole-aggregator binomial tree over survivors.
    pub tree_fallback_secs: f64,
    /// detect + view change + survivor ring.
    pub total_secs: f64,
}

/// Outcome of the executor-join scenario (admission at a job boundary).
#[derive(Debug, Clone, Copy)]
pub struct JoinOutcome {
    /// Iteration time before the joiners are admitted.
    pub before_secs: f64,
    /// Admission cost (epoch bump; joiners warm up off the critical path).
    pub admit_secs: f64,
    /// Iteration time once the ring includes the joiners.
    pub after_secs: f64,
}

/// Clean-vs-faulted pair for perturbation scenarios (straggler, flap).
#[derive(Debug, Clone, Copy)]
pub struct PerturbOutcome {
    pub clean_secs: f64,
    pub faulted_secs: f64,
    /// Total virtual seconds of delay the plan injected.
    pub injected_secs: f64,
}

impl PerturbOutcome {
    pub fn overhead_secs(&self) -> f64 {
        self.faulted_secs - self.clean_secs
    }
}

/// Outcome of the lost-frame scenario: detection + epoch-fenced re-run.
#[derive(Debug, Clone, Copy)]
pub struct RetryOutcome {
    pub clean_secs: f64,
    /// Time the receiver's deadline fires on the missing frame.
    pub detect_secs: f64,
    /// detect + full retry under the next epoch.
    pub total_secs: f64,
}

/// A transfer the plan faults, with how long after its would-be completion
/// the failure becomes known.
struct FaultEvent {
    op: OpId,
    detect_after: f64,
}

/// Builds a P-channel flat-ring reduce-scatter over `members` (cluster
/// executor indices), consulting `plan` per (link, seq): delays wrap the
/// transfer in an extra latency op; drops, corruptions, kills and
/// partitions are recorded as [`FaultEvent`]s (the op stays in the graph —
/// its finish time anchors detection).
fn ring_with_plan(
    g: &mut OpGraph,
    cluster: &SimCluster,
    members: &[usize],
    msg_bytes: f64,
    p: usize,
    plan: &NetFaultPlan,
    timings: &ElasticTimings,
) -> (Vec<OpId>, Vec<FaultEvent>) {
    let e = members.len();
    assert!(e >= 2, "a ring needs at least two members");
    let piece = msg_bytes / (p * e) as f64;
    let merge_t = piece / cluster.merge_bandwidth;
    let mut link_seq: HashMap<(usize, usize), u64> = HashMap::new();
    let mut sent_by: HashMap<usize, u64> = HashMap::new();
    let mut faults = Vec::new();
    let mut finals = Vec::new();
    for t in 0..p {
        let mut send_ready: Vec<Option<OpId>> = vec![None; e];
        for _step in 0..e - 1 {
            let xfers: Vec<OpId> = (0..e)
                .map(|r| {
                    let (src, dst) = (members[r], members[(r + 1) % e]);
                    let deps = send_ready[r].map(|d| vec![d]).unwrap_or_default();
                    let mut x = g.xfer(src, dst, t, piece, deps);
                    let (sid, did) = (ExecutorId(src as u32), ExecutorId(dst as u32));
                    let seq = {
                        let c = link_seq.entry((src, dst)).or_insert(0);
                        let s = *c;
                        *c += 1;
                        s
                    };
                    let nth_send = {
                        let c = sent_by.entry(src).or_insert(0);
                        let s = *c;
                        *c += 1;
                        s
                    };
                    if let Some(d) = plan.delay_of_nth(sid, did, seq) {
                        x = g.delay(d.as_secs_f64(), vec![x]);
                    }
                    if plan.drops_nth(sid, did, seq) {
                        faults.push(FaultEvent { op: x, detect_after: timings.deadline });
                    } else if plan.corrupts_nth(sid, did, seq) {
                        // Checksums catch corruption at delivery time.
                        faults.push(FaultEvent { op: x, detect_after: 0.0 });
                    }
                    if plan.kill_threshold(sid).is_some_and(|k| nth_send >= k) {
                        faults.push(FaultEvent { op: x, detect_after: timings.suspicion });
                    }
                    x
                })
                .collect();
            for r in 0..e {
                let from_prev = xfers[(r + e - 1) % e];
                send_ready[r] = Some(g.compute(members[r], merge_t, vec![from_prev]));
            }
        }
        finals.extend(send_ready.into_iter().flatten());
    }
    (finals, faults)
}

/// Runs one ring attempt; returns `(makespan, earliest detection time)`.
/// Detection is `None` when the plan faulted nothing this attempt.
fn run_ring_attempt(
    cluster: &SimCluster,
    members: &[usize],
    msg_bytes: f64,
    p: usize,
    plan: &NetFaultPlan,
    timings: &ElasticTimings,
) -> (f64, Option<f64>) {
    let params = des_params_for(cluster, TransportKind::ScalableComm, true);
    let mut g = OpGraph::new();
    let (finals, faults) = ring_with_plan(&mut g, cluster, members, msg_bytes, p, plan, timings);
    let end = g.barrier(finals);
    let r = g.run(&params);
    let detect = faults
        .iter()
        .map(|f| r.finish[f.op] + f.detect_after)
        .min_by(|a, b| a.partial_cmp(b).expect("NaN in detection time"));
    (r.finish[end], detect)
}

/// Whole-aggregator binomial tree over `members` — the naive fallback a
/// non-elastic engine would take after losing a ring member.
fn tree_fallback_secs(cluster: &SimCluster, members: &[usize], msg_bytes: f64) -> f64 {
    let e = members.len();
    if e <= 1 {
        return 0.0;
    }
    let params = des_params_for(cluster, TransportKind::ScalableComm, true);
    let ser_t = msg_bytes / cluster.ser_bandwidth;
    let deser_merge_t = msg_bytes / cluster.deser_bandwidth + msg_bytes / cluster.merge_bandwidth;
    let mut g = OpGraph::new();
    let mut cur: Vec<Option<OpId>> = vec![None; e];
    let mut d = 1;
    while d < e {
        for r in (0..e).step_by(2 * d) {
            let src = r + d;
            if src >= e {
                continue;
            }
            let ser_deps = cur[src].map(|x| vec![x]).unwrap_or_default();
            let ser = g.compute(members[src], ser_t, ser_deps);
            let x = g.xfer(members[src], members[r], 0, msg_bytes, vec![ser]);
            let mut deps = vec![x];
            deps.extend(cur[r]);
            cur[r] = Some(g.compute(members[r], deser_merge_t, deps));
        }
        d *= 2;
    }
    match cur[0] {
        Some(root) => g.run(&params).finish[root],
        None => 0.0,
    }
}

/// An executor dies mid-collective (`kill_after_sends` frames in): the ring
/// stalls, heartbeats go silent, the driver fences the epoch and the
/// survivors re-form the ring and re-run — the elastic path PR 7 exercises
/// live, here at paper scale. Also prices the naive alternative (tree over
/// survivors) so the scenario asserts re-formation is *worth it*, not just
/// possible.
pub fn simulate_executor_leave(
    cluster: &SimCluster,
    msg_bytes: f64,
    parallelism: usize,
    victim: usize,
    kill_after_sends: u64,
    timings: &ElasticTimings,
) -> LeaveOutcome {
    let e = cluster.executors();
    assert!(e >= 3 && victim < e, "need >=3 executors and a valid victim");
    let p = parallelism.max(1);
    let members: Vec<usize> = (0..e).collect();
    let (clean_secs, _) =
        run_ring_attempt(cluster, &members, msg_bytes, p, &NetFaultPlan::new(), timings);

    let plan = NetFaultPlan::new().kill_after_sends(ExecutorId(victim as u32), kill_after_sends);
    let (_, detect) = run_ring_attempt(cluster, &members, msg_bytes, p, &plan, timings);
    let detect_secs = detect.expect("kill threshold below total sends must fire");

    // Survivors re-form the ring; the victim sends nothing, so the same
    // plan replays clean (its remaining schedule only concerns the dead).
    let survivors: Vec<usize> = (0..e).filter(|&r| r != victim).collect();
    let (survivor_secs, none) =
        run_ring_attempt(cluster, &survivors, msg_bytes, p, &plan, timings);
    assert!(none.is_none(), "survivor ring must run clean");

    LeaveOutcome {
        clean_secs,
        detect_secs,
        survivor_secs,
        tree_fallback_secs: tree_fallback_secs(cluster, &survivors, msg_bytes),
        total_secs: detect_secs + timings.view_change + survivor_secs,
    }
}

/// A node's worth of executors joins at a job boundary: iteration `k` runs
/// on the shrunken cluster, the driver admits the joiners (epoch bump),
/// iteration `k+1` runs on the full ring. Partition count is fixed at the
/// full cluster's default, so the work is conserved and the join shows up
/// as compute-stage scaling.
pub fn simulate_executor_join(
    cluster: &SimCluster,
    agg_bytes: f64,
    compute_secs: f64,
    timings: &ElasticTimings,
) -> JoinOutcome {
    let e = cluster.executors();
    let joiners = cluster.executors_per_node.min(e.saturating_sub(2)).max(1);
    let partitions = 2 * cluster.total_cores();
    let strategy = Strategy::Split { parallelism: 4, topology_aware: true };
    let before = simulate_aggregation(
        &cluster.clone().with_total_executors(e - joiners),
        strategy,
        agg_bytes,
        partitions,
        compute_secs,
    );
    let after = simulate_aggregation(cluster, strategy, agg_bytes, partitions, compute_secs);
    JoinOutcome {
        before_secs: before.total(),
        admit_secs: timings.view_change,
        after_secs: after.total(),
    }
}

/// SIGSTOP-style straggler: `victim` freezes for `pause` right as the
/// collective starts, so every channel's first frame out of it is held.
/// The ring is synchronous — the stall should surface as ~`pause` of
/// end-to-end overhead, no more (no cascade), no less (no hiding).
pub fn simulate_straggler(
    cluster: &SimCluster,
    msg_bytes: f64,
    parallelism: usize,
    victim: usize,
    pause: Duration,
) -> PerturbOutcome {
    let e = cluster.executors();
    assert!(e >= 2 && victim < e);
    let p = parallelism.max(1);
    let timings = ElasticTimings::default();
    let members: Vec<usize> = (0..e).collect();
    let succ = ExecutorId(((victim + 1) % e) as u32);
    let vid = ExecutorId(victim as u32);
    // Link seqs count across channels in emission order: channel t's first
    // frame on the victim's egress link is seq t*(e-1).
    let mut plan = NetFaultPlan::new();
    for t in 0..p as u64 {
        plan = plan.delay_nth(vid, succ, t * (e as u64 - 1), pause);
    }
    let (clean_secs, _) =
        run_ring_attempt(cluster, &members, msg_bytes, p, &NetFaultPlan::new(), &timings);
    let (faulted_secs, _) = run_ring_attempt(cluster, &members, msg_bytes, p, &plan, &timings);
    PerturbOutcome { clean_secs, faulted_secs, injected_secs: pause.as_secs_f64() }
}

/// Flapping link: the first `flaps` frames on one directed link each queue
/// behind a `per_send_delay` redial. Delays ride the dependency chain, so
/// total overhead is bounded by the injected total — the assertion that
/// the DES does not amplify link jitter.
pub fn simulate_flapping_link(
    cluster: &SimCluster,
    msg_bytes: f64,
    parallelism: usize,
    from: usize,
    per_send_delay: Duration,
    flaps: u64,
) -> PerturbOutcome {
    let e = cluster.executors();
    assert!(e >= 2 && from < e);
    let p = parallelism.max(1);
    let timings = ElasticTimings::default();
    let members: Vec<usize> = (0..e).collect();
    let (fid, tid) = (ExecutorId(from as u32), ExecutorId(((from + 1) % e) as u32));
    let mut plan = NetFaultPlan::new();
    for n in 0..flaps {
        plan = plan.delay_nth(fid, tid, n, per_send_delay);
    }
    let (clean_secs, _) =
        run_ring_attempt(cluster, &members, msg_bytes, p, &NetFaultPlan::new(), &timings);
    let (faulted_secs, _) = run_ring_attempt(cluster, &members, msg_bytes, p, &plan, &timings);
    PerturbOutcome {
        clean_secs,
        faulted_secs,
        injected_secs: flaps as f64 * per_send_delay.as_secs_f64(),
    }
}

/// One frame vanishes on the wire: the receiver's deadline fires, the
/// driver fences the epoch, and the whole collective re-runs (the dropped
/// frame was one-shot — the retry replays the remaining, empty schedule).
pub fn simulate_dropped_frame(
    cluster: &SimCluster,
    msg_bytes: f64,
    parallelism: usize,
    from: usize,
    seq: u64,
    timings: &ElasticTimings,
) -> RetryOutcome {
    let e = cluster.executors();
    assert!(e >= 2 && from < e);
    let p = parallelism.max(1);
    let members: Vec<usize> = (0..e).collect();
    let (fid, tid) = (ExecutorId(from as u32), ExecutorId(((from + 1) % e) as u32));
    let plan = NetFaultPlan::new().drop_nth(fid, tid, seq);
    let (clean_secs, _) =
        run_ring_attempt(cluster, &members, msg_bytes, p, &NetFaultPlan::new(), timings);
    let (_, detect) = run_ring_attempt(cluster, &members, msg_bytes, p, &plan, timings);
    let detect_secs = detect.expect("in-range drop seq must fire");
    RetryOutcome {
        clean_secs,
        detect_secs,
        total_secs: detect_secs + timings.view_change + clean_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    fn small() -> SimCluster {
        SimCluster::bic().with_nodes(2) // 12 executors, plenty for structure
    }

    #[test]
    fn leave_detects_then_recovers_on_survivor_ring() {
        let c = small();
        let t = ElasticTimings::default();
        let o = simulate_executor_leave(&c, 4.0 * MB, 2, 3, 5, &t);
        assert!(o.detect_secs >= t.suspicion, "detection includes the silence window");
        assert!(o.survivor_secs > 0.0 && o.clean_secs > 0.0);
        assert!(
            o.total_secs > o.clean_secs,
            "recovery is never free: {} vs {}",
            o.total_secs,
            o.clean_secs
        );
        assert!(
            o.tree_fallback_secs > o.survivor_secs,
            "re-formed ring must beat the tree fallback: tree {} vs ring {}",
            o.tree_fallback_secs,
            o.survivor_secs
        );
    }

    #[test]
    fn join_at_boundary_speeds_the_next_iteration() {
        let c = small();
        let o = simulate_executor_join(&c, 16.0 * MB, 0.05, &ElasticTimings::default());
        assert!(
            o.before_secs > o.after_secs,
            "a node's worth of compute must help: {} vs {}",
            o.before_secs,
            o.after_secs
        );
        assert!(o.admit_secs > 0.0);
    }

    #[test]
    fn straggler_pause_surfaces_as_comparable_overhead() {
        let c = small();
        let pause = Duration::from_millis(400);
        let o = simulate_straggler(&c, 4.0 * MB, 2, 5, pause);
        let overhead = o.overhead_secs();
        assert!(
            overhead > 0.5 * pause.as_secs_f64() && overhead < 1.5 * pause.as_secs_f64(),
            "pause {:?} -> overhead {overhead}s (clean {}s)",
            pause,
            o.clean_secs
        );
    }

    #[test]
    fn flapping_link_overhead_is_bounded_by_injected_delay() {
        let c = small();
        let o = simulate_flapping_link(&c, 4.0 * MB, 2, 1, Duration::from_millis(20), 5);
        let overhead = o.overhead_secs();
        assert!(overhead >= 0.0);
        assert!(
            overhead <= o.injected_secs * 1.05 + 1e-9,
            "no amplification: {overhead}s vs injected {}s",
            o.injected_secs
        );
    }

    #[test]
    fn dropped_frame_retries_within_one_epoch() {
        let c = small();
        let t = ElasticTimings::default();
        let o = simulate_dropped_frame(&c, 4.0 * MB, 2, 2, 1, &t);
        assert!(o.detect_secs >= t.deadline);
        assert!(
            o.total_secs <= o.detect_secs + t.view_change + o.clean_secs + 1e-9,
            "retry is one clean re-run, not a spiral"
        );
    }

    #[test]
    fn clean_plan_reports_no_detection() {
        let c = small();
        let members: Vec<usize> = (0..c.executors()).collect();
        let (secs, detect) = run_ring_attempt(
            &c,
            &members,
            MB,
            2,
            &NetFaultPlan::new(),
            &ElasticTimings::default(),
        );
        assert!(secs > 0.0);
        assert!(detect.is_none());
    }
}
