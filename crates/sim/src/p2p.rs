//! Point-to-point latency/throughput model (Figures 12–13).
//!
//! Closed-form: the transports differ only in software overhead and
//! single-stream efficiency (see [`TransportKind`]), and throughput with
//! `P` parallel channels is `min(P × per_channel, NIC)`.

use sparker_net::profile::TransportKind;

use crate::cluster::SimCluster;

/// One-way small-message latency of `kind` on this cluster, in seconds.
pub fn latency(cluster: &SimCluster, kind: TransportKind) -> f64 {
    cluster.profile.one_way_latency(kind).as_secs_f64()
}

/// Streaming throughput (bytes/sec) for messages of `msg_bytes` over
/// `channels` parallel streams.
///
/// Per message the sender pays the software overhead once; large messages
/// amortize it, small ones don't — reproducing Figure 13's rise with
/// message size.
pub fn throughput(
    cluster: &SimCluster,
    kind: TransportKind,
    msg_bytes: f64,
    channels: usize,
) -> f64 {
    let bw = match kind {
        TransportKind::MpiRef => cluster.profile.mpi_bandwidth,
        _ => cluster.profile.parallel_bandwidth(kind, channels),
    };
    let per_msg_overhead = kind.software_overhead().as_secs_f64() / channels.max(1) as f64
        + cluster.profile.inter_node.latency.as_secs_f64() / 8.0; // pipelined
    let t = msg_bytes / bw + per_msg_overhead;
    msg_bytes / t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hierarchy_matches_figure_12() {
        let c = SimCluster::bic();
        let mpi = latency(&c, TransportKind::MpiRef);
        let sc = latency(&c, TransportKind::ScalableComm);
        let bm = latency(&c, TransportKind::BlockManager);
        // Paper: 15.94us / 72.73us / 3861.25us.
        assert!((mpi * 1e6 - 16.0).abs() < 2.0, "mpi {mpi}");
        assert!((sc * 1e6 - 73.0).abs() < 8.0, "sc {sc}");
        assert!((bm * 1e6 - 3861.0).abs() < 150.0, "bm {bm}");
    }

    #[test]
    fn throughput_rises_with_message_size() {
        let c = SimCluster::bic();
        let small = throughput(&c, TransportKind::ScalableComm, 1024.0, 4);
        let large = throughput(&c, TransportKind::ScalableComm, 64.0 * 1024.0 * 1024.0, 4);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn four_channels_approach_line_rate() {
        let c = SimCluster::bic();
        let msg = 64.0 * 1024.0 * 1024.0;
        let one = throughput(&c, TransportKind::ScalableComm, msg, 1);
        let four = throughput(&c, TransportKind::ScalableComm, msg, 4);
        let mpi = throughput(&c, TransportKind::MpiRef, msg, 1);
        assert!(four > 2.5 * one, "channels must scale throughput");
        // Paper: SC reaches 97% of MPI's 1185 MB/s.
        assert!(four / mpi > 0.90, "sc {four} vs mpi {mpi}");
    }
}
