//! Spark-BlockManager-style message passing (the paper's strawman).
//!
//! Before building its own communicator, the Sparker authors adapted Spark's
//! BlockManager — a distributed key-value block store — into a send/receive
//! library, and measured a one-way latency of **3861 µs**, 242× worse than
//! MPI (Figure 12). The overhead structure is: every `put` synchronously
//! registers the block with the driver-side master (an RPC), every fetch
//! first asks the master where the block lives (another RPC), and readiness
//! is discovered by polling.
//!
//! [`BlockManagerTransport`] reproduces that structure over the same shaped
//! wire as the real transport: a control-plane RPC cost on the send side, a
//! lookup RPC plus a polling quantum on the receive side. The payload itself
//! still streams through the underlying [`MeshTransport`], so large-message
//! bandwidth is identical — it is *latency* where BlockManager loses, exactly
//! as in the paper.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sparker_obs::{trace, Layer};

use crate::bytebuf::ByteBuf;

use crate::error::NetResult;
use crate::time::wait_for;
use crate::topology::ExecutorId;
use crate::transport::{MeshTransport, Transport};

/// Control-plane cost model for the BlockManager emulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockManagerCosts {
    /// One control RPC (block registration or location lookup).
    pub control_rpc: Duration,
    /// Average penalty from discovering readiness by polling.
    pub poll_quantum: Duration,
}

impl Default for BlockManagerCosts {
    /// Calibrated so one-way latency over the BIC wire lands at the paper's
    /// 3861 µs: 2 control RPCs + 1 poll quantum + 16 µs wire.
    fn default() -> Self {
        Self {
            control_rpc: Duration::from_micros(1200),
            poll_quantum: Duration::from_micros(1445),
        }
    }
}

/// Message passing emulated over a block store. See module docs.
pub struct BlockManagerTransport {
    inner: Arc<MeshTransport>,
    costs: BlockManagerCosts,
}

impl BlockManagerTransport {
    /// Wraps a shaped mesh with BlockManager control-plane costs.
    ///
    /// Control costs scale with the mesh profile's `time_scale`, so scaled
    /// micro-benchmarks keep the BM/SC/MPI ratios intact.
    pub fn new(inner: Arc<MeshTransport>, costs: BlockManagerCosts) -> Arc<Self> {
        Arc::new(Self { inner, costs })
    }

    /// Wraps with the default (paper-calibrated) costs.
    pub fn with_default_costs(inner: Arc<MeshTransport>) -> Arc<Self> {
        Self::new(inner, BlockManagerCosts::default())
    }

    fn scaled(&self, d: Duration) -> Duration {
        d.mul_f64(self.inner.profile().time_scale)
    }
}

impl Transport for BlockManagerTransport {
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn channels(&self) -> usize {
        self.inner.channels()
    }

    fn send(&self, from: ExecutorId, to: ExecutorId, channel: usize, msg: ByteBuf) -> NetResult<()> {
        // The put span covers registration RPC + wire handoff — the full
        // cost the paper attributes to a BlockManager `put`.
        let started = trace::enabled().then(Instant::now);
        let bytes = msg.len() as u64;
        // Synchronous block registration with the master before the data
        // becomes fetchable.
        wait_for(self.scaled(self.costs.control_rpc));
        self.inner.send(from, to, channel, msg)?;
        if let Some(t0) = started {
            trace::event_dur(
                Layer::Net,
                "bm.put",
                t0,
                &[("from", from.0 as u64), ("to", to.0 as u64), ("bytes", bytes)],
            );
        }
        Ok(())
    }

    fn recv(&self, at: ExecutorId, from: ExecutorId, channel: usize) -> NetResult<ByteBuf> {
        let started = trace::enabled().then(Instant::now);
        let msg = self.inner.recv(at, from, channel)?;
        // Location lookup RPC + average polling delay before the fetch
        // observes the registered block.
        wait_for(self.scaled(self.costs.control_rpc + self.costs.poll_quantum));
        if let Some(t0) = started {
            trace::event_dur(
                Layer::Net,
                "bm.fetch",
                t0,
                &[("at", at.0 as u64), ("from", from.0 as u64), ("bytes", msg.len() as u64)],
            );
        }
        Ok(msg)
    }

    fn recv_timeout(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        let started = trace::enabled().then(Instant::now);
        let msg = self.inner.recv_timeout(at, from, channel, timeout)?;
        wait_for(self.scaled(self.costs.control_rpc + self.costs.poll_quantum));
        if let Some(t0) = started {
            trace::event_dur(
                Layer::Net,
                "bm.fetch",
                t0,
                &[("at", at.0 as u64), ("from", from.0 as u64), ("bytes", msg.len() as u64)],
            );
        }
        Ok(msg)
    }

    fn drain_all(&self) -> usize {
        self.inner.drain_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NetProfile;
    use crate::topology::round_robin_layout;
    use std::time::Instant;

    #[test]
    fn default_costs_total_matches_paper_gap() {
        let c = BlockManagerCosts::default();
        let total = 2 * c.control_rpc + c.poll_quantum;
        let us = total.as_micros() as f64;
        // Paper: 3861us total including ~16us wire.
        assert!((3700.0..3900.0).contains(&us), "one-way overhead {us}us");
    }

    #[test]
    fn payload_still_roundtrips() {
        let execs = round_robin_layout(2, 1, 1);
        let mesh = MeshTransport::unshaped(&execs, 1);
        // Zero costs so the test is fast.
        let bm = BlockManagerTransport::new(
            mesh,
            BlockManagerCosts { control_rpc: Duration::ZERO, poll_quantum: Duration::ZERO },
        );
        bm.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"blk"))
            .unwrap();
        assert_eq!(&bm.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()[..], b"blk");
    }

    #[test]
    fn control_costs_are_enforced() {
        let execs = round_robin_layout(2, 1, 1);
        let mesh = MeshTransport::new(
            &execs,
            1,
            NetProfile::unshaped(),
            crate::profile::TransportKind::MpiRef,
        );
        let bm = BlockManagerTransport::new(
            mesh,
            BlockManagerCosts {
                control_rpc: Duration::from_millis(2),
                poll_quantum: Duration::from_millis(1),
            },
        );
        let start = Instant::now();
        bm.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"x"))
            .unwrap();
        bm.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        let elapsed = start.elapsed();
        // 2ms (send reg) + 2ms + 1ms (recv lookup + poll) = 5ms minimum.
        assert!(elapsed >= Duration::from_millis(5), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(50), "{elapsed:?}");
    }
}
