//! Error types shared across the substrate.

use std::fmt;

/// Errors surfaced by transports and codecs.
///
/// The in-process transports surface disconnection (an endpoint dropped
/// while a peer still waits on it) and malformed frames at the codec
/// boundary; the TCP transport ([`crate::tcp`]) adds genuine operating-system
/// socket failures via [`NetError::Io`]. The failure-semantics matrix —
/// which wire-level event maps to which variant — is specified normatively
/// in DESIGN.md §5g.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer endpoint hung up before (or while) the message was in flight.
    Disconnected,
    /// `recv` was asked for a frame but the deadline elapsed.
    Timeout,
    /// The operation was abandoned because its collective gang was cancelled
    /// (a peer task failed and the stage is being resubmitted).
    Cancelled,
    /// A frame failed to decode: the payload did not match the expected shape.
    Codec(String),
    /// An executor/rank/channel outside the configured mesh was addressed.
    InvalidAddress(String),
    /// An operating-system socket operation failed (bind/connect/accept or a
    /// read/write error that is not a clean disconnect). Carries the OS error
    /// text; connection-terminating errors are mapped to
    /// [`NetError::Disconnected`] instead.
    Io(String),
    /// A peer was declared lost by the failure detector: heartbeat suspicion
    /// or a socket failure that reconnection (DESIGN.md §5h) could not heal
    /// within its retry budget. Unlike [`NetError::Disconnected`] — which a
    /// transport with reconnection enabled treats as transient — this is
    /// terminal: the rank stays dead until the membership layer re-admits it.
    PeerLost {
        /// The rank of the lost peer.
        rank: u32,
        /// Why the detector gave up (last underlying error + budget state).
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Cancelled => write!(f, "collective cancelled"),
            NetError::Codec(msg) => write!(f, "codec error: {msg}"),
            NetError::InvalidAddress(msg) => write!(f, "invalid address: {msg}"),
            NetError::Io(msg) => write!(f, "io error: {msg}"),
            NetError::PeerLost { rank, detail } => write!(f, "peer {rank} lost: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience alias used across the substrate.
pub type NetResult<T> = Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(NetError::Disconnected.to_string(), "peer disconnected");
        assert_eq!(NetError::Timeout.to_string(), "receive timed out");
        assert_eq!(NetError::Cancelled.to_string(), "collective cancelled");
        assert_eq!(
            NetError::Codec("bad tag".into()).to_string(),
            "codec error: bad tag"
        );
        assert_eq!(
            NetError::InvalidAddress("rank 9 of 4".into()).to_string(),
            "invalid address: rank 9 of 4"
        );
        assert_eq!(
            NetError::Io("connection refused".into()).to_string(),
            "io error: connection refused"
        );
        assert_eq!(
            NetError::PeerLost { rank: 2, detail: "no heartbeat for 3s".into() }.to_string(),
            "peer 2 lost: no heartbeat for 3s"
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NetError::Disconnected, NetError::Disconnected);
        assert_ne!(NetError::Disconnected, NetError::Timeout);
    }
}
