//! Point-to-point micro-benchmarks.
//!
//! The paper's Figures 12 and 13 measure one-way latency and streaming
//! throughput between a pair of executors, comparing the scalable
//! communicator, BlockManager-based messaging, and MPI. These helpers run
//! the same measurements over any [`Transport`]: a ping-pong loop for
//! latency (one-way = RTT / 2, as in the OSU benchmarks) and a windowed
//! multi-channel stream for throughput.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::bytebuf::ByteBuf;

use crate::topology::ExecutorId;
use crate::transport::Transport;

/// Result of a latency measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyResult {
    /// Mean one-way latency.
    pub one_way: Duration,
    /// Number of ping-pong round trips measured.
    pub iterations: usize,
}

/// Measures mean one-way latency between executors 0 and 1 of `net` using
/// `iters` ping-pong round trips of `msg_bytes`-sized messages (after
/// `warmup` unmeasured rounds).
///
/// Spawns the responder thread internally; the calling thread acts as the
/// initiator.
pub fn measure_latency(
    net: Arc<dyn Transport>,
    msg_bytes: usize,
    warmup: usize,
    iters: usize,
) -> LatencyResult {
    assert!(net.size() >= 2, "latency bench needs two executors");
    assert!(iters > 0);
    let a = ExecutorId(0);
    let b = ExecutorId(1);
    let responder = {
        let net = net.clone();
        std::thread::spawn(move || {
            for _ in 0..(warmup + iters) {
                let m = net.recv(b, a, 0).expect("responder recv");
                net.send(b, a, 0, m).expect("responder send");
            }
        })
    };
    let payload = ByteBuf::from(vec![0u8; msg_bytes.max(1)]);
    for _ in 0..warmup {
        net.send(a, b, 0, payload.clone()).unwrap();
        net.recv(a, b, 0).unwrap();
    }
    let start = Instant::now();
    for _ in 0..iters {
        net.send(a, b, 0, payload.clone()).unwrap();
        net.recv(a, b, 0).unwrap();
    }
    let elapsed = start.elapsed();
    responder.join().expect("responder thread");
    LatencyResult { one_way: elapsed / (2 * iters as u32), iterations: iters }
}

/// Result of a throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputResult {
    /// Achieved goodput in bytes/sec.
    pub bytes_per_sec: f64,
    /// Total payload bytes moved.
    pub total_bytes: usize,
    /// Wall time of the measured window.
    pub elapsed: Duration,
}

impl ThroughputResult {
    /// Goodput in MB/s (the unit Figure 13 reports).
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes_per_sec / (1024.0 * 1024.0)
    }
}

/// Streams `count` messages of `msg_bytes` each from executor 0 to executor 1
/// across `channels` parallel channels (round-robin), then waits for a final
/// ack per channel. Mirrors the OSU bandwidth benchmark's windowed send.
pub fn measure_throughput(
    net: Arc<dyn Transport>,
    msg_bytes: usize,
    count: usize,
    channels: usize,
) -> ThroughputResult {
    assert!(net.size() >= 2);
    assert!(channels >= 1 && channels <= net.channels());
    assert!(count >= 1);
    let a = ExecutorId(0);
    let b = ExecutorId(1);
    let receiver = {
        let net = net.clone();
        std::thread::spawn(move || {
            // Drain every channel's share, then ack on each channel.
            let mut handles = Vec::new();
            for ch in 0..channels {
                let per = count / channels + usize::from(ch < count % channels);
                let net = net.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..per {
                        net.recv(b, a, ch).expect("stream recv");
                    }
                    net.send(b, a, ch, ByteBuf::from_static(b"ack")).expect("ack");
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
    };

    let payload = ByteBuf::from(vec![0u8; msg_bytes]);
    let start = Instant::now();
    // Parallel senders, one per channel, so per-channel shaping overlaps the
    // way parallel sockets do.
    std::thread::scope(|s| {
        for ch in 0..channels {
            let per = count / channels + usize::from(ch < count % channels);
            let net = net.clone();
            let payload = payload.clone();
            s.spawn(move || {
                for _ in 0..per {
                    net.send(a, b, ch, payload.clone()).expect("stream send");
                }
            });
        }
    });
    for ch in 0..channels {
        net.recv(a, b, ch).expect("ack recv");
    }
    let elapsed = start.elapsed();
    receiver.join().unwrap();
    let total = msg_bytes * count;
    ThroughputResult {
        bytes_per_sec: total as f64 / elapsed.as_secs_f64().max(1e-12),
        total_bytes: total,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{LinkProfile, NetProfile, TransportKind};
    use crate::topology::round_robin_layout;
    use crate::transport::MeshTransport;

    fn shaped_pair(latency_us: u64, bw: f64) -> Arc<MeshTransport> {
        let mut p = NetProfile::unshaped();
        p.inter_node = LinkProfile {
            latency: Duration::from_micros(latency_us),
            bandwidth: bw,
        };
        p.per_channel_bandwidth = bw;
        MeshTransport::new(&round_robin_layout(2, 1, 1), 4, p, TransportKind::MpiRef)
    }

    #[test]
    fn latency_measurement_reflects_profile() {
        let net = shaped_pair(500, f64::INFINITY);
        let r = measure_latency(net, 8, 3, 20);
        let us = r.one_way.as_micros() as f64;
        assert!((450.0..1500.0).contains(&us), "measured {us}us, expected ~500us");
    }

    #[test]
    fn throughput_measurement_reflects_bandwidth_cap() {
        // 100 MB/s single stream, 1 channel: measured should be close below.
        let net = shaped_pair(0, 100.0 * 1024.0 * 1024.0);
        let r = measure_throughput(net, 256 * 1024, 40, 1);
        let mbps = r.mb_per_sec();
        assert!((60.0..105.0).contains(&mbps), "measured {mbps} MB/s");
    }

    #[test]
    fn parallel_channels_scale_throughput_until_nic() {
        let mut p = NetProfile::unshaped();
        let chan_bw = 50.0 * 1024.0 * 1024.0;
        p.inter_node = LinkProfile { latency: Duration::ZERO, bandwidth: chan_bw };
        p.per_channel_bandwidth = chan_bw;
        p.nic_bandwidth = 2.5 * chan_bw;
        let net = MeshTransport::new(&round_robin_layout(2, 1, 1), 4, p, TransportKind::MpiRef);
        let one = measure_throughput(net.clone(), 256 * 1024, 32, 1).mb_per_sec();
        let four = measure_throughput(net, 256 * 1024, 32, 4).mb_per_sec();
        assert!(four > 1.6 * one, "parallel channels did not help: {one} vs {four}");
        // NIC cap: 4 channels can't exceed 2.5x one stream's cap by much.
        assert!(four < 3.2 * one, "NIC cap not enforced: {one} vs {four}");
    }
}
