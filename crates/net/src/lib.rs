//! # sparker-net
//!
//! Communication substrate for the Sparker reproduction.
//!
//! The Sparker paper (ICPP'21) builds a dedicated low-latency inter-executor
//! communication layer ("scalable communicator") on top of JeroMQ because
//! Spark's built-in mechanisms (RPC and the BlockManager) are either
//! driver-centric or far too slow (3861 µs round-trip vs 16 µs for MPI).
//! This crate provides the equivalent substrate for our in-process cluster:
//!
//! * [`bytebuf`] — the in-repo byte container ([`ByteBuf`] /
//!   [`bytebuf::ByteBufMut`]): reference-counted frames with zero-copy
//!   slicing, replacing the `bytes` crate so the workspace builds with no
//!   external dependencies.
//! * [`codec`] — the explicit serialization boundary. Every value that crosses
//!   an executor boundary is encoded into [`ByteBuf`] through this module,
//!   so serialized-byte counts (the quantity In-Memory Merge optimizes) are
//!   observable everywhere.
//! * [`sync`] — std-only locks (poison-recovering, see the module's
//!   convention note), a reentrant mutex, and the unbounded MPMC channel the
//!   transports and executor work queues run on.
//! * [`profile`] — network profiles: latency/bandwidth of intra-node and
//!   inter-node links, single-stream (per-channel) caps, NIC line rate, and
//!   per-transport software overheads. Presets reproduce the paper's two
//!   clusters (`BIC`: 8× 56-core nodes on 100 Gbps IPoIB, `AWS`: 10×
//!   96-core m5d.24xlarge on 25 Gbps Ethernet).
//! * [`transport`] — the [`transport::Transport`] trait plus the shaped
//!   in-process mesh transport used by executors. Message delivery pays the
//!   profiled latency + size/bandwidth delay, with separate accounting for
//!   per-channel streams and the node NIC, which is what makes the paper's
//!   "parallel channels are required to fill a TCP pipe" observation
//!   reproducible in-process.
//! * [`blockmanager`] — a deliberately slow polling key-value transport that
//!   emulates Spark BlockManager-based message passing (the paper's strawman).
//! * [`fault`] — deterministic transport-level fault injection: a
//!   [`fault::FaultyTransport`] decorator replaying a [`fault::NetFaultPlan`]
//!   (drops, delays, corruption, executor kills, partitions) against any
//!   inner transport, the substrate of the chaos suite.
//! * [`pool`] — the frame/buffer pool ([`FramePool`]): power-of-two
//!   freelists that recycle encode-buffer allocations through the hot
//!   reduction path (epoch wrapping, ring segment frames), with obs counters
//!   for hits/misses/bytes-reused. Reuse is refcount-safe and can never leak
//!   stale bytes (see the module docs and `tests/prop_pool.rs`).
//! * [`epoch`] — the `(op, attempt)` epoch header plus FNV-1a checksum that
//!   fences collective frames: stale-attempt frames are rejected by
//!   receivers, corrupted frames fail as [`NetError::Codec`] instead of
//!   decoding into a wrong answer.
//! * [`topology`] — executor ranks, the parallel directed ring (PDR), and
//!   topology-aware ordering (sort executors by hostname so that ring
//!   neighbours land on the same node whenever possible).
//! * [`hash`] — the streaming FNV-1a 64 hasher shared by the epoch and TCP
//!   frame checksums.
//! * [`tcp`] — the real-socket [`Transport`]: multi-process TCP over
//!   length-prefixed `SPKT` frames ([`tcp::frame`], normative spec in
//!   DESIGN.md §5g) with pooled zero-allocation send/receive, plus the
//!   driver-rooted rendezvous that assembles the peer mesh
//!   ([`tcp::rendezvous`]).
//! * [`mod@bench`] — ping-pong latency and streaming throughput micro-benchmarks
//!   used by the Figure 12/13 harnesses.

#![warn(missing_docs)]

pub mod bench;
pub mod blockmanager;
pub mod bytebuf;
pub mod codec;
pub mod epoch;
pub mod error;
pub mod fault;
pub mod hash;
pub mod pool;
pub mod profile;
pub mod sync;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod transport;

pub use bytebuf::{ByteBuf, ByteBufMut};
pub use codec::{Decoder, Encoder, Payload};
pub use error::NetError;
pub use fault::{FaultyTransport, NetFaultPlan};
pub use pool::{FramePool, PoolStats};
pub use profile::{LinkProfile, NetProfile, TransportKind};
pub use tcp::TcpTransport;
pub use topology::{ExecutorId, ExecutorInfo, LinkClass, NodeGroup, NodeTopology, RingTopology};
pub use transport::{MeshTransport, Transport};
