//! Precise wall-clock waiting.
//!
//! The shaped transports enforce microsecond-scale delays (the BIC profile's
//! one-way latency is 16 µs). `thread::sleep` on Linux routinely overshoots
//! by 50+ µs, which would destroy the latency ratios Figures 12 and 15 are
//! built on. [`wait_until`] therefore sleeps only while the remaining time is
//! comfortably above the scheduler quantum and spins (with `spin_loop` hints)
//! for the final stretch.

use std::time::{Duration, Instant};

/// Sleep-then-spin until `deadline`.
///
/// Returns immediately if the deadline has already passed. Accuracy on an
/// idle machine is within a few microseconds; the cost is burning one core
/// for at most the internal spin threshold (200 µs).
pub fn wait_until(deadline: Instant) {
    // Below this remaining duration we spin instead of sleeping.
    const SPIN_THRESHOLD: Duration = Duration::from_micros(200);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_THRESHOLD {
            std::thread::sleep(remaining - SPIN_THRESHOLD);
        } else {
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            return;
        }
    }
}

/// Wait for `delay` starting now. Zero-cost for `Duration::ZERO`.
pub fn wait_for(delay: Duration) {
    if delay > Duration::ZERO {
        wait_until(Instant::now() + delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_returns_immediately() {
        let start = Instant::now();
        wait_for(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn past_deadline_returns_immediately() {
        let start = Instant::now();
        wait_until(Instant::now() - Duration::from_secs(1));
        assert!(start.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn short_wait_is_accurate() {
        let target = Duration::from_micros(300);
        let start = Instant::now();
        wait_for(target);
        let elapsed = start.elapsed();
        assert!(elapsed >= target, "waited only {elapsed:?}");
        // Generous upper bound: CI machines can be noisy, but we should not
        // see sleep-quantum overshoot (tens of ms).
        assert!(elapsed < target + Duration::from_millis(5), "overshot to {elapsed:?}");
    }

    #[test]
    fn longer_wait_is_accurate() {
        let target = Duration::from_millis(5);
        let start = Instant::now();
        wait_for(target);
        let elapsed = start.elapsed();
        assert!(elapsed >= target);
        assert!(elapsed < target + Duration::from_millis(10), "overshot to {elapsed:?}");
    }
}
