//! Network profiles.
//!
//! The paper evaluates on two clusters (Table 1):
//!
//! * **BIC** — 8 in-house nodes, 56 logical cores each, 100 Gbps IPoIB EDR,
//!   6 executors × 4 cores per node. Measured over TCP/IP from the JVM the
//!   effective line rate is ~1.19 GB/s (Figure 13), a single TCP stream
//!   reaches only a fraction of that, MPI one-way latency is 15.94 µs, the
//!   scalable communicator 72.73 µs, and BlockManager messaging 3861 µs
//!   (Figure 12).
//! * **AWS** — 10× EC2 m5d.24xlarge, 96 logical cores each, 25 Gbps
//!   Ethernet, 12 executors × 8 cores per node.
//!
//! A [`NetProfile`] captures exactly the knobs those numbers hang off:
//! per-link latency and bandwidth for intra-node and inter-node hops, the
//! single-stream (per-channel) bandwidth cap that makes parallel channels
//! necessary, the node NIC line rate that bounds their sum, and per-transport
//! software overheads. The in-process transports enforce these numbers with
//! real waits; the discrete-event simulator consumes the same numbers as a
//! cost model, so both backends reproduce the same crossover points.

use std::time::Duration;

/// Latency/bandwidth of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// One-way propagation + protocol latency.
    pub latency: Duration,
    /// Sustainable bandwidth of a single stream on this link, in bytes/sec.
    /// `f64::INFINITY` disables bandwidth shaping.
    pub bandwidth: f64,
}

impl LinkProfile {
    /// A link with no artificial delay (used by unit tests).
    pub const fn unshaped() -> Self {
        Self { latency: Duration::ZERO, bandwidth: f64::INFINITY }
    }

    /// Time for `bytes` to stream over this link, excluding latency.
    pub fn serialization_delay(&self, bytes: usize) -> Duration {
        if self.bandwidth.is_infinite() || bytes == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth)
        }
    }

    /// Full one-way message time: latency plus streaming time.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        self.latency + self.serialization_delay(bytes)
    }
}

/// Which communication implementation a channel models.
///
/// The paper compares three (Figure 12); they differ only in software
/// overhead added on top of the wire, which is how we model them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Sparker's purpose-built communicator (JeroMQ-based in the paper).
    ScalableComm,
    /// Message passing emulated over Spark's BlockManager KV store:
    /// control-plane round trips and result polling dominate.
    BlockManager,
    /// MPI as the near-optimal reference (OSU micro-benchmarks).
    MpiRef,
}

impl TransportKind {
    /// Extra one-way software latency this transport adds on top of the wire.
    ///
    /// Calibrated so that on the BIC wire (≈16 µs base) the three transports
    /// land at the paper's measured 15.94 µs / 72.73 µs / 3861.25 µs.
    pub fn software_overhead(&self) -> Duration {
        match self {
            TransportKind::MpiRef => Duration::ZERO,
            TransportKind::ScalableComm => Duration::from_micros(57),
            TransportKind::BlockManager => Duration::from_micros(3845),
        }
    }

    /// Single-stream efficiency relative to the profile's per-channel cap.
    ///
    /// MPI over verbs fills the pipe with one stream; a single JVM TCP
    /// stream does not (Figure 13 — that is exactly why the PDR uses
    /// parallel channels).
    pub fn single_stream_efficiency(&self) -> f64 {
        match self {
            TransportKind::MpiRef => 1.0,
            TransportKind::ScalableComm => 1.0,
            TransportKind::BlockManager => 0.5,
        }
    }
}

/// Full network model for a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct NetProfile {
    /// Human-readable profile name ("bic", "aws", ...).
    pub name: &'static str,
    /// Links between executors on the same node (shared memory / loopback).
    pub intra_node: LinkProfile,
    /// Links between executors on different nodes.
    pub inter_node: LinkProfile,
    /// Bandwidth cap of one TCP stream (one PDR channel) in bytes/sec.
    pub per_channel_bandwidth: f64,
    /// Total NIC line rate per node in bytes/sec (sum cap over channels).
    pub nic_bandwidth: f64,
    /// MPI reference single-stream bandwidth in bytes/sec (Figure 13/15).
    pub mpi_bandwidth: f64,
    /// Scale factor applied to all delays (see [`NetProfile::scaled`]).
    pub time_scale: f64,
}

const MB: f64 = 1024.0 * 1024.0;

impl NetProfile {
    /// No shaping at all: unit tests and pure-correctness runs.
    pub fn unshaped() -> Self {
        Self {
            name: "unshaped",
            intra_node: LinkProfile::unshaped(),
            inter_node: LinkProfile::unshaped(),
            per_channel_bandwidth: f64::INFINITY,
            nic_bandwidth: f64::INFINITY,
            mpi_bandwidth: f64::INFINITY,
            time_scale: 1.0,
        }
    }

    /// The paper's in-house cluster: 100 Gbps IPoIB, TCP/IP from the JVM.
    ///
    /// Effective numbers (Figures 12–13): wire latency ≈ 16 µs, JVM TCP line
    /// rate ≈ 1185 MB/s, single stream ≈ 390 MB/s, intra-node transfers run
    /// at memory-ish speed through loopback.
    pub fn bic() -> Self {
        Self {
            name: "bic",
            intra_node: LinkProfile {
                latency: Duration::from_micros(8),
                bandwidth: 5200.0 * MB,
            },
            inter_node: LinkProfile {
                latency: Duration::from_micros(16),
                bandwidth: 390.0 * MB,
            },
            per_channel_bandwidth: 390.0 * MB,
            nic_bandwidth: 1185.0 * MB,
            mpi_bandwidth: 1185.0 * MB,
            time_scale: 1.0,
        }
    }

    /// The paper's EC2 cluster: 25 Gbps Ethernet (≈ 2900 MB/s effective).
    pub fn aws() -> Self {
        Self {
            name: "aws",
            intra_node: LinkProfile {
                latency: Duration::from_micros(10),
                bandwidth: 4800.0 * MB,
            },
            inter_node: LinkProfile {
                latency: Duration::from_micros(30),
                bandwidth: 850.0 * MB,
            },
            per_channel_bandwidth: 850.0 * MB,
            nic_bandwidth: 2680.0 * MB,
            mpi_bandwidth: 2680.0 * MB,
            time_scale: 1.0,
        }
    }

    /// Returns a copy with all delays multiplied by `factor`.
    ///
    /// Real-time micro-benchmarks on a laptop cannot afford to stream 256 MB
    /// at 390 MB/s per hop, so the harness scales both message sizes and
    /// delays down together; ratios between strategies are preserved because
    /// every path is shaped through the same profile.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "time scale must be positive");
        let scale_link = |l: &LinkProfile| LinkProfile {
            latency: l.latency.mul_f64(factor),
            bandwidth: l.bandwidth / factor,
        };
        Self {
            name: self.name,
            intra_node: scale_link(&self.intra_node),
            inter_node: scale_link(&self.inter_node),
            per_channel_bandwidth: self.per_channel_bandwidth / factor,
            nic_bandwidth: self.nic_bandwidth / factor,
            mpi_bandwidth: self.mpi_bandwidth / factor,
            time_scale: self.time_scale * factor,
        }
    }

    /// Link profile between two executors given their hosts.
    pub fn link(&self, same_host: bool) -> &LinkProfile {
        if same_host {
            &self.intra_node
        } else {
            &self.inter_node
        }
    }

    /// One-way latency of `kind` over an inter-node hop.
    pub fn one_way_latency(&self, kind: TransportKind) -> Duration {
        self.inter_node.latency + kind.software_overhead().mul_f64(self.time_scale)
    }

    /// Aggregate bandwidth available to `channels` parallel streams on one
    /// inter-node path: each stream is capped individually, and their sum is
    /// capped by the NIC.
    pub fn parallel_bandwidth(&self, kind: TransportKind, channels: usize) -> f64 {
        let per = self.per_channel_bandwidth * kind.single_stream_efficiency();
        (per * channels.max(1) as f64).min(self.nic_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unshaped_has_no_delay() {
        let p = NetProfile::unshaped();
        assert_eq!(p.inter_node.transfer_time(1 << 30), Duration::ZERO);
        assert_eq!(p.intra_node.transfer_time(0), Duration::ZERO);
    }

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let l = LinkProfile { latency: Duration::from_micros(10), bandwidth: 1e6 };
        let t = l.transfer_time(500_000);
        assert!((t.as_secs_f64() - 0.50001).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn bic_latency_hierarchy_matches_paper() {
        let p = NetProfile::bic();
        let mpi = p.one_way_latency(TransportKind::MpiRef);
        let sc = p.one_way_latency(TransportKind::ScalableComm);
        let bm = p.one_way_latency(TransportKind::BlockManager);
        // Paper: MPI 15.94us, SC 72.73us (4.56x), BM 3861us (242x).
        assert!((mpi.as_micros() as f64 - 16.0).abs() <= 1.0);
        let sc_ratio = sc.as_secs_f64() / mpi.as_secs_f64();
        assert!((3.5..6.0).contains(&sc_ratio), "SC/MPI = {sc_ratio}");
        let bm_ratio = bm.as_secs_f64() / mpi.as_secs_f64();
        assert!((150.0..350.0).contains(&bm_ratio), "BM/MPI = {bm_ratio}");
    }

    #[test]
    fn parallel_channels_needed_to_fill_bic_pipe() {
        let p = NetProfile::bic();
        let one = p.parallel_bandwidth(TransportKind::ScalableComm, 1);
        let four = p.parallel_bandwidth(TransportKind::ScalableComm, 4);
        let eight = p.parallel_bandwidth(TransportKind::ScalableComm, 8);
        assert!(four > 2.5 * one, "4 channels should ~4x one stream");
        // NIC caps the sum: going 4 -> 8 channels adds little.
        assert!(eight <= p.nic_bandwidth);
        assert!(eight / four < 1.2);
        // MPI fills the pipe with a single stream.
        let mpi = p.mpi_bandwidth;
        assert!(mpi >= eight * 0.95);
    }

    #[test]
    fn scaled_preserves_byte_time_products() {
        let p = NetProfile::bic();
        let s = p.scaled(100.0);
        // A 100x-smaller message over a 100x-slower link takes the same time.
        let t_full = p.inter_node.transfer_time(1_000_000);
        let t_scaled = s.inter_node.transfer_time(10_000);
        let dl_full = t_full.as_secs_f64() - p.inter_node.latency.as_secs_f64();
        let dl_scaled = t_scaled.as_secs_f64() - s.inter_node.latency.as_secs_f64();
        assert!((dl_full - dl_scaled).abs() / dl_full < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time scale must be positive")]
    fn scaled_rejects_nonpositive() {
        NetProfile::bic().scaled(0.0);
    }

    #[test]
    fn intra_node_is_faster_than_inter_node() {
        for p in [NetProfile::bic(), NetProfile::aws()] {
            assert!(p.intra_node.latency < p.inter_node.latency, "{}", p.name);
            assert!(p.intra_node.bandwidth > p.inter_node.bandwidth, "{}", p.name);
        }
    }
}
