//! Frame/buffer pool: allocation reuse for the reduction hot path.
//!
//! Every ring step used to pay two fresh `Vec` allocations: one when the
//! segment was encoded (`Payload::to_frame`) and one when the epoch header
//! was wrapped around it. A reduce-scatter over `N` ranks with `P` channels
//! and `C` pipeline chunks issues `P·(N−1)·C` of each per rank — all of
//! near-identical size, all dead within one step. [`FramePool`] recycles
//! those backing `Vec`s through power-of-two freelists: encoders draw from
//! the pool ([`crate::codec::Encoder::pooled`],
//! [`crate::codec::Payload::to_frame_pooled`]) and decoded frames return
//! their allocation once the value has been copied out
//! ([`crate::codec::Payload::from_frame_pooled`]). In steady state a ring
//! channel runs with zero frame allocations.
//!
//! # Why reuse cannot leak stale bytes
//!
//! A recycled buffer is handed out with `len == 0` — [`FramePool::acquire`]
//! clears the `Vec`, so only its *capacity* survives recycling — and a
//! [`ByteBuf`] frame exposes exactly the bytes the encoder wrote, never the
//! allocation's spare tail. A buffer that previously held garbage (or a
//! corrupted frame) therefore encodes and decodes bit-identically to a fresh
//! allocation; `tests/prop_pool.rs` pins this for every `Payload` impl.
//!
//! # Why reuse cannot race a reader
//!
//! [`FramePool::recycle_frame`] recovers the backing `Vec` only when the
//! frame's `Arc` is the sole owner (`Arc::try_unwrap`). A frame still
//! referenced anywhere — a zero-copy slice, a clone queued in a transport —
//! simply drops normally and is never reused under a reader.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use sparker_obs::metrics::{self, Counter, Gauge};

use crate::bytebuf::ByteBuf;
use crate::sync::Mutex;

/// Smallest pooled class: 2^6 = 64 bytes. Tinier buffers are cheaper to
/// allocate than to bucket.
const MIN_CLASS: u32 = 6;
/// Largest pooled class: 2^22 = 4 MiB. Aggregator segments far above this
/// are rare enough that caching them would just pin memory.
const MAX_CLASS: u32 = 22;
/// Retained buffers per size class; excess recycles are dropped.
const MAX_PER_CLASS: usize = 32;

/// Point-in-time counters of a [`FramePool`] (monotonic since creation or
/// the last [`FramePool::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from the freelist (no allocation).
    pub hits: u64,
    /// Acquires that fell through to a fresh allocation — with the pool
    /// disabled every acquire is a miss, so this counts hot-path frame
    /// allocations in both configurations.
    pub misses: u64,
    /// Capacity bytes handed back out by hits.
    pub bytes_reused: u64,
}

/// Live occupancy of one pool size class, for backpressure and dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassOccupancy {
    /// Class buffer size in bytes (`2^class`).
    pub size: usize,
    /// Buffers currently checked out of this class (acquired, not yet
    /// recycled). Can exceed `cap` under load — that is the pressure signal.
    pub in_use: u64,
    /// Buffers sitting on the freelist, ready for reuse.
    pub free: usize,
    /// Retention cap per class ([`MAX_PER_CLASS`]).
    pub cap: usize,
}

/// A freelist of reusable encode buffers, bucketed by power-of-two capacity.
pub struct FramePool {
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Outstanding (acquired, unrecycled) buffers per class. Only pooled-range
    /// acquires on an *enabled* pool are tracked, mirroring exactly the
    /// buffers [`FramePool::recycle_vec`] would accept back.
    in_use: Vec<AtomicI64>,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_reused: AtomicU64,
}

impl Default for FramePool {
    fn default() -> Self {
        Self::new()
    }
}

impl FramePool {
    /// An enabled pool with empty freelists.
    pub fn new() -> Self {
        Self {
            classes: (MIN_CLASS..=MAX_CLASS).map(|_| Mutex::new(Vec::new())).collect(),
            in_use: (MIN_CLASS..=MAX_CLASS).map(|_| AtomicI64::new(0)).collect(),
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_reused: AtomicU64::new(0),
        }
    }

    /// A pool that never reuses: every acquire allocates (and counts a miss),
    /// every recycle is dropped. The unpooled baseline for A/B benchmarks.
    pub fn disabled() -> Self {
        let p = Self::new();
        p.set_enabled(false);
        p
    }

    /// Turns reuse on or off at runtime (stats keep counting either way).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether buffer reuse is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Freelist class that buffers of `capacity` are stored under: buffers in
    /// class `c` have capacity in `[2^c, 2^(c+1))`, so any buffer popped from
    /// class `ceil_log2(cap)` can hold `cap` bytes without growing.
    fn store_class(capacity: usize) -> Option<usize> {
        if capacity == 0 {
            return None;
        }
        let c = usize::BITS - 1 - capacity.leading_zeros(); // floor(log2)
        (MIN_CLASS..=MAX_CLASS).contains(&c).then(|| (c - MIN_CLASS) as usize)
    }

    fn fetch_class(cap: usize) -> Option<usize> {
        let c = usize::BITS - cap.next_power_of_two().leading_zeros() - 1; // ceil(log2)
        let c = c.max(MIN_CLASS);
        (c <= MAX_CLASS).then(|| (c - MIN_CLASS) as usize)
    }

    /// Returns an empty `Vec` with at least `cap` bytes of capacity,
    /// reusing a recycled buffer when one is available.
    ///
    /// Pool misses in the pooled size range allocate the full class size
    /// (`cap` rounded up to a power of two), so a pool-allocated buffer
    /// recycles into exactly the class a same-sized acquire fetches from —
    /// without the round-up, a 100-byte buffer would be stored under class
    /// `floor(log2 100)` but looked up under `ceil(log2 100)` and never hit.
    pub fn acquire(&self, cap: usize) -> Vec<u8> {
        if self.is_enabled() {
            if let Some(class) = Self::fetch_class(cap.max(1)) {
                self.in_use[class].fetch_add(1, Ordering::Relaxed);
                obs_in_use(class, 1);
                if let Some(mut buf) = self.classes[class].lock().pop() {
                    debug_assert!(buf.capacity() >= cap);
                    buf.clear(); // capacity survives, stale contents do not
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.bytes_reused.fetch_add(buf.capacity() as u64, Ordering::Relaxed);
                    obs_hit(buf.capacity() as u64);
                    return buf;
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs_miss();
                return Vec::with_capacity(1usize << (class as u32 + MIN_CLASS));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs_miss();
        Vec::with_capacity(cap)
    }

    /// Returns a buffer's allocation to the freelist. Buffers outside the
    /// pooled size range (or beyond the per-class cap) are dropped.
    pub fn recycle_vec(&self, buf: Vec<u8>) {
        if !self.is_enabled() {
            return;
        }
        if let Some(class) = Self::store_class(buf.capacity()) {
            // A pool-acquired buffer recycles into the class it was fetched
            // from (acquires round capacity up to the class size), so this
            // balances the acquire-side increment. Foreign buffers that were
            // never acquired here are clamped at zero instead of driving the
            // occupancy negative.
            let decremented = self.in_use[class]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| (v > 0).then(|| v - 1))
                .is_ok();
            if decremented {
                obs_in_use(class, -1);
            }
            let mut shelf = self.classes[class].lock();
            if shelf.len() < MAX_PER_CLASS {
                shelf.push(buf);
            }
        }
    }

    /// Tries to reclaim a frame's backing allocation for reuse. Succeeds
    /// (returns `true`) only when `frame` is the sole owner of its `Arc`;
    /// shared frames drop normally and are never reused under a reader.
    pub fn recycle_frame(&self, frame: ByteBuf) -> bool {
        match frame.try_unwrap_vec() {
            Ok(buf) => {
                self.recycle_vec(buf);
                true
            }
            Err(_shared) => false,
        }
    }

    /// Live per-class occupancy: buffers checked out, buffers free, and the
    /// retention cap, smallest class first. Exported as `pool.class_{size}.in_use`
    /// gauges as acquires/recycles happen; this is the poll-based view the
    /// scheduler's backpressure consults.
    pub fn occupancy(&self) -> Vec<ClassOccupancy> {
        (MIN_CLASS..=MAX_CLASS)
            .map(|c| {
                let idx = (c - MIN_CLASS) as usize;
                ClassOccupancy {
                    size: 1usize << c,
                    in_use: self.in_use[idx].load(Ordering::Relaxed).max(0) as u64,
                    free: self.classes[idx].lock().len(),
                    cap: MAX_PER_CLASS,
                }
            })
            .collect()
    }

    /// Pool pressure in permille: the most contended class's `in_use` count
    /// relative to the retention cap, so 1000 means "one full class's worth
    /// of buffers is checked out" and values above 1000 mean acquires are
    /// outrunning what the freelist can ever hand back. This is the scalar
    /// the admission backpressure law (DESIGN.md §5i) thresholds against.
    pub fn pressure_permille(&self) -> u64 {
        self.in_use
            .iter()
            .map(|n| n.load(Ordering::Relaxed).max(0) as u64 * 1000 / MAX_PER_CLASS as u64)
            .max()
            .unwrap_or(0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_reused: self.bytes_reused.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (freelists are kept); benches measure deltas
    /// between phases with this.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes_reused.store(0, Ordering::Relaxed);
    }
}

fn obs_hit(bytes: u64) {
    static HITS: OnceLock<Arc<Counter>> = OnceLock::new();
    static BYTES: OnceLock<Arc<Counter>> = OnceLock::new();
    HITS.get_or_init(|| metrics::counter("net.pool.hits")).inc();
    BYTES.get_or_init(|| metrics::counter("net.pool.bytes_reused")).add(bytes);
}

fn obs_miss() {
    static MISSES: OnceLock<Arc<Counter>> = OnceLock::new();
    MISSES.get_or_init(|| metrics::counter("net.pool.misses")).inc();
}

/// Mirrors per-class occupancy into `pool.class_{size}.in_use` gauges. Deltas
/// (not absolute sets) so the gauge is the sum across every enabled pool in
/// the process — one coherent "buffers checked out" number per size class.
fn obs_in_use(class: usize, delta: i64) {
    static GAUGES: OnceLock<Vec<Arc<Gauge>>> = OnceLock::new();
    let gauges = GAUGES.get_or_init(|| {
        (MIN_CLASS..=MAX_CLASS)
            .map(|c| metrics::gauge(&format!("pool.class_{}.in_use", 1usize << c)))
            .collect()
    });
    gauges[class].add(delta);
}

/// The process-wide pool the hot paths (epoch wrapping, ring passes) draw
/// from. Benches flip it with [`FramePool::set_enabled`] for A/B runs.
pub fn global() -> &'static FramePool {
    static GLOBAL: OnceLock<FramePool> = OnceLock::new();
    GLOBAL.get_or_init(FramePool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_recycle_reuses_the_allocation() {
        let pool = FramePool::new();
        let mut a = pool.acquire(100);
        a.extend_from_slice(&[0xAA; 100]);
        let ptr = a.as_ptr() as usize;
        pool.recycle_vec(a);
        let b = pool.acquire(100);
        assert_eq!(b.as_ptr() as usize, ptr, "same allocation handed back");
        assert!(b.is_empty(), "recycled buffer is cleared");
        assert!(b.capacity() >= 100);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.bytes_reused >= 100);
    }

    #[test]
    fn recycle_frame_requires_sole_ownership() {
        let pool = FramePool::new();
        let frame = ByteBuf::from(vec![1u8; 128]);
        let clone = frame.clone();
        assert!(!pool.recycle_frame(frame), "shared frame must not be reclaimed");
        assert!(pool.recycle_frame(clone), "last owner reclaims");
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.acquire(128).capacity(), 128);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn windowed_frame_still_reclaims_full_allocation() {
        let pool = FramePool::new();
        let mut frame = ByteBuf::from(vec![7u8; 256]);
        let head = frame.split_to(100);
        drop(frame); // tail view gone; head is now sole owner
        assert!(pool.recycle_frame(head));
        assert!(pool.acquire(200).capacity() >= 256);
    }

    #[test]
    fn disabled_pool_always_allocates_and_counts_misses() {
        let pool = FramePool::disabled();
        let a = pool.acquire(64);
        pool.recycle_vec(a);
        let _b = pool.acquire(64);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.bytes_reused), (0, 2, 0));
    }

    #[test]
    fn class_bounds_guarantee_fit() {
        let pool = FramePool::new();
        // A 100-byte-capacity buffer lands in class floor(log2 100) = 6 (64).
        // An acquire for 100 looks in class ceil(log2 100) = 7 (128), so it
        // must NOT get the 100-byte buffer back (it could be too small for
        // a 128-byte request sharing the class).
        let small = Vec::with_capacity(100);
        pool.recycle_vec(small);
        let got = pool.acquire(128);
        assert!(got.capacity() >= 128);
        assert_eq!(pool.stats().misses, 1);
        // Same-power-of-two roundtrip does fit.
        pool.recycle_vec(Vec::with_capacity(128));
        assert!(pool.acquire(128).capacity() >= 128);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn oversized_and_tiny_buffers_are_not_pooled() {
        let pool = FramePool::new();
        pool.recycle_vec(Vec::with_capacity(8)); // below MIN_CLASS
        pool.recycle_vec(Vec::with_capacity(64 << 20)); // above MAX_CLASS
        // Neither was retained: both acquires below fall through to misses.
        assert!(pool.acquire(8).capacity() >= 8); // rounded up to MIN class
        assert_eq!(pool.acquire(64 << 20).capacity(), 64 << 20); // beyond range: exact
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn per_class_cap_bounds_retention() {
        let pool = FramePool::new();
        for _ in 0..(MAX_PER_CLASS + 10) {
            pool.recycle_vec(Vec::with_capacity(1024));
        }
        let mut reused = 0;
        for _ in 0..(MAX_PER_CLASS + 10) {
            let b = pool.acquire(1024);
            if b.capacity() >= 1024 {
                reused += 1;
            }
        }
        assert_eq!(pool.stats().hits as usize, MAX_PER_CLASS);
        assert_eq!(reused, MAX_PER_CLASS + 10); // misses still allocate correctly
    }

    #[test]
    fn occupancy_tracks_outstanding_buffers() {
        let pool = FramePool::new();
        assert_eq!(pool.pressure_permille(), 0);
        let a = pool.acquire(1024); // class 10
        let b = pool.acquire(1024);
        let occ = pool.occupancy();
        let class = occ.iter().find(|c| c.size == 1024).unwrap();
        assert_eq!(class.in_use, 2);
        assert_eq!(class.cap, MAX_PER_CLASS);
        assert_eq!(pool.pressure_permille(), 2 * 1000 / MAX_PER_CLASS as u64);
        pool.recycle_vec(a);
        pool.recycle_vec(b);
        let occ = pool.occupancy();
        let class = occ.iter().find(|c| c.size == 1024).unwrap();
        assert_eq!(class.in_use, 0, "recycling releases occupancy");
        assert_eq!(class.free, 2);
        assert_eq!(pool.pressure_permille(), 0);
    }

    #[test]
    fn foreign_recycles_never_drive_occupancy_negative() {
        let pool = FramePool::new();
        // Recycle buffers that were never acquired from this pool.
        pool.recycle_vec(Vec::with_capacity(512));
        pool.recycle_vec(Vec::with_capacity(512));
        assert!(pool.occupancy().iter().all(|c| c.in_use == 0));
        // And a later acquire/recycle pair still balances to zero.
        let buf = pool.acquire(512);
        pool.recycle_vec(buf);
        assert!(pool.occupancy().iter().all(|c| c.in_use == 0));
    }

    #[test]
    fn pressure_exceeds_cap_under_load() {
        let pool = FramePool::new();
        let held: Vec<_> = (0..2 * MAX_PER_CLASS).map(|_| pool.acquire(4096)).collect();
        assert_eq!(pool.pressure_permille(), 2000, "2x the retention cap checked out");
        for buf in held {
            pool.recycle_vec(buf);
        }
        assert_eq!(pool.pressure_permille(), 0);
    }

    #[test]
    fn disabled_pool_tracks_no_occupancy() {
        let pool = FramePool::disabled();
        let a = pool.acquire(2048);
        assert!(pool.occupancy().iter().all(|c| c.in_use == 0));
        pool.recycle_vec(a);
        assert!(pool.occupancy().iter().all(|c| c.in_use == 0));
    }

    #[test]
    fn reset_stats_zeroes_counters_but_keeps_buffers() {
        let pool = FramePool::new();
        pool.recycle_vec(Vec::with_capacity(256));
        let _ = pool.acquire(256);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
        pool.recycle_vec(Vec::with_capacity(256));
        assert!(pool.acquire(256).capacity() >= 256);
        assert_eq!(pool.stats().hits, 1);
    }
}
