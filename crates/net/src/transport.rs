//! Shaped in-process transports.
//!
//! Executors in this reproduction are threads in one process, so raw channel
//! sends complete in nanoseconds. To reproduce the paper's network-bound
//! behaviour, every message through [`MeshTransport`] is stamped with a
//! *delivery deadline* computed from the cluster's [`NetProfile`]:
//!
//! * each directed stream `(from, to, channel)` serializes its own messages
//!   at the per-channel (single TCP stream) bandwidth;
//! * all inter-node messages leaving one node additionally serialize through
//!   that node's egress NIC at line rate — this is what makes six concurrent
//!   cross-node flows slower than one, i.e. what topology-awareness buys;
//! * the profiled one-way latency plus the transport's software overhead
//!   ([`TransportKind`]) is added on top.
//!
//! The sender never blocks (asynchronous sends, like ZeroMQ); the receiver
//! blocks until the deadline using the precise waiter in [`crate::time`].
//! Bandwidth bookkeeping uses monotonically advancing `busy_until` marks per
//! resource, which is the classic store-and-forward queueing model: messages
//! on a shared resource are served back-to-back, never in parallel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sparker_obs::metrics::{self, Counter, Histogram};
use sparker_obs::trace;
use sparker_obs::Layer;

use crate::bytebuf::ByteBuf;
use crate::sync::{channel, Mutex, Receiver, RecvTimeoutError, Sender};

use crate::error::{NetError, NetResult};
use crate::profile::{NetProfile, TransportKind};
use crate::time::wait_until;
use crate::topology::{ExecutorId, ExecutorInfo};

/// A point-to-point, multi-channel message transport between executors.
///
/// Implementations range from the shaped in-process [`MeshTransport`] to the
/// real-socket [`crate::tcp::TcpTransport`]; collective code is written
/// against this trait and cannot tell them apart:
///
/// ```
/// use sparker_net::topology::{ExecutorId, ExecutorInfo};
/// use sparker_net::transport::{MeshTransport, Transport};
/// use sparker_net::ByteBuf;
///
/// let infos: Vec<ExecutorInfo> = (0..2)
///     .map(|i| ExecutorInfo {
///         id: ExecutorId(i),
///         host: format!("node-{i}"),
///         node: i as usize,
///         cores: 1,
///     })
///     .collect();
/// let net = MeshTransport::unshaped(&infos, 1);
/// net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"hop"))?;
/// let got = net.recv(ExecutorId(1), ExecutorId(0), 0)?;
/// assert_eq!(&got[..], b"hop");
/// # Ok::<(), sparker_net::NetError>(())
/// ```
pub trait Transport: Send + Sync {
    /// Number of executors addressable by this transport.
    fn size(&self) -> usize;
    /// Number of parallel channels per directed pair.
    fn channels(&self) -> usize;
    /// Asynchronously sends `msg` on `channel` from `from` to `to`.
    fn send(&self, from: ExecutorId, to: ExecutorId, channel: usize, msg: ByteBuf) -> NetResult<()>;
    /// Blocks until a message from `from` on `channel` is delivered to `at`.
    fn recv(&self, at: ExecutorId, from: ExecutorId, channel: usize) -> NetResult<ByteBuf>;
    /// Like [`Transport::recv`] with an upper bound on the wait.
    fn recv_timeout(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf>;
    /// Discards every queued-but-unreceived message, returning how many were
    /// dropped. The driver calls this between collective stage attempts so no
    /// frame from a failed attempt can poison the retry. Transports without
    /// queues report 0.
    fn drain_all(&self) -> usize {
        0
    }
}

/// Running totals maintained by a transport.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Frames sent.
    pub messages: AtomicU64,
    /// Payload bytes sent.
    pub bytes: AtomicU64,
    /// Frames sent between executors on different nodes.
    pub inter_node_messages: AtomicU64,
    /// Payload bytes sent between executors on different nodes.
    pub inter_node_bytes: AtomicU64,
}

/// Point-in-time copy of [`NetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStatsSnapshot {
    /// Frames sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Frames sent between executors on different nodes.
    pub inter_node_messages: u64,
    /// Payload bytes sent between executors on different nodes.
    pub inter_node_bytes: u64,
}

struct InFlight {
    deliver_at: Instant,
    payload: ByteBuf,
}

/// Gated trace/metrics hooks for the wire layer. Span names are keyed by
/// the transport kind so an exported trace distinguishes SC traffic from
/// the MPI reference and the BlockManager strawman's wire leg.
fn send_span_name(kind: TransportKind) -> &'static str {
    match kind {
        TransportKind::MpiRef => "mpi.send",
        TransportKind::ScalableComm => "sc.send",
        TransportKind::BlockManager => "bmwire.send",
    }
}

fn recv_span_name(kind: TransportKind) -> &'static str {
    match kind {
        TransportKind::MpiRef => "mpi.recv",
        TransportKind::ScalableComm => "sc.recv",
        TransportKind::BlockManager => "bmwire.recv",
    }
}

fn record_send(kind: TransportKind, from: ExecutorId, to: ExecutorId, channel: usize, bytes: usize) {
    static SENDS: OnceLock<Arc<Counter>> = OnceLock::new();
    static SEND_BYTES: OnceLock<Arc<Counter>> = OnceLock::new();
    static MSG_BYTES: OnceLock<Arc<Histogram>> = OnceLock::new();
    trace::event(
        Layer::Net,
        send_span_name(kind),
        &[
            ("from", from.0 as u64),
            ("to", to.0 as u64),
            ("channel", channel as u64),
            ("bytes", bytes as u64),
        ],
    );
    SENDS.get_or_init(|| metrics::counter("net.send.messages")).inc();
    SEND_BYTES.get_or_init(|| metrics::counter("net.send.bytes")).add(bytes as u64);
    MSG_BYTES.get_or_init(|| metrics::histogram("net.msg_bytes")).observe(bytes as u64);
}

fn record_recv(
    kind: TransportKind,
    at: ExecutorId,
    from: ExecutorId,
    channel: usize,
    bytes: usize,
    started: Instant,
) {
    static RECVS: OnceLock<Arc<Counter>> = OnceLock::new();
    trace::event_dur(
        Layer::Net,
        recv_span_name(kind),
        started,
        &[
            ("at", at.0 as u64),
            ("from", from.0 as u64),
            ("channel", channel as u64),
            ("bytes", bytes as u64),
        ],
    );
    RECVS.get_or_init(|| metrics::counter("net.recv.messages")).inc();
}

/// Fully-connected shaped mesh over in-process channels.
pub struct MeshTransport {
    n: usize,
    channels: usize,
    profile: NetProfile,
    kind: TransportKind,
    /// Node index per executor (dense by executor id).
    node_of: Vec<usize>,
    /// `links[(from * n + to) * channels + ch]`.
    tx: Vec<Sender<InFlight>>,
    rx: Vec<Receiver<InFlight>>,
    /// Per-stream serialization marks, same indexing as `tx`.
    stream_busy: Vec<Mutex<Instant>>,
    /// Per-node egress NIC serialization marks.
    nic_busy: Vec<Mutex<Instant>>,
    /// Per-node ingress NIC serialization marks. Fan-in to one node (e.g.
    /// every executor reporting results to the driver) bottlenecks here.
    nic_in_busy: Vec<Mutex<Instant>>,
    stats: NetStats,
}

impl MeshTransport {
    /// Builds a mesh over `executors` with `channels` parallel channels per
    /// directed pair, shaped by `profile`, with `kind`'s software overheads.
    pub fn new(
        executors: &[ExecutorInfo],
        channels: usize,
        profile: NetProfile,
        kind: TransportKind,
    ) -> Arc<Self> {
        assert!(!executors.is_empty());
        assert!(channels > 0);
        let n = executors.len();
        let mut node_of = vec![0usize; n];
        for e in executors {
            assert!(e.id.index() < n, "executor ids must be dense");
            node_of[e.id.index()] = e.node;
        }
        let num_nodes = node_of.iter().copied().max().unwrap_or(0) + 1;
        let now = Instant::now();
        let mut tx = Vec::with_capacity(n * n * channels);
        let mut rx = Vec::with_capacity(n * n * channels);
        let mut stream_busy = Vec::with_capacity(n * n * channels);
        for _ in 0..n * n * channels {
            let (s, r) = channel();
            tx.push(s);
            rx.push(r);
            stream_busy.push(Mutex::new(now));
        }
        let nic_busy = (0..num_nodes).map(|_| Mutex::new(now)).collect();
        let nic_in_busy = (0..num_nodes).map(|_| Mutex::new(now)).collect();
        Arc::new(Self {
            n,
            channels,
            profile,
            kind,
            node_of,
            tx,
            rx,
            stream_busy,
            nic_busy,
            nic_in_busy,
            stats: NetStats::default(),
        })
    }

    /// Convenience constructor with no shaping (tests, pure correctness).
    pub fn unshaped(executors: &[ExecutorInfo], channels: usize) -> Arc<Self> {
        Self::new(executors, channels, NetProfile::unshaped(), TransportKind::ScalableComm)
    }

    fn idx(&self, from: ExecutorId, to: ExecutorId, channel: usize) -> NetResult<usize> {
        let (f, t) = (from.index(), to.index());
        if f >= self.n || t >= self.n || channel >= self.channels {
            return Err(NetError::InvalidAddress(format!(
                "({from}, {to}, ch{channel}) outside mesh of {} executors x {} channels",
                self.n, self.channels
            )));
        }
        Ok((f * self.n + t) * self.channels + channel)
    }

    /// The network profile this mesh enforces.
    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    /// Which transport implementation this mesh models.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.stats.messages.load(Ordering::Relaxed),
            bytes: self.stats.bytes.load(Ordering::Relaxed),
            inter_node_messages: self.stats.inter_node_messages.load(Ordering::Relaxed),
            inter_node_bytes: self.stats.inter_node_bytes.load(Ordering::Relaxed),
        }
    }

    /// Computes the delivery deadline for a message and advances the
    /// `busy_until` marks of every resource it occupies.
    fn schedule(&self, idx: usize, from: ExecutorId, to: ExecutorId, bytes: usize) -> Instant {
        let now = Instant::now();
        let same_node = self.node_of[from.index()] == self.node_of[to.index()];
        let link = self.profile.link(same_node);
        // Fully unshaped path (no link delay and no NIC cap): skip the
        // bookkeeping entirely. NIC accounting must still run when only the
        // link is unshaped.
        if link.latency.is_zero()
            && link.bandwidth.is_infinite()
            && (same_node || self.profile.nic_bandwidth.is_infinite())
        {
            return now;
        }

        // Per-stream service at single-stream bandwidth.
        let stream_bw =
            link.bandwidth.min(self.profile.per_channel_bandwidth) * self.kind.single_stream_efficiency();
        let stream_time = if stream_bw.is_infinite() || bytes == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / stream_bw)
        };
        let stream_done = {
            let mut busy = self.stream_busy[idx].lock();
            let start = (*busy).max(now);
            let done = start + stream_time;
            *busy = done;
            done
        };

        // Inter-node messages additionally serialize through the source
        // node's egress NIC and the destination node's ingress NIC. The
        // ingress mark is what turns all-executors-to-driver fan-in into the
        // bottleneck the paper measures for tree aggregation.
        let done = if !same_node && self.profile.nic_bandwidth.is_finite() {
            let nic_time = Duration::from_secs_f64(bytes as f64 / self.profile.nic_bandwidth);
            let egress_done = {
                let mut busy = self.nic_busy[self.node_of[from.index()]].lock();
                let start = (*busy).max(now);
                let done = start + nic_time;
                *busy = done;
                done
            };
            let ingress_done = {
                let mut busy = self.nic_in_busy[self.node_of[to.index()]].lock();
                let start = (*busy).max(now.max(egress_done - nic_time));
                let done = start + nic_time;
                *busy = done;
                done
            };
            stream_done.max(egress_done).max(ingress_done)
        } else {
            stream_done
        };

        done + link.latency + self.kind.software_overhead().mul_f64(self.profile.time_scale)
    }
}

impl Transport for MeshTransport {
    fn size(&self) -> usize {
        self.n
    }

    fn channels(&self) -> usize {
        self.channels
    }

    fn send(&self, from: ExecutorId, to: ExecutorId, channel: usize, msg: ByteBuf) -> NetResult<()> {
        let idx = self.idx(from, to, channel)?;
        let nbytes = msg.len();
        let deliver_at = self.schedule(idx, from, to, nbytes);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(nbytes as u64, Ordering::Relaxed);
        if self.node_of[from.index()] != self.node_of[to.index()] {
            self.stats.inter_node_messages.fetch_add(1, Ordering::Relaxed);
            self.stats.inter_node_bytes.fetch_add(nbytes as u64, Ordering::Relaxed);
        }
        self.tx[idx]
            .send(InFlight { deliver_at, payload: msg })
            .map_err(|_| NetError::Disconnected)?;
        if trace::enabled() {
            record_send(self.kind, from, to, channel, nbytes);
        }
        Ok(())
    }

    fn recv(&self, at: ExecutorId, from: ExecutorId, channel: usize) -> NetResult<ByteBuf> {
        let started = trace::enabled().then(Instant::now);
        let idx = self.idx(from, at, channel)?;
        let m = self.rx[idx].recv().map_err(|_| NetError::Disconnected)?;
        wait_until(m.deliver_at);
        if let Some(t0) = started {
            record_recv(self.kind, at, from, channel, m.payload.len(), t0);
        }
        Ok(m.payload)
    }

    fn recv_timeout(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        // Only successful receives are recorded: collective receivers poll
        // this in a 10 ms quantum loop, and a span per empty poll would
        // drown the trace.
        let started = trace::enabled().then(Instant::now);
        let idx = self.idx(from, at, channel)?;
        let m = self.rx[idx].recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })?;
        wait_until(m.deliver_at);
        if let Some(t0) = started {
            record_recv(self.kind, at, from, channel, m.payload.len(), t0);
        }
        Ok(m.payload)
    }

    fn drain_all(&self) -> usize {
        let mut dropped = 0;
        for rx in &self.rx {
            while rx.try_recv().is_some() {
                dropped += 1;
            }
        }
        dropped
    }
}

/// A transport bound to one executor: the view collective algorithms use.
#[derive(Clone)]
pub struct Endpoint {
    net: Arc<dyn Transport>,
    me: ExecutorId,
}

impl Endpoint {
    /// Binds `net` to executor `me`.
    pub fn new(net: Arc<dyn Transport>, me: ExecutorId) -> Self {
        Self { net, me }
    }

    /// The executor this endpoint speaks as.
    pub fn id(&self) -> ExecutorId {
        self.me
    }

    /// Channels per directed pair on the underlying transport.
    pub fn channels(&self) -> usize {
        self.net.channels()
    }

    /// Sends `msg` from this executor to `to` on `channel`.
    pub fn send(&self, to: ExecutorId, channel: usize, msg: ByteBuf) -> NetResult<()> {
        self.net.send(self.me, to, channel, msg)
    }

    /// Blocks for the next frame from `from` on `channel`.
    pub fn recv(&self, from: ExecutorId, channel: usize) -> NetResult<ByteBuf> {
        self.net.recv(self.me, from, channel)
    }

    /// Like [`Endpoint::recv`] with an upper bound on the wait.
    pub fn recv_timeout(
        &self,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        self.net.recv_timeout(self.me, from, channel, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LinkProfile;
    use crate::topology::round_robin_layout;

    fn two_execs() -> Vec<ExecutorInfo> {
        round_robin_layout(2, 1, 1)
    }

    #[test]
    fn unshaped_send_recv_roundtrip() {
        let execs = two_execs();
        let net = MeshTransport::unshaped(&execs, 2);
        net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"hello"))
            .unwrap();
        let got = net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        assert_eq!(&got[..], b"hello");
    }

    #[test]
    fn channels_are_independent_fifos() {
        let execs = two_execs();
        let net = MeshTransport::unshaped(&execs, 2);
        net.send(ExecutorId(0), ExecutorId(1), 1, ByteBuf::from_static(b"ch1"))
            .unwrap();
        net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"ch0-a"))
            .unwrap();
        net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"ch0-b"))
            .unwrap();
        assert_eq!(&net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()[..], b"ch0-a");
        assert_eq!(&net.recv(ExecutorId(1), ExecutorId(0), 1).unwrap()[..], b"ch1");
        assert_eq!(&net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()[..], b"ch0-b");
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let execs = two_execs();
        let net = MeshTransport::unshaped(&execs, 1);
        assert!(matches!(
            net.send(ExecutorId(0), ExecutorId(5), 0, ByteBuf::new()),
            Err(NetError::InvalidAddress(_))
        ));
        assert!(matches!(
            net.recv_timeout(ExecutorId(0), ExecutorId(1), 3, Duration::from_millis(1)),
            Err(NetError::InvalidAddress(_))
        ));
    }

    #[test]
    fn recv_timeout_expires_when_no_message() {
        let execs = two_execs();
        let net = MeshTransport::unshaped(&execs, 1);
        let err = net
            .recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_millis(5))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn latency_is_enforced() {
        let mut profile = NetProfile::unshaped();
        profile.inter_node = LinkProfile {
            latency: Duration::from_millis(3),
            bandwidth: f64::INFINITY,
        };
        let execs = two_execs();
        let net = MeshTransport::new(&execs, 1, profile, TransportKind::MpiRef);
        let start = Instant::now();
        net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"x"))
            .unwrap();
        net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(3), "latency skipped: {elapsed:?}");
        assert!(elapsed < Duration::from_millis(30), "latency overshot: {elapsed:?}");
    }

    #[test]
    fn bandwidth_serializes_messages_on_one_stream() {
        // 1 MB/s, two 10 KB messages back to back => ~20 ms total.
        let mut profile = NetProfile::unshaped();
        profile.inter_node = LinkProfile { latency: Duration::ZERO, bandwidth: 1e6 };
        profile.per_channel_bandwidth = 1e6;
        let execs = two_execs();
        let net = MeshTransport::new(&execs, 1, profile, TransportKind::MpiRef);
        let start = Instant::now();
        let payload = ByteBuf::from(vec![0u8; 10_000]);
        net.send(ExecutorId(0), ExecutorId(1), 0, payload.clone()).unwrap();
        net.send(ExecutorId(0), ExecutorId(1), 0, payload).unwrap();
        net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(20), "bandwidth not enforced: {elapsed:?}");
        assert!(elapsed < Duration::from_millis(60), "overshot: {elapsed:?}");
    }

    #[test]
    fn intra_node_is_not_nic_limited() {
        // Same node: NIC mark must not advance.
        let mut profile = NetProfile::unshaped();
        profile.nic_bandwidth = 1.0; // absurdly slow NIC
        profile.intra_node = LinkProfile { latency: Duration::ZERO, bandwidth: f64::INFINITY };
        let execs = round_robin_layout(1, 2, 1); // both executors on node 0
        let net = MeshTransport::new(&execs, 1, profile, TransportKind::MpiRef);
        let start = Instant::now();
        net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(vec![0u8; 1 << 20]))
            .unwrap();
        net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn driver_ingress_fan_in_serializes() {
        // Many nodes sending to one node simultaneously: the receiver's
        // ingress NIC serializes the flows even though every sender has its
        // own egress NIC — the physical root of the tree-aggregation driver
        // bottleneck.
        let mut profile = NetProfile::unshaped();
        profile.inter_node = LinkProfile { latency: Duration::ZERO, bandwidth: f64::INFINITY };
        profile.per_channel_bandwidth = f64::INFINITY;
        profile.nic_bandwidth = 1e6; // 1 MB/s NICs
        let execs = round_robin_layout(5, 1, 1); // 5 nodes, 1 executor each
        let net = MeshTransport::new(&execs, 1, profile, TransportKind::MpiRef);
        let start = Instant::now();
        // Executors 1..4 all send 10 KB to executor 0 (node 0).
        for src in 1..5u32 {
            net.send(ExecutorId(src), ExecutorId(0), 0, ByteBuf::from(vec![0u8; 10_000]))
                .unwrap();
        }
        for src in 1..5u32 {
            net.recv(ExecutorId(0), ExecutorId(src), 0).unwrap();
        }
        let elapsed = start.elapsed();
        // 4 x 10 KB through a 1 MB/s ingress NIC = 40 ms serialized.
        assert!(elapsed >= Duration::from_millis(40), "ingress not serialized: {elapsed:?}");
        assert!(elapsed < Duration::from_millis(120), "overshot: {elapsed:?}");
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let execs = round_robin_layout(2, 2, 1); // 4 executors, 2 nodes round-robin
        let net = MeshTransport::unshaped(&execs, 1);
        // exec0 (node0) -> exec2 (node0): intra. exec0 -> exec1 (node1): inter.
        net.send(ExecutorId(0), ExecutorId(2), 0, ByteBuf::from(vec![0; 10])).unwrap();
        net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(vec![0; 7])).unwrap();
        let s = net.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 17);
        assert_eq!(s.inter_node_messages, 1);
        assert_eq!(s.inter_node_bytes, 7);
    }

    #[test]
    fn cross_thread_ping_pong() {
        let execs = two_execs();
        let net = MeshTransport::unshaped(&execs, 1);
        let net2 = net.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                let m = net2.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
                net2.send(ExecutorId(1), ExecutorId(0), 0, m).unwrap();
            }
        });
        for i in 0..100u32 {
            net.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(i.to_le_bytes().to_vec()))
                .unwrap();
            let back = net.recv(ExecutorId(0), ExecutorId(1), 0).unwrap();
            assert_eq!(u32::from_le_bytes(back[..].try_into().unwrap()), i);
        }
        t.join().unwrap();
    }

    #[test]
    fn endpoint_binds_identity() {
        let execs = two_execs();
        let net = MeshTransport::unshaped(&execs, 1);
        let a = Endpoint::new(net.clone(), ExecutorId(0));
        let b = Endpoint::new(net, ExecutorId(1));
        a.send(b.id(), 0, ByteBuf::from_static(b"ping")).unwrap();
        assert_eq!(&b.recv(a.id(), 0).unwrap()[..], b"ping");
        assert_eq!(a.id(), ExecutorId(0));
        assert_eq!(a.channels(), 1);
    }
}
