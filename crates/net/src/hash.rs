//! FNV-1a: the integrity hash of the wire stack.
//!
//! Both frame formats in this crate — the collective epoch header
//! ([`crate::epoch`]) and the TCP wire frame ([`crate::tcp::frame`]) — carry
//! a 64-bit FNV-1a checksum so any byte mutation (fault injection in-process,
//! genuine corruption or torn reads on a socket) surfaces as a typed
//! [`crate::NetError::Codec`] instead of decoding into a wrong answer.
//!
//! FNV-1a is not cryptographic; it defends against accidents, not attackers.
//! It is chosen because it is tiny, allocation-free, byte-at-a-time (so it
//! streams over discontiguous header fields without assembling them), and
//! fully specified by two constants — which keeps the wire format
//! implementable from DESIGN.md alone.

/// Streaming 64-bit FNV-1a hasher.
///
/// ```
/// use sparker_net::hash::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// // Streaming in pieces equals hashing the concatenation.
/// assert_eq!(h.finish(), sparker_net::hash::fnv1a(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A hasher initialised to the FNV offset basis.
    pub const fn new() -> Self {
        Self(FNV_OFFSET_BASIS)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The hash of everything folded in so far.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a of a contiguous byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for cut in 0..data.len() {
            let mut h = Fnv1a::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            assert_eq!(h.finish(), fnv1a(data), "cut at {cut}");
        }
    }
}
