//! Std-only synchronization primitives for the workspace.
//!
//! The workspace used to pull in `parking_lot` (locks without poisoning) and
//! `crossbeam` (MPMC channels). Both are replaced here so the build is
//! hermetic; this module is the single place the substitutions live.
//!
//! **Poisoning convention.** `std::sync` locks poison when a holder panics.
//! Every guarded value in this workspace is either a monotonic bookkeeping
//! mark (`busy_until` instants, stat counters), an append-only log, or a
//! keyed store whose entries are re-derivable from RDD lineage — none can be
//! left half-updated in a way later readers would misinterpret. We therefore
//! *recover* from poisoning (`PoisonError::into_inner`) instead of
//! propagating it: a worker panic still fails its stage through the task
//! protocol (and test harnesses still fail through joins), but unrelated
//! threads touching the same lock do not cascade. [`Mutex`] and [`RwLock`]
//! encode that convention so call sites read exactly like `parking_lot`'s.
//!
//! **Channels.** [`channel`] is an unbounded MPMC channel (both ends
//! cloneable and `Sync`), matching how the transport mesh and the executor
//! work queues used `crossbeam::channel::unbounded`: multiple worker threads
//! compete to `recv` from one queue, and mesh streams are receivable from
//! any thread. `std::sync::mpsc` is single-consumer, so the queue is built
//! directly on `Mutex<VecDeque>` + `Condvar`.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, PoisonError};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// A mutex whose `lock()` recovers from poisoning (see module docs).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering the inner value if a previous holder
    /// panicked.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value, recovering it if a
    /// previous holder panicked.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards recover from poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
struct ReentrantState {
    owner: Option<ThreadId>,
    depth: usize,
}

/// A mutex the owning thread may re-acquire (replaces
/// `parking_lot::ReentrantMutex`).
///
/// The engine's driver action lock needs reentrancy because composite ops
/// (e.g. allreduce built on split-aggregate) take the lock around an op that
/// itself takes the lock.
#[derive(Debug, Default)]
pub struct ReentrantMutex {
    state: Mutex<ReentrantState>,
    unlocked: Condvar,
}

impl ReentrantMutex {
    /// An unlocked reentrant mutex.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock, immediately if this thread already holds it.
    pub fn lock(&self) -> ReentrantMutexGuard<'_> {
        let me = std::thread::current().id();
        let mut s = self.state.lock();
        loop {
            match s.owner {
                None => {
                    s.owner = Some(me);
                    s.depth = 1;
                    break;
                }
                Some(owner) if owner == me => {
                    s.depth += 1;
                    break;
                }
                Some(_) => {
                    s = self.unlocked.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        ReentrantMutexGuard { lock: self, _not_send: PhantomData }
    }
}

/// Guard for [`ReentrantMutex`]; releases one level of the lock on drop.
///
/// `!Send`: the release must happen on the acquiring thread.
pub struct ReentrantMutexGuard<'a> {
    lock: &'a ReentrantMutex,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ReentrantMutexGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.lock.state.lock();
        debug_assert_eq!(s.owner, Some(std::thread::current().id()));
        s.depth -= 1;
        if s.depth == 0 {
            s.owner = None;
            drop(s);
            self.lock.unlocked.notify_one();
        }
    }
}

/// The sending half of a channel closed; carries the unsent message.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl without a `T: Debug` bound so `send(...).unwrap()` works for
// non-Debug payloads (e.g. boxed task closures).
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// All senders disconnected and the queue is drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a bounded-time receive.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the queue still empty.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    ready: Condvar,
}

/// Creates an unbounded MPMC channel. Both halves are cloneable; `recv`
/// fails once every [`Sender`] is dropped and the queue is empty, `send`
/// fails once every [`Receiver`] is dropped.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        ready: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// The sending half of [`channel`]; clone freely.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value`; never blocks.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = self.chan.state.lock();
        if s.receivers == 0 {
            return Err(SendError(value));
        }
        s.queue.push_back(value);
        drop(s);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Self { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.chan.state.lock();
        s.senders -= 1;
        if s.senders == 0 {
            drop(s);
            // Wake every blocked receiver so they observe the disconnect.
            self.chan.ready.notify_all();
        }
    }
}

/// The receiving half of [`channel`]; clone freely.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut s = self.chan.state.lock();
        loop {
            if let Some(v) = s.queue.pop_front() {
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = self.chan.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pops a queued message without blocking; `None` if the queue is empty
    /// (regardless of whether senders remain).
    pub fn try_recv(&self) -> Option<T> {
        self.chan.state.lock().queue.pop_front()
    }

    /// Like [`Receiver::recv`] with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.chan.state.lock();
        loop {
            if let Some(v) = s.queue.pop_front() {
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .chan
                .ready
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Self { chan: self.chan.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.state.lock().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_fifo() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_last_sender_drops_and_queue_drains() {
        let (tx, rx) = channel();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_last_receiver_drops() {
        let (tx, rx) = channel();
        drop(rx);
        assert_eq!(tx.send(42u8), Err(SendError(42)));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = channel();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_recv(), None);
        tx.send(3u8).unwrap();
        assert_eq!(rx.try_recv(), Some(3));
        drop(tx);
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn cloned_receivers_compete_without_losing_messages() {
        let (tx, rx) = channel();
        let n_workers = 4;
        let per = 250;
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..n_workers * per {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<usize> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n_workers * per).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_recv_wakes_on_send_from_other_thread() {
        let (tx, rx) = channel();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(99u32).unwrap();
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot-style behaviour: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn reentrant_mutex_allows_nested_acquisition() {
        let m = ReentrantMutex::new();
        let g1 = m.lock();
        let g2 = m.lock();
        drop(g1);
        drop(g2);
        // Fully released: another thread can take it.
        let m = Arc::new(m);
        let m2 = m.clone();
        std::thread::spawn(move || {
            let _g = m2.lock();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn reentrant_mutex_excludes_other_threads() {
        let m = Arc::new(ReentrantMutex::new());
        let counter = Arc::new(Mutex::new((0u32, 0u32))); // (inside, max_inside)
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _outer = m.lock();
                    let _inner = m.lock(); // reentrant on this thread
                    {
                        let mut c = counter.lock();
                        c.0 += 1;
                        c.1 = c.1.max(c.0);
                    }
                    std::thread::yield_now();
                    counter.lock().0 -= 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.lock().1, 1, "two threads were inside the lock at once");
    }
}
