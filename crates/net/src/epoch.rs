//! Epoch fencing for collective frames.
//!
//! Collective stages are gang-scheduled: when one ring task fails, its peers
//! are cancelled and the whole stage is resubmitted. Frames from the failed
//! attempt may still be sitting in (or racing into) the mesh channels, and a
//! retried task that consumed one would silently corrupt the reduction. Every
//! collective frame therefore carries an `(op, attempt)` epoch header;
//! receivers drop frames whose epoch does not match their own, and the driver
//! additionally drains the transport between attempts.
//!
//! The header also carries an FNV-1a checksum over the op, attempt, and
//! payload bytes. An in-process mesh cannot flip bits on its own, but the
//! fault injector ([`crate::fault`]) can — and a corrupted `f64` would decode
//! "successfully" into a wrong answer. The checksum turns every byte mutation
//! into a typed [`NetError::Codec`] instead.

use crate::bytebuf::ByteBuf;
use crate::codec::{Decoder, Encoder};
use crate::error::{NetError, NetResult};

/// Frame magic: distinguishes epoch-wrapped collective frames from garbage.
const MAGIC: u32 = 0x5350_4B31; // "SPK1"

/// Bits of the `attempt` word reserved for the per-job epoch *namespace*.
///
/// With many jobs in flight, two concurrent rings could otherwise pick the
/// same `(op, attempt)` pair and accept each other's frames. The scheduler
/// assigns every live job a namespace in `1..NS_COUNT` (0 is the single-job
/// default) and folds it into the high bits of the attempt word with
/// [`namespaced`]; the frame layout is unchanged, so the §5g wire spec still
/// holds byte-for-byte. Distinct live namespaces can never collide: the
/// namespace bits differ, so the fenced attempt words differ for every
/// combination of raw attempts.
pub const NS_BITS: u32 = 10;
/// Number of distinct epoch namespaces (including the default namespace 0).
pub const NS_COUNT: u32 = 1 << NS_BITS;
/// Bits left for the raw attempt counter under a namespace.
pub const ATTEMPT_BITS: u32 = 32 - NS_BITS;
/// Mask selecting the raw attempt counter out of a fenced attempt word.
pub const ATTEMPT_MASK: u32 = (1 << ATTEMPT_BITS) - 1;

/// Folds a job's epoch namespace into an attempt counter.
///
/// The result goes wherever a plain attempt went before (frame headers,
/// `RingComm::with_epoch`); [`split_namespaced`] inverts it. Raw attempts
/// are far below `ATTEMPT_MASK` in practice (drivers cap collective retries
/// at single digits), so the masking never loses real attempts.
pub fn namespaced(ns: u32, attempt: u32) -> u32 {
    debug_assert!(ns < NS_COUNT, "epoch namespace {ns} out of range (< {NS_COUNT})");
    debug_assert!(attempt <= ATTEMPT_MASK, "attempt {attempt} overflows namespace layout");
    ((ns & (NS_COUNT - 1)) << ATTEMPT_BITS) | (attempt & ATTEMPT_MASK)
}

/// Splits a fenced attempt word into `(namespace, raw attempt)`.
pub fn split_namespaced(fenced: u32) -> (u32, u32) {
    (fenced >> ATTEMPT_BITS, fenced & ATTEMPT_MASK)
}

/// FNV-1a over the epoch fields and payload, the integrity check for
/// collective frames (see [`crate::hash`] for the hash's constants).
fn checksum(op: u64, attempt: u32, payload: &[u8]) -> u64 {
    let mut h = crate::hash::Fnv1a::new();
    h.update(&op.to_le_bytes());
    h.update(&attempt.to_le_bytes());
    h.update(payload);
    h.finish()
}

/// Wraps `payload` in an epoch header for collective transmission.
///
/// Layout: `magic u32 | checksum u64 | op u64 | attempt u32 | payload bytes`
/// (the payload is length-prefixed via the codec's `put_bytes`). The header
/// buffer is drawn from the global [`crate::pool::FramePool`]: this runs
/// once per collective send, so in steady state wrapping allocates nothing.
pub fn wrap(op: u64, attempt: u32, payload: &ByteBuf) -> ByteBuf {
    let mut enc = Encoder::pooled(crate::pool::global(), 4 + 8 + 8 + 4 + 8 + payload.len());
    enc.put_u32(MAGIC);
    enc.put_u64(checksum(op, attempt, payload));
    enc.put_u64(op);
    enc.put_u32(attempt);
    enc.put_bytes(payload);
    enc.finish()
}

/// Unwraps an epoch-fenced frame, returning `(op, attempt, payload)`.
///
/// Every malformed input — wrong magic, truncation, trailing bytes, or any
/// single-byte mutation anywhere in the frame — yields [`NetError::Codec`].
pub fn unwrap(frame: ByteBuf) -> NetResult<(u64, u32, ByteBuf)> {
    let mut dec = Decoder::new(frame);
    let magic = dec.get_u32()?;
    if magic != MAGIC {
        return Err(NetError::Codec(format!(
            "bad collective frame magic {magic:#010x} (want {MAGIC:#010x})"
        )));
    }
    let sum = dec.get_u64()?;
    let op = dec.get_u64()?;
    let attempt = dec.get_u32()?;
    let payload = dec.get_bytes()?;
    if dec.remaining() != 0 {
        return Err(NetError::Codec(format!(
            "{} trailing bytes after collective frame",
            dec.remaining()
        )));
    }
    let want = checksum(op, attempt, &payload);
    if sum != want {
        return Err(NetError::Codec(format!(
            "collective frame checksum mismatch: header {sum:#018x}, computed {want:#018x}"
        )));
    }
    Ok((op, attempt, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_epoch_and_payload() {
        let payload = ByteBuf::from_static(b"segment bytes");
        let frame = wrap(42, 3, &payload);
        let (op, attempt, body) = unwrap(frame).unwrap();
        assert_eq!(op, 42);
        assert_eq!(attempt, 3);
        assert_eq!(&body[..], b"segment bytes");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (op, attempt, body) = unwrap(wrap(1, 0, &ByteBuf::new())).unwrap();
        assert_eq!((op, attempt), (1, 0));
        assert!(body.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let frame = wrap(7, 1, &ByteBuf::from_static(b"x"));
        let mut bytes = frame.to_vec();
        bytes[0] ^= 0xff;
        assert!(matches!(unwrap(ByteBuf::from(bytes)), Err(NetError::Codec(_))));
    }

    #[test]
    fn any_byte_flip_is_detected() {
        let frame = wrap(9, 2, &ByteBuf::from_static(b"some payload here"));
        for i in 0..frame.len() {
            let mut bytes = frame.to_vec();
            bytes[i] ^= 0x01;
            let got = unwrap(ByteBuf::from(bytes));
            assert!(
                matches!(got, Err(NetError::Codec(_))),
                "flip at byte {i} was not caught: {got:?}"
            );
        }
    }

    #[test]
    fn truncation_rejected() {
        let frame = wrap(5, 0, &ByteBuf::from_static(b"abcdef"));
        for cut in 0..frame.len() {
            let short = frame.slice(0..cut);
            assert!(matches!(unwrap(short), Err(NetError::Codec(_))), "cut at {cut}");
        }
    }

    #[test]
    fn namespaced_roundtrips() {
        for ns in [0, 1, 2, 511, NS_COUNT - 1] {
            for attempt in [0, 1, 7, ATTEMPT_MASK] {
                assert_eq!(split_namespaced(namespaced(ns, attempt)), (ns, attempt));
            }
        }
    }

    #[test]
    fn distinct_namespaces_never_collide() {
        // Any two fenced attempt words from different namespaces differ,
        // whatever the raw attempts — the no-cross-talk guarantee.
        for ns_a in [0u32, 1, 3, 1023] {
            for ns_b in [2u32, 4, 512] {
                assert_ne!(ns_a, ns_b);
                for a in 0..4u32 {
                    for b in 0..4u32 {
                        assert_ne!(namespaced(ns_a, a), namespaced(ns_b, b));
                    }
                }
            }
        }
    }

    #[test]
    fn namespaced_epoch_travels_through_frames() {
        let fenced = namespaced(17, 2);
        let (op, attempt, _) = unwrap(wrap(99, fenced, &ByteBuf::from_static(b"p"))).unwrap();
        assert_eq!(op, 99);
        assert_eq!(split_namespaced(attempt), (17, 2));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let frame = wrap(5, 0, &ByteBuf::from_static(b"abc"));
        let mut bytes = frame.to_vec();
        bytes.push(0);
        assert!(matches!(unwrap(ByteBuf::from(bytes)), Err(NetError::Codec(_))));
    }
}
