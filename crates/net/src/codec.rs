//! The serialization boundary.
//!
//! Every value that crosses an executor boundary in this reproduction —
//! task results flowing to the driver, aggregators moving between executors
//! during tree aggregation, segments moving around the ring during
//! reduce-scatter — is encoded through this module into [`ByteBuf`] frames.
//!
//! Making the boundary explicit (instead of, say, sending `T` through a
//! channel) matters for fidelity: the Sparker paper's In-Memory Merge
//! optimization exists *because* Spark serializes every task result, and its
//! benefit is measured in serialized bytes avoided. The [`Encoder`] therefore
//! counts every byte it produces, and the engine layers a configurable
//! per-byte cost on top to model JVM-class serializers (see
//! `sparker_engine::cost`).
//!
//! The format is a simple little-endian, length-prefixed binary encoding with
//! bulk (memcpy) fast paths for the numeric slices that dominate ML
//! aggregators.

use crate::bytebuf::{ByteBuf, ByteBufMut};
use crate::pool::FramePool;

use crate::error::{NetError, NetResult};

/// Streaming encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: ByteBufMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self { buf: ByteBufMut::new() }
    }

    /// Creates an encoder with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: ByteBufMut::with_capacity(cap) }
    }

    /// Creates an encoder whose backing buffer is drawn from `pool`
    /// (allocation-free when the pool has a recycled buffer of the right
    /// class). The buffer arrives cleared, so the resulting frame is
    /// bit-identical to one from [`Encoder::with_capacity`].
    pub fn pooled(pool: &FramePool, cap: usize) -> Self {
        Self { buf: ByteBufMut::from_vec(pool.acquire(cap)) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding and returns the immutable frame.
    pub fn finish(self) -> ByteBuf {
        self.buf.freeze()
    }

    /// Encodes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Encodes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Encodes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Encodes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Encodes an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Encodes an `f64`, little-endian IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Encodes a `usize` as a `u64` so frames are portable across platforms.
    pub fn put_usize(&mut self, v: usize) {
        self.buf.put_u64_le(v as u64);
    }

    /// Encodes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.put_slice(v);
    }

    /// Encodes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Bulk-encodes an `f64` slice (length-prefixed).
    ///
    /// On little-endian targets this is a single `memcpy`; ML aggregators are
    /// dominated by such slices, so this is the hot path of the codec.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        #[cfg(target_endian = "little")]
        {
            // SAFETY: f64 has no padding and we reinterpret it as raw
            // little-endian bytes, which is exactly the wire format.
            let raw = unsafe {
                std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
            };
            self.buf.put_slice(raw);
        }
        #[cfg(not(target_endian = "little"))]
        {
            for &x in v {
                self.buf.put_f64_le(x);
            }
        }
    }

    /// Bulk-encodes a `u64` slice (length-prefixed).
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_usize(v.len());
        #[cfg(target_endian = "little")]
        {
            // SAFETY: u64 reinterpreted as its little-endian byte repr.
            let raw = unsafe {
                std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
            };
            self.buf.put_slice(raw);
        }
        #[cfg(not(target_endian = "little"))]
        {
            for &x in v {
                self.buf.put_u64_le(x);
            }
        }
    }

    /// Bulk-encodes a `u32` slice (length-prefixed).
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        #[cfg(target_endian = "little")]
        {
            // SAFETY: u32 reinterpreted as its little-endian byte repr.
            let raw = unsafe {
                std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
            };
            self.buf.put_slice(raw);
        }
        #[cfg(not(target_endian = "little"))]
        {
            for &x in v {
                self.buf.put_u32_le(x);
            }
        }
    }
}

/// Streaming decoder over an immutable frame.
#[derive(Debug)]
pub struct Decoder {
    buf: ByteBuf,
}

impl Decoder {
    /// Wraps a frame for decoding.
    pub fn new(buf: ByteBuf) -> Self {
        Self { buf }
    }

    /// ByteBuf not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Consumes the decoder and returns the (possibly advanced) frame, e.g.
    /// to recycle its backing allocation into a [`FramePool`].
    pub fn into_frame(self) -> ByteBuf {
        self.buf
    }

    fn need(&self, n: usize, what: &str) -> NetResult<()> {
        if self.buf.remaining() < n {
            return Err(NetError::Codec(format!(
                "truncated frame: need {n} bytes for {what}, have {}",
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    /// Decodes one byte.
    pub fn get_u8(&mut self) -> NetResult<u8> {
        self.need(1, "u8")?;
        Ok(self.buf.get_u8())
    }

    /// Decodes a bool (any non-zero byte is `true`).
    pub fn get_bool(&mut self) -> NetResult<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Decodes a little-endian `u32`.
    pub fn get_u32(&mut self) -> NetResult<u32> {
        self.need(4, "u32")?;
        Ok(self.buf.get_u32_le())
    }

    /// Decodes a little-endian `u64`.
    pub fn get_u64(&mut self) -> NetResult<u64> {
        self.need(8, "u64")?;
        Ok(self.buf.get_u64_le())
    }

    /// Decodes a little-endian `i64`.
    pub fn get_i64(&mut self) -> NetResult<i64> {
        self.need(8, "i64")?;
        Ok(self.buf.get_i64_le())
    }

    /// Decodes a little-endian `f64`.
    pub fn get_f64(&mut self) -> NetResult<f64> {
        self.need(8, "f64")?;
        Ok(self.buf.get_f64_le())
    }

    /// Decodes a `u64` written by [`Encoder::put_usize`] back to `usize`.
    pub fn get_usize(&mut self) -> NetResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| NetError::Codec(format!("usize overflow: {v}")))
    }

    /// Decodes a length-prefixed byte slice as a zero-copy sub-frame.
    pub fn get_bytes(&mut self) -> NetResult<ByteBuf> {
        let len = self.get_usize()?;
        self.need(len, "byte slice")?;
        Ok(self.buf.split_to(len))
    }

    /// Decodes a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> NetResult<String> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|e| NetError::Codec(format!("invalid utf8: {e}")))
    }

    /// Bulk-decodes an `f64` slice written by [`Encoder::put_f64_slice`].
    pub fn get_f64_vec(&mut self) -> NetResult<Vec<f64>> {
        let len = self.get_usize()?;
        let nbytes = len
            .checked_mul(8)
            .ok_or_else(|| NetError::Codec(format!("f64 slice too long: {len}")))?;
        self.need(nbytes, "f64 slice")?;
        let mut out = Vec::with_capacity(len);
        #[cfg(target_endian = "little")]
        {
            let raw = self.buf.split_to(nbytes);
            // SAFETY: the spare capacity holds exactly `len` f64s; we fill all
            // of them from the (unaligned-safe) byte copy before set_len.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    raw.as_ptr(),
                    out.as_mut_ptr() as *mut u8,
                    nbytes,
                );
                out.set_len(len);
            }
        }
        #[cfg(not(target_endian = "little"))]
        {
            for _ in 0..len {
                out.push(self.buf.get_f64_le());
            }
        }
        Ok(out)
    }

    /// Bulk-decodes a `u64` slice written by [`Encoder::put_u64_slice`].
    pub fn get_u64_vec(&mut self) -> NetResult<Vec<u64>> {
        let len = self.get_usize()?;
        let nbytes = len
            .checked_mul(8)
            .ok_or_else(|| NetError::Codec(format!("u64 slice too long: {len}")))?;
        self.need(nbytes, "u64 slice")?;
        let mut out = Vec::with_capacity(len);
        #[cfg(target_endian = "little")]
        {
            let raw = self.buf.split_to(nbytes);
            // SAFETY: same contract as get_f64_vec.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    raw.as_ptr(),
                    out.as_mut_ptr() as *mut u8,
                    nbytes,
                );
                out.set_len(len);
            }
        }
        #[cfg(not(target_endian = "little"))]
        {
            for _ in 0..len {
                out.push(self.buf.get_u64_le());
            }
        }
        Ok(out)
    }

    /// Bulk-decodes a `u32` slice written by [`Encoder::put_u32_slice`].
    pub fn get_u32_vec(&mut self) -> NetResult<Vec<u32>> {
        let len = self.get_usize()?;
        let nbytes = len
            .checked_mul(4)
            .ok_or_else(|| NetError::Codec(format!("u32 slice too long: {len}")))?;
        self.need(nbytes, "u32 slice")?;
        let mut out = Vec::with_capacity(len);
        #[cfg(target_endian = "little")]
        {
            let raw = self.buf.split_to(nbytes);
            // SAFETY: same contract as get_f64_vec.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    raw.as_ptr(),
                    out.as_mut_ptr() as *mut u8,
                    nbytes,
                );
                out.set_len(len);
            }
        }
        #[cfg(not(target_endian = "little"))]
        {
            for _ in 0..len {
                out.push(self.buf.get_u32_le());
            }
        }
        Ok(out)
    }
}

/// A value that can cross the executor boundary.
///
/// This is the Rust analogue of "serializable with a registered serializer"
/// in Spark. Implementations must round-trip: `decode(encode(x)) == x`.
pub trait Payload: Send + Sized + 'static {
    /// Appends this value to the encoder.
    fn encode_into(&self, enc: &mut Encoder);
    /// Reads one value back out of the decoder.
    fn decode_from(dec: &mut Decoder) -> NetResult<Self>;
    /// Exact encoded length of this value in bytes.
    ///
    /// Used to pre-size encode buffers *and* as the unified wire-bytes
    /// accounting (`Segment::payload_bytes`, bench CSV `wire_bytes`), so
    /// every impl must return exactly `to_frame().len()` — the
    /// `prop_payload` suite asserts this for each impl in the workspace.
    /// The default (0) is only correct for values with an empty encoding,
    /// e.g. `()`.
    fn size_hint(&self) -> usize {
        0
    }

    /// Encodes `self` into a standalone frame.
    fn to_frame(&self) -> ByteBuf {
        let mut enc = Encoder::with_capacity(self.size_hint());
        self.encode_into(&mut enc);
        enc.finish()
    }

    /// Decodes a value from a standalone frame, requiring full consumption.
    fn from_frame(frame: ByteBuf) -> NetResult<Self> {
        let mut dec = Decoder::new(frame);
        let v = Self::decode_from(&mut dec)?;
        if dec.remaining() != 0 {
            return Err(NetError::Codec(format!(
                "{} trailing bytes after decode",
                dec.remaining()
            )));
        }
        Ok(v)
    }

    /// Like [`Payload::to_frame`], but the encode buffer is drawn from
    /// `pool`. Produces a bit-identical frame (a recycled buffer contributes
    /// only capacity, never contents — see [`crate::pool`]); in steady state
    /// the hot path allocates nothing.
    fn to_frame_pooled(&self, pool: &FramePool) -> ByteBuf {
        let mut enc = Encoder::pooled(pool, self.size_hint());
        self.encode_into(&mut enc);
        enc.finish()
    }

    /// Like [`Payload::from_frame`], but after decoding (the decode *copies*
    /// values out of the frame) the frame's backing allocation is returned
    /// to `pool` — unless something else still references it, in which case
    /// it just drops.
    fn from_frame_pooled(frame: ByteBuf, pool: &FramePool) -> NetResult<Self> {
        let mut dec = Decoder::new(frame);
        let decoded = Self::decode_from(&mut dec);
        let trailing = dec.remaining();
        pool.recycle_frame(dec.into_frame());
        let v = decoded?;
        if trailing != 0 {
            return Err(NetError::Codec(format!(
                "{trailing} trailing bytes after decode"
            )));
        }
        Ok(v)
    }
}

macro_rules! payload_prim {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl Payload for $ty {
            fn encode_into(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
            fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
                dec.$get()
            }
            fn size_hint(&self) -> usize {
                $size
            }
        }
    };
}

payload_prim!(u8, put_u8, get_u8, 1);
payload_prim!(bool, put_bool, get_bool, 1);
payload_prim!(u32, put_u32, get_u32, 4);
payload_prim!(u64, put_u64, get_u64, 8);
payload_prim!(i64, put_i64, get_i64, 8);
payload_prim!(f64, put_f64, get_f64, 8);
payload_prim!(usize, put_usize, get_usize, 8);

impl Payload for String {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        dec.get_string()
    }
    fn size_hint(&self) -> usize {
        8 + self.len()
    }
}

impl Payload for () {
    fn encode_into(&self, _enc: &mut Encoder) {}
    fn decode_from(_dec: &mut Decoder) -> NetResult<Self> {
        Ok(())
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for item in self {
            item.encode_into(enc);
        }
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        let len = dec.get_usize()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode_from(dec)?);
        }
        Ok(out)
    }
    fn size_hint(&self) -> usize {
        8 + self.iter().map(Payload::size_hint).sum::<usize>()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode_into(enc);
            }
        }
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(dec)?)),
            tag => Err(NetError::Codec(format!("invalid Option tag {tag}"))),
        }
    }
    fn size_hint(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::size_hint)
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn encode_into(&self, enc: &mut Encoder) {
        self.0.encode_into(enc);
        self.1.encode_into(enc);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        Ok((A::decode_from(dec)?, B::decode_from(dec)?))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint() + self.1.size_hint()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn encode_into(&self, enc: &mut Encoder) {
        self.0.encode_into(enc);
        self.1.encode_into(enc);
        self.2.encode_into(enc);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        Ok((A::decode_from(dec)?, B::decode_from(dec)?, C::decode_from(dec)?))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint() + self.1.size_hint() + self.2.size_hint()
    }
}

/// Wrapper giving `Vec<f64>` the bulk (memcpy) wire format.
///
/// The generic `Vec<T>` impl encodes element-by-element; ML aggregators are
/// almost entirely `f64` arrays, so they should wrap their arrays in
/// [`F64Array`] (or call the slice methods directly) to hit the fast path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct F64Array(pub Vec<f64>);

impl Payload for F64Array {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_f64_slice(&self.0);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        Ok(F64Array(dec.get_f64_vec()?))
    }
    fn size_hint(&self) -> usize {
        8 + 8 * self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Payload + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let frame = v.to_frame();
        let back = T::from_frame(frame).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(true);
        roundtrip(false);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(usize::MAX);
        roundtrip(());
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let frame = f64::NAN.to_frame();
        let back = f64::from_frame(frame).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_roundtrip() {
        roundtrip(String::new());
        roundtrip("hello".to_string());
        roundtrip("ünïcodé 🚀".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u32, 2.5f64));
        roundtrip((1u32, "x".to_string(), vec![1.0f64, 2.0]));
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn f64_array_bulk_roundtrip() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5 - 7.0).collect();
        roundtrip(F64Array(data));
        roundtrip(F64Array(vec![]));
    }

    #[test]
    fn f64_array_wire_size_is_compact() {
        let arr = F64Array(vec![0.0; 1000]);
        let frame = arr.to_frame();
        assert_eq!(frame.len(), 8 + 8 * 1000);
    }

    #[test]
    fn bulk_and_elementwise_f64_formats_match() {
        // put_f64_slice must produce the same bytes as a length prefix plus
        // elementwise put_f64, otherwise big-endian fallback would diverge.
        let vals = [1.5f64, -2.25, 1e300, 0.0, -0.0];
        let mut bulk = Encoder::new();
        bulk.put_f64_slice(&vals);
        let mut elem = Encoder::new();
        elem.put_usize(vals.len());
        for &v in &vals {
            elem.put_f64(v);
        }
        assert_eq!(bulk.finish(), elem.finish());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut enc = Encoder::new();
        enc.put_u64(7);
        let frame = enc.finish();
        let short = frame.slice(0..4);
        let mut dec = Decoder::new(short);
        assert!(matches!(dec.get_u64(), Err(NetError::Codec(_))));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_frame() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(2);
        let frame = enc.finish();
        assert!(matches!(u32::from_frame(frame), Err(NetError::Codec(_))));
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        let frame = enc.finish();
        assert!(matches!(
            Option::<u64>::from_frame(frame),
            Err(NetError::Codec(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let frame = enc.finish();
        assert!(matches!(String::from_frame(frame), Err(NetError::Codec(_))));
    }

    #[test]
    fn u64_and_u32_slices_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u64_slice(&[1, 2, u64::MAX]);
        enc.put_u32_slice(&[7, 0, u32::MAX]);
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_u64_vec().unwrap(), vec![1, 2, u64::MAX]);
        assert_eq!(dec.get_u32_vec().unwrap(), vec![7, 0, u32::MAX]);
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_oom() {
        let mut enc = Encoder::new();
        enc.put_usize(usize::MAX / 2);
        let mut dec = Decoder::new(enc.finish());
        assert!(dec.get_f64_vec().is_err());
    }
}
