//! Executor placement and the parallel directed ring (PDR).
//!
//! Sparker arranges executors in a directed ring: executor ranked `i` sends
//! to rank `(i + 1) mod N` and receives from `(i - 1 + N) mod N`, with `P`
//! parallel channels per hop (§4.1, Figure 10). The assignment of *ranks* to
//! executors is a pure policy choice with large performance consequences:
//! ordering executors by hostname ("topology-awareness") puts ring
//! neighbours on the same physical node wherever possible, so only one hop
//! per node crosses the NIC — the paper measures 2.76× from this alone
//! (Figure 14).

use std::fmt;

/// Globally unique executor identifier. Founding clusters assign ids dense
/// in `0..num_executors`; after a failure a surviving ring keeps the
/// original (now sparse) ids so transport addressing is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecutorId(pub u32);

impl ExecutorId {
    /// This id as a dense `usize` rank.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExecutorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exec-{}", self.0)
    }
}

/// Static description of one executor: where it lives and what it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorInfo {
    /// The executor's globally unique id.
    pub id: ExecutorId,
    /// Hostname of the physical node ("node-03"). Topology-aware ordering
    /// sorts on this.
    pub host: String,
    /// Dense index of the physical node, `0..num_nodes`.
    pub node: usize,
    /// Core slots (concurrent tasks) this executor runs.
    pub cores: usize,
}

/// How ranks are assigned around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOrder {
    /// Sort by (hostname, executor id): neighbours share nodes when possible.
    TopologyAware,
    /// Sort by bare executor id — the paper's "without topology-awareness"
    /// baseline. With round-robin executor placement this maximizes
    /// NIC crossings.
    ById,
}

/// A concrete ring: the rank→executor mapping plus neighbour lookups.
#[derive(Debug, Clone)]
pub struct RingTopology {
    /// `order[rank]` is the executor occupying that ring position.
    order: Vec<ExecutorInfo>,
    /// `rank_of[executor.index()]` is that executor's ring rank
    /// (`usize::MAX` marks ids absent from this ring — survivor views).
    rank_of: Vec<usize>,
    /// Number of parallel channels per hop (the "P" in PDR).
    parallelism: usize,
}

impl RingTopology {
    /// Builds a ring over `executors` with the given rank policy and
    /// channel parallelism. Ids need not be dense: a ring over the
    /// survivors of a failed membership keeps the original ids (so the
    /// transport keeps addressing the same peers) while ring positions
    /// compact to `0..len`.
    ///
    /// # Panics
    /// Panics if `executors` is empty, ids repeat, or `parallelism == 0`.
    pub fn new(mut executors: Vec<ExecutorInfo>, order: RingOrder, parallelism: usize) -> Self {
        assert!(!executors.is_empty(), "ring needs at least one executor");
        assert!(parallelism > 0, "PDR parallelism must be >= 1");
        match order {
            RingOrder::TopologyAware => order_topology_aware(&mut executors),
            RingOrder::ById => executors.sort_by_key(|e| e.id),
        }
        let max_idx = executors.iter().map(|e| e.id.index()).max().unwrap_or(0);
        let mut rank_of = vec![usize::MAX; max_idx + 1];
        for (rank, e) in executors.iter().enumerate() {
            let idx = e.id.index();
            assert!(rank_of[idx] == usize::MAX, "duplicate executor id {}", e.id);
            rank_of[idx] = rank;
        }
        Self { order: executors, rank_of, parallelism }
    }

    /// Number of executors in the ring.
    pub fn size(&self) -> usize {
        self.order.len()
    }

    /// Parallel channels per hop.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The executor at ring position `rank`.
    pub fn executor_at(&self, rank: usize) -> &ExecutorInfo {
        &self.order[rank]
    }

    /// The ring rank of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a member of this ring.
    pub fn rank_of(&self, id: ExecutorId) -> usize {
        let rank = self.rank_of.get(id.index()).copied().unwrap_or(usize::MAX);
        assert!(rank != usize::MAX, "executor {id} is not in this ring");
        rank
    }

    /// Rank this rank sends to.
    pub fn next(&self, rank: usize) -> usize {
        (rank + 1) % self.size()
    }

    /// Rank this rank receives from.
    pub fn prev(&self, rank: usize) -> usize {
        (rank + self.size() - 1) % self.size()
    }

    /// Whether the hop `rank -> next(rank)` stays within one physical node.
    pub fn hop_is_intra_node(&self, rank: usize) -> bool {
        self.order[rank].node == self.order[self.next(rank)].node
    }

    /// Number of ring hops that cross node boundaries.
    ///
    /// Topology-aware ordering drives this to `min(N, num_nodes)`;
    /// id-ordering with round-robin placement drives it to ≈N.
    pub fn inter_node_hops(&self) -> usize {
        if self.size() == 1 {
            return 0;
        }
        (0..self.size()).filter(|&r| !self.hop_is_intra_node(r)).count()
    }

    /// Max number of simultaneously sending executors sharing one node's NIC
    /// (egress flows per node). This is the contention factor that makes the
    /// non-topology-aware ring slow.
    pub fn max_nic_flows(&self) -> usize {
        let num_nodes = self.order.iter().map(|e| e.node).max().unwrap_or(0) + 1;
        let mut flows = vec![0usize; num_nodes];
        for rank in 0..self.size() {
            if !self.hop_is_intra_node(rank) {
                flows[self.order[rank].node] += 1;
            }
        }
        flows.into_iter().max().unwrap_or(0)
    }

    /// Iterates executors in ring order.
    pub fn iter(&self) -> impl Iterator<Item = &ExecutorInfo> {
        self.order.iter()
    }
}

/// The paper's executor ordering (§4, Figure 14): sort by `(hostname, id)`
/// so ring neighbours share physical nodes wherever possible. This is THE
/// canonical ordering — `RingTopology::new(.., TopologyAware, ..)` and
/// [`NodeTopology::group`] both call it, so ring ranks and node groups
/// always agree on who sits next to whom.
pub fn order_topology_aware(executors: &mut [ExecutorInfo]) {
    executors.sort_by(|a, b| a.host.cmp(&b.host).then(a.id.cmp(&b.id)));
}

/// Class of the link between two executors, as seen by the cost model:
/// shared-memory/loopback within one node vs the NIC between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Both endpoints on the same physical node (shared memory / loopback).
    IntraNode,
    /// Endpoints on different nodes — the transfer crosses a NIC.
    InterNode,
}

/// One physical node's executor group, in the paper's canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeGroup {
    /// The locality key all members share (their hostname).
    pub host: String,
    /// Members sorted by id — `members[0]` is the elected node leader.
    pub members: Vec<ExecutorInfo>,
}

impl NodeGroup {
    /// The group's elected leader: the lowest-id executor on the node.
    /// Deterministic, so every member elects the same leader without
    /// coordination, and re-election after a member death is just
    /// re-grouping the survivors.
    pub fn leader(&self) -> &ExecutorInfo {
        &self.members[0]
    }
}

/// Executors grouped by physical node (hostname locality key), the
/// substrate for hierarchical collectives: intra-node fold to a leader,
/// inter-node ring over leaders only.
///
/// Groups are ordered by hostname and members by id — the same
/// `(host, id)` sort as [`order_topology_aware`], so a topology-aware
/// ring visits each group's members consecutively.
#[derive(Debug, Clone)]
pub struct NodeTopology {
    groups: Vec<NodeGroup>,
    /// `group_of[id.index()]` — group index, `usize::MAX` for non-members.
    group_of: Vec<usize>,
}

impl NodeTopology {
    /// Groups `executors` by hostname. Ids may be sparse (survivor views);
    /// duplicate hosts collapse into one group.
    ///
    /// # Panics
    /// Panics if `executors` is empty or ids repeat.
    pub fn group(executors: &[ExecutorInfo]) -> Self {
        assert!(!executors.is_empty(), "node topology needs at least one executor");
        let mut sorted: Vec<ExecutorInfo> = executors.to_vec();
        order_topology_aware(&mut sorted);
        let max_idx = sorted.iter().map(|e| e.id.index()).max().unwrap_or(0);
        let mut group_of = vec![usize::MAX; max_idx + 1];
        let mut groups: Vec<NodeGroup> = Vec::new();
        for e in sorted {
            let idx = e.id.index();
            assert!(group_of[idx] == usize::MAX, "duplicate executor id {}", e.id);
            match groups.last_mut() {
                Some(g) if g.host == e.host => {
                    group_of[idx] = groups.len() - 1;
                    groups.last_mut().unwrap().members.push(e);
                }
                _ => {
                    group_of[idx] = groups.len();
                    groups.push(NodeGroup { host: e.host.clone(), members: vec![e] });
                }
            }
        }
        Self { groups, group_of }
    }

    /// Number of distinct physical nodes.
    pub fn num_nodes(&self) -> usize {
        self.groups.len()
    }

    /// Total number of executors across all groups.
    pub fn num_executors(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }

    /// All node groups in hostname order.
    pub fn groups(&self) -> &[NodeGroup] {
        &self.groups
    }

    /// Largest group size (executors per node upper bound).
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).max().unwrap_or(0)
    }

    /// The elected leaders, one per node, in hostname order.
    pub fn leaders(&self) -> Vec<ExecutorInfo> {
        self.groups.iter().map(|g| g.leader().clone()).collect()
    }

    /// Index of the group containing `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a member.
    pub fn group_of(&self, id: ExecutorId) -> usize {
        let g = self.group_of.get(id.index()).copied().unwrap_or(usize::MAX);
        assert!(g != usize::MAX, "executor {id} is not in this topology");
        g
    }

    /// The leader of `id`'s node.
    pub fn leader_of(&self, id: ExecutorId) -> ExecutorId {
        self.groups[self.group_of(id)].leader().id
    }

    /// Whether `id` is its node's elected leader.
    pub fn is_leader(&self, id: ExecutorId) -> bool {
        self.leader_of(id) == id
    }

    /// Link class between two member executors.
    pub fn link_class(&self, a: ExecutorId, b: ExecutorId) -> LinkClass {
        if self.group_of(a) == self.group_of(b) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }
}

/// Builds the standard executor layout used across the reproduction:
/// `executors_per_node` executors on each of `nodes` hosts, placed
/// round-robin by id (id `i` lives on node `i % nodes`), mirroring how a
/// cluster manager spreads executors without regard to rank order.
pub fn round_robin_layout(nodes: usize, executors_per_node: usize, cores: usize) -> Vec<ExecutorInfo> {
    assert!(nodes > 0 && executors_per_node > 0);
    let total = nodes * executors_per_node;
    (0..total)
        .map(|i| {
            let node = i % nodes;
            ExecutorInfo {
                id: ExecutorId(i as u32),
                host: format!("node-{node:03}"),
                node,
                cores,
            }
        })
        .collect()
}

/// Like [`round_robin_layout`] but packing executors onto nodes contiguously
/// (id `i` lives on node `i / executors_per_node`).
pub fn packed_layout(nodes: usize, executors_per_node: usize, cores: usize) -> Vec<ExecutorInfo> {
    assert!(nodes > 0 && executors_per_node > 0);
    let total = nodes * executors_per_node;
    (0..total)
        .map(|i| {
            let node = i / executors_per_node;
            ExecutorInfo {
                id: ExecutorId(i as u32),
                host: format!("node-{node:03}"),
                node,
                cores,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_neighbours_wrap() {
        let execs = round_robin_layout(2, 2, 4);
        let ring = RingTopology::new(execs, RingOrder::ById, 1);
        assert_eq!(ring.size(), 4);
        assert_eq!(ring.next(3), 0);
        assert_eq!(ring.prev(0), 3);
        assert_eq!(ring.next(1), 2);
    }

    #[test]
    fn topology_aware_minimizes_inter_node_hops() {
        // 8 nodes x 6 executors, round-robin placement (the adversarial case).
        let execs = round_robin_layout(8, 6, 4);
        let aware = RingTopology::new(execs.clone(), RingOrder::TopologyAware, 4);
        let by_id = RingTopology::new(execs, RingOrder::ById, 4);
        assert_eq!(aware.inter_node_hops(), 8, "one NIC crossing per node");
        assert_eq!(by_id.inter_node_hops(), 48, "round-robin ids cross every hop");
        assert!(aware.max_nic_flows() <= 1);
        assert_eq!(by_id.max_nic_flows(), 6, "six concurrent flows share each NIC");
    }

    #[test]
    fn packed_layout_makes_id_order_equal_topology_order() {
        let execs = packed_layout(4, 3, 2);
        let aware = RingTopology::new(execs.clone(), RingOrder::TopologyAware, 1);
        let by_id = RingTopology::new(execs, RingOrder::ById, 1);
        assert_eq!(aware.inter_node_hops(), by_id.inter_node_hops());
        assert_eq!(aware.inter_node_hops(), 4);
    }

    #[test]
    fn rank_of_inverts_executor_at() {
        let execs = round_robin_layout(3, 5, 2);
        let ring = RingTopology::new(execs, RingOrder::TopologyAware, 2);
        for rank in 0..ring.size() {
            let id = ring.executor_at(rank).id;
            assert_eq!(ring.rank_of(id), rank);
        }
    }

    #[test]
    fn single_executor_ring_is_degenerate_but_valid() {
        let execs = round_robin_layout(1, 1, 8);
        let ring = RingTopology::new(execs, RingOrder::TopologyAware, 4);
        assert_eq!(ring.size(), 1);
        assert_eq!(ring.next(0), 0);
        assert_eq!(ring.prev(0), 0);
        assert_eq!(ring.inter_node_hops(), 0);
    }

    #[test]
    fn survivor_ring_keeps_sparse_ids() {
        // Executor 1 of a 4-wide cluster died: the survivor ring keeps ids
        // {0, 2, 3} (transport addressing unchanged) at positions 0..3.
        let execs: Vec<ExecutorInfo> = round_robin_layout(1, 4, 1)
            .into_iter()
            .filter(|e| e.id.0 != 1)
            .collect();
        let ring = RingTopology::new(execs, RingOrder::ById, 2);
        assert_eq!(ring.size(), 3);
        assert_eq!(ring.executor_at(0).id.0, 0);
        assert_eq!(ring.executor_at(1).id.0, 2);
        assert_eq!(ring.executor_at(2).id.0, 3);
        assert_eq!(ring.rank_of(ExecutorId(3)), 2);
        assert_eq!(ring.next(2), 0, "the ring closes over the survivors");
    }

    #[test]
    #[should_panic(expected = "is not in this ring")]
    fn rank_of_nonmember_panics() {
        let execs: Vec<ExecutorInfo> =
            round_robin_layout(1, 3, 1).into_iter().filter(|e| e.id.0 != 1).collect();
        let ring = RingTopology::new(execs, RingOrder::ById, 1);
        ring.rank_of(ExecutorId(1));
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn empty_ring_panics() {
        RingTopology::new(vec![], RingOrder::ById, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate executor id")]
    fn duplicate_ids_panic() {
        let mut execs = round_robin_layout(1, 2, 1);
        execs[1].id = ExecutorId(0);
        RingTopology::new(execs, RingOrder::ById, 1);
    }

    #[test]
    #[should_panic(expected = "parallelism must be >= 1")]
    fn zero_parallelism_panics() {
        RingTopology::new(round_robin_layout(1, 1, 1), RingOrder::ById, 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(ExecutorId(7).to_string(), "exec-7");
    }

    #[test]
    fn grouping_collapses_duplicate_hosts() {
        // Round-robin placement interleaves hosts; grouping must collapse
        // each host's scattered executors into one group, members id-sorted.
        let execs = round_robin_layout(3, 4, 1);
        let topo = NodeTopology::group(&execs);
        assert_eq!(topo.num_nodes(), 3);
        assert_eq!(topo.num_executors(), 12);
        for g in topo.groups() {
            assert_eq!(g.members.len(), 4);
            for m in &g.members {
                assert_eq!(m.host, g.host, "member on the wrong group");
            }
            for w in g.members.windows(2) {
                assert!(w[0].id < w[1].id, "members must be id-sorted");
            }
            assert_eq!(g.leader().id, g.members[0].id);
        }
        // Groups come out in hostname order, matching the ring sort.
        let hosts: Vec<&str> = topo.groups().iter().map(|g| g.host.as_str()).collect();
        assert_eq!(hosts, ["node-000", "node-001", "node-002"]);
    }

    #[test]
    fn grouping_matches_topology_aware_ring_order() {
        // The shared sort means a topology-aware ring walks group 0's
        // members, then group 1's, etc. — exactly the group concatenation.
        let execs = round_robin_layout(4, 3, 2);
        let ring = RingTopology::new(execs.clone(), RingOrder::TopologyAware, 2);
        let topo = NodeTopology::group(&execs);
        let ring_ids: Vec<u32> = ring.iter().map(|e| e.id.0).collect();
        let group_ids: Vec<u32> = topo
            .groups()
            .iter()
            .flat_map(|g| g.members.iter().map(|m| m.id.0))
            .collect();
        assert_eq!(ring_ids, group_ids);
    }

    #[test]
    fn single_node_degenerate_group() {
        let execs = round_robin_layout(1, 5, 1);
        let topo = NodeTopology::group(&execs);
        assert_eq!(topo.num_nodes(), 1);
        assert_eq!(topo.max_group_size(), 5);
        assert_eq!(topo.leaders().len(), 1);
        assert_eq!(topo.leaders()[0].id, ExecutorId(0), "leader is the lowest id");
        for e in &execs {
            assert_eq!(topo.group_of(e.id), 0);
            assert_eq!(topo.leader_of(e.id), ExecutorId(0));
            assert_eq!(topo.is_leader(e.id), e.id == ExecutorId(0));
            assert_eq!(topo.link_class(e.id, ExecutorId(0)), LinkClass::IntraNode);
        }
    }

    #[test]
    fn grouping_survivor_view_reelects_leader() {
        // Node 0 originally holds {0, 2, 4} (round-robin over 2 nodes);
        // executor 0 dies — the survivors re-elect 2 as leader.
        let execs: Vec<ExecutorInfo> = round_robin_layout(2, 3, 1)
            .into_iter()
            .filter(|e| e.id.0 != 0)
            .collect();
        let topo = NodeTopology::group(&execs);
        assert_eq!(topo.num_nodes(), 2);
        assert_eq!(topo.leader_of(ExecutorId(4)), ExecutorId(2));
        assert!(topo.is_leader(ExecutorId(2)));
        assert_eq!(topo.link_class(ExecutorId(2), ExecutorId(3)), LinkClass::InterNode);
    }

    #[test]
    #[should_panic(expected = "duplicate executor id")]
    fn grouping_duplicate_ids_panic() {
        let mut execs = round_robin_layout(2, 2, 1);
        execs[3].id = ExecutorId(0);
        NodeTopology::group(&execs);
    }

    #[test]
    #[should_panic(expected = "is not in this topology")]
    fn grouping_nonmember_panics() {
        let topo = NodeTopology::group(&round_robin_layout(1, 2, 1));
        topo.group_of(ExecutorId(9));
    }
}
