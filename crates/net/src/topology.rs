//! Executor placement and the parallel directed ring (PDR).
//!
//! Sparker arranges executors in a directed ring: executor ranked `i` sends
//! to rank `(i + 1) mod N` and receives from `(i - 1 + N) mod N`, with `P`
//! parallel channels per hop (§4.1, Figure 10). The assignment of *ranks* to
//! executors is a pure policy choice with large performance consequences:
//! ordering executors by hostname ("topology-awareness") puts ring
//! neighbours on the same physical node wherever possible, so only one hop
//! per node crosses the NIC — the paper measures 2.76× from this alone
//! (Figure 14).

use std::fmt;

/// Globally unique executor identifier. Founding clusters assign ids dense
/// in `0..num_executors`; after a failure a surviving ring keeps the
/// original (now sparse) ids so transport addressing is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecutorId(pub u32);

impl ExecutorId {
    /// This id as a dense `usize` rank.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExecutorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exec-{}", self.0)
    }
}

/// Static description of one executor: where it lives and what it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorInfo {
    /// The executor's globally unique id.
    pub id: ExecutorId,
    /// Hostname of the physical node ("node-03"). Topology-aware ordering
    /// sorts on this.
    pub host: String,
    /// Dense index of the physical node, `0..num_nodes`.
    pub node: usize,
    /// Core slots (concurrent tasks) this executor runs.
    pub cores: usize,
}

/// How ranks are assigned around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOrder {
    /// Sort by (hostname, executor id): neighbours share nodes when possible.
    TopologyAware,
    /// Sort by bare executor id — the paper's "without topology-awareness"
    /// baseline. With round-robin executor placement this maximizes
    /// NIC crossings.
    ById,
}

/// A concrete ring: the rank→executor mapping plus neighbour lookups.
#[derive(Debug, Clone)]
pub struct RingTopology {
    /// `order[rank]` is the executor occupying that ring position.
    order: Vec<ExecutorInfo>,
    /// `rank_of[executor.index()]` is that executor's ring rank
    /// (`usize::MAX` marks ids absent from this ring — survivor views).
    rank_of: Vec<usize>,
    /// Number of parallel channels per hop (the "P" in PDR).
    parallelism: usize,
}

impl RingTopology {
    /// Builds a ring over `executors` with the given rank policy and
    /// channel parallelism. Ids need not be dense: a ring over the
    /// survivors of a failed membership keeps the original ids (so the
    /// transport keeps addressing the same peers) while ring positions
    /// compact to `0..len`.
    ///
    /// # Panics
    /// Panics if `executors` is empty, ids repeat, or `parallelism == 0`.
    pub fn new(mut executors: Vec<ExecutorInfo>, order: RingOrder, parallelism: usize) -> Self {
        assert!(!executors.is_empty(), "ring needs at least one executor");
        assert!(parallelism > 0, "PDR parallelism must be >= 1");
        match order {
            RingOrder::TopologyAware => {
                executors.sort_by(|a, b| a.host.cmp(&b.host).then(a.id.cmp(&b.id)));
            }
            RingOrder::ById => executors.sort_by_key(|e| e.id),
        }
        let max_idx = executors.iter().map(|e| e.id.index()).max().unwrap_or(0);
        let mut rank_of = vec![usize::MAX; max_idx + 1];
        for (rank, e) in executors.iter().enumerate() {
            let idx = e.id.index();
            assert!(rank_of[idx] == usize::MAX, "duplicate executor id {}", e.id);
            rank_of[idx] = rank;
        }
        Self { order: executors, rank_of, parallelism }
    }

    /// Number of executors in the ring.
    pub fn size(&self) -> usize {
        self.order.len()
    }

    /// Parallel channels per hop.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The executor at ring position `rank`.
    pub fn executor_at(&self, rank: usize) -> &ExecutorInfo {
        &self.order[rank]
    }

    /// The ring rank of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a member of this ring.
    pub fn rank_of(&self, id: ExecutorId) -> usize {
        let rank = self.rank_of.get(id.index()).copied().unwrap_or(usize::MAX);
        assert!(rank != usize::MAX, "executor {id} is not in this ring");
        rank
    }

    /// Rank this rank sends to.
    pub fn next(&self, rank: usize) -> usize {
        (rank + 1) % self.size()
    }

    /// Rank this rank receives from.
    pub fn prev(&self, rank: usize) -> usize {
        (rank + self.size() - 1) % self.size()
    }

    /// Whether the hop `rank -> next(rank)` stays within one physical node.
    pub fn hop_is_intra_node(&self, rank: usize) -> bool {
        self.order[rank].node == self.order[self.next(rank)].node
    }

    /// Number of ring hops that cross node boundaries.
    ///
    /// Topology-aware ordering drives this to `min(N, num_nodes)`;
    /// id-ordering with round-robin placement drives it to ≈N.
    pub fn inter_node_hops(&self) -> usize {
        if self.size() == 1 {
            return 0;
        }
        (0..self.size()).filter(|&r| !self.hop_is_intra_node(r)).count()
    }

    /// Max number of simultaneously sending executors sharing one node's NIC
    /// (egress flows per node). This is the contention factor that makes the
    /// non-topology-aware ring slow.
    pub fn max_nic_flows(&self) -> usize {
        let num_nodes = self.order.iter().map(|e| e.node).max().unwrap_or(0) + 1;
        let mut flows = vec![0usize; num_nodes];
        for rank in 0..self.size() {
            if !self.hop_is_intra_node(rank) {
                flows[self.order[rank].node] += 1;
            }
        }
        flows.into_iter().max().unwrap_or(0)
    }

    /// Iterates executors in ring order.
    pub fn iter(&self) -> impl Iterator<Item = &ExecutorInfo> {
        self.order.iter()
    }
}

/// Builds the standard executor layout used across the reproduction:
/// `executors_per_node` executors on each of `nodes` hosts, placed
/// round-robin by id (id `i` lives on node `i % nodes`), mirroring how a
/// cluster manager spreads executors without regard to rank order.
pub fn round_robin_layout(nodes: usize, executors_per_node: usize, cores: usize) -> Vec<ExecutorInfo> {
    assert!(nodes > 0 && executors_per_node > 0);
    let total = nodes * executors_per_node;
    (0..total)
        .map(|i| {
            let node = i % nodes;
            ExecutorInfo {
                id: ExecutorId(i as u32),
                host: format!("node-{node:03}"),
                node,
                cores,
            }
        })
        .collect()
}

/// Like [`round_robin_layout`] but packing executors onto nodes contiguously
/// (id `i` lives on node `i / executors_per_node`).
pub fn packed_layout(nodes: usize, executors_per_node: usize, cores: usize) -> Vec<ExecutorInfo> {
    assert!(nodes > 0 && executors_per_node > 0);
    let total = nodes * executors_per_node;
    (0..total)
        .map(|i| {
            let node = i / executors_per_node;
            ExecutorInfo {
                id: ExecutorId(i as u32),
                host: format!("node-{node:03}"),
                node,
                cores,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_neighbours_wrap() {
        let execs = round_robin_layout(2, 2, 4);
        let ring = RingTopology::new(execs, RingOrder::ById, 1);
        assert_eq!(ring.size(), 4);
        assert_eq!(ring.next(3), 0);
        assert_eq!(ring.prev(0), 3);
        assert_eq!(ring.next(1), 2);
    }

    #[test]
    fn topology_aware_minimizes_inter_node_hops() {
        // 8 nodes x 6 executors, round-robin placement (the adversarial case).
        let execs = round_robin_layout(8, 6, 4);
        let aware = RingTopology::new(execs.clone(), RingOrder::TopologyAware, 4);
        let by_id = RingTopology::new(execs, RingOrder::ById, 4);
        assert_eq!(aware.inter_node_hops(), 8, "one NIC crossing per node");
        assert_eq!(by_id.inter_node_hops(), 48, "round-robin ids cross every hop");
        assert!(aware.max_nic_flows() <= 1);
        assert_eq!(by_id.max_nic_flows(), 6, "six concurrent flows share each NIC");
    }

    #[test]
    fn packed_layout_makes_id_order_equal_topology_order() {
        let execs = packed_layout(4, 3, 2);
        let aware = RingTopology::new(execs.clone(), RingOrder::TopologyAware, 1);
        let by_id = RingTopology::new(execs, RingOrder::ById, 1);
        assert_eq!(aware.inter_node_hops(), by_id.inter_node_hops());
        assert_eq!(aware.inter_node_hops(), 4);
    }

    #[test]
    fn rank_of_inverts_executor_at() {
        let execs = round_robin_layout(3, 5, 2);
        let ring = RingTopology::new(execs, RingOrder::TopologyAware, 2);
        for rank in 0..ring.size() {
            let id = ring.executor_at(rank).id;
            assert_eq!(ring.rank_of(id), rank);
        }
    }

    #[test]
    fn single_executor_ring_is_degenerate_but_valid() {
        let execs = round_robin_layout(1, 1, 8);
        let ring = RingTopology::new(execs, RingOrder::TopologyAware, 4);
        assert_eq!(ring.size(), 1);
        assert_eq!(ring.next(0), 0);
        assert_eq!(ring.prev(0), 0);
        assert_eq!(ring.inter_node_hops(), 0);
    }

    #[test]
    fn survivor_ring_keeps_sparse_ids() {
        // Executor 1 of a 4-wide cluster died: the survivor ring keeps ids
        // {0, 2, 3} (transport addressing unchanged) at positions 0..3.
        let execs: Vec<ExecutorInfo> = round_robin_layout(1, 4, 1)
            .into_iter()
            .filter(|e| e.id.0 != 1)
            .collect();
        let ring = RingTopology::new(execs, RingOrder::ById, 2);
        assert_eq!(ring.size(), 3);
        assert_eq!(ring.executor_at(0).id.0, 0);
        assert_eq!(ring.executor_at(1).id.0, 2);
        assert_eq!(ring.executor_at(2).id.0, 3);
        assert_eq!(ring.rank_of(ExecutorId(3)), 2);
        assert_eq!(ring.next(2), 0, "the ring closes over the survivors");
    }

    #[test]
    #[should_panic(expected = "is not in this ring")]
    fn rank_of_nonmember_panics() {
        let execs: Vec<ExecutorInfo> =
            round_robin_layout(1, 3, 1).into_iter().filter(|e| e.id.0 != 1).collect();
        let ring = RingTopology::new(execs, RingOrder::ById, 1);
        ring.rank_of(ExecutorId(1));
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn empty_ring_panics() {
        RingTopology::new(vec![], RingOrder::ById, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate executor id")]
    fn duplicate_ids_panic() {
        let mut execs = round_robin_layout(1, 2, 1);
        execs[1].id = ExecutorId(0);
        RingTopology::new(execs, RingOrder::ById, 1);
    }

    #[test]
    #[should_panic(expected = "parallelism must be >= 1")]
    fn zero_parallelism_panics() {
        RingTopology::new(round_robin_layout(1, 1, 1), RingOrder::ById, 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(ExecutorId(7).to_string(), "exec-7");
    }
}
