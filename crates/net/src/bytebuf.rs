//! In-repo replacement for the `bytes` crate: [`ByteBuf`] (immutable,
//! reference-counted frame) and [`ByteBufMut`] (growable encode buffer).
//!
//! The codec needs exactly two things from its byte container:
//!
//! 1. **Zero-copy slicing.** A decoded sub-frame ([`ByteBuf::split_to`],
//!    [`ByteBuf::slice`]) and a cloned message share the backing allocation —
//!    a reduce-scatter hop that forwards a segment must not copy it.
//! 2. **A frozen encode buffer.** [`ByteBufMut::freeze`] converts the encode
//!    buffer into an immutable frame without copying (the `Vec` moves into
//!    the shared allocation).
//!
//! Everything else (`get_*`/`put_*` little-endian accessors) is a thin layer
//! over `[u8]`. Consuming reads panic on underflow, mirroring the `bytes`
//! crate's `Buf` contract; [`crate::codec::Decoder`] length-checks before
//! every read so hostile frames surface as `NetError::Codec`, never a panic.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte frame.
///
/// Internally an `Arc<Vec<u8>>` plus a `[start, end)` window: `clone`,
/// [`ByteBuf::slice`], [`ByteBuf::split_to`] and [`ByteBuf::advance`] are
/// O(1) and never copy the payload.
#[derive(Clone, Default)]
pub struct ByteBuf {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl ByteBuf {
    /// Creates an empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a frame from a static byte string (copies once into the
    /// shared allocation; used for small control payloads and tests).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Bytes visible through this frame's window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Alias for [`ByteBuf::len`], matching the `bytes::Buf` vocabulary the
    /// decoder uses.
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// Returns a sub-frame of `range` (relative to this frame) sharing the
    /// same backing allocation.
    ///
    /// # Panics
    /// If `range` is out of bounds or inverted.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(range.end <= self.len(), "slice out of bounds");
        Self {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `n` bytes; `self` keeps the rest.
    /// Both halves share the backing allocation.
    ///
    /// # Panics
    /// If `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Self {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Self {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Discards the first `n` bytes.
    ///
    /// # Panics
    /// If `n > self.len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }

    /// Copies the visible window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Recovers the backing `Vec` if this frame is the sole owner of its
    /// allocation, otherwise returns `self` unchanged. The recovered `Vec`
    /// holds the *full* allocation (window offsets are discarded); callers
    /// that reuse it — [`crate::pool::FramePool`] — must clear it first.
    pub fn try_unwrap_vec(self) -> Result<Vec<u8>, Self> {
        let Self { data, start, end } = self;
        Arc::try_unwrap(data).map_err(|data| Self { data, start, end })
    }

    fn take_array<const N: usize>(&mut self, what: &str) -> [u8; N] {
        assert!(self.len() >= N, "{what}: buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }

    /// Consuming little-endian reads (panic on underflow, like `bytes::Buf`).
    pub fn get_u8(&mut self) -> u8 {
        self.take_array::<1>("get_u8")[0]
    }

    /// Consumes 4 bytes as a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array("get_u32_le"))
    }

    /// Consumes 8 bytes as a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array("get_u64_le"))
    }

    /// Consumes 8 bytes as a little-endian `i64`.
    pub fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array("get_i64_le"))
    }

    /// Consumes 8 bytes as a little-endian `f64`.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array("get_f64_le"))
    }
}

impl From<Vec<u8>> for ByteBuf {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for ByteBuf {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl Deref for ByteBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for ByteBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for ByteBuf {}

impl PartialEq<[u8]> for ByteBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::fmt::Debug for ByteBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteBuf({:?})", self.as_ref())
    }
}

/// A growable encode buffer that freezes into a [`ByteBuf`] without copying.
#[derive(Debug, Default)]
pub struct ByteBufMut {
    buf: Vec<u8>,
}

impl ByteBufMut {
    /// An empty encode buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty encode buffer pre-sized for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Wraps an existing `Vec` as the encode buffer; writes append after its
    /// current contents. Pool-recycled buffers arrive already cleared (see
    /// [`crate::pool::FramePool::acquire`]), so only capacity is inherited.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Spare capacity of the underlying allocation.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable frame; the accumulated `Vec` moves into
    /// the frame's shared allocation (no copy).
    pub fn freeze(self) -> ByteBuf {
        ByteBuf::from(self.buf)
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` in little-endian order.
    pub fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `f64` in little-endian order.
    pub fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_roundtrips_contents() {
        let mut b = ByteBufMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 8);
        let mut f = b.freeze();
        assert_eq!(f.len(), 8);
        assert_eq!(f.get_u8(), 7);
        assert_eq!(f.get_u32_le(), 0xdead_beef);
        assert_eq!(&f[..], b"xyz");
    }

    #[test]
    fn clone_and_slice_share_storage_zero_copy() {
        let buf = ByteBuf::from(vec![0u8; 1024]);
        let clone = buf.clone();
        let slice = buf.slice(100..200);
        // All three views point into the same allocation.
        assert!(std::ptr::eq(buf.as_ref().as_ptr(), clone.as_ref().as_ptr()));
        assert_eq!(slice.as_ref().as_ptr() as usize, buf.as_ref().as_ptr() as usize + 100);
        assert_eq!(slice.len(), 100);
    }

    #[test]
    fn split_to_mirrors_bytes_semantics() {
        // bytes::Bytes::split_to(n): returns [0, n), keeps [n, len).
        let mut buf = ByteBuf::from((0u8..10).collect::<Vec<_>>());
        let head = buf.split_to(4);
        assert_eq!(&head[..], &[0, 1, 2, 3]);
        assert_eq!(&buf[..], &[4, 5, 6, 7, 8, 9]);
        // Splitting everything leaves an empty tail.
        let mut rest = buf;
        let all = rest.split_to(6);
        assert_eq!(all.len(), 6);
        assert!(rest.is_empty());
    }

    #[test]
    fn advance_mirrors_bytes_semantics() {
        let mut buf = ByteBuf::from((0u8..8).collect::<Vec<_>>());
        buf.advance(3);
        assert_eq!(&buf[..], &[3, 4, 5, 6, 7]);
        assert_eq!(buf.remaining(), 5);
        buf.advance(5);
        assert!(buf.is_empty());
    }

    #[test]
    fn slice_of_slice_stays_relative() {
        let buf = ByteBuf::from((0u8..100).collect::<Vec<_>>());
        let mid = buf.slice(10..90);
        let inner = mid.slice(5..10);
        assert_eq!(&inner[..], &[15, 16, 17, 18, 19]);
    }

    #[test]
    fn consuming_reads_advance_in_order() {
        let mut b = ByteBufMut::new();
        b.put_u64_le(u64::MAX);
        b.put_i64_le(-5);
        b.put_f64_le(2.5);
        let mut f = b.freeze();
        assert_eq!(f.get_u64_le(), u64::MAX);
        assert_eq!(f.get_i64_le(), -5);
        assert_eq!(f.get_f64_le(), 2.5);
        assert_eq!(f.remaining(), 0);
    }

    #[test]
    fn equality_is_by_contents_across_windows() {
        let a = ByteBuf::from(vec![9u8, 1, 2, 3]).slice(1..4);
        let b = ByteBuf::from(vec![1u8, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2, 3][..]);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        ByteBuf::from(vec![1u8, 2]).split_to(3);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics() {
        ByteBuf::from(vec![1u8, 2]).advance(3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn read_past_end_panics() {
        ByteBuf::from(vec![1u8]).get_u32_le();
    }

    #[test]
    fn from_static_and_empty() {
        let s = ByteBuf::from_static(b"hello");
        assert_eq!(&s[..], b"hello");
        let e = ByteBuf::new();
        assert!(e.is_empty());
        assert_eq!(e.remaining(), 0);
    }
}
