//! Deterministic transport-level fault injection.
//!
//! The engine's original `FaultPlan` injects failures only at task-body
//! start, which never exercises a collective *mid-flight*: the interesting
//! failures for MPI-style collectives are a frame that vanishes between two
//! ring neighbours, a link that stalls, a payload that arrives mangled, or an
//! executor that dies after its Kth send. [`NetFaultPlan`] describes exactly
//! those events and [`FaultyTransport`] replays them deterministically around
//! any inner [`Transport`], so a chaos seed reproduces the same fault
//! sequence on every run.
//!
//! Coordinates are *per directed link* `(from, to)` send sequence numbers,
//! 0-based, counted across all channels of the link — the Nth `send` call on
//! that link triggers the fault regardless of which channel carried it.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use sparker_obs::{trace, Layer};

use crate::bytebuf::ByteBuf;
use crate::error::{NetError, NetResult};
use crate::sync::Mutex;
use crate::topology::ExecutorId;
use crate::transport::Transport;

/// One directed link, by executor index.
type Link = (u32, u32);

/// A deterministic, replayable schedule of network faults.
///
/// Build one with the chained setters, then wrap a transport via
/// [`FaultyTransport::new`]. Plans are immutable once built; all mutable
/// replay state lives in the transport decorator.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Link-seq pairs whose frame is silently dropped.
    drops: HashSet<(Link, u64)>,
    /// Link-seq pairs whose frame is delayed by the given duration.
    delays: HashMap<(Link, u64), Duration>,
    /// Link-seq pairs whose payload has one byte flipped.
    corrupts: HashSet<(Link, u64)>,
    /// Executors that die after completing this many sends.
    kills: HashMap<u32, u64>,
    /// Links that silently drop every frame.
    partitioned: HashSet<Link>,
}

impl NetFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
            && self.delays.is_empty()
            && self.corrupts.is_empty()
            && self.kills.is_empty()
            && self.partitioned.is_empty()
    }

    /// Silently drops the `n`th (0-based) send on the directed link
    /// `from -> to`.
    pub fn drop_nth(mut self, from: ExecutorId, to: ExecutorId, n: u64) -> Self {
        self.drops.insert(((from.0, to.0), n));
        self
    }

    /// Delays delivery of the `n`th send on `from -> to` by `delay`.
    pub fn delay_nth(mut self, from: ExecutorId, to: ExecutorId, n: u64, delay: Duration) -> Self {
        self.delays.insert(((from.0, to.0), n), delay);
        self
    }

    /// Flips one payload byte of the `n`th send on `from -> to`.
    pub fn corrupt_nth(mut self, from: ExecutorId, to: ExecutorId, n: u64) -> Self {
        self.corrupts.insert(((from.0, to.0), n));
        self
    }

    /// Kills `executor` after it completes `k` sends: every later send from
    /// it fails with [`NetError::Disconnected`], permanently.
    pub fn kill_after_sends(mut self, executor: ExecutorId, k: u64) -> Self {
        self.kills.insert(executor.0, k);
        self
    }

    /// Partitions the given directed links: every frame on them is dropped.
    pub fn partition(mut self, links: &[(ExecutorId, ExecutorId)]) -> Self {
        for &(from, to) in links {
            self.partitioned.insert((from.0, to.0));
        }
        self
    }

    // --- read-side queries -------------------------------------------------
    //
    // [`FaultyTransport`] replays plans against a live transport; the DES
    // (`sparker_sim::elastic`) replays the *same plans* against simulated
    // op-graphs. These queries expose the plan's verdicts without giving the
    // replayer mutable access, so both consumers stay in lock-step on what a
    // given (link, seq) coordinate means.

    /// Would the `n`th (0-based) send on `from -> to` be dropped (either by
    /// a one-shot drop or a standing partition)?
    pub fn drops_nth(&self, from: ExecutorId, to: ExecutorId, n: u64) -> bool {
        self.partitioned.contains(&(from.0, to.0)) || self.drops.contains(&((from.0, to.0), n))
    }

    /// Injected delivery delay for the `n`th send on `from -> to`, if any.
    pub fn delay_of_nth(&self, from: ExecutorId, to: ExecutorId, n: u64) -> Option<Duration> {
        self.delays.get(&((from.0, to.0), n)).copied()
    }

    /// Would the `n`th send on `from -> to` arrive with a flipped byte?
    pub fn corrupts_nth(&self, from: ExecutorId, to: ExecutorId, n: u64) -> bool {
        self.corrupts.contains(&((from.0, to.0), n))
    }

    /// Send count after which `executor` dies, if it has a kill schedule.
    pub fn kill_threshold(&self, executor: ExecutorId) -> Option<u64> {
        self.kills.get(&executor.0).copied()
    }

    /// Is the directed link `from -> to` under a standing partition?
    pub fn is_partitioned(&self, from: ExecutorId, to: ExecutorId) -> bool {
        self.partitioned.contains(&(from.0, to.0))
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// Next send sequence number per directed link.
    link_seq: HashMap<Link, u64>,
    /// Completed sends per executor (for kill schedules).
    sends_by: HashMap<u32, u64>,
    /// Executors whose kill schedule has fired.
    dead: HashSet<u32>,
}

/// A [`Transport`] decorator that replays a [`NetFaultPlan`].
///
/// Receives are passed through untouched: every injectable fault manifests on
/// the send side (a dropped or corrupted frame is observed by the receiver as
/// a timeout or a codec error, exactly like a real network).
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    plan: NetFaultPlan,
    state: Mutex<FaultState>,
}

impl FaultyTransport {
    /// Wraps `inner`, replaying `plan` against its traffic.
    pub fn new(inner: Arc<dyn Transport>, plan: NetFaultPlan) -> Arc<Self> {
        Arc::new(Self { inner, plan, state: Mutex::new(FaultState::default()) })
    }

    /// The plan this decorator replays.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// True once `executor`'s kill schedule has fired.
    pub fn is_dead(&self, executor: ExecutorId) -> bool {
        self.state.lock().dead.contains(&executor.0)
    }
}

/// What the plan says should happen to one send.
enum Verdict {
    Forward,
    Drop,
    SenderDead,
    Corrupt,
    Delay(Duration),
}

impl FaultyTransport {
    fn judge(&self, from: ExecutorId, to: ExecutorId) -> Verdict {
        let link = (from.0, to.0);
        let mut s = self.state.lock();
        if s.dead.contains(&from.0) {
            return Verdict::SenderDead;
        }
        if let Some(&k) = self.plan.kills.get(&from.0) {
            if s.sends_by.get(&from.0).copied().unwrap_or(0) >= k {
                s.dead.insert(from.0);
                return Verdict::SenderDead;
            }
        }
        // The send will complete (possibly as a silent drop); account for it.
        *s.sends_by.entry(from.0).or_insert(0) += 1;
        let seq = s.link_seq.entry(link).or_insert(0);
        let this_seq = *seq;
        *seq += 1;
        drop(s);

        if self.plan.partitioned.contains(&link) || self.plan.drops.contains(&(link, this_seq)) {
            Verdict::Drop
        } else if self.plan.corrupts.contains(&(link, this_seq)) {
            Verdict::Corrupt
        } else if let Some(&d) = self.plan.delays.get(&(link, this_seq)) {
            Verdict::Delay(d)
        } else {
            Verdict::Forward
        }
    }
}

impl Transport for FaultyTransport {
    fn size(&self) -> usize {
        self.inner.size()
    }

    fn channels(&self) -> usize {
        self.inner.channels()
    }

    fn send(&self, from: ExecutorId, to: ExecutorId, channel: usize, msg: ByteBuf) -> NetResult<()> {
        let fault_event = |name: &str| {
            trace::event(Layer::Net, name, &[("from", from.0 as u64), ("to", to.0 as u64)]);
        };
        match self.judge(from, to) {
            Verdict::SenderDead => {
                fault_event("fault.dead");
                Err(NetError::Disconnected)
            }
            Verdict::Drop => {
                fault_event("fault.drop");
                Ok(())
            }
            Verdict::Forward => self.inner.send(from, to, channel, msg),
            Verdict::Corrupt => {
                fault_event("fault.corrupt");
                let mut bytes = msg.to_vec();
                if let Some(last) = bytes.last_mut() {
                    *last ^= 0x01;
                }
                self.inner.send(from, to, channel, ByteBuf::from(bytes))
            }
            Verdict::Delay(d) => {
                fault_event("fault.delay");
                std::thread::sleep(d);
                self.inner.send(from, to, channel, msg)
            }
        }
    }

    fn recv(&self, at: ExecutorId, from: ExecutorId, channel: usize) -> NetResult<ByteBuf> {
        self.inner.recv(at, from, channel)
    }

    fn recv_timeout(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        self.inner.recv_timeout(at, from, channel, timeout)
    }

    fn drain_all(&self) -> usize {
        self.inner.drain_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::round_robin_layout;
    use crate::transport::MeshTransport;

    fn mesh(n: usize) -> Arc<MeshTransport> {
        MeshTransport::unshaped(&round_robin_layout(n, 1, 1), 2)
    }

    const E0: ExecutorId = ExecutorId(0);
    const E1: ExecutorId = ExecutorId(1);

    #[test]
    fn clean_plan_forwards_everything() {
        let net = FaultyTransport::new(mesh(2), NetFaultPlan::new());
        net.send(E0, E1, 0, ByteBuf::from_static(b"hi")).unwrap();
        assert_eq!(&net.recv(E1, E0, 0).unwrap()[..], b"hi");
    }

    #[test]
    fn drop_nth_skips_exactly_that_send() {
        let net = FaultyTransport::new(mesh(2), NetFaultPlan::new().drop_nth(E0, E1, 1));
        for m in [b"a", b"b", b"c"] {
            net.send(E0, E1, 0, ByteBuf::from_static(m)).unwrap();
        }
        assert_eq!(&net.recv(E1, E0, 0).unwrap()[..], b"a");
        assert_eq!(&net.recv(E1, E0, 0).unwrap()[..], b"c");
        assert_eq!(
            net.recv_timeout(E1, E0, 0, Duration::from_millis(5)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn link_sequence_counts_across_channels() {
        // Seq 1 on the link is the channel-1 send, even though channel 0
        // carried seq 0.
        let net = FaultyTransport::new(mesh(2), NetFaultPlan::new().drop_nth(E0, E1, 1));
        net.send(E0, E1, 0, ByteBuf::from_static(b"ch0")).unwrap();
        net.send(E0, E1, 1, ByteBuf::from_static(b"ch1")).unwrap();
        assert_eq!(&net.recv(E1, E0, 0).unwrap()[..], b"ch0");
        assert_eq!(
            net.recv_timeout(E1, E0, 1, Duration::from_millis(5)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn corrupt_nth_flips_a_byte() {
        let net = FaultyTransport::new(mesh(2), NetFaultPlan::new().corrupt_nth(E0, E1, 0));
        net.send(E0, E1, 0, ByteBuf::from_static(b"abc")).unwrap();
        assert_eq!(&net.recv(E1, E0, 0).unwrap()[..], b"ab\x62");
    }

    #[test]
    fn delay_nth_stalls_delivery() {
        let net = FaultyTransport::new(
            mesh(2),
            NetFaultPlan::new().delay_nth(E0, E1, 0, Duration::from_millis(20)),
        );
        let start = std::time::Instant::now();
        net.send(E0, E1, 0, ByteBuf::from_static(b"slow")).unwrap();
        assert_eq!(&net.recv(E1, E0, 0).unwrap()[..], b"slow");
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn kill_after_sends_is_permanent() {
        let net = FaultyTransport::new(mesh(2), NetFaultPlan::new().kill_after_sends(E0, 2));
        net.send(E0, E1, 0, ByteBuf::new()).unwrap();
        net.send(E0, E1, 0, ByteBuf::new()).unwrap();
        assert_eq!(net.send(E0, E1, 0, ByteBuf::new()), Err(NetError::Disconnected));
        assert_eq!(net.send(E0, E1, 1, ByteBuf::new()), Err(NetError::Disconnected));
        assert!(net.is_dead(E0));
        assert!(!net.is_dead(E1));
        // Other executors are unaffected.
        net.send(E1, E0, 0, ByteBuf::from_static(b"ok")).unwrap();
        assert_eq!(&net.recv(E0, E1, 0).unwrap()[..], b"ok");
    }

    #[test]
    fn partition_drops_every_frame_on_the_link() {
        let net = FaultyTransport::new(mesh(2), NetFaultPlan::new().partition(&[(E0, E1)]));
        for _ in 0..3 {
            net.send(E0, E1, 0, ByteBuf::from_static(b"lost")).unwrap();
        }
        assert_eq!(
            net.recv_timeout(E1, E0, 0, Duration::from_millis(5)),
            Err(NetError::Timeout)
        );
        // Reverse direction is untouched.
        net.send(E1, E0, 0, ByteBuf::from_static(b"back")).unwrap();
        assert_eq!(&net.recv(E0, E1, 0).unwrap()[..], b"back");
    }

    #[test]
    fn read_side_queries_agree_with_replay_verdicts() {
        let plan = NetFaultPlan::new()
            .drop_nth(E0, E1, 1)
            .delay_nth(E0, E1, 2, Duration::from_millis(7))
            .corrupt_nth(E1, E0, 0)
            .kill_after_sends(E0, 5)
            .partition(&[(E1, E0)]);
        assert!(!plan.drops_nth(E0, E1, 0));
        assert!(plan.drops_nth(E0, E1, 1));
        assert!(plan.drops_nth(E1, E0, 9), "partition drops every seq");
        assert!(plan.is_partitioned(E1, E0));
        assert!(!plan.is_partitioned(E0, E1));
        assert_eq!(plan.delay_of_nth(E0, E1, 2), Some(Duration::from_millis(7)));
        assert_eq!(plan.delay_of_nth(E0, E1, 3), None);
        assert!(plan.corrupts_nth(E1, E0, 0));
        assert!(!plan.corrupts_nth(E0, E1, 0));
        assert_eq!(plan.kill_threshold(E0), Some(5));
        assert_eq!(plan.kill_threshold(E1), None);
    }

    #[test]
    fn drain_all_reaches_the_inner_mesh() {
        let inner = mesh(2);
        let net = FaultyTransport::new(inner.clone(), NetFaultPlan::new());
        net.send(E0, E1, 0, ByteBuf::from_static(b"x")).unwrap();
        net.send(E0, E1, 1, ByteBuf::from_static(b"y")).unwrap();
        assert_eq!(net.drain_all(), 2);
        assert_eq!(
            net.recv_timeout(E1, E0, 0, Duration::from_millis(5)),
            Err(NetError::Timeout)
        );
    }
}
