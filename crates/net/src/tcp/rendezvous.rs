//! Rendezvous: rank assignment and mesh establishment for TCP clusters.
//!
//! A Sparker cluster over real sockets needs three things before the first
//! collective can run: every executor needs a **rank**, every executor needs
//! every peer's **listen address**, and the full **mesh** of peer sockets
//! must be dialed. This module implements the handshake, specified
//! normatively in DESIGN.md §5g:
//!
//! 1. The driver binds a listener ([`Coordinator::bind`]) and its address is
//!    handed to each executor process (command line, in our launcher).
//! 2. Each executor binds its *own* listener first, then connects to the
//!    driver and sends `HELLO(listen_addr)` ([`join`]).
//! 3. When `n` executors have said hello, the driver assigns ranks in
//!    arrival order and answers each with
//!    `WELCOME(rank, n, channels, addrs[0..n])` ([`Coordinator::wait_for`]).
//! 4. Each executor keeps the driver socket as its blocking **control
//!    plane** ([`ControlConn`]) and builds the **data plane**: rank `i`
//!    dials every rank `j < i` (sending a `PEER(i)` preamble so the acceptor
//!    knows who arrived) and accepts from every rank `j > i` — one socket
//!    per unordered pair, no dial/accept races. Because every listener is
//!    bound before any `HELLO` is sent, all dials land in a bound listener's
//!    backlog and nothing deadlocks.
//!
//! All control traffic uses the same wire frames as the data plane
//! ([`frame`]) on the reserved [`frame::CONTROL_CHANNEL`], so one codec (and
//! one property suite) covers the whole socket surface.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::bytebuf::ByteBuf;
use crate::codec::{Decoder, Encoder};
use crate::error::{NetError, NetResult};
use crate::pool;

use super::frame::{self, io_to_net, CONTROL_CHANNEL, UNRANKED};
use super::TcpTransport;

/// Control-payload tag: executor → driver, "my listener is at `addr`".
const TAG_HELLO: u8 = 1;
/// Control-payload tag: driver → executor, rank/mesh assignment.
const TAG_WELCOME: u8 = 2;
/// Control-payload tag: mesh-dial preamble identifying the dialing rank.
const TAG_PEER: u8 = 3;

/// How often pending accepts/connects are re-polled during rendezvous.
const POLL: Duration = Duration::from_millis(5);

fn timeout_err(what: &str) -> NetError {
    NetError::Io(format!("rendezvous timed out waiting for {what}"))
}

/// A blocking, framed control connection between the driver and one
/// executor. Lives beside the data-plane [`TcpTransport`]: job dispatch and
/// result collection run here, collective traffic runs there.
#[derive(Debug)]
pub struct ControlConn {
    stream: TcpStream,
    /// The rank on the *other* end ([`UNRANKED`] for the driver itself).
    pub peer: u32,
}

impl ControlConn {
    /// Sends one control payload.
    pub fn send(&mut self, payload: &[u8]) -> NetResult<()> {
        frame::write_frame(&mut self.stream, pool::global(), UNRANKED, CONTROL_CHANNEL, payload)
    }

    /// Receives one control payload, waiting at most `timeout`.
    pub fn recv(&mut self, timeout: Duration) -> NetResult<ByteBuf> {
        self.stream.set_read_timeout(Some(timeout)).map_err(io_to_net)?;
        let decoded = frame::read_frame(&mut self.stream, pool::global())?;
        Ok(decoded.payload)
    }
}

/// Driver side: accepts executor hellos and assigns ranks.
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Binds the rendezvous listener on `addr` (use `127.0.0.1:0` for an
    /// ephemeral loopback port).
    pub fn bind(addr: &str) -> NetResult<Self> {
        let listener = TcpListener::bind(addr).map_err(io_to_net)?;
        Ok(Self { listener })
    }

    /// The address executors must be pointed at.
    pub fn local_addr(&self) -> NetResult<SocketAddr> {
        self.listener.local_addr().map_err(io_to_net)
    }

    /// Waits until `n` executors have said hello, assigns ranks 0..n in
    /// arrival order, sends each its welcome, and returns the control
    /// connections indexed by rank.
    pub fn wait_for(&self, n: usize, channels: usize, timeout: Duration) -> NetResult<Vec<ControlConn>> {
        let deadline = Instant::now() + timeout;
        self.listener.set_nonblocking(true).map_err(io_to_net)?;
        let mut joined: Vec<(TcpStream, String)> = Vec::with_capacity(n);
        while joined.len() < n {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).map_err(io_to_net)?;
                    stream.set_nodelay(true).map_err(io_to_net)?;
                    let mut stream = stream;
                    stream
                        .set_read_timeout(Some(deadline.saturating_duration_since(Instant::now()).max(POLL)))
                        .map_err(io_to_net)?;
                    let hello = frame::read_frame(&mut stream, pool::global())?;
                    let mut dec = Decoder::new(hello.payload);
                    let tag = dec.get_u8()?;
                    if tag != TAG_HELLO {
                        return Err(NetError::Codec(format!("expected HELLO tag, got {tag}")));
                    }
                    let addr = dec.get_string()?;
                    joined.push((stream, addr));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(timeout_err(&format!(
                            "executors ({}/{n} joined)",
                            joined.len()
                        )));
                    }
                    std::thread::sleep(POLL);
                }
                Err(e) => return Err(io_to_net(e)),
            }
        }
        let addrs: Vec<String> = joined.iter().map(|(_, a)| a.clone()).collect();
        let mut conns = Vec::with_capacity(n);
        for (rank, (mut stream, _)) in joined.into_iter().enumerate() {
            let mut enc = Encoder::new();
            enc.put_u8(TAG_WELCOME);
            enc.put_u32(rank as u32);
            enc.put_usize(n);
            enc.put_usize(channels);
            enc.put_usize(addrs.len());
            for a in &addrs {
                enc.put_str(a);
            }
            let payload = enc.finish();
            frame::write_frame(&mut stream, pool::global(), UNRANKED, CONTROL_CHANNEL, &payload)?;
            conns.push(ControlConn { stream, peer: rank as u32 });
        }
        Ok(conns)
    }
}

/// An executor's fully-established cluster membership.
pub struct Joined {
    /// This executor's rank.
    pub rank: usize,
    /// Total executors in the mesh.
    pub n: usize,
    /// Parallel channels per directed pair.
    pub channels: usize,
    /// The data-plane transport over the peer mesh.
    pub transport: Arc<TcpTransport>,
    /// The blocking control connection to the driver.
    pub control: ControlConn,
}

/// Executor side: joins the cluster at `driver_addr` and establishes the
/// full peer mesh. Blocks until the mesh is up or `timeout` expires.
pub fn join(driver_addr: &str, timeout: Duration) -> NetResult<Joined> {
    let deadline = Instant::now() + timeout;

    // Bind our own listener *before* hello: every peer that learns our
    // address from the welcome can then dial it without racing us.
    let listener = TcpListener::bind("127.0.0.1:0").map_err(io_to_net)?;
    let my_addr = listener.local_addr().map_err(io_to_net)?.to_string();

    // Connect to the driver, retrying while it may still be binding.
    let mut driver = connect_retry(driver_addr, deadline)?;
    driver.set_nodelay(true).map_err(io_to_net)?;

    let mut enc = Encoder::new();
    enc.put_u8(TAG_HELLO);
    enc.put_str(&my_addr);
    let hello = enc.finish();
    frame::write_frame(&mut driver, pool::global(), UNRANKED, CONTROL_CHANNEL, &hello)?;

    driver
        .set_read_timeout(Some(deadline.saturating_duration_since(Instant::now()).max(POLL)))
        .map_err(io_to_net)?;
    let welcome = frame::read_frame(&mut driver, pool::global())?;
    let mut dec = Decoder::new(welcome.payload);
    let tag = dec.get_u8()?;
    if tag != TAG_WELCOME {
        return Err(NetError::Codec(format!("expected WELCOME tag, got {tag}")));
    }
    let rank = dec.get_u32()? as usize;
    let n = dec.get_usize()?;
    let channels = dec.get_usize()?;
    let count = dec.get_usize()?;
    if count != n {
        return Err(NetError::Codec(format!("welcome lists {count} addrs for n={n}")));
    }
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        addrs.push(dec.get_string()?);
    }

    // Data-plane mesh: dial the lower ranks (with a PEER preamble), accept
    // the higher ones. One socket per unordered pair.
    let mut conns: Vec<(usize, TcpStream)> = Vec::with_capacity(n.saturating_sub(1));
    for (j, addr) in addrs.iter().enumerate().take(rank) {
        let mut stream = connect_retry(addr, deadline)?;
        stream.set_nodelay(true).map_err(io_to_net)?;
        let mut enc = Encoder::new();
        enc.put_u8(TAG_PEER);
        enc.put_u32(rank as u32);
        let preamble = enc.finish();
        frame::write_frame(&mut stream, pool::global(), rank as u32, CONTROL_CHANNEL, &preamble)?;
        conns.push((j, stream));
    }
    listener.set_nonblocking(true).map_err(io_to_net)?;
    while conns.len() < n - 1 {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(io_to_net)?;
                let mut stream = stream;
                stream
                    .set_read_timeout(Some(deadline.saturating_duration_since(Instant::now()).max(POLL)))
                    .map_err(io_to_net)?;
                let preamble = frame::read_frame(&mut stream, pool::global())?;
                let mut dec = Decoder::new(preamble.payload);
                let tag = dec.get_u8()?;
                if tag != TAG_PEER {
                    return Err(NetError::Codec(format!("expected PEER tag, got {tag}")));
                }
                let j = dec.get_u32()? as usize;
                if j <= rank || j >= n {
                    return Err(NetError::Codec(format!(
                        "peer preamble claims rank {j}, acceptor is rank {rank} of {n}"
                    )));
                }
                stream.set_read_timeout(None).map_err(io_to_net)?;
                conns.push((j, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(timeout_err(&format!(
                        "peer dials ({}/{} connected)",
                        conns.len(),
                        n - 1
                    )));
                }
                std::thread::sleep(POLL);
            }
            Err(e) => return Err(io_to_net(e)),
        }
    }

    let transport = TcpTransport::new(rank, n, channels, conns)?;
    Ok(Joined { rank, n, channels, transport, control: ControlConn { stream: driver, peer: UNRANKED } })
}

fn connect_retry(addr: &str, deadline: Instant) -> NetResult<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(NetError::Io(format!("connecting to {addr}: {e}")));
                }
                std::thread::sleep(POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ExecutorId;
    use crate::transport::Transport;

    /// Full three-party rendezvous inside one process: a driver thread and
    /// three "executor" threads that each join, then exchange one message
    /// around the ring.
    #[test]
    fn three_way_rendezvous_builds_a_working_mesh() {
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let n = 3;
        let mut joiners = Vec::new();
        for _ in 0..n {
            let addr = addr.clone();
            joiners.push(std::thread::spawn(move || {
                let mut joined = join(&addr, Duration::from_secs(10)).unwrap();
                let (rank, size) = (joined.rank, joined.n);
                assert_eq!(size, 3);
                // Ring exchange: send to (rank+1) % n, receive from prev.
                let next = ExecutorId(((rank + 1) % size) as u32);
                let prev = ((rank + size - 1) % size) as u32;
                joined
                    .transport
                    .send(ExecutorId(rank as u32), next, 0, ByteBuf::from(vec![rank as u8; 64]))
                    .unwrap();
                let got = joined
                    .transport
                    .recv_timeout(ExecutorId(rank as u32), ExecutorId(prev), 0, Duration::from_secs(10))
                    .unwrap();
                assert_eq!(got.len(), 64);
                assert!(got.iter().all(|&b| b == prev as u8));
                // Control plane: echo rank to the driver.
                let mut enc = Encoder::new();
                enc.put_u32(rank as u32);
                joined.control.send(&enc.finish()).unwrap();
                rank
            }));
        }
        let mut controls = coordinator.wait_for(n, 2, Duration::from_secs(10)).unwrap();
        assert_eq!(controls.len(), n);
        for (rank, c) in controls.iter_mut().enumerate() {
            let msg = c.recv(Duration::from_secs(10)).unwrap();
            let mut dec = Decoder::new(msg);
            assert_eq!(dec.get_u32().unwrap(), rank as u32);
        }
        let mut ranks: Vec<usize> = joiners.into_iter().map(|j| j.join().unwrap()).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn wait_for_times_out_without_executors() {
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let err = coordinator.wait_for(2, 1, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "{err:?}");
    }
}
