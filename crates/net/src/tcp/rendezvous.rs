//! Rendezvous: rank assignment, mesh establishment, and re-admission for
//! TCP clusters.
//!
//! A Sparker cluster over real sockets needs three things before the first
//! collective can run: every executor needs a **rank**, every executor needs
//! every peer's **listen address**, and the full **mesh** of peer sockets
//! must be dialed. This module implements the handshake, specified
//! normatively in DESIGN.md §5g/§5h:
//!
//! 1. The driver binds a listener ([`Coordinator::bind`]) and its address is
//!    handed to each executor process (command line, in our launcher).
//! 2. Each executor binds its *own* listener first, then connects to the
//!    driver and sends `HELLO(listen_addr)` ([`join`]).
//! 3. When `n` executors have said hello, the driver assigns ranks in
//!    arrival order and answers each with
//!    `WELCOME(rank, n, channels, addrs[0..n])` ([`Coordinator::wait_for`]).
//! 4. Each executor keeps the driver socket as its blocking **control
//!    plane** ([`ControlConn`]) and builds the **data plane**: rank `i`
//!    dials every rank `j < i` (sending a `PEER(i)` preamble so the acceptor
//!    knows who arrived) and accepts from every rank `j > i` — one socket
//!    per unordered pair, no dial/accept races. Because every listener is
//!    bound before any `HELLO` is sent, all dials land in a bound listener's
//!    backlog and nothing deadlocks.
//!
//! The executor's listener is *kept* after the mesh is up: it moves into the
//! transport's [`super::ReconnectCtx`] so severed links can heal by re-dial
//! (DESIGN.md §5h).
//!
//! # Re-admission
//!
//! A replacement executor for a dead rank says `HELLO` like any newcomer;
//! the driver notices it between jobs ([`Coordinator::poll_hello`]) and
//! answers `REJOIN(rank, n, channels, addrs, live)` instead of a `WELCOME`
//! ([`Coordinator::readmit`]). The rejoiner dials only the *live* lower
//! ranks; live higher ranks are told by the driver (an `Admit` control
//! message, one layer up in `engine::multiproc`) to dial the rejoiner's
//! fresh listener, whose address rode in the `HELLO`. Links to still-dead
//! ranks simply stay down. The rejoined executor participates from the next
//! membership view the driver publishes.
//!
//! All control traffic uses the same wire frames as the data plane
//! ([`frame`]) on the reserved [`frame::CONTROL_CHANNEL`], so one codec (and
//! one property suite) covers the whole socket surface.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::bytebuf::ByteBuf;
use crate::codec::{Decoder, Encoder};
use crate::error::{NetError, NetResult};
use crate::pool;

use super::frame::{self, io_to_net, CONTROL_CHANNEL, UNRANKED};
use super::{ReconnectCtx, TcpConfig, TcpTransport};

/// Control-payload tag: executor → driver, "my listener is at `addr`".
const TAG_HELLO: u8 = 1;
/// Control-payload tag: driver → executor, rank/mesh assignment.
const TAG_WELCOME: u8 = 2;
/// Control-payload tag: mesh-dial preamble identifying the dialing rank.
const TAG_PEER: u8 = 3;
/// Control-payload tag: driver → executor, re-admission to a vacated rank.
const TAG_REJOIN: u8 = 4;

/// How often pending accepts/connects are re-polled during rendezvous.
const POLL: Duration = Duration::from_millis(5);

fn timeout_err(what: &str) -> NetError {
    NetError::Io(format!("rendezvous timed out waiting for {what}"))
}

/// Encodes the `PEER(rank)` mesh-dial preamble. Shared with the transport's
/// reconnect dials and the engine's re-admission (`Admit`) dials, which must
/// identify themselves the same way.
pub fn peer_preamble(rank: u32) -> ByteBuf {
    let mut enc = Encoder::new();
    enc.put_u8(TAG_PEER);
    enc.put_u32(rank);
    enc.finish()
}

/// Parses a `PEER(rank)` preamble payload; anything else is a typed
/// [`NetError::Codec`].
pub(crate) fn parse_peer_preamble(payload: &ByteBuf) -> NetResult<u32> {
    let mut dec = Decoder::new(payload.clone());
    let tag = dec.get_u8()?;
    if tag != TAG_PEER {
        return Err(NetError::Codec(format!("expected PEER tag, got {tag}")));
    }
    dec.get_u32()
}

/// A blocking, framed control connection between the driver and one
/// executor. Lives beside the data-plane [`TcpTransport`]: job dispatch and
/// result collection run here, collective traffic runs there.
#[derive(Debug)]
pub struct ControlConn {
    stream: TcpStream,
    /// The rank on the *other* end ([`UNRANKED`] for the driver itself).
    pub peer: u32,
}

impl ControlConn {
    /// Sends one control payload.
    pub fn send(&mut self, payload: &[u8]) -> NetResult<()> {
        frame::write_frame(&mut self.stream, pool::global(), UNRANKED, CONTROL_CHANNEL, payload)
    }

    /// Receives one control payload, waiting at most `timeout`.
    pub fn recv(&mut self, timeout: Duration) -> NetResult<ByteBuf> {
        self.stream.set_read_timeout(Some(timeout)).map_err(io_to_net)?;
        let decoded = frame::read_frame(&mut self.stream, pool::global())?;
        Ok(decoded.payload)
    }
}

/// Driver side: accepts executor hellos, assigns ranks, and re-admits
/// replacements for dead ranks.
pub struct Coordinator {
    listener: TcpListener,
    /// Mesh parameters, recorded by [`Self::wait_for`] for later
    /// re-admissions.
    n: usize,
    channels: usize,
    /// Listen addresses by rank, updated when a rank is re-admitted at a new
    /// address.
    addrs: Vec<String>,
}

impl Coordinator {
    /// Binds the rendezvous listener on `addr` (use `127.0.0.1:0` for an
    /// ephemeral loopback port).
    pub fn bind(addr: &str) -> NetResult<Self> {
        let listener = TcpListener::bind(addr).map_err(io_to_net)?;
        Ok(Self { listener, n: 0, channels: 0, addrs: Vec::new() })
    }

    /// The address executors must be pointed at.
    pub fn local_addr(&self) -> NetResult<SocketAddr> {
        self.listener.local_addr().map_err(io_to_net)
    }

    /// The recorded listen address of `rank`, if the mesh is formed.
    pub fn addr_of(&self, rank: usize) -> Option<&str> {
        self.addrs.get(rank).map(String::as_str)
    }

    /// Waits until `n` executors have said hello, assigns ranks 0..n in
    /// arrival order, sends each its welcome, and returns the control
    /// connections indexed by rank. Records the mesh parameters for later
    /// [`Self::readmit`] calls.
    pub fn wait_for(
        &mut self,
        n: usize,
        channels: usize,
        timeout: Duration,
    ) -> NetResult<Vec<ControlConn>> {
        let deadline = Instant::now() + timeout;
        self.listener.set_nonblocking(true).map_err(io_to_net)?;
        let mut joined: Vec<(TcpStream, String)> = Vec::with_capacity(n);
        while joined.len() < n {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let (stream, addr) = read_hello(stream, deadline)?;
                    joined.push((stream, addr));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(timeout_err(&format!(
                            "executors ({}/{n} joined)",
                            joined.len()
                        )));
                    }
                    std::thread::sleep(POLL);
                }
                Err(e) => return Err(io_to_net(e)),
            }
        }
        let addrs: Vec<String> = joined.iter().map(|(_, a)| a.clone()).collect();
        let mut conns = Vec::with_capacity(n);
        for (rank, (mut stream, _)) in joined.into_iter().enumerate() {
            let mut enc = Encoder::new();
            enc.put_u8(TAG_WELCOME);
            enc.put_u32(rank as u32);
            enc.put_usize(n);
            enc.put_usize(channels);
            enc.put_usize(addrs.len());
            for a in &addrs {
                enc.put_str(a);
            }
            let payload = enc.finish();
            frame::write_frame(&mut stream, pool::global(), UNRANKED, CONTROL_CHANNEL, &payload)?;
            conns.push(ControlConn { stream, peer: rank as u32 });
        }
        self.n = n;
        self.channels = channels;
        self.addrs = addrs;
        Ok(conns)
    }

    /// Non-blocking check for a newcomer `HELLO` — a replacement executor
    /// asking to be re-admitted. Returns its (blocking) socket and listen
    /// address; the caller decides which dead rank it fills and completes
    /// the handshake with [`Self::readmit`].
    pub fn poll_hello(&mut self) -> NetResult<Option<(TcpStream, String)>> {
        self.listener.set_nonblocking(true).map_err(io_to_net)?;
        match self.listener.accept() {
            Ok((stream, _)) => {
                let got = read_hello(stream, Instant::now() + Duration::from_secs(5))?;
                Ok(Some(got))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(io_to_net(e)),
        }
    }

    /// Completes a re-admission: assigns the newcomer (from
    /// [`Self::poll_hello`]) the vacated `rank`, records its fresh listen
    /// address, and sends `REJOIN(rank, n, channels, addrs, live)`. `live`
    /// lists the ranks currently alive (excluding `rank` itself); the
    /// rejoiner dials the live lower ranks, and the caller must tell live
    /// higher ranks to dial the rejoiner (the `Admit` step, one layer up).
    pub fn readmit(
        &mut self,
        mut stream: TcpStream,
        addr: String,
        rank: usize,
        live: &[usize],
    ) -> NetResult<ControlConn> {
        if self.n == 0 {
            return Err(NetError::InvalidAddress(
                "readmit before the initial mesh was formed".into(),
            ));
        }
        if rank >= self.n {
            return Err(NetError::InvalidAddress(format!(
                "readmit rank {rank} outside mesh of {}",
                self.n
            )));
        }
        self.addrs[rank] = addr;
        let mut enc = Encoder::new();
        enc.put_u8(TAG_REJOIN);
        enc.put_u32(rank as u32);
        enc.put_usize(self.n);
        enc.put_usize(self.channels);
        enc.put_usize(self.addrs.len());
        for a in &self.addrs {
            enc.put_str(a);
        }
        let live32: Vec<u32> = live.iter().map(|&r| r as u32).collect();
        enc.put_u32_slice(&live32);
        let payload = enc.finish();
        frame::write_frame(&mut stream, pool::global(), UNRANKED, CONTROL_CHANNEL, &payload)?;
        Ok(ControlConn { stream, peer: rank as u32 })
    }
}

/// Reads the `HELLO` off a freshly-accepted rendezvous socket.
fn read_hello(stream: TcpStream, deadline: Instant) -> NetResult<(TcpStream, String)> {
    stream.set_nonblocking(false).map_err(io_to_net)?;
    stream.set_nodelay(true).map_err(io_to_net)?;
    let mut stream = stream;
    stream
        .set_read_timeout(Some(deadline.saturating_duration_since(Instant::now()).max(POLL)))
        .map_err(io_to_net)?;
    let hello = frame::read_frame(&mut stream, pool::global())?;
    let mut dec = Decoder::new(hello.payload);
    let tag = dec.get_u8()?;
    if tag != TAG_HELLO {
        return Err(NetError::Codec(format!("expected HELLO tag, got {tag}")));
    }
    let addr = dec.get_string()?;
    Ok((stream, addr))
}

/// An executor's fully-established cluster membership.
pub struct Joined {
    /// This executor's rank.
    pub rank: usize,
    /// Total executors in the mesh.
    pub n: usize,
    /// Parallel channels per directed pair.
    pub channels: usize,
    /// The data-plane transport over the peer mesh (reconnection armed).
    pub transport: Arc<TcpTransport>,
    /// The blocking control connection to the driver.
    pub control: ControlConn,
    /// The transport tunables this executor runs with.
    pub cfg: TcpConfig,
    /// Whether this membership came from a `REJOIN` (partial mesh; links to
    /// live higher ranks arrive via the driver's `Admit` step).
    pub rejoined: bool,
}

/// [`join_with`] using default [`TcpConfig`] tunables.
pub fn join(driver_addr: &str, timeout: Duration) -> NetResult<Joined> {
    join_with(driver_addr, timeout, TcpConfig::default())
}

/// Executor side: joins the cluster at `driver_addr` and establishes the
/// peer mesh — the full mesh on a `WELCOME`, the live-lower-ranks partial
/// mesh on a `REJOIN`. Blocks until the mesh is up or `timeout` expires.
/// The listener bound here is kept inside the transport for reconnection
/// and re-admission dials.
pub fn join_with(driver_addr: &str, timeout: Duration, cfg: TcpConfig) -> NetResult<Joined> {
    let deadline = Instant::now() + timeout;

    // Bind our own listener *before* hello: every peer that learns our
    // address from the welcome can then dial it without racing us.
    let listener = TcpListener::bind("127.0.0.1:0").map_err(io_to_net)?;
    let my_addr = listener.local_addr().map_err(io_to_net)?.to_string();

    // Connect to the driver, retrying while it may still be binding.
    let mut driver = connect_retry(driver_addr, deadline)?;
    driver.set_nodelay(true).map_err(io_to_net)?;

    let mut enc = Encoder::new();
    enc.put_u8(TAG_HELLO);
    enc.put_str(&my_addr);
    let hello = enc.finish();
    frame::write_frame(&mut driver, pool::global(), UNRANKED, CONTROL_CHANNEL, &hello)?;

    driver
        .set_read_timeout(Some(deadline.saturating_duration_since(Instant::now()).max(POLL)))
        .map_err(io_to_net)?;
    let reply = frame::read_frame(&mut driver, pool::global())?;
    let mut dec = Decoder::new(reply.payload);
    let tag = dec.get_u8()?;
    if tag != TAG_WELCOME && tag != TAG_REJOIN {
        return Err(NetError::Codec(format!("expected WELCOME or REJOIN tag, got {tag}")));
    }
    let rejoined = tag == TAG_REJOIN;
    let rank = dec.get_u32()? as usize;
    let n = dec.get_usize()?;
    let channels = dec.get_usize()?;
    let count = dec.get_usize()?;
    if count != n {
        return Err(NetError::Codec(format!("welcome lists {count} addrs for n={n}")));
    }
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        addrs.push(dec.get_string()?);
    }
    // Which lower ranks to dial: all of them on a fresh mesh, only the live
    // ones on a rejoin (links to dead ranks stay down until re-admission).
    let dial_lower: Vec<usize> = if rejoined {
        let live = dec.get_u32_vec()?;
        live.iter().map(|&r| r as usize).filter(|&j| j < rank).collect()
    } else {
        (0..rank).collect()
    };

    // Data-plane mesh: dial the lower ranks (with a PEER preamble); on a
    // fresh mesh also accept the higher ones here. One socket per unordered
    // pair. On a rejoin the live higher ranks dial our kept listener later,
    // once the driver's Admit reaches them.
    let mut conns: Vec<(usize, TcpStream)> = Vec::with_capacity(n.saturating_sub(1));
    for &j in &dial_lower {
        let mut stream = connect_retry(&addrs[j], deadline)?;
        stream.set_nodelay(true).map_err(io_to_net)?;
        let preamble = peer_preamble(rank as u32);
        frame::write_frame(&mut stream, pool::global(), rank as u32, CONTROL_CHANNEL, &preamble)?;
        conns.push((j, stream));
    }
    if !rejoined {
        listener.set_nonblocking(true).map_err(io_to_net)?;
        while conns.len() < n - 1 {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).map_err(io_to_net)?;
                    let mut stream = stream;
                    stream
                        .set_read_timeout(Some(
                            deadline.saturating_duration_since(Instant::now()).max(POLL),
                        ))
                        .map_err(io_to_net)?;
                    let preamble = frame::read_frame(&mut stream, pool::global())?;
                    let j = parse_peer_preamble(&preamble.payload)? as usize;
                    if j <= rank || j >= n {
                        return Err(NetError::Codec(format!(
                            "peer preamble claims rank {j}, acceptor is rank {rank} of {n}"
                        )));
                    }
                    stream.set_read_timeout(None).map_err(io_to_net)?;
                    conns.push((j, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(timeout_err(&format!(
                            "peer dials ({}/{} connected)",
                            conns.len(),
                            n - 1
                        )));
                    }
                    std::thread::sleep(POLL);
                }
                Err(e) => return Err(io_to_net(e)),
            }
        }
    }

    let recon = ReconnectCtx { listener, peer_addrs: addrs };
    let transport = TcpTransport::new_with(rank, n, channels, conns, cfg, Some(recon))?;
    Ok(Joined {
        rank,
        n,
        channels,
        transport,
        control: ControlConn { stream: driver, peer: UNRANKED },
        cfg,
        rejoined,
    })
}

fn connect_retry(addr: &str, deadline: Instant) -> NetResult<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(NetError::Io(format!("connecting to {addr}: {e}")));
                }
                std::thread::sleep(POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ExecutorId;
    use crate::transport::Transport;

    /// Full three-party rendezvous inside one process: a driver thread and
    /// three "executor" threads that each join, then exchange one message
    /// around the ring.
    #[test]
    fn three_way_rendezvous_builds_a_working_mesh() {
        let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let n = 3;
        let mut joiners = Vec::new();
        for _ in 0..n {
            let addr = addr.clone();
            joiners.push(std::thread::spawn(move || {
                let mut joined = join(&addr, Duration::from_secs(10)).unwrap();
                let (rank, size) = (joined.rank, joined.n);
                assert_eq!(size, 3);
                assert!(!joined.rejoined);
                // Ring exchange: send to (rank+1) % n, receive from prev.
                let next = ExecutorId(((rank + 1) % size) as u32);
                let prev = ((rank + size - 1) % size) as u32;
                joined
                    .transport
                    .send(ExecutorId(rank as u32), next, 0, ByteBuf::from(vec![rank as u8; 64]))
                    .unwrap();
                let got = joined
                    .transport
                    .recv_timeout(ExecutorId(rank as u32), ExecutorId(prev), 0, Duration::from_secs(10))
                    .unwrap();
                assert_eq!(got.len(), 64);
                assert!(got.iter().all(|&b| b == prev as u8));
                // Control plane: echo rank to the driver.
                let mut enc = Encoder::new();
                enc.put_u32(rank as u32);
                joined.control.send(&enc.finish()).unwrap();
                rank
            }));
        }
        let mut controls = coordinator.wait_for(n, 2, Duration::from_secs(10)).unwrap();
        assert_eq!(controls.len(), n);
        for (rank, c) in controls.iter_mut().enumerate() {
            let msg = c.recv(Duration::from_secs(10)).unwrap();
            let mut dec = Decoder::new(msg);
            assert_eq!(dec.get_u32().unwrap(), rank as u32);
        }
        let mut ranks: Vec<usize> = joiners.into_iter().map(|j| j.join().unwrap()).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn wait_for_times_out_without_executors() {
        let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let err = coordinator.wait_for(2, 1, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "{err:?}");
    }

    #[test]
    fn readmit_before_mesh_is_typed_error() {
        let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        // A dummy socket to hand in: dial our own listener.
        let addr = coordinator.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let err = coordinator
            .readmit(stream, "127.0.0.1:1".into(), 0, &[])
            .unwrap_err();
        assert!(matches!(err, NetError::InvalidAddress(_)), "{err:?}");
    }

    /// Peer preamble helpers round-trip and reject garbage.
    #[test]
    fn peer_preamble_roundtrip() {
        let p = peer_preamble(7);
        assert_eq!(parse_peer_preamble(&p).unwrap(), 7);
        let mut enc = Encoder::new();
        enc.put_u8(TAG_HELLO);
        enc.put_u32(7);
        let bad = enc.finish();
        assert!(matches!(parse_peer_preamble(&bad), Err(NetError::Codec(_))));
    }
}
