//! Real multi-process transport: non-blocking TCP sockets under the same
//! [`Transport`] trait the in-process mesh implements.
//!
//! The paper's core systems argument (§4) is that reduction needs a
//! purpose-built communicator — its JeroMQ layer cuts small-message latency
//! from the BlockManager's 3861 µs to 73 µs. This module is that layer for
//! the reproduction: executors become OS processes, links become loopback
//! (or LAN) TCP streams, and the collective stack above — [`crate::epoch`]
//! fencing, the chunk-pipelined ring, sparse segments — runs unchanged
//! because it only ever talks to the [`Transport`] trait.
//!
//! # Architecture
//!
//! One [`TcpTransport`] instance is bound to one local rank. It holds one
//! socket per peer rank (all logical channels are multiplexed over that
//! socket and demultiplexed by the frame header's `channel` field), plus a
//! single background IO thread running a hand-rolled readiness loop over
//! non-blocking sockets:
//!
//! * **send** — the caller encodes a wire frame ([`frame::encode_pooled`])
//!   from the global [`crate::pool::FramePool`], enqueues it to the peer's
//!   outbound queue, and wakes the IO thread. Sends never block on the
//!   socket (matching the ZeroMQ model the paper adopts). The caller's
//!   payload buffer is recycled immediately when sole-owned.
//! * **IO thread** — drains outbound queues with partial-write tracking,
//!   reads whatever bytes the kernel has into a per-connection
//!   [`frame::FrameReader`], and routes decoded payloads to per-`(peer,
//!   channel)` inboxes. Wire frames are recycled once fully written;
//!   received payloads are pooled buffers, so the steady state allocates no
//!   frames in either direction. When nothing progresses it parks for
//!   [`IDLE_POLL`] (sends unpark it), keeping idle CPU near zero without a
//!   platform poller — at loopback RTTs this costs a few tens of µs of
//!   worst-case latency, which stays well inside the paper's
//!   BlockManager-vs-SC gap that `bench_transport` reproduces.
//! * **recv** — blocks on the inbox with a poll quantum so peer death is
//!   observed even mid-wait: when a connection dies (clean EOF, reset, or a
//!   codec-fatal frame) the transport marks the peer dead and every blocked
//!   or future `recv` for it returns the stored error immediately —
//!   already-delivered frames are still receivable first.
//!
//! `TCP_NODELAY` is set on every socket: the ring sends latency-critical
//! small frames and handles its own batching (chunk pipelining), so Nagle
//! coalescing would only add delay.
//!
//! Connection establishment (rank assignment, peer address exchange, mesh
//! dialing) lives in [`rendezvous`]; the wire format in [`frame`].

pub mod frame;
pub mod rendezvous;

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::bytebuf::ByteBuf;
use crate::error::{NetError, NetResult};
use crate::pool;
use crate::sync::{channel, Mutex, Receiver, RecvTimeoutError, Sender};
use crate::topology::ExecutorId;
use crate::transport::{NetStats, NetStatsSnapshot, Transport};

use frame::io_to_net;

/// How long the IO thread parks when no socket made progress. Sends unpark
/// it, so this only bounds receive latency while the wire is silent.
pub const IDLE_POLL: Duration = Duration::from_micros(50);

/// Poll quantum for blocking receives: how often a waiting `recv` rechecks
/// peer liveness.
const RECV_QUANTUM: Duration = Duration::from_millis(5);

/// Read buffer size for the IO thread (per loop iteration, shared across
/// connections).
const READ_CHUNK: usize = 256 * 1024;

/// Upper bound on the outbound flush performed when a transport is dropped.
const FLUSH_TIMEOUT: Duration = Duration::from_secs(5);

/// Liveness of one peer connection, shared between the IO thread (writer)
/// and receivers (readers).
struct PeerStatus {
    dead: AtomicBool,
    err: Mutex<Option<NetError>>,
}

impl PeerStatus {
    fn new() -> Self {
        Self { dead: AtomicBool::new(false), err: Mutex::new(None) }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Records the first fatal error; later ones are ignored.
    fn kill(&self, e: NetError) {
        let mut slot = self.err.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.dead.store(true, Ordering::Release);
    }

    fn error(&self) -> NetError {
        self.err.lock().clone().unwrap_or(NetError::Disconnected)
    }
}

/// One live peer connection, owned by the IO thread.
struct Conn {
    peer: usize,
    stream: TcpStream,
    /// Frames queued by senders, pulled into `out` by the IO thread.
    out_rx: Receiver<ByteBuf>,
    /// In-progress writes: `(frame, bytes already written)`.
    out: VecDeque<(ByteBuf, usize)>,
    reader: frame::FrameReader,
    status: Arc<PeerStatus>,
}

impl Conn {
    fn die(&mut self, e: NetError) {
        self.status.kill(e);
        self.out.clear();
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A [`Transport`] over real TCP sockets, bound to one local rank.
///
/// Build one with [`TcpTransport::new`] from already-established sockets
/// (see [`rendezvous::join`] for the full mesh handshake) or
/// [`TcpTransport::pair_loopback`] for a two-rank loopback pair in tests and
/// benches.
///
/// ```
/// use sparker_net::tcp::TcpTransport;
/// use sparker_net::transport::Transport;
/// use sparker_net::{ByteBuf, ExecutorId};
///
/// let (a, b) = TcpTransport::pair_loopback(2).unwrap();
/// a.send(ExecutorId(0), ExecutorId(1), 1, ByteBuf::from_static(b"over tcp")).unwrap();
/// let got = b.recv(ExecutorId(1), ExecutorId(0), 1).unwrap();
/// assert_eq!(&got[..], b"over tcp");
/// ```
pub struct TcpTransport {
    me: usize,
    n: usize,
    channels: usize,
    /// Inbox senders/receivers indexed `from * channels + channel`.
    inbox_tx: Vec<Sender<ByteBuf>>,
    inbox_rx: Vec<Receiver<ByteBuf>>,
    /// Outbound queues per peer rank (`None` for self).
    out_tx: Vec<Option<Sender<ByteBuf>>>,
    /// Liveness per peer rank (the self entry is never dead).
    peers: Vec<Arc<PeerStatus>>,
    stats: NetStats,
    shutdown: Arc<AtomicBool>,
    io_thread: Mutex<Option<JoinHandle<()>>>,
    io_waker: std::thread::Thread,
}

impl TcpTransport {
    /// Wraps established sockets into a transport bound to rank `me` of `n`.
    ///
    /// `conns` must hold exactly one stream per peer rank (`n - 1` total);
    /// the streams are switched to non-blocking and `TCP_NODELAY` here.
    pub fn new(
        me: usize,
        n: usize,
        channels: usize,
        conns: Vec<(usize, TcpStream)>,
    ) -> NetResult<Arc<Self>> {
        if me >= n || channels == 0 {
            return Err(NetError::InvalidAddress(format!(
                "rank {me} of {n} with {channels} channels is not a valid binding"
            )));
        }
        let mut seen = vec![false; n];
        seen[me] = true;
        for (peer, _) in &conns {
            if *peer >= n || *peer == me || seen[*peer] {
                return Err(NetError::InvalidAddress(format!(
                    "connection for peer {peer} is out of range or duplicated (me={me}, n={n})"
                )));
            }
            seen[*peer] = true;
        }
        if conns.len() != n - 1 {
            return Err(NetError::InvalidAddress(format!(
                "mesh for rank {me} needs {} peer connections, got {}",
                n - 1,
                conns.len()
            )));
        }

        let mut inbox_tx = Vec::with_capacity(n * channels);
        let mut inbox_rx = Vec::with_capacity(n * channels);
        for _ in 0..n * channels {
            let (tx, rx) = channel();
            inbox_tx.push(tx);
            inbox_rx.push(rx);
        }
        let peers: Vec<Arc<PeerStatus>> = (0..n).map(|_| Arc::new(PeerStatus::new())).collect();
        let mut out_tx: Vec<Option<Sender<ByteBuf>>> = (0..n).map(|_| None).collect();
        let mut io_conns = Vec::with_capacity(conns.len());
        for (peer, stream) in conns {
            stream.set_nonblocking(true).map_err(io_to_net)?;
            stream.set_nodelay(true).map_err(io_to_net)?;
            let (tx, rx) = channel();
            out_tx[peer] = Some(tx);
            io_conns.push(Conn {
                peer,
                stream,
                out_rx: rx,
                out: VecDeque::new(),
                reader: frame::FrameReader::new(),
                status: peers[peer].clone(),
            });
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let io = IoLoop {
            conns: io_conns,
            inbox_tx: inbox_tx.clone(),
            channels,
            shutdown: shutdown.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("sparker-tcp-io-{me}"))
            .spawn(move || io.run())
            .map_err(|e| NetError::Io(format!("spawning io thread: {e}")))?;
        let io_waker = handle.thread().clone();

        Ok(Arc::new(Self {
            me,
            n,
            channels,
            inbox_tx,
            inbox_rx,
            out_tx,
            peers,
            stats: NetStats::default(),
            shutdown,
            io_thread: Mutex::new(Some(handle)),
            io_waker,
        }))
    }

    /// Builds a connected two-rank pair over a loopback socket — rank 0 and
    /// rank 1 in separate transports sharing one real TCP connection. The
    /// unit-test and benchmark entry point.
    pub fn pair_loopback(channels: usize) -> NetResult<(Arc<Self>, Arc<Self>)> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_to_net)?;
        let addr = listener.local_addr().map_err(io_to_net)?;
        let dialed = TcpStream::connect(addr).map_err(io_to_net)?;
        let (accepted, _) = listener.accept().map_err(io_to_net)?;
        let a = Self::new(0, 2, channels, vec![(1, dialed)])?;
        let b = Self::new(1, 2, channels, vec![(0, accepted)])?;
        Ok((a, b))
    }

    /// The local rank this transport is bound to.
    pub fn rank(&self) -> usize {
        self.me
    }

    /// Snapshot of traffic counters (sends only, matching the mesh).
    pub fn stats(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.stats.messages.load(Ordering::Relaxed),
            bytes: self.stats.bytes.load(Ordering::Relaxed),
            inter_node_messages: self.stats.inter_node_messages.load(Ordering::Relaxed),
            inter_node_bytes: self.stats.inter_node_bytes.load(Ordering::Relaxed),
        }
    }

    /// Whether the connection to `peer` has died (EOF, reset, or fatal
    /// decode error). Frames delivered before death remain receivable.
    pub fn peer_is_dead(&self, peer: usize) -> bool {
        peer < self.n && peer != self.me && self.peers[peer].is_dead()
    }

    fn check_addr(&self, at: ExecutorId, other: ExecutorId, channel: usize) -> NetResult<usize> {
        if at.index() != self.me {
            return Err(NetError::InvalidAddress(format!(
                "transport is bound to rank {}, not {at}",
                self.me
            )));
        }
        if other.index() >= self.n || channel >= self.channels {
            return Err(NetError::InvalidAddress(format!(
                "({other}, ch{channel}) outside mesh of {} ranks x {} channels",
                self.n, self.channels
            )));
        }
        Ok(other.index() * self.channels + channel)
    }

    fn recv_inner(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        deadline: Option<Instant>,
    ) -> NetResult<ByteBuf> {
        let idx = self.check_addr(at, from, channel)?;
        let from = from.index();
        loop {
            if let Some(msg) = self.inbox_rx[idx].try_recv() {
                return Ok(msg);
            }
            if from != self.me && self.peers[from].is_dead() {
                // Between the inbox check and the dead check the IO thread
                // may have routed a final frame; drain once more before
                // surfacing the error.
                if let Some(msg) = self.inbox_rx[idx].try_recv() {
                    return Ok(msg);
                }
                return Err(self.peers[from].error());
            }
            let mut quantum = RECV_QUANTUM;
            if let Some(deadline) = deadline {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(NetError::Timeout);
                }
                quantum = quantum.min(left);
            }
            match self.inbox_rx[idx].recv_timeout(quantum) {
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn size(&self) -> usize {
        self.n
    }

    fn channels(&self) -> usize {
        self.channels
    }

    fn send(&self, from: ExecutorId, to: ExecutorId, channel: usize, msg: ByteBuf) -> NetResult<()> {
        let idx = self.check_addr(from, to, channel)?;
        let nbytes = msg.len();
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(nbytes as u64, Ordering::Relaxed);
        let to = to.index();
        if to == self.me {
            // Loopback: no wire, no copy.
            return self.inbox_tx[self.me * self.channels + channel]
                .send(msg)
                .map_err(|_| NetError::Disconnected);
        }
        self.stats.inter_node_messages.fetch_add(1, Ordering::Relaxed);
        self.stats.inter_node_bytes.fetch_add(nbytes as u64, Ordering::Relaxed);
        if self.peers[to].is_dead() {
            return Err(self.peers[to].error());
        }
        let wire = frame::encode_pooled(pool::global(), self.me as u32, channel as u32, &msg)?;
        // The payload was copied into the wire frame; a sole-owned source
        // buffer is reusable right now.
        pool::global().recycle_frame(msg);
        let _ = idx; // routing is by peer socket; channel rides in the frame
        self.out_tx[to]
            .as_ref()
            .expect("peer != me has an outbound queue")
            .send(wire)
            .map_err(|_| NetError::Disconnected)?;
        self.io_waker.unpark();
        Ok(())
    }

    fn recv(&self, at: ExecutorId, from: ExecutorId, channel: usize) -> NetResult<ByteBuf> {
        self.recv_inner(at, from, channel, None)
    }

    fn recv_timeout(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        self.recv_inner(at, from, channel, Some(Instant::now() + timeout))
    }

    fn drain_all(&self) -> usize {
        let mut dropped = 0;
        for rx in &self.inbox_rx {
            while let Some(msg) = rx.try_recv() {
                pool::global().recycle_frame(msg);
                dropped += 1;
            }
        }
        dropped
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.io_waker.unpark();
        if let Some(handle) = self.io_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

/// The background readiness loop: owns every socket of one transport.
struct IoLoop {
    conns: Vec<Conn>,
    inbox_tx: Vec<Sender<ByteBuf>>,
    channels: usize,
    shutdown: Arc<AtomicBool>,
}

impl IoLoop {
    fn run(mut self) {
        let mut scratch = vec![0u8; READ_CHUNK];
        while !self.shutdown.load(Ordering::Acquire) {
            let mut progress = false;
            for ci in 0..self.conns.len() {
                if self.conns[ci].status.is_dead() {
                    continue;
                }
                progress |= self.service_writes(ci);
                progress |= self.service_reads(ci, &mut scratch);
            }
            if !progress {
                std::thread::park_timeout(IDLE_POLL);
            }
        }
        // Shutdown: flush frames already queued so a transport dropped right
        // after its final send still delivers it (asynchronous sends promise
        // eventual delivery while the peer lives). Bounded so a stuck peer
        // cannot wedge the drop.
        let flush_deadline = Instant::now() + FLUSH_TIMEOUT;
        loop {
            let mut pending = false;
            for ci in 0..self.conns.len() {
                if self.conns[ci].status.is_dead() {
                    continue;
                }
                self.service_writes(ci);
                let conn = &self.conns[ci];
                if !conn.out.is_empty() {
                    pending = true;
                }
            }
            if !pending || Instant::now() >= flush_deadline {
                break;
            }
            std::thread::park_timeout(IDLE_POLL);
        }
    }

    /// Pulls queued frames and pushes bytes until the socket would block.
    /// Returns whether any bytes moved.
    fn service_writes(&mut self, ci: usize) -> bool {
        let conn = &mut self.conns[ci];
        while let Some(f) = conn.out_rx.try_recv() {
            conn.out.push_back((f, 0));
        }
        let mut progress = false;
        while let Some((front, off)) = conn.out.front_mut() {
            match conn.stream.write(&front[*off..]) {
                Ok(0) => {
                    conn.die(NetError::Disconnected);
                    return progress;
                }
                Ok(k) => {
                    progress = true;
                    *off += k;
                    if *off == front.len() {
                        let (done, _) = conn.out.pop_front().expect("front exists");
                        pool::global().recycle_frame(done);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    conn.die(io_to_net(e));
                    return progress;
                }
            }
        }
        progress
    }

    /// Reads available bytes, decodes complete frames, and routes them.
    /// Returns whether any bytes moved.
    fn service_reads(&mut self, ci: usize, scratch: &mut [u8]) -> bool {
        let mut progress = false;
        loop {
            let conn = &mut self.conns[ci];
            match conn.stream.read(scratch) {
                Ok(0) => {
                    // Clean EOF; torn mid-frame it is still a disconnect,
                    // the partial bytes simply never become a frame.
                    conn.die(NetError::Disconnected);
                    return progress;
                }
                Ok(k) => {
                    progress = true;
                    conn.reader.extend(&scratch[..k]);
                    loop {
                        match self.conns[ci].reader.next_frame(pool::global()) {
                            Ok(Some(decoded)) => {
                                if let Err(e) = self.route(ci, decoded) {
                                    self.conns[ci].die(e);
                                    return progress;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                // Framing is unrecoverable: poison the
                                // connection so receivers see the Codec
                                // error instead of hanging.
                                self.conns[ci].die(e);
                                return progress;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    conn.die(io_to_net(e));
                    return progress;
                }
            }
        }
    }

    /// Delivers a decoded frame to its `(from, channel)` inbox.
    fn route(&self, ci: usize, decoded: frame::DecodedFrame) -> NetResult<()> {
        let peer = self.conns[ci].peer;
        if decoded.from as usize != peer {
            return Err(NetError::Codec(format!(
                "frame claims sender {} on the socket of peer {peer}",
                decoded.from
            )));
        }
        let ch = decoded.channel as usize;
        if ch >= self.channels {
            return Err(NetError::Codec(format!(
                "frame channel {ch} outside {} channels",
                self.channels
            )));
        }
        self.inbox_tx[peer * self.channels + ch]
            .send(decoded.payload)
            .map_err(|_| NetError::Disconnected)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_pair_roundtrip() {
        let (a, b) = TcpTransport::pair_loopback(2).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"hello tcp"))
            .unwrap();
        let got = b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        assert_eq!(&got[..], b"hello tcp");
        // And the other direction.
        b.send(ExecutorId(1), ExecutorId(0), 1, ByteBuf::from_static(b"back"))
            .unwrap();
        assert_eq!(&a.recv(ExecutorId(0), ExecutorId(1), 1).unwrap()[..], b"back");
    }

    #[test]
    fn channels_are_independent_fifos_over_one_socket() {
        let (a, b) = TcpTransport::pair_loopback(2).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 1, ByteBuf::from_static(b"ch1")).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"ch0-a")).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"ch0-b")).unwrap();
        assert_eq!(&b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()[..], b"ch0-a");
        assert_eq!(&b.recv(ExecutorId(1), ExecutorId(0), 1).unwrap()[..], b"ch1");
        assert_eq!(&b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()[..], b"ch0-b");
    }

    #[test]
    fn large_messages_survive_partial_writes() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        // Large enough to exceed socket buffers, forcing WouldBlock cycles.
        let big: Vec<u8> = (0..8 << 20).map(|i| (i * 31 % 251) as u8).collect();
        let sent = big.clone();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(big)).unwrap();
        let got = b
            .recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(30))
            .unwrap();
        assert_eq!(got.len(), sent.len());
        assert_eq!(&got[..], &sent[..]);
    }

    #[test]
    fn self_send_is_loopback() {
        let (a, _b) = TcpTransport::pair_loopback(1).unwrap();
        a.send(ExecutorId(0), ExecutorId(0), 0, ByteBuf::from_static(b"self")).unwrap();
        assert_eq!(&a.recv(ExecutorId(0), ExecutorId(0), 0).unwrap()[..], b"self");
    }

    #[test]
    fn misbound_addresses_rejected() {
        let (a, _b) = TcpTransport::pair_loopback(1).unwrap();
        assert!(matches!(
            a.send(ExecutorId(1), ExecutorId(0), 0, ByteBuf::new()),
            Err(NetError::InvalidAddress(_))
        ));
        assert!(matches!(
            a.recv_timeout(ExecutorId(0), ExecutorId(5), 0, Duration::from_millis(1)),
            Err(NetError::InvalidAddress(_))
        ));
        assert!(matches!(
            a.recv_timeout(ExecutorId(0), ExecutorId(1), 9, Duration::from_millis(1)),
            Err(NetError::InvalidAddress(_))
        ));
    }

    #[test]
    fn recv_timeout_expires() {
        let (a, _b) = TcpTransport::pair_loopback(1).unwrap();
        let t0 = Instant::now();
        let err = a
            .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn peer_death_surfaces_as_disconnected_after_draining() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        b.send(ExecutorId(1), ExecutorId(0), 0, ByteBuf::from_static(b"last words"))
            .unwrap();
        // Give the frame time to cross, then kill the peer.
        let got = a
            .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_secs(5))
            .unwrap();
        assert_eq!(&got[..], b"last words");
        drop(b);
        // The next recv must fail fast with Disconnected, not hang.
        let t0 = Instant::now();
        let err = a
            .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_secs(30))
            .unwrap_err();
        assert_eq!(err, NetError::Disconnected);
        assert!(t0.elapsed() < Duration::from_secs(5), "death detection took {:?}", t0.elapsed());
        // Sends to the dead peer fail too.
        assert!(a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::new()).is_err());
        assert!(a.peer_is_dead(1));
    }

    #[test]
    fn cross_thread_ping_pong() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        let t = std::thread::spawn(move || {
            for _ in 0..200 {
                let m = b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
                b.send(ExecutorId(1), ExecutorId(0), 0, m).unwrap();
            }
        });
        for i in 0..200u32 {
            a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(i.to_le_bytes().to_vec()))
                .unwrap();
            let back = a.recv(ExecutorId(0), ExecutorId(1), 0).unwrap();
            assert_eq!(u32::from_le_bytes(back[..].try_into().unwrap()), i);
        }
        t.join().unwrap();
    }

    #[test]
    fn drain_all_discards_queued_frames() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        for _ in 0..4 {
            a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"stale")).unwrap();
        }
        // Wait until the frames have crossed the wire.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let first = b.recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(5));
            assert!(first.is_ok());
            break;
        }
        // Up to 3 remain queued; drain must report exactly what it dropped.
        let mut drained = b.drain_all();
        while drained < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            drained += b.drain_all();
        }
        assert_eq!(drained, 3);
    }

    #[test]
    fn steady_state_tcp_roundtrips_allocate_no_frames() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        let payload = vec![7u8; 4096];
        let pool = pool::global();
        let roundtrip = |i: u32| {
            let mut buf = pool.acquire(payload.len());
            buf.extend_from_slice(&payload);
            a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(buf)).unwrap();
            let got = b
                .recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(10))
                .unwrap();
            assert_eq!(got.len(), payload.len(), "iteration {i}");
            pool.recycle_frame(got);
        };
        for i in 0..50 {
            roundtrip(i);
        }
        let before = pool.stats();
        for i in 0..200 {
            roundtrip(i);
        }
        let after = pool.stats();
        assert_eq!(
            after.misses, before.misses,
            "steady-state TCP send/recv must not allocate frames"
        );
    }
}
