//! Real multi-process transport: non-blocking TCP sockets under the same
//! [`Transport`] trait the in-process mesh implements.
//!
//! The paper's core systems argument (§4) is that reduction needs a
//! purpose-built communicator — its JeroMQ layer cuts small-message latency
//! from the BlockManager's 3861 µs to 73 µs. This module is that layer for
//! the reproduction: executors become OS processes, links become loopback
//! (or LAN) TCP streams, and the collective stack above — [`crate::epoch`]
//! fencing, the chunk-pipelined ring, sparse segments — runs unchanged
//! because it only ever talks to the [`Transport`] trait.
//!
//! # Architecture
//!
//! One [`TcpTransport`] instance is bound to one local rank. It holds one
//! link per peer rank (all logical channels are multiplexed over that
//! link's socket and demultiplexed by the frame header's `channel` field),
//! plus a single background IO thread running a hand-rolled readiness loop
//! over non-blocking sockets:
//!
//! * **send** — the caller encodes a wire frame ([`frame::encode_pooled`])
//!   from the global [`crate::pool::FramePool`], enqueues it to the peer's
//!   outbound queue, and wakes the IO thread. Sends never block on the
//!   socket (matching the ZeroMQ model the paper adopts). The caller's
//!   payload buffer is recycled immediately when sole-owned.
//! * **IO thread** — drains outbound queues with partial-write tracking,
//!   reads whatever bytes the kernel has into a per-connection
//!   [`frame::FrameReader`], and routes decoded payloads to per-`(peer,
//!   channel)` inboxes. Wire frames are recycled once fully written;
//!   received payloads are pooled buffers, so the steady state allocates no
//!   frames in either direction. When nothing progresses it parks for
//!   [`TcpConfig::idle_poll`] (sends unpark it), keeping idle CPU near zero
//!   without a platform poller — at loopback RTTs this costs a few tens of
//!   µs of worst-case latency, which stays well inside the paper's
//!   BlockManager-vs-SC gap that `bench_transport` reproduces.
//! * **recv** — blocks on the inbox with a poll quantum so peer death is
//!   observed even mid-wait: when a peer is declared dead the transport
//!   stores the typed error and every blocked or future `recv` for it
//!   returns it immediately — already-delivered frames are still receivable
//!   first.
//!
//! # Self-healing (DESIGN.md §5h)
//!
//! Each peer link is a small state machine, [`Link`]: `Up` (socket live),
//! `Redialing`/`AwaitingDial` (reconnecting after a transient failure), and
//! `Down` (peer declared lost). Failure detection is both reactive (socket
//! errors, EOF) and proactive (the [`health`] heartbeat protocol on the
//! reserved [`frame::HEARTBEAT_CHANNEL`], driven from this same IO thread).
//! When reconnection is armed ([`ReconnectCtx`]), a failed link is re-dialed
//! with capped exponential backoff plus deterministic jitter — the dial
//! direction re-uses the mesh rule (rank `i` dials `j < i`; the higher rank
//! waits on its kept listener) so the two ends never cross-dial. Only after
//! the retry budget ([`ReconnectConfig::max_rounds`]) is spent does the peer
//! flip to `Down` with a terminal [`NetError::PeerLost`]. Frames that were
//! in flight when the socket died are gone, and frames of the failed
//! collective attempt may replay into the healed socket — both are safe
//! because the epoch fence ([`crate::epoch`]) discards stale-attempt frames;
//! `tests/tcp_reconnect.rs` pins exactly that.
//!
//! `TCP_NODELAY` is set on every socket: the ring sends latency-critical
//! small frames and handles its own batching (chunk pipelining), so Nagle
//! coalescing would only add delay.
//!
//! Connection establishment (rank assignment, peer address exchange, mesh
//! dialing, re-admission) lives in [`rendezvous`]; the wire format in
//! [`frame`]; failure detection in [`health`].

pub mod frame;
pub mod health;
pub mod rendezvous;

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::bytebuf::ByteBuf;
use crate::error::{NetError, NetResult};
use crate::pool;
use crate::sync::{channel, Mutex, Receiver, RecvTimeoutError, Sender};
use crate::topology::ExecutorId;
use crate::transport::{NetStats, NetStatsSnapshot, Transport};

use frame::io_to_net;
use health::{Beat, HealthConfig, HealthState};

/// Default for [`TcpConfig::idle_poll`]: how long the IO thread parks when
/// no socket made progress. Sends unpark it, so this only bounds receive
/// latency while the wire is silent.
pub const IDLE_POLL: Duration = Duration::from_micros(50);

/// Default for [`TcpConfig::flush_timeout`]: upper bound on the outbound
/// flush performed when a transport is dropped.
pub const FLUSH_TIMEOUT: Duration = Duration::from_secs(5);

/// Default for [`TcpConfig::connect_timeout`]: per-dial bound during
/// reconnection and re-admission.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Poll quantum for blocking receives: how often a waiting `recv` rechecks
/// peer liveness.
const RECV_QUANTUM: Duration = Duration::from_millis(5);

/// Read buffer size for the IO thread (per loop iteration, shared across
/// connections).
const READ_CHUNK: usize = 256 * 1024;

/// Reconnection tuning knobs, part of [`TcpConfig`].
///
/// A failed link is retried in *rounds*. On the dialing side each round is
/// one `connect` attempt, scheduled `min(backoff_base << round, backoff_cap)`
/// plus a deterministic jitter (hash of `(me, peer, round)`, below one base)
/// after the previous failure. On the accepting side each round is one
/// `accept_window` of waiting for the peer to re-dial. When `max_rounds` are
/// spent without the link healing, the peer is declared
/// [`NetError::PeerLost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectConfig {
    /// Reconnect rounds before the peer is declared lost.
    pub max_rounds: u32,
    /// Backoff before the first re-dial; doubles each round.
    pub backoff_base: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub backoff_cap: Duration,
    /// How long the accepting side waits per round for a re-dial.
    pub accept_window: Duration,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        Self {
            max_rounds: 6,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            accept_window: Duration::from_secs(2),
        }
    }
}

/// All TCP transport tuning in one plumbable struct (an ISSUE-7 satellite:
/// these were hard-coded constants). The documented defaults are the
/// `pub const`s above plus [`HealthConfig::default`] /
/// [`ReconnectConfig::default`]; `launch_cluster` and `chaos_cluster` expose
/// them as flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// IO-thread park time when idle ([`IDLE_POLL`]).
    pub idle_poll: Duration,
    /// Outbound flush bound on drop ([`FLUSH_TIMEOUT`]).
    pub flush_timeout: Duration,
    /// Per-dial bound for reconnect/re-admission dials ([`CONNECT_TIMEOUT`]).
    pub connect_timeout: Duration,
    /// Heartbeat failure detection.
    pub health: HealthConfig,
    /// Reconnection with backoff.
    pub reconnect: ReconnectConfig,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            idle_poll: IDLE_POLL,
            flush_timeout: FLUSH_TIMEOUT,
            connect_timeout: CONNECT_TIMEOUT,
            health: HealthConfig::default(),
            reconnect: ReconnectConfig::default(),
        }
    }
}

/// What a transport needs to *heal* links rather than merely report them
/// dead: its own listener (kept from rendezvous, so lower-ranked peers can
/// re-dial in) and every peer's listen address (so it can re-dial out).
#[derive(Debug)]
pub struct ReconnectCtx {
    /// This rank's data-plane listener, bound since before rendezvous.
    pub listener: TcpListener,
    /// Listen addresses indexed by rank (the self entry is unused).
    pub peer_addrs: Vec<String>,
}

/// Liveness of one peer connection, shared between the IO thread (writer)
/// and receivers (readers).
struct PeerStatus {
    dead: AtomicBool,
    err: Mutex<Option<NetError>>,
    /// Fault injection: ask the IO thread to sever this link as if the
    /// kernel had reset it ([`TcpTransport::kill_connection`]).
    force_drop: AtomicBool,
}

impl PeerStatus {
    fn new() -> Self {
        Self {
            dead: AtomicBool::new(false),
            err: Mutex::new(None),
            force_drop: AtomicBool::new(false),
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Records the first fatal error; later ones are ignored.
    fn kill(&self, e: NetError) {
        let mut slot = self.err.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.dead.store(true, Ordering::Release);
    }

    /// Clears a latched death — a re-admitted peer starts clean.
    fn revive(&self) {
        *self.err.lock() = None;
        self.dead.store(false, Ordering::Release);
    }

    fn error(&self) -> NetError {
        self.err.lock().clone().unwrap_or(NetError::Disconnected)
    }
}

/// The connection state machine for one peer link (DESIGN.md §5h).
enum Link {
    /// Socket live; reads, writes, and heartbeats flow.
    Up(TcpStream),
    /// We are the dialing side (peer rank < ours): re-dial at `next`.
    Redialing {
        /// When the next dial round fires.
        next: Instant,
    },
    /// We are the accepting side (peer rank > ours): the peer must re-dial
    /// our listener before `deadline`.
    AwaitingDial {
        /// When this accept window closes (= one failed round).
        deadline: Instant,
    },
    /// Peer declared lost; only [`TcpTransport::install_peer`] revives it.
    Down,
}

/// One peer link, owned by the IO thread.
struct Conn {
    peer: usize,
    link: Link,
    /// Frames queued by senders, pulled into `out` by the IO thread. Frames
    /// still in this queue when a link fails survive into the healed socket.
    out_rx: Receiver<ByteBuf>,
    /// In-progress writes: `(frame, bytes already written)`.
    out: VecDeque<(ByteBuf, usize)>,
    reader: frame::FrameReader,
    status: Arc<PeerStatus>,
    health: HealthState,
    /// Reconnect rounds consumed since the link was last healthy.
    rounds: u32,
    /// Set on (re)install; cleared — counting a heal — on first inbound
    /// bytes from the new socket.
    awaiting_heal: bool,
    /// The failure that started the current reconnect, for the terminal
    /// [`NetError::PeerLost`] detail.
    last_err: Option<NetError>,
}

/// A socket accepted on the kept listener, waiting for its `PEER` preamble.
struct PendingAccept {
    stream: TcpStream,
    reader: frame::FrameReader,
    deadline: Instant,
}

/// Streams handed to the IO thread by [`TcpTransport::install_peer`]:
/// `(peer, stream, new listen address if known)`.
type InjectQueue = Mutex<Vec<(usize, TcpStream, Option<String>)>>;

/// A [`Transport`] over real TCP sockets, bound to one local rank.
///
/// Build one with [`TcpTransport::new`] from already-established sockets
/// (see [`rendezvous::join`] for the full mesh handshake),
/// [`TcpTransport::new_with`] to configure tunables and arm reconnection, or
/// [`TcpTransport::pair_loopback`] for a two-rank loopback pair in tests and
/// benches.
///
/// ```
/// use sparker_net::tcp::TcpTransport;
/// use sparker_net::transport::Transport;
/// use sparker_net::{ByteBuf, ExecutorId};
///
/// let (a, b) = TcpTransport::pair_loopback(2).unwrap();
/// a.send(ExecutorId(0), ExecutorId(1), 1, ByteBuf::from_static(b"over tcp")).unwrap();
/// let got = b.recv(ExecutorId(1), ExecutorId(0), 1).unwrap();
/// assert_eq!(&got[..], b"over tcp");
/// ```
pub struct TcpTransport {
    me: usize,
    n: usize,
    channels: usize,
    /// Inbox senders/receivers indexed `from * channels + channel`.
    inbox_tx: Vec<Sender<ByteBuf>>,
    inbox_rx: Vec<Receiver<ByteBuf>>,
    /// Outbound queues per peer rank (`None` for self).
    out_tx: Vec<Option<Sender<ByteBuf>>>,
    /// Liveness per peer rank (the self entry is never dead).
    peers: Vec<Arc<PeerStatus>>,
    /// Streams waiting for the IO thread to install ([`Self::install_peer`]).
    injected: Arc<InjectQueue>,
    stats: NetStats,
    shutdown: Arc<AtomicBool>,
    io_thread: Mutex<Option<JoinHandle<()>>>,
    io_waker: std::thread::Thread,
}

impl TcpTransport {
    /// Wraps established sockets into a transport bound to rank `me` of `n`,
    /// with default tunables and no reconnection. `conns` must hold exactly
    /// one stream per peer rank (`n - 1` total).
    pub fn new(
        me: usize,
        n: usize,
        channels: usize,
        conns: Vec<(usize, TcpStream)>,
    ) -> NetResult<Arc<Self>> {
        if conns.len() != n.saturating_sub(1) {
            return Err(NetError::InvalidAddress(format!(
                "mesh for rank {me} needs {} peer connections, got {}",
                n.saturating_sub(1),
                conns.len()
            )));
        }
        Self::new_with(me, n, channels, conns, TcpConfig::default(), None)
    }

    /// Full-control constructor: tunables via `cfg`, reconnection armed when
    /// `recon` is provided. With reconnection armed, ranks *without* a
    /// connection are allowed — they start [`Link::Down`] with a latched
    /// [`NetError::PeerLost`] (the partial mesh a re-admitted executor
    /// builds; see [`rendezvous`]) until [`Self::install_peer`] or an
    /// accepted re-dial brings them up.
    pub fn new_with(
        me: usize,
        n: usize,
        channels: usize,
        conns: Vec<(usize, TcpStream)>,
        cfg: TcpConfig,
        recon: Option<ReconnectCtx>,
    ) -> NetResult<Arc<Self>> {
        if me >= n || channels == 0 {
            return Err(NetError::InvalidAddress(format!(
                "rank {me} of {n} with {channels} channels is not a valid binding"
            )));
        }
        let mut seen = vec![false; n];
        seen[me] = true;
        for (peer, _) in &conns {
            if *peer >= n || *peer == me || seen[*peer] {
                return Err(NetError::InvalidAddress(format!(
                    "connection for peer {peer} is out of range or duplicated (me={me}, n={n})"
                )));
            }
            seen[*peer] = true;
        }
        if let Some(ctx) = &recon {
            if ctx.peer_addrs.len() != n {
                return Err(NetError::InvalidAddress(format!(
                    "reconnect context lists {} addresses for n={n}",
                    ctx.peer_addrs.len()
                )));
            }
        } else if conns.len() != n - 1 {
            return Err(NetError::InvalidAddress(format!(
                "mesh for rank {me} needs {} peer connections, got {} \
                 (partial meshes require a ReconnectCtx)",
                n - 1,
                conns.len()
            )));
        }

        let mut inbox_tx = Vec::with_capacity(n * channels);
        let mut inbox_rx = Vec::with_capacity(n * channels);
        for _ in 0..n * channels {
            let (tx, rx) = channel();
            inbox_tx.push(tx);
            inbox_rx.push(rx);
        }
        let peers: Vec<Arc<PeerStatus>> = (0..n).map(|_| Arc::new(PeerStatus::new())).collect();
        let mut out_tx: Vec<Option<Sender<ByteBuf>>> = (0..n).map(|_| None).collect();
        let now = Instant::now();
        let mut io_conns = Vec::with_capacity(n.saturating_sub(1));
        for (peer, stream) in conns {
            stream.set_nonblocking(true).map_err(io_to_net)?;
            stream.set_nodelay(true).map_err(io_to_net)?;
            let (tx, rx) = channel();
            out_tx[peer] = Some(tx);
            io_conns.push(Conn {
                peer,
                link: Link::Up(stream),
                out_rx: rx,
                out: VecDeque::new(),
                reader: frame::FrameReader::new(),
                status: peers[peer].clone(),
                health: HealthState::new(now),
                rounds: 0,
                awaiting_heal: false,
                last_err: None,
            });
        }
        // Absent peers (partial mesh under reconnection): down-at-birth with
        // a typed latched error, revivable by install_peer / accepted dials.
        for peer in 0..n {
            if peer == me || out_tx[peer].is_some() {
                continue;
            }
            peers[peer].kill(NetError::PeerLost {
                rank: peer as u32,
                detail: "not connected when the transport was created".into(),
            });
            let (tx, rx) = channel();
            out_tx[peer] = Some(tx);
            io_conns.push(Conn {
                peer,
                link: Link::Down,
                out_rx: rx,
                out: VecDeque::new(),
                reader: frame::FrameReader::new(),
                status: peers[peer].clone(),
                health: HealthState::new(now),
                rounds: 0,
                awaiting_heal: false,
                last_err: None,
            });
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let injected: Arc<InjectQueue> = Arc::new(Mutex::new(Vec::new()));
        let arm = match recon {
            Some(ctx) => {
                ctx.listener.set_nonblocking(true).map_err(io_to_net)?;
                Some(ReconArm {
                    listener: ctx.listener,
                    addrs: ctx.peer_addrs,
                    pending: Vec::new(),
                })
            }
            None => None,
        };
        let io = IoLoop {
            me,
            conns: io_conns,
            inbox_tx: inbox_tx.clone(),
            channels,
            shutdown: shutdown.clone(),
            cfg,
            arm,
            injected: injected.clone(),
            epoch: now,
        };
        let handle = std::thread::Builder::new()
            .name(format!("sparker-tcp-io-{me}"))
            .spawn(move || io.run())
            .map_err(|e| NetError::Io(format!("spawning io thread: {e}")))?;
        let io_waker = handle.thread().clone();

        Ok(Arc::new(Self {
            me,
            n,
            channels,
            inbox_tx,
            inbox_rx,
            out_tx,
            peers,
            injected,
            stats: NetStats::default(),
            shutdown,
            io_thread: Mutex::new(Some(handle)),
            io_waker,
        }))
    }

    /// Builds a connected two-rank pair over a loopback socket — rank 0 and
    /// rank 1 in separate transports sharing one real TCP connection. The
    /// unit-test and benchmark entry point.
    pub fn pair_loopback(channels: usize) -> NetResult<(Arc<Self>, Arc<Self>)> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_to_net)?;
        let addr = listener.local_addr().map_err(io_to_net)?;
        let dialed = TcpStream::connect(addr).map_err(io_to_net)?;
        let (accepted, _) = listener.accept().map_err(io_to_net)?;
        let a = Self::new(0, 2, channels, vec![(1, accepted)])?;
        let b = Self::new(1, 2, channels, vec![(0, dialed)])?;
        Ok((a, b))
    }

    /// [`Self::pair_loopback`] with explicit tunables and reconnection armed
    /// on both ends — each transport keeps its listener and knows both
    /// addresses, so a severed link heals by re-dial (rank 1 dials, rank 0
    /// accepts, per the mesh rule).
    pub fn pair_loopback_with(
        channels: usize,
        cfg: TcpConfig,
    ) -> NetResult<(Arc<Self>, Arc<Self>)> {
        let l0 = TcpListener::bind("127.0.0.1:0").map_err(io_to_net)?;
        let l1 = TcpListener::bind("127.0.0.1:0").map_err(io_to_net)?;
        let a0 = l0.local_addr().map_err(io_to_net)?.to_string();
        let a1 = l1.local_addr().map_err(io_to_net)?.to_string();
        let dialed = TcpStream::connect(&a0).map_err(io_to_net)?;
        let (accepted, _) = l0.accept().map_err(io_to_net)?;
        let addrs = vec![a0, a1];
        let a = Self::new_with(
            0,
            2,
            channels,
            vec![(1, accepted)],
            cfg,
            Some(ReconnectCtx { listener: l0, peer_addrs: addrs.clone() }),
        )?;
        let b = Self::new_with(
            1,
            2,
            channels,
            vec![(0, dialed)],
            cfg,
            Some(ReconnectCtx { listener: l1, peer_addrs: addrs }),
        )?;
        Ok((a, b))
    }

    /// The local rank this transport is bound to.
    pub fn rank(&self) -> usize {
        self.me
    }

    /// Snapshot of traffic counters (sends only, matching the mesh).
    pub fn stats(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.stats.messages.load(Ordering::Relaxed),
            bytes: self.stats.bytes.load(Ordering::Relaxed),
            inter_node_messages: self.stats.inter_node_messages.load(Ordering::Relaxed),
            inter_node_bytes: self.stats.inter_node_bytes.load(Ordering::Relaxed),
        }
    }

    /// Whether `peer` has been declared dead (EOF/reset/codec with no
    /// reconnection, or a spent reconnect budget). Frames delivered before
    /// death remain receivable. A link that is merely *reconnecting* is not
    /// dead.
    pub fn peer_is_dead(&self, peer: usize) -> bool {
        peer < self.n && peer != self.me && self.peers[peer].is_dead()
    }

    /// The latched error for a dead `peer`, if any.
    pub fn peer_error(&self, peer: usize) -> Option<NetError> {
        if self.peer_is_dead(peer) {
            Some(self.peers[peer].error())
        } else {
            None
        }
    }

    /// Ranks currently declared dead.
    pub fn dead_peers(&self) -> Vec<usize> {
        (0..self.n).filter(|&p| self.peer_is_dead(p)).collect()
    }

    /// Fault injection: severs the live socket to `peer` from the IO thread,
    /// exactly as if the kernel had dropped the connection. With
    /// reconnection armed the link heals; without, the peer dies. Chaos
    /// plans use this for deterministic "forced connection close" events.
    pub fn kill_connection(&self, peer: usize) -> NetResult<()> {
        if peer >= self.n || peer == self.me {
            return Err(NetError::InvalidAddress(format!(
                "kill_connection({peer}) outside mesh of {} ranks (me={})",
                self.n, self.me
            )));
        }
        self.peers[peer].force_drop.store(true, Ordering::Release);
        self.io_waker.unpark();
        Ok(())
    }

    /// Hands an established socket to the IO thread as the new link to
    /// `peer`, reviving it if it was dead — the re-admission path
    /// ([`rendezvous`]; the `PEER` preamble must already have been
    /// exchanged). `addr`, when given, updates the address used for future
    /// re-dials of this peer.
    pub fn install_peer(
        &self,
        peer: usize,
        stream: TcpStream,
        addr: Option<String>,
    ) -> NetResult<()> {
        if peer >= self.n || peer == self.me {
            return Err(NetError::InvalidAddress(format!(
                "install_peer({peer}) outside mesh of {} ranks (me={})",
                self.n, self.me
            )));
        }
        // Revive eagerly so sends enqueued between now and the IO thread's
        // pickup are delivered by the fresh link instead of erroring.
        self.peers[peer].revive();
        self.injected.lock().push((peer, stream, addr));
        self.io_waker.unpark();
        Ok(())
    }

    fn check_addr(&self, at: ExecutorId, other: ExecutorId, channel: usize) -> NetResult<usize> {
        if at.index() != self.me {
            return Err(NetError::InvalidAddress(format!(
                "transport is bound to rank {}, not {at}",
                self.me
            )));
        }
        if other.index() >= self.n || channel >= self.channels {
            return Err(NetError::InvalidAddress(format!(
                "({other}, ch{channel}) outside mesh of {} ranks x {} channels",
                self.n, self.channels
            )));
        }
        Ok(other.index() * self.channels + channel)
    }

    fn recv_inner(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        deadline: Option<Instant>,
    ) -> NetResult<ByteBuf> {
        let idx = self.check_addr(at, from, channel)?;
        let from = from.index();
        loop {
            if let Some(msg) = self.inbox_rx[idx].try_recv() {
                return Ok(msg);
            }
            if from != self.me && self.peers[from].is_dead() {
                // Between the inbox check and the dead check the IO thread
                // may have routed a final frame; drain once more before
                // surfacing the error.
                if let Some(msg) = self.inbox_rx[idx].try_recv() {
                    return Ok(msg);
                }
                return Err(self.peers[from].error());
            }
            let mut quantum = RECV_QUANTUM;
            if let Some(deadline) = deadline {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(NetError::Timeout);
                }
                quantum = quantum.min(left);
            }
            match self.inbox_rx[idx].recv_timeout(quantum) {
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Disconnected),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn size(&self) -> usize {
        self.n
    }

    fn channels(&self) -> usize {
        self.channels
    }

    fn send(&self, from: ExecutorId, to: ExecutorId, channel: usize, msg: ByteBuf) -> NetResult<()> {
        let idx = self.check_addr(from, to, channel)?;
        let nbytes = msg.len();
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(nbytes as u64, Ordering::Relaxed);
        let to = to.index();
        if to == self.me {
            // Loopback: no wire, no copy.
            return self.inbox_tx[self.me * self.channels + channel]
                .send(msg)
                .map_err(|_| NetError::Disconnected);
        }
        self.stats.inter_node_messages.fetch_add(1, Ordering::Relaxed);
        self.stats.inter_node_bytes.fetch_add(nbytes as u64, Ordering::Relaxed);
        if self.peers[to].is_dead() {
            return Err(self.peers[to].error());
        }
        let wire = frame::encode_pooled(pool::global(), self.me as u32, channel as u32, &msg)?;
        // The payload was copied into the wire frame; a sole-owned source
        // buffer is reusable right now.
        pool::global().recycle_frame(msg);
        let _ = idx; // routing is by peer socket; channel rides in the frame
        self.out_tx[to]
            .as_ref()
            .expect("peer != me has an outbound queue")
            .send(wire)
            .map_err(|_| NetError::Disconnected)?;
        self.io_waker.unpark();
        Ok(())
    }

    fn recv(&self, at: ExecutorId, from: ExecutorId, channel: usize) -> NetResult<ByteBuf> {
        self.recv_inner(at, from, channel, None)
    }

    fn recv_timeout(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        self.recv_inner(at, from, channel, Some(Instant::now() + timeout))
    }

    fn drain_all(&self) -> usize {
        let mut dropped = 0;
        for rx in &self.inbox_rx {
            while let Some(msg) = rx.try_recv() {
                pool::global().recycle_frame(msg);
                dropped += 1;
            }
        }
        dropped
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.io_waker.unpark();
        if let Some(handle) = self.io_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Reconnection machinery owned by the IO thread: the kept listener, peer
/// addresses for re-dials, and accepted sockets awaiting their preamble.
struct ReconArm {
    listener: TcpListener,
    addrs: Vec<String>,
    pending: Vec<PendingAccept>,
}

/// The background readiness loop: owns every socket of one transport.
struct IoLoop {
    me: usize,
    conns: Vec<Conn>,
    inbox_tx: Vec<Sender<ByteBuf>>,
    channels: usize,
    shutdown: Arc<AtomicBool>,
    cfg: TcpConfig,
    arm: Option<ReconArm>,
    injected: Arc<InjectQueue>,
    /// Monotonic epoch for heartbeat stamps (µs since IO-thread start).
    epoch: Instant,
}

/// Deterministic jitter in `[0, base)` for reconnect round `k` of the
/// `(me, peer)` link — spreads simultaneous re-dials without randomness.
fn backoff_jitter(me: usize, peer: usize, round: u32, base: Duration) -> Duration {
    let mut bytes = [0u8; 20];
    bytes[..8].copy_from_slice(&(me as u64).to_le_bytes());
    bytes[8..16].copy_from_slice(&(peer as u64).to_le_bytes());
    bytes[16..].copy_from_slice(&round.to_le_bytes());
    let h = crate::hash::fnv1a(&bytes);
    let base_ns = base.as_nanos().max(1) as u64;
    Duration::from_nanos(h % base_ns)
}

impl IoLoop {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Pre-jitter backoff for round `k` (1-based): `min(base << (k-1), cap)`.
    fn backoff(&self, round: u32) -> Duration {
        let r = &self.cfg.reconnect;
        let shift = round.saturating_sub(1).min(20);
        r.backoff_base.saturating_mul(1 << shift).min(r.backoff_cap)
    }

    fn run(mut self) {
        let mut scratch = vec![0u8; READ_CHUNK];
        if self.cfg.health.enabled {
            // Warm the pool size classes heartbeats use (wire frame out,
            // decoded payload in) so the steady state stays allocation-free
            // even once the first beat fires mid-workload.
            let pool = pool::global();
            if let Ok(f) =
                frame::encode_pooled(pool, 0, frame::HEARTBEAT_CHANNEL, &[0u8; health::BEAT_LEN])
            {
                let mut r = frame::FrameReader::new();
                r.extend(&f);
                if let Ok(Some(d)) = r.next_frame(pool) {
                    pool.recycle_frame(d.payload);
                }
                pool.recycle_frame(f);
            }
        }
        while !self.shutdown.load(Ordering::Acquire) {
            let mut progress = false;
            progress |= self.service_injected();
            progress |= self.service_acceptor(&mut scratch);
            for ci in 0..self.conns.len() {
                let now = Instant::now();
                match self.conns[ci].link {
                    Link::Up(_) => {
                        if self.conns[ci].status.force_drop.swap(false, Ordering::AcqRel) {
                            self.fail_link(
                                ci,
                                NetError::Io("connection severed by fault injection".into()),
                            );
                            continue;
                        }
                        progress |= self.service_writes(ci);
                        progress |= self.service_reads(ci, &mut scratch);
                        self.service_health(ci);
                    }
                    Link::Redialing { next } => {
                        if now >= next {
                            progress = true;
                            self.try_dial(ci);
                        }
                    }
                    Link::AwaitingDial { deadline } => {
                        if now >= deadline {
                            self.fail_link(
                                ci,
                                NetError::Timeout, // window expired without a re-dial
                            );
                        }
                    }
                    Link::Down => {}
                }
            }
            if !progress {
                std::thread::park_timeout(self.cfg.idle_poll);
            }
        }
        // Shutdown: flush frames already queued so a transport dropped right
        // after its final send still delivers it (asynchronous sends promise
        // eventual delivery while the peer lives). Bounded so a stuck peer
        // cannot wedge the drop.
        let flush_deadline = Instant::now() + self.cfg.flush_timeout;
        loop {
            let mut pending = false;
            for ci in 0..self.conns.len() {
                if !matches!(self.conns[ci].link, Link::Up(_)) {
                    continue;
                }
                self.service_writes(ci);
                let conn = &self.conns[ci];
                if !conn.out.is_empty() {
                    pending = true;
                }
            }
            if !pending || Instant::now() >= flush_deadline {
                break;
            }
            std::thread::park_timeout(self.cfg.idle_poll);
        }
    }

    /// A link failed. Codec failures (framing corruption) and unarmed
    /// transports kill the peer outright; otherwise the link enters its next
    /// reconnect round — re-dialing if we are the dialing side of the pair,
    /// waiting on our listener if not — until the budget is spent.
    fn fail_link(&mut self, ci: usize, err: NetError) {
        let peer = self.conns[ci].peer;
        let framing_fatal = matches!(err, NetError::Codec(_));
        if self.arm.is_none() || framing_fatal {
            self.kill_conn(ci, err);
            return;
        }
        self.conns[ci].rounds += 1;
        let rounds = self.conns[ci].rounds;
        if rounds > self.cfg.reconnect.max_rounds {
            let detail = format!(
                "reconnect budget exhausted after {} rounds (last error: {})",
                rounds - 1,
                self.conns[ci].last_err.as_ref().unwrap_or(&err),
            );
            self.kill_conn(ci, NetError::PeerLost { rank: peer as u32, detail });
            return;
        }
        health::count_reconnect_attempt();
        let delay =
            self.backoff(rounds) + backoff_jitter(self.me, peer, rounds, self.cfg.reconnect.backoff_base);
        let accept_window = self.cfg.reconnect.accept_window;
        let dialer = peer < self.me;
        // Tear down the old socket (dropping it sends FIN/RST so the peer
        // notices too). Whole frames still in out_rx survive into the healed
        // link; partially-written ones are torn and must be dropped.
        let conn = &mut self.conns[ci];
        for (f, _) in conn.out.drain(..) {
            pool::global().recycle_frame(f);
        }
        conn.reader = frame::FrameReader::new();
        if !matches!(err, NetError::Timeout) {
            conn.last_err = Some(err);
        }
        let now = Instant::now();
        conn.link = if dialer {
            Link::Redialing { next: now + delay }
        } else {
            Link::AwaitingDial { deadline: now + accept_window }
        };
    }

    /// Declares the peer dead: latches the typed error, drops the link, and
    /// recycles everything queued.
    fn kill_conn(&mut self, ci: usize, err: NetError) {
        let conn = &mut self.conns[ci];
        if matches!(err, NetError::PeerLost { .. }) {
            health::count_reconnect_exhausted();
        }
        conn.status.kill(err);
        conn.link = Link::Down;
        for (f, _) in conn.out.drain(..) {
            pool::global().recycle_frame(f);
        }
        while let Some(f) = conn.out_rx.try_recv() {
            pool::global().recycle_frame(f);
        }
        conn.reader = frame::FrameReader::new();
    }

    /// Brings a fresh socket up as the link for `ci`. `reader` carries any
    /// bytes that arrived behind the preamble on an accepted socket.
    fn install(&mut self, ci: usize, stream: TcpStream, reader: frame::FrameReader) {
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            // The fresh socket is already broken; treat as a failed round.
            self.fail_link(ci, NetError::Io("configuring reconnected socket".into()));
            return;
        }
        let conn = &mut self.conns[ci];
        for (f, _) in conn.out.drain(..) {
            pool::global().recycle_frame(f);
        }
        conn.reader = reader;
        conn.health = HealthState::new(Instant::now());
        conn.awaiting_heal = true;
        conn.status.revive();
        conn.link = Link::Up(stream);
    }

    /// One dial round toward a lower-ranked peer.
    fn try_dial(&mut self, ci: usize) {
        let peer = self.conns[ci].peer;
        let Some(arm) = &self.arm else { return };
        let addr = arm.addrs[peer].clone();
        let parsed: Result<SocketAddr, _> = addr.parse();
        let sa = match parsed {
            Ok(sa) => sa,
            Err(e) => {
                self.kill_conn(
                    ci,
                    NetError::InvalidAddress(format!("re-dial address {addr:?}: {e}")),
                );
                return;
            }
        };
        match TcpStream::connect_timeout(&sa, self.cfg.connect_timeout) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                // Identify ourselves so the acceptor attaches this socket to
                // the right link (same preamble as the rendezvous mesh dial).
                let preamble = rendezvous::peer_preamble(self.me as u32);
                match frame::write_frame(
                    &mut stream,
                    pool::global(),
                    self.me as u32,
                    frame::CONTROL_CHANNEL,
                    &preamble,
                ) {
                    Ok(()) => self.install(ci, stream, frame::FrameReader::new()),
                    Err(e) => self.fail_link(ci, e),
                }
            }
            Err(e) => self.fail_link(ci, io_to_net(e)),
        }
    }

    /// Accepts re-dials on the kept listener and attaches each, once its
    /// `PEER` preamble arrives, to the matching link. Returns whether any
    /// bytes moved.
    fn service_acceptor(&mut self, scratch: &mut [u8]) -> bool {
        let Some(arm) = &mut self.arm else { return false };
        let window = self.cfg.reconnect.accept_window;
        let mut progress = false;
        loop {
            match arm.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    progress = true;
                    arm.pending.push(PendingAccept {
                        stream,
                        reader: frame::FrameReader::new(),
                        deadline: Instant::now() + window,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if arm.pending.is_empty() {
            return progress;
        }
        let mut pending = std::mem::take(&mut arm.pending);
        let mut keep = Vec::with_capacity(pending.len());
        for mut p in pending.drain(..) {
            match self.drive_pending(&mut p, scratch) {
                PendingVerdict::Wait => {
                    if Instant::now() < p.deadline {
                        keep.push(p);
                    }
                    // Expired: drop the socket; the peer will retry.
                }
                PendingVerdict::Install(peer) => {
                    progress = true;
                    if let Some(ci) = self.conns.iter().position(|c| c.peer == peer) {
                        let PendingAccept { stream, reader, .. } = p;
                        self.install(ci, stream, reader);
                    }
                }
                PendingVerdict::Drop => {
                    progress = true;
                }
            }
        }
        if let Some(arm) = &mut self.arm {
            arm.pending = keep;
        }
        progress
    }

    /// Reads a pending accepted socket looking for its `PEER` preamble.
    fn drive_pending(&self, p: &mut PendingAccept, scratch: &mut [u8]) -> PendingVerdict {
        loop {
            match p.stream.read(scratch) {
                Ok(0) => return PendingVerdict::Drop,
                Ok(k) => {
                    p.reader.extend(&scratch[..k]);
                    match p.reader.next_frame(pool::global()) {
                        Ok(Some(decoded)) => {
                            let verdict = if decoded.channel == frame::CONTROL_CHANNEL {
                                match rendezvous::parse_peer_preamble(&decoded.payload) {
                                    // Only higher ranks dial us (mesh rule).
                                    Ok(j)
                                        if (j as usize) > self.me
                                            && (j as usize) < self.me + self.conns.len() + 1 =>
                                    {
                                        PendingVerdict::Install(j as usize)
                                    }
                                    _ => PendingVerdict::Drop,
                                }
                            } else {
                                PendingVerdict::Drop
                            };
                            pool::global().recycle_frame(decoded.payload);
                            return verdict;
                        }
                        Ok(None) => continue,
                        Err(_) => return PendingVerdict::Drop,
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return PendingVerdict::Wait,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return PendingVerdict::Drop,
            }
        }
    }

    /// Installs sockets handed over by [`TcpTransport::install_peer`].
    fn service_injected(&mut self) -> bool {
        let items: Vec<_> = {
            let mut q = self.injected.lock();
            if q.is_empty() {
                return false;
            }
            q.drain(..).collect()
        };
        for (peer, stream, addr) in items {
            if let (Some(arm), Some(a)) = (&mut self.arm, addr) {
                if peer < arm.addrs.len() {
                    arm.addrs[peer] = a;
                }
            }
            if let Some(ci) = self.conns.iter().position(|c| c.peer == peer) {
                // A driver-mediated install is a *new incarnation* of the
                // peer (re-admission), not another round of the old outage:
                // the retry budget starts fresh. (Reconnect-driven installs
                // keep their round count until the link actually heals, so a
                // frozen peer still exhausts the budget.)
                self.conns[ci].rounds = 0;
                self.conns[ci].last_err = None;
                self.install(ci, stream, frame::FrameReader::new());
            }
        }
        true
    }

    /// Heartbeats for one live link: queue a due PING, suspect on silence.
    fn service_health(&mut self, ci: usize) {
        if !self.cfg.health.enabled || !matches!(self.conns[ci].link, Link::Up(_)) {
            return;
        }
        let now = Instant::now();
        let stamp = self.now_us();
        let hcfg = self.cfg.health;
        if let Some(beat) = self.conns[ci].health.maybe_ping(now, stamp, &hcfg) {
            self.queue_beat(ci, beat);
        }
        if self.conns[ci].health.suspect(now, &hcfg) {
            health::count_suspicion();
            let peer = self.conns[ci].peer;
            let silence = self.conns[ci].health.silence(now);
            self.fail_link(
                ci,
                NetError::PeerLost {
                    rank: peer as u32,
                    detail: format!(
                        "heartbeat suspicion: silent for {silence:?} (timeout {:?})",
                        hcfg.suspicion
                    ),
                },
            );
        }
    }

    /// Encodes and queues one beat on the link's outbound queue.
    fn queue_beat(&mut self, ci: usize, beat: Beat) {
        if let Ok(wire) = frame::encode_pooled(
            pool::global(),
            self.me as u32,
            frame::HEARTBEAT_CHANNEL,
            &beat.encode(),
        ) {
            self.conns[ci].out.push_back((wire, 0));
        }
    }

    /// Consumes an inbound heartbeat: PING → queue the echo PONG; PONG →
    /// observe the RTT.
    fn handle_beat(&mut self, ci: usize, payload: &[u8]) -> NetResult<()> {
        match Beat::decode(payload)? {
            Beat::Ping { seq, stamp } => self.queue_beat(ci, Beat::Pong { seq, stamp }),
            Beat::Pong { seq: _, stamp } => {
                health::observe_rtt(self.now_us().saturating_sub(stamp));
            }
        }
        Ok(())
    }

    /// Pulls queued frames and pushes bytes until the socket would block.
    /// Returns whether any bytes moved.
    fn service_writes(&mut self, ci: usize) -> bool {
        let conn = &mut self.conns[ci];
        let Link::Up(stream) = &mut conn.link else { return false };
        while let Some(f) = conn.out_rx.try_recv() {
            conn.out.push_back((f, 0));
        }
        let mut progress = false;
        let mut failure = None;
        while let Some((front, off)) = conn.out.front_mut() {
            match stream.write(&front[*off..]) {
                Ok(0) => {
                    failure = Some(NetError::Disconnected);
                    break;
                }
                Ok(k) => {
                    progress = true;
                    *off += k;
                    if *off == front.len() {
                        let (done, _) = conn.out.pop_front().expect("front exists");
                        pool::global().recycle_frame(done);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    failure = Some(io_to_net(e));
                    break;
                }
            }
        }
        if let Some(err) = failure {
            self.fail_link(ci, err);
        }
        progress
    }

    /// Reads available bytes, decodes complete frames, and routes them.
    /// Returns whether any bytes moved.
    fn service_reads(&mut self, ci: usize, scratch: &mut [u8]) -> bool {
        let mut progress = false;
        loop {
            let conn = &mut self.conns[ci];
            let Link::Up(stream) = &mut conn.link else { return progress };
            match stream.read(scratch) {
                Ok(0) => {
                    // Clean EOF; torn mid-frame it is still a disconnect,
                    // the partial bytes simply never become a frame.
                    self.fail_link(ci, NetError::Disconnected);
                    return progress;
                }
                Ok(k) => {
                    progress = true;
                    conn.reader.extend(&scratch[..k]);
                    let now = Instant::now();
                    conn.health.heard(now);
                    if conn.awaiting_heal {
                        conn.awaiting_heal = false;
                        conn.rounds = 0;
                        conn.last_err = None;
                        health::count_reconnect_healed();
                    }
                    loop {
                        match self.conns[ci].reader.next_frame(pool::global()) {
                            Ok(Some(decoded)) => {
                                if decoded.channel == frame::HEARTBEAT_CHANNEL {
                                    let res = self.handle_beat(ci, &decoded.payload);
                                    pool::global().recycle_frame(decoded.payload);
                                    if let Err(e) = res {
                                        self.kill_conn(ci, e);
                                        return progress;
                                    }
                                    continue;
                                }
                                if let Err(e) = self.route(ci, decoded) {
                                    self.fail_link(ci, e);
                                    return progress;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                // Framing is unrecoverable: poison the
                                // connection so receivers see the Codec
                                // error instead of hanging.
                                self.kill_conn(ci, e);
                                return progress;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    let err = io_to_net(e);
                    self.fail_link(ci, err);
                    return progress;
                }
            }
        }
    }

    /// Delivers a decoded frame to its `(from, channel)` inbox.
    fn route(&self, ci: usize, decoded: frame::DecodedFrame) -> NetResult<()> {
        let peer = self.conns[ci].peer;
        if decoded.from as usize != peer {
            return Err(NetError::Codec(format!(
                "frame claims sender {} on the socket of peer {peer}",
                decoded.from
            )));
        }
        let ch = decoded.channel as usize;
        if ch >= self.channels {
            return Err(NetError::Codec(format!(
                "frame channel {ch} outside {} channels",
                self.channels
            )));
        }
        self.inbox_tx[peer * self.channels + ch]
            .send(decoded.payload)
            .map_err(|_| NetError::Disconnected)?;
        Ok(())
    }
}

/// What to do with an accepted socket after one read pass.
enum PendingVerdict {
    /// Preamble incomplete; keep waiting (until its deadline).
    Wait,
    /// Preamble identified this rank: attach the socket to its link.
    Install(usize),
    /// Garbage, EOF, or an invalid claimed rank: discard the socket.
    Drop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_pair_roundtrip() {
        let (a, b) = TcpTransport::pair_loopback(2).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"hello tcp"))
            .unwrap();
        let got = b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
        assert_eq!(&got[..], b"hello tcp");
        // And the other direction.
        b.send(ExecutorId(1), ExecutorId(0), 1, ByteBuf::from_static(b"back"))
            .unwrap();
        assert_eq!(&a.recv(ExecutorId(0), ExecutorId(1), 1).unwrap()[..], b"back");
    }

    #[test]
    fn channels_are_independent_fifos_over_one_socket() {
        let (a, b) = TcpTransport::pair_loopback(2).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 1, ByteBuf::from_static(b"ch1")).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"ch0-a")).unwrap();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"ch0-b")).unwrap();
        assert_eq!(&b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()[..], b"ch0-a");
        assert_eq!(&b.recv(ExecutorId(1), ExecutorId(0), 1).unwrap()[..], b"ch1");
        assert_eq!(&b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()[..], b"ch0-b");
    }

    #[test]
    fn large_messages_survive_partial_writes() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        // Large enough to exceed socket buffers, forcing WouldBlock cycles.
        let big: Vec<u8> = (0..8 << 20).map(|i| (i * 31 % 251) as u8).collect();
        let sent = big.clone();
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(big)).unwrap();
        let got = b
            .recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(30))
            .unwrap();
        assert_eq!(got.len(), sent.len());
        assert_eq!(&got[..], &sent[..]);
    }

    #[test]
    fn self_send_is_loopback() {
        let (a, _b) = TcpTransport::pair_loopback(1).unwrap();
        a.send(ExecutorId(0), ExecutorId(0), 0, ByteBuf::from_static(b"self")).unwrap();
        assert_eq!(&a.recv(ExecutorId(0), ExecutorId(0), 0).unwrap()[..], b"self");
    }

    #[test]
    fn misbound_addresses_rejected() {
        let (a, _b) = TcpTransport::pair_loopback(1).unwrap();
        assert!(matches!(
            a.send(ExecutorId(1), ExecutorId(0), 0, ByteBuf::new()),
            Err(NetError::InvalidAddress(_))
        ));
        assert!(matches!(
            a.recv_timeout(ExecutorId(0), ExecutorId(5), 0, Duration::from_millis(1)),
            Err(NetError::InvalidAddress(_))
        ));
        assert!(matches!(
            a.recv_timeout(ExecutorId(0), ExecutorId(1), 9, Duration::from_millis(1)),
            Err(NetError::InvalidAddress(_))
        ));
    }

    #[test]
    fn recv_timeout_expires() {
        let (a, _b) = TcpTransport::pair_loopback(1).unwrap();
        let t0 = Instant::now();
        let err = a
            .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn peer_death_surfaces_as_disconnected_after_draining() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        b.send(ExecutorId(1), ExecutorId(0), 0, ByteBuf::from_static(b"last words"))
            .unwrap();
        // Give the frame time to cross, then kill the peer.
        let got = a
            .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_secs(5))
            .unwrap();
        assert_eq!(&got[..], b"last words");
        drop(b);
        // The next recv must fail fast with Disconnected, not hang.
        let t0 = Instant::now();
        let err = a
            .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_secs(30))
            .unwrap_err();
        assert_eq!(err, NetError::Disconnected);
        assert!(t0.elapsed() < Duration::from_secs(5), "death detection took {:?}", t0.elapsed());
        // Sends to the dead peer fail too.
        assert!(a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::new()).is_err());
        assert!(a.peer_is_dead(1));
        assert_eq!(a.dead_peers(), vec![1]);
        assert_eq!(a.peer_error(1), Some(NetError::Disconnected));
    }

    #[test]
    fn cross_thread_ping_pong() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        let t = std::thread::spawn(move || {
            for _ in 0..200 {
                let m = b.recv(ExecutorId(1), ExecutorId(0), 0).unwrap();
                b.send(ExecutorId(1), ExecutorId(0), 0, m).unwrap();
            }
        });
        for i in 0..200u32 {
            a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(i.to_le_bytes().to_vec()))
                .unwrap();
            let back = a.recv(ExecutorId(0), ExecutorId(1), 0).unwrap();
            assert_eq!(u32::from_le_bytes(back[..].try_into().unwrap()), i);
        }
        t.join().unwrap();
    }

    #[test]
    fn drain_all_discards_queued_frames() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        for _ in 0..4 {
            a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"stale")).unwrap();
        }
        // Wait until the frames have crossed the wire.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let first = b.recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(5));
            assert!(first.is_ok());
            break;
        }
        // Up to 3 remain queued; drain must report exactly what it dropped.
        let mut drained = b.drain_all();
        while drained < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            drained += b.drain_all();
        }
        assert_eq!(drained, 3);
    }

    #[test]
    fn steady_state_tcp_roundtrips_allocate_no_frames() {
        let (a, b) = TcpTransport::pair_loopback(1).unwrap();
        let payload = vec![7u8; 4096];
        let pool = pool::global();
        let roundtrip = |i: u32| {
            let mut buf = pool.acquire(payload.len());
            buf.extend_from_slice(&payload);
            a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from(buf)).unwrap();
            let got = b
                .recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(10))
                .unwrap();
            assert_eq!(got.len(), payload.len(), "iteration {i}");
            pool.recycle_frame(got);
        };
        for i in 0..50 {
            roundtrip(i);
        }
        let before = pool.stats();
        for i in 0..200 {
            roundtrip(i);
        }
        let after = pool.stats();
        assert_eq!(
            after.misses, before.misses,
            "steady-state TCP send/recv must not allocate frames"
        );
    }

    /// Heartbeats keep flowing on an otherwise idle pair: neither side may
    /// suspect the other, and RTT observations accumulate.
    #[test]
    fn idle_pair_stays_alive_via_heartbeats() {
        let mut cfg = TcpConfig::default();
        cfg.health.interval = Duration::from_millis(10);
        cfg.health.suspicion = Duration::from_millis(80);
        let (a, b) = TcpTransport::pair_loopback_with(1, cfg).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert!(!a.peer_is_dead(1), "a suspected b despite heartbeats");
        assert!(!b.peer_is_dead(0), "b suspected a despite heartbeats");
        // Data still flows after the idle stretch.
        a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"post-idle")).unwrap();
        let got =
            b.recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(5)).unwrap();
        assert_eq!(&got[..], b"post-idle");
    }
}
