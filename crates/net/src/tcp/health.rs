//! Per-connection heartbeat protocol: proactive failure detection for the
//! TCP transport.
//!
//! A closed socket announces itself (EOF, reset), but a *hung* peer — a
//! SIGSTOP'd process, a livelocked executor, a half-open connection after a
//! network partition — looks exactly like silence. Without a liveness
//! protocol, the only backstop is each collective's receive deadline, which
//! turns every straggler into a full-deadline stall. This module adds the
//! missing signal: the IO thread exchanges tiny PING/PONG beats on the
//! reserved [`super::frame::HEARTBEAT_CHANNEL`] and tracks, per connection,
//! when the peer was last heard from *at all* (any inbound bytes count, so a
//! busy data-plane link never pays heartbeat overhead beyond the timer
//! check).
//!
//! The per-connection state machine (normative spec: DESIGN.md §5h):
//!
//! ```text
//! Alive --silence > suspicion--> Suspect --reconnect armed--> Reconnecting
//!   ^                               |                              |
//!   |                               +--no reconnect--> Dead        |
//!   +------- first inbound bytes on the reinstalled socket --------+
//!                    (Reconnecting --budget exhausted--> Dead)
//! ```
//!
//! "Suspect" is momentary from the IO thread's point of view: the instant
//! silence exceeds the suspicion timeout it tears the connection down, which
//! either enters the reconnection path ([`super::ReconnectConfig`]) or —
//! when reconnection is not armed — declares [`NetError::PeerLost`]
//! immediately. SIGCONT'd stragglers therefore heal: their listener keeps
//! accepting while frozen, the re-dial lands in its backlog, and the first
//! frames after wake-up flip the link back to Alive.
//!
//! Each PING carries a sender-side microsecond stamp which the PONG echoes
//! verbatim; the sender's `now - stamp` is a full application-level RTT
//! (wire + both poll loops) and feeds the `net.heartbeat.rtt_us` histogram.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sparker_obs::metrics::{self, Counter, Histogram};

use crate::error::{NetError, NetResult};

/// Heartbeat tuning knobs, part of [`super::TcpConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Heartbeats on/off. Off, failure detection degrades to socket errors
    /// and collective deadlines (the pre-§5h behaviour).
    pub enabled: bool,
    /// How often a PING is sent on an otherwise configured connection.
    pub interval: Duration,
    /// Silence (no inbound bytes of any kind) after which the peer is
    /// suspected and the connection torn down. Must comfortably exceed
    /// `interval` (the default ratio is 12x).
    pub suspicion: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            interval: Duration::from_millis(250),
            suspicion: Duration::from_secs(3),
        }
    }
}

/// Wire tag for a heartbeat request.
const TAG_PING: u8 = 1;
/// Wire tag for a heartbeat reply.
const TAG_PONG: u8 = 2;
/// Encoded beat size: tag + seq + stamp.
pub const BEAT_LEN: usize = 1 + 8 + 8;

/// One heartbeat message: `Ping` asks, `Pong` echoes.
///
/// `stamp` is opaque to the receiver of a `Ping` — it echoes it back
/// unchanged — and is the sender's monotonic-epoch microsecond clock, so the
/// RTT needs no clock sync between processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Beat {
    /// "Are you alive?" — `seq` increments per connection incarnation.
    Ping {
        /// Per-connection sequence number.
        seq: u64,
        /// Sender's send-time stamp (µs on its own monotonic epoch).
        stamp: u64,
    },
    /// "Yes" — both fields echoed from the PING.
    Pong {
        /// Echoed sequence number.
        seq: u64,
        /// Echoed stamp, from which the pinger computes RTT.
        stamp: u64,
    },
}

impl Beat {
    /// Fixed-size encoding: `tag u8 | seq u64 LE | stamp u64 LE`.
    pub fn encode(&self) -> [u8; BEAT_LEN] {
        let (tag, seq, stamp) = match *self {
            Beat::Ping { seq, stamp } => (TAG_PING, seq, stamp),
            Beat::Pong { seq, stamp } => (TAG_PONG, seq, stamp),
        };
        let mut out = [0u8; BEAT_LEN];
        out[0] = tag;
        out[1..9].copy_from_slice(&seq.to_le_bytes());
        out[9..17].copy_from_slice(&stamp.to_le_bytes());
        out
    }

    /// Decodes a heartbeat payload; anything malformed is a typed
    /// [`NetError::Codec`] (a corrupt reserved-channel frame poisons the
    /// connection just like a corrupt data frame).
    pub fn decode(payload: &[u8]) -> NetResult<Self> {
        if payload.len() != BEAT_LEN {
            return Err(NetError::Codec(format!(
                "heartbeat payload is {} bytes, want {BEAT_LEN}",
                payload.len()
            )));
        }
        let seq = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
        let stamp = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        match payload[0] {
            TAG_PING => Ok(Beat::Ping { seq, stamp }),
            TAG_PONG => Ok(Beat::Pong { seq, stamp }),
            tag => Err(NetError::Codec(format!("invalid heartbeat tag {tag}"))),
        }
    }
}

/// Per-connection liveness tracking, owned by the IO thread.
#[derive(Debug)]
pub struct HealthState {
    /// Last instant any inbound bytes arrived on this connection.
    last_heard: Instant,
    /// Last instant a PING was queued.
    last_ping: Instant,
    /// Next PING sequence number.
    next_seq: u64,
}

impl HealthState {
    /// Fresh state for a just-(re)installed connection: the install counts
    /// as having heard from the peer, so suspicion starts from zero.
    pub fn new(now: Instant) -> Self {
        Self { last_heard: now, last_ping: now, next_seq: 0 }
    }

    /// Records inbound bytes (any frame, not just beats).
    pub fn heard(&mut self, now: Instant) {
        self.last_heard = now;
    }

    /// Returns the PING due at `now` (carrying `stamp`, the caller's µs
    /// clock), if the interval has elapsed.
    pub fn maybe_ping(&mut self, now: Instant, stamp: u64, cfg: &HealthConfig) -> Option<Beat> {
        if now.duration_since(self.last_ping) < cfg.interval {
            return None;
        }
        self.last_ping = now;
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(Beat::Ping { seq, stamp })
    }

    /// Whether the peer has been silent past the suspicion timeout.
    pub fn suspect(&self, now: Instant, cfg: &HealthConfig) -> bool {
        now.duration_since(self.last_heard) > cfg.suspicion
    }

    /// How long the peer has been silent (for error messages).
    pub fn silence(&self, now: Instant) -> Duration {
        now.duration_since(self.last_heard)
    }
}

// ---------------------------------------------------------------------------
// Observability: recovery counters + the RTT histogram. Handles are cached
// (the registry takes a lock) because these run on the IO hot loop.
// ---------------------------------------------------------------------------

fn cached(cell: &'static OnceLock<Arc<Counter>>, name: &'static str) -> &'static Arc<Counter> {
    cell.get_or_init(|| metrics::counter(name))
}

/// `net.heartbeat.rtt_us`: PING→PONG round-trip, observed by the pinger.
pub fn observe_rtt(us: u64) {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| metrics::histogram("net.heartbeat.rtt_us")).observe(us);
}

/// `net.heartbeat.suspicions`: peers suspected after heartbeat silence.
pub fn count_suspicion() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached(&C, "net.heartbeat.suspicions").add(1);
}

/// `net.reconnect.attempts`: reconnection rounds started (dial or
/// accept-window, both directions count).
pub fn count_reconnect_attempt() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached(&C, "net.reconnect.attempts").add(1);
}

/// `net.reconnect.healed`: connections that came back — first inbound bytes
/// observed on a reinstalled socket.
pub fn count_reconnect_healed() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached(&C, "net.reconnect.healed").add(1);
}

/// `net.reconnect.exhausted`: peers declared [`NetError::PeerLost`] after
/// the retry budget ran out.
pub fn count_reconnect_exhausted() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached(&C, "net.reconnect.exhausted").add(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_roundtrip() {
        for beat in [
            Beat::Ping { seq: 0, stamp: 0 },
            Beat::Ping { seq: u64::MAX, stamp: 1 },
            Beat::Pong { seq: 7, stamp: u64::MAX },
        ] {
            assert_eq!(Beat::decode(&beat.encode()).unwrap(), beat);
        }
    }

    #[test]
    fn malformed_beats_are_typed_errors() {
        assert!(matches!(Beat::decode(b""), Err(NetError::Codec(_))));
        assert!(matches!(Beat::decode(&[TAG_PING; 5]), Err(NetError::Codec(_))));
        let mut bad = Beat::Ping { seq: 1, stamp: 2 }.encode();
        bad[0] = 9;
        assert!(matches!(Beat::decode(&bad), Err(NetError::Codec(_))));
        let mut long = [0u8; BEAT_LEN + 1];
        long[0] = TAG_PONG;
        assert!(matches!(Beat::decode(&long), Err(NetError::Codec(_))));
    }

    #[test]
    fn ping_cadence_and_suspicion() {
        let cfg = HealthConfig {
            enabled: true,
            interval: Duration::from_millis(10),
            suspicion: Duration::from_millis(35),
        };
        let t0 = Instant::now();
        let mut hs = HealthState::new(t0);
        assert!(hs.maybe_ping(t0, 0, &cfg).is_none(), "no ping before the interval");
        let t1 = t0 + Duration::from_millis(10);
        let Some(Beat::Ping { seq: 0, .. }) = hs.maybe_ping(t1, 0, &cfg) else {
            panic!("ping due at interval");
        };
        assert!(hs.maybe_ping(t1, 0, &cfg).is_none(), "one ping per interval");
        let Some(Beat::Ping { seq: 1, .. }) = hs.maybe_ping(t1 + Duration::from_millis(10), 0, &cfg)
        else {
            panic!("seq increments");
        };
        // Silence grows past suspicion...
        assert!(!hs.suspect(t0 + Duration::from_millis(35), &cfg));
        assert!(hs.suspect(t0 + Duration::from_millis(36), &cfg));
        // ...unless *any* inbound bytes reset it.
        hs.heard(t0 + Duration::from_millis(30));
        assert!(!hs.suspect(t0 + Duration::from_millis(60), &cfg));
    }
}
