//! The TCP wire-frame codec: length-prefixed, checksummed frames.
//!
//! This is the lowest layer of the real-socket transport: everything that
//! crosses a [`crate::tcp::TcpTransport`] socket — data-plane messages and
//! rendezvous control messages alike — is one of these frames. The format is
//! specified normatively in DESIGN.md §5g; the constants here are
//! cross-checked byte-for-byte against the documented example frame by
//! `example_frame_matches_design_doc` below.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic     0x5350_4B54 ("SPKT")
//! 4       4     len       bytes after this field = 16 + payload length
//! 8       8     checksum  FNV-1a 64 over bytes [16, 8+len)  (from|channel|payload)
//! 16      4     from      sender rank
//! 20      4     channel   logical channel index
//! 24      len-16      payload
//! ```
//!
//! The `(magic, len)` prefix lets a reader discover frame boundaries on a
//! byte stream; the checksum turns any corruption *within* a frame into a
//! typed [`NetError::Codec`]. A TCP stream cannot reorder or duplicate, so
//! per-frame sequence numbers are unnecessary; collective-level staleness is
//! handled one layer up by the epoch header ([`crate::epoch`]), which rides
//! inside the payload.
//!
//! # Incremental decoding
//!
//! Sockets deliver arbitrary byte runs, so decoding is split in two:
//! [`FrameReader`] accumulates bytes and yields complete frames
//! (`Ok(None)` = incomplete prefix, keep reading), while the blocking
//! [`read_frame`]/[`write_frame`] helpers serve the rendezvous control plane
//! where a dedicated socket can simply block.
//!
//! ```
//! use sparker_net::tcp::frame::{self, FrameReader};
//! use sparker_net::FramePool;
//!
//! let pool = FramePool::new();
//! let frame = frame::encode_pooled(&pool, 2, 1, b"ring").unwrap();
//!
//! // Feed the wire bytes one at a time: the reader reassembles them.
//! let mut reader = FrameReader::new();
//! let mut out = None;
//! for &b in frame.iter() {
//!     reader.extend(&[b]);
//!     if let Some(decoded) = reader.next_frame(&pool).unwrap() {
//!         out = Some(decoded);
//!     }
//! }
//! let decoded = out.expect("frame completes on the last byte");
//! assert_eq!((decoded.from, decoded.channel), (2, 1));
//! assert_eq!(&decoded.payload[..], b"ring");
//! ```

use std::io::{ErrorKind, Read, Write};

use crate::bytebuf::ByteBuf;
use crate::error::{NetError, NetResult};
use crate::hash::Fnv1a;
use crate::pool::FramePool;

/// Wire-frame magic: `"SPKT"` as a little-endian u32 (bytes `54 4B 50 53`).
pub const MAGIC: u32 = 0x5350_4B54;
/// Bytes before the length-covered body: magic + len field.
pub const PREFIX_LEN: usize = 8;
/// Fixed body bytes before the payload: checksum + from + channel.
pub const BODY_FIXED: usize = 16;
/// Total header bytes preceding the payload.
pub const HEADER_LEN: usize = PREFIX_LEN + BODY_FIXED;
/// Upper bound on a single frame's payload. Far above anything the ring
/// sends (segments cap out in the low MiBs); a `len` field claiming more is
/// corruption, and rejecting it keeps a flipped length bit from asking the
/// reader to buffer gigabytes.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// The channel index reserved for rendezvous/control traffic, never valid
/// for data-plane sends (data channels are `0..channels`).
pub const CONTROL_CHANNEL: u32 = u32::MAX;
/// The channel index reserved for the heartbeat protocol
/// ([`crate::tcp::health`]). Heartbeat frames are consumed by the IO thread
/// itself and never reach an inbox; like [`CONTROL_CHANNEL`], the value sits
/// far above any valid data channel so a collision with data traffic is a
/// typed [`NetError::Codec`], not a misroute.
pub const HEARTBEAT_CHANNEL: u32 = u32::MAX - 1;
/// The `from` value used by endpoints that have no rank yet (rendezvous
/// hello) or stand outside the mesh (the driver).
pub const UNRANKED: u32 = u32::MAX;

/// A decoded wire frame: who sent it, on which channel, and the payload.
///
/// The payload buffer is drawn from the [`FramePool`] passed to the decoder,
/// so receivers that recycle it after use keep the steady state
/// allocation-free.
#[derive(Debug, Clone)]
pub struct DecodedFrame {
    /// Sender rank (or [`UNRANKED`]).
    pub from: u32,
    /// Channel index (or [`CONTROL_CHANNEL`]).
    pub channel: u32,
    /// The frame payload.
    pub payload: ByteBuf,
}

/// Checksum over the checksummed region: `from | channel | payload`.
fn body_checksum(from: u32, channel: u32, payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&from.to_le_bytes());
    h.update(&channel.to_le_bytes());
    h.update(payload);
    h.finish()
}

/// Encodes one wire frame, drawing the buffer from `pool`.
///
/// In steady state (after the pool has seen a frame of this size class) this
/// allocates nothing. The caller owns the returned frame; transports recycle
/// it once the bytes are on the wire.
pub fn encode_pooled(
    pool: &FramePool,
    from: u32,
    channel: u32,
    payload: &[u8],
) -> NetResult<ByteBuf> {
    if payload.len() > MAX_PAYLOAD {
        return Err(NetError::Codec(format!(
            "tcp frame payload {} bytes exceeds MAX_PAYLOAD {MAX_PAYLOAD}",
            payload.len()
        )));
    }
    let mut buf = pool.acquire(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&((BODY_FIXED + payload.len()) as u32).to_le_bytes());
    buf.extend_from_slice(&body_checksum(from, channel, payload).to_le_bytes());
    buf.extend_from_slice(&from.to_le_bytes());
    buf.extend_from_slice(&channel.to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(ByteBuf::from(buf))
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().unwrap())
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().unwrap())
}

/// Validates the 8-byte `(magic, len)` prefix, returning the body length.
fn parse_prefix(prefix: &[u8]) -> NetResult<usize> {
    let magic = read_u32(&prefix[0..4]);
    if magic != MAGIC {
        return Err(NetError::Codec(format!(
            "bad tcp frame magic {magic:#010x} (want {MAGIC:#010x})"
        )));
    }
    let len = read_u32(&prefix[4..8]) as usize;
    if len < BODY_FIXED {
        return Err(NetError::Codec(format!(
            "tcp frame len {len} shorter than fixed body {BODY_FIXED}"
        )));
    }
    if len - BODY_FIXED > MAX_PAYLOAD {
        return Err(NetError::Codec(format!(
            "tcp frame len {len} exceeds MAX_PAYLOAD {MAX_PAYLOAD}"
        )));
    }
    Ok(len)
}

/// Validates a frame body (`checksum | from | channel | payload`) and copies
/// the payload into a pooled buffer.
fn parse_body(body: &[u8], pool: &FramePool) -> NetResult<DecodedFrame> {
    debug_assert!(body.len() >= BODY_FIXED);
    let sum = read_u64(&body[0..8]);
    let computed = crate::hash::fnv1a(&body[8..]);
    if sum != computed {
        return Err(NetError::Codec(format!(
            "tcp frame checksum mismatch: header {sum:#018x}, computed {computed:#018x}"
        )));
    }
    let from = read_u32(&body[8..12]);
    let channel = read_u32(&body[12..16]);
    let payload_bytes = &body[BODY_FIXED..];
    let mut payload = pool.acquire(payload_bytes.len());
    payload.extend_from_slice(payload_bytes);
    Ok(DecodedFrame { from, channel, payload: ByteBuf::from(payload) })
}

/// Incremental frame reassembler for a non-blocking socket.
///
/// Feed raw reads in with [`FrameReader::extend`]; pull complete frames out
/// with [`FrameReader::next_frame`]. An incomplete prefix is `Ok(None)`
/// (never an error — short reads are normal), while a malformed prefix or a
/// checksum mismatch is a fatal [`NetError::Codec`]: once the stream framing
/// is wrong there is no way to resynchronise, so the connection must die.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

/// Consumed-prefix size above which the internal buffer is compacted.
const COMPACT_THRESHOLD: usize = 1 << 16;

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a partial frame (or any unconsumed bytes) is buffered — used
    /// to distinguish a clean EOF from a torn read.
    pub fn has_partial(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Attempts to decode the next complete frame. Returns `Ok(None)` when
    /// more bytes are needed.
    pub fn next_frame(&mut self, pool: &FramePool) -> NetResult<Option<DecodedFrame>> {
        let avail = self.buf.len() - self.start;
        if avail < PREFIX_LEN {
            return Ok(None);
        }
        let len = parse_prefix(&self.buf[self.start..self.start + PREFIX_LEN])?;
        if avail < PREFIX_LEN + len {
            return Ok(None);
        }
        let body_start = self.start + PREFIX_LEN;
        let frame = parse_body(&self.buf[body_start..body_start + len], pool)?;
        self.start += PREFIX_LEN + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

/// Maps an OS socket error to the transport's typed error.
///
/// Clean connection-terminating conditions (EOF mid-read, reset, broken
/// pipe) become [`NetError::Disconnected`]; expired socket deadlines become
/// [`NetError::Timeout`]; everything else is [`NetError::Io`].
pub fn io_to_net(e: std::io::Error) -> NetError {
    match e.kind() {
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => NetError::Disconnected,
        ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout,
        _ => NetError::Io(e.to_string()),
    }
}

/// Blocking write of one frame (control plane). The encode buffer is pooled
/// and recycled after the bytes are written.
pub fn write_frame<W: Write>(
    w: &mut W,
    pool: &FramePool,
    from: u32,
    channel: u32,
    payload: &[u8],
) -> NetResult<()> {
    let frame = encode_pooled(pool, from, channel, payload)?;
    let res = w.write_all(&frame).map_err(io_to_net);
    pool.recycle_frame(frame);
    res
}

/// Blocking read of one frame (control plane). EOF before a complete frame —
/// at the first header byte or mid-body alike — is [`NetError::Disconnected`];
/// an expired socket read-timeout is [`NetError::Timeout`].
pub fn read_frame<R: Read>(r: &mut R, pool: &FramePool) -> NetResult<DecodedFrame> {
    let mut prefix = [0u8; PREFIX_LEN];
    r.read_exact(&mut prefix).map_err(io_to_net)?;
    let len = parse_prefix(&prefix)?;
    let mut body = pool.acquire(len);
    body.resize(len, 0);
    r.read_exact(&mut body).map_err(io_to_net)?;
    let frame = parse_body(&body, pool)?;
    pool.recycle_vec(body);
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FramePool {
        FramePool::new()
    }

    #[test]
    fn roundtrip_via_reader() {
        let pool = pool();
        let frame = encode_pooled(&pool, 3, 7, b"payload bytes").unwrap();
        let mut r = FrameReader::new();
        r.extend(&frame);
        let got = r.next_frame(&pool).unwrap().expect("complete frame");
        assert_eq!(got.from, 3);
        assert_eq!(got.channel, 7);
        assert_eq!(&got.payload[..], b"payload bytes");
        assert!(!r.has_partial());
        assert!(r.next_frame(&pool).unwrap().is_none());
    }

    #[test]
    fn example_frame_matches_design_doc() {
        // The exact frame documented in DESIGN.md §5g: from=2, channel=1,
        // payload=b"ring". If this test fails, either the implementation or
        // the spec drifted — fix whichever is wrong, in both places.
        let pool = pool();
        let frame = encode_pooled(&pool, 2, 1, b"ring").unwrap();
        let expect: &[u8] = &[
            0x54, 0x4B, 0x50, 0x53, // magic "SPKT" (LE 0x53504B54)
            0x14, 0x00, 0x00, 0x00, // len = 20 (16 fixed + 4 payload)
            0x2C, 0xC1, 0xF2, 0xA3, 0x5A, 0x25, 0xE5, 0x8F, // FNV-1a = 0x8FE5255AA3F2C12C
            0x02, 0x00, 0x00, 0x00, // from = 2
            0x01, 0x00, 0x00, 0x00, // channel = 1
            0x72, 0x69, 0x6E, 0x67, // "ring"
        ];
        assert_eq!(frame.len(), expect.len(), "frame length");
        // Compare everything except the checksum first for a readable diff...
        assert_eq!(&frame[..8], &expect[..8], "prefix");
        assert_eq!(&frame[16..], &expect[16..], "body");
        // ...then the checksum itself against the documented constant.
        assert_eq!(
            read_u64(&frame[8..16]),
            body_checksum(2, 1, b"ring"),
            "self-consistency"
        );
        assert_eq!(&frame[8..16], &expect[8..16], "documented checksum");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let pool = pool();
        let frame = encode_pooled(&pool, 0, 0, b"").unwrap();
        assert_eq!(frame.len(), HEADER_LEN);
        let mut r = FrameReader::new();
        r.extend(&frame);
        let got = r.next_frame(&pool).unwrap().unwrap();
        assert!(got.payload.is_empty());
    }

    #[test]
    fn reader_handles_arbitrary_chunking() {
        let pool = pool();
        let mut wire = Vec::new();
        for i in 0..5u32 {
            let payload = vec![i as u8; (i as usize) * 37];
            wire.extend_from_slice(&encode_pooled(&pool, i, i * 2, &payload).unwrap());
        }
        // Feed in chunks of every fixed size; all frames must reassemble.
        for chunk in 1..17 {
            let mut r = FrameReader::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                r.extend(piece);
                while let Some(f) = r.next_frame(&pool).unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got.len(), 5, "chunk size {chunk}");
            for (i, f) in got.iter().enumerate() {
                assert_eq!(f.from, i as u32);
                assert_eq!(f.channel, i as u32 * 2);
                assert_eq!(f.payload.len(), i * 37);
            }
            assert!(!r.has_partial());
        }
    }

    #[test]
    fn truncation_is_incomplete_never_error() {
        let pool = pool();
        let frame = encode_pooled(&pool, 1, 2, b"truncate me").unwrap();
        for cut in 0..frame.len() {
            let mut r = FrameReader::new();
            r.extend(&frame[..cut]);
            assert!(
                r.next_frame(&pool).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
            if cut > 0 {
                assert!(r.has_partial());
            }
        }
    }

    #[test]
    fn corruption_is_typed_codec_error() {
        let pool = pool();
        let frame = encode_pooled(&pool, 9, 4, b"some payload here").unwrap();
        for i in 0..frame.len() {
            let mut bytes = frame.to_vec();
            bytes[i] ^= 0x01;
            let mut r = FrameReader::new();
            r.extend(&bytes);
            match r.next_frame(&pool) {
                Err(NetError::Codec(_)) => {}
                // A flip in the len field may legitimately present as an
                // incomplete longer frame — but never as a *successful*
                // decode of different bytes.
                Ok(None) if (4..8).contains(&i) => {}
                other => panic!("flip at byte {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_len_rejected_without_buffering() {
        let pool = pool();
        let mut bytes = encode_pooled(&pool, 0, 0, b"x").unwrap().to_vec();
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = FrameReader::new();
        r.extend(&bytes);
        assert!(matches!(r.next_frame(&pool), Err(NetError::Codec(_))));
    }

    #[test]
    fn blocking_helpers_roundtrip_over_a_cursor() {
        let pool = pool();
        let mut wire = Vec::new();
        write_frame(&mut wire, &pool, 5, CONTROL_CHANNEL, b"hello").unwrap();
        write_frame(&mut wire, &pool, 6, 0, b"again").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let a = read_frame(&mut cursor, &pool).unwrap();
        assert_eq!((a.from, a.channel), (5, CONTROL_CHANNEL));
        assert_eq!(&a.payload[..], b"hello");
        let b = read_frame(&mut cursor, &pool).unwrap();
        assert_eq!(&b.payload[..], b"again");
        // EOF at a frame boundary is still Disconnected for a reader that
        // expected another frame.
        assert_eq!(read_frame(&mut cursor, &pool).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn torn_read_is_disconnected() {
        let pool = pool();
        let mut wire = Vec::new();
        write_frame(&mut wire, &pool, 1, 0, b"torn").unwrap();
        wire.truncate(wire.len() - 2); // peer died mid-frame
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, &pool).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn steady_state_encode_decode_is_allocation_free() {
        let pool = pool();
        // Warm the classes once.
        let payload = vec![0xABu8; 1000];
        let f = encode_pooled(&pool, 0, 0, &payload).unwrap();
        let mut r = FrameReader::new();
        r.extend(&f);
        let d = r.next_frame(&pool).unwrap().unwrap();
        pool.recycle_frame(d.payload);
        pool.recycle_frame(f);
        let before = pool.stats();
        for _ in 0..100 {
            let f = encode_pooled(&pool, 0, 0, &payload).unwrap();
            r.extend(&f);
            let d = r.next_frame(&pool).unwrap().unwrap();
            pool.recycle_frame(d.payload);
            pool.recycle_frame(f);
        }
        let after = pool.stats();
        assert_eq!(after.misses, before.misses, "steady state must not allocate frames");
        assert_eq!(after.hits - before.hits, 200);
    }
}
