//! Property tests on the network-profile algebra: scaling must preserve
//! byte·time products, and derived quantities must stay physical.

use sparker_testkit::{check, tk_assert, Config};

use sparker_net::profile::{NetProfile, TransportKind};

fn cfg() -> Config {
    Config::with_cases(128)
}

#[test]
fn scaling_preserves_byte_time_products() {
    check(&cfg(), |src| {
        let factor = src.f64_in(0.01..100.0);
        let bytes = src.usize_in(1..100_000_000);
        for p in [NetProfile::bic(), NetProfile::aws()] {
            let s = p.scaled(factor);
            // Equivalent message in the scaled domain.
            let scaled_bytes = (bytes as f64 / factor).max(1.0) as usize;
            let t_full = p.inter_node.serialization_delay(bytes).as_secs_f64();
            let t_scaled = s.inter_node.serialization_delay(scaled_bytes).as_secs_f64();
            // Integer truncation of scaled_bytes bounds the error.
            let tolerance = (1.0 / (s.inter_node.bandwidth)).max(1e-12) + t_full * 1e-6;
            tk_assert!(
                (t_full - t_scaled).abs() <= tolerance + 1e-9,
                "factor {factor}, bytes {bytes}: {t_full} vs {t_scaled}"
            );
            // Latency scales linearly (Duration quantizes to nanoseconds,
            // so allow 1 ns of absolute slack).
            let want = p.inter_node.latency.as_secs_f64() * factor;
            let got = s.inter_node.latency.as_secs_f64();
            tk_assert!((got - want).abs() <= 1e-9 + want * 1e-9, "{got} vs {want}");
        }
        Ok(())
    });
}

#[test]
fn parallel_bandwidth_is_monotone_and_capped() {
    check(&cfg(), |src| {
        let channels = src.usize_in(1..32);
        for p in [NetProfile::bic(), NetProfile::aws()] {
            for kind in [TransportKind::ScalableComm, TransportKind::BlockManager] {
                let bw = p.parallel_bandwidth(kind, channels);
                let bw_next = p.parallel_bandwidth(kind, channels + 1);
                tk_assert!(bw_next >= bw, "more channels can't hurt");
                tk_assert!(bw <= p.nic_bandwidth, "NIC caps the sum");
                tk_assert!(bw > 0.0, "bandwidth must stay positive");
            }
        }
        Ok(())
    });
}

#[test]
fn latency_ordering_is_stable_under_scaling() {
    check(&cfg(), |src| {
        let factor = src.f64_in(0.01..100.0);
        let p = NetProfile::bic().scaled(factor);
        let mpi = p.one_way_latency(TransportKind::MpiRef);
        let sc = p.one_way_latency(TransportKind::ScalableComm);
        let bm = p.one_way_latency(TransportKind::BlockManager);
        tk_assert!(mpi < sc, "MPI < SC at any scale");
        tk_assert!(sc < bm, "SC < BM at any scale");
        Ok(())
    });
}

#[test]
fn transfer_time_is_monotone_in_bytes() {
    check(&cfg(), |src| {
        let a = src.usize_in(0..1_000_000);
        let b = src.usize_in(0..1_000_000);
        let p = NetProfile::bic();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        tk_assert!(p.inter_node.transfer_time(lo) <= p.inter_node.transfer_time(hi));
        tk_assert!(p.intra_node.transfer_time(lo) <= p.intra_node.transfer_time(hi));
        Ok(())
    });
}
