//! Property tests: the codec must never panic on hostile input.
//!
//! Frames arrive from other executors; a malformed frame (truncation, bad
//! tags, absurd length prefixes) must surface as `NetError::Codec`, never a
//! panic or an attempted huge allocation.

use bytes::Bytes;
use proptest::prelude::*;

use sparker_net::codec::{Decoder, F64Array, Payload};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let frame = Bytes::from(data);
        // Every decoder entry point: Err is fine, panic is not.
        let _ = u32::from_frame(frame.clone());
        let _ = u64::from_frame(frame.clone());
        let _ = f64::from_frame(frame.clone());
        let _ = String::from_frame(frame.clone());
        let _ = F64Array::from_frame(frame.clone());
        let _ = Option::<u64>::from_frame(frame.clone());
        let _ = Vec::<u64>::from_frame(frame.clone());
        let _ = Vec::<(u32, f64)>::from_frame(frame.clone());
        let _ = <(String, Vec<f64>)>::from_frame(frame.clone());
        let mut dec = Decoder::new(frame);
        let _ = dec.get_bytes();
        let _ = dec.get_u32_vec();
        let _ = dec.get_u64_vec();
        let _ = dec.get_f64_vec();
    }

    #[test]
    fn truncated_valid_frames_error_cleanly(
        values in proptest::collection::vec(any::<f64>(), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let full = F64Array(values).to_frame();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut < full.len() {
            let truncated = full.slice(0..cut);
            prop_assert!(F64Array::from_frame(truncated).is_err());
        }
    }

    #[test]
    fn frames_with_trailing_garbage_are_rejected(
        value in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut bytes = value.to_frame().to_vec();
        bytes.extend(garbage);
        prop_assert!(u64::from_frame(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn length_prefix_larger_than_frame_is_rejected(len in 9u64..u64::MAX) {
        // A frame claiming `len` elements but containing none.
        let mut enc = sparker_net::codec::Encoder::new();
        enc.put_u64(len);
        let frame = enc.finish();
        prop_assert!(F64Array::from_frame(frame.clone()).is_err());
        prop_assert!(Vec::<u64>::from_frame(frame).is_err());
    }
}
