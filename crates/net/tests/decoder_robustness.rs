//! Property tests: the codec must never panic on hostile input.
//!
//! Frames arrive from other executors; a malformed frame (truncation, bad
//! tags, absurd length prefixes) must surface as `NetError::Codec`, never a
//! panic or an attempted huge allocation.

use sparker_testkit::{check, tk_assert, Config};

use sparker_net::codec::{Decoder, F64Array, Payload};
use sparker_net::ByteBuf;

fn cfg() -> Config {
    Config::with_cases(256)
}

#[test]
fn arbitrary_bytes_never_panic_any_decoder() {
    check(&cfg(), |src| {
        let data = src.vec_of(0..256, |s| s.u8_any());
        let frame = ByteBuf::from(data);
        // Every decoder entry point: Err is fine, panic is not.
        let _ = u32::from_frame(frame.clone());
        let _ = u64::from_frame(frame.clone());
        let _ = f64::from_frame(frame.clone());
        let _ = String::from_frame(frame.clone());
        let _ = F64Array::from_frame(frame.clone());
        let _ = Option::<u64>::from_frame(frame.clone());
        let _ = Vec::<u64>::from_frame(frame.clone());
        let _ = Vec::<(u32, f64)>::from_frame(frame.clone());
        let _ = <(String, Vec<f64>)>::from_frame(frame.clone());
        let mut dec = Decoder::new(frame);
        let _ = dec.get_bytes();
        let _ = dec.get_u32_vec();
        let _ = dec.get_u64_vec();
        let _ = dec.get_f64_vec();
        Ok(())
    });
}

#[test]
fn truncated_valid_frames_error_cleanly() {
    check(&cfg(), |src| {
        let values = src.vec_of(1..50, |s| s.f64_any());
        let cut_fraction = src.f64_in(0.0..1.0);
        let full = F64Array(values).to_frame();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut < full.len() {
            let truncated = full.slice(0..cut);
            tk_assert!(
                F64Array::from_frame(truncated).is_err(),
                "truncation to {cut}/{} bytes decoded successfully",
                full.len()
            );
        }
        Ok(())
    });
}

#[test]
fn frames_with_trailing_garbage_are_rejected() {
    check(&cfg(), |src| {
        let value = src.u64_any();
        let garbage = src.vec_of(1..32, |s| s.u8_any());
        let mut bytes = value.to_frame().to_vec();
        bytes.extend(garbage);
        tk_assert!(u64::from_frame(ByteBuf::from(bytes)).is_err());
        Ok(())
    });
}

#[test]
fn length_prefix_larger_than_frame_is_rejected() {
    check(&cfg(), |src| {
        let len = src.u64_in(9..u64::MAX);
        // A frame claiming `len` elements but containing none.
        let mut enc = sparker_net::codec::Encoder::new();
        enc.put_u64(len);
        let frame = enc.finish();
        tk_assert!(F64Array::from_frame(frame.clone()).is_err(), "len {len} accepted");
        tk_assert!(Vec::<u64>::from_frame(frame).is_err(), "len {len} accepted");
        Ok(())
    });
}
