//! Property tests: the codec must never panic on hostile input.
//!
//! Frames arrive from other executors; a malformed frame (truncation, bad
//! tags, absurd length prefixes) must surface as `NetError::Codec`, never a
//! panic or an attempted huge allocation.

use sparker_testkit::{check, tk_assert, Config};

use sparker_net::codec::{Decoder, F64Array, Payload};
use sparker_net::{epoch, ByteBuf, NetError};

fn cfg() -> Config {
    Config::with_cases(256)
}

#[test]
fn arbitrary_bytes_never_panic_any_decoder() {
    check(&cfg(), |src| {
        let data = src.vec_of(0..256, |s| s.u8_any());
        let frame = ByteBuf::from(data);
        // Every decoder entry point: Err is fine, panic is not.
        let _ = u32::from_frame(frame.clone());
        let _ = u64::from_frame(frame.clone());
        let _ = f64::from_frame(frame.clone());
        let _ = String::from_frame(frame.clone());
        let _ = F64Array::from_frame(frame.clone());
        let _ = Option::<u64>::from_frame(frame.clone());
        let _ = Vec::<u64>::from_frame(frame.clone());
        let _ = Vec::<(u32, f64)>::from_frame(frame.clone());
        let _ = <(String, Vec<f64>)>::from_frame(frame.clone());
        let mut dec = Decoder::new(frame);
        let _ = dec.get_bytes();
        let _ = dec.get_u32_vec();
        let _ = dec.get_u64_vec();
        let _ = dec.get_f64_vec();
        Ok(())
    });
}

#[test]
fn truncated_valid_frames_error_cleanly() {
    check(&cfg(), |src| {
        let values = src.vec_of(1..50, |s| s.f64_any());
        let cut_fraction = src.f64_in(0.0..1.0);
        let full = F64Array(values).to_frame();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        if cut < full.len() {
            let truncated = full.slice(0..cut);
            tk_assert!(
                F64Array::from_frame(truncated).is_err(),
                "truncation to {cut}/{} bytes decoded successfully",
                full.len()
            );
        }
        Ok(())
    });
}

#[test]
fn frames_with_trailing_garbage_are_rejected() {
    check(&cfg(), |src| {
        let value = src.u64_any();
        let garbage = src.vec_of(1..32, |s| s.u8_any());
        let mut bytes = value.to_frame().to_vec();
        bytes.extend(garbage);
        tk_assert!(u64::from_frame(ByteBuf::from(bytes)).is_err());
        Ok(())
    });
}

/// Every mutation of an epoch-wrapped collective frame — a flipped byte, a
/// truncation, appended garbage, or any combination — must be caught by the
/// header checksum and surface as `NetError::Codec`. A mutation that slips
/// through would hand a ring stage a stale or corrupted segment.
#[test]
fn mutated_epoch_frames_always_fail_as_codec_errors() {
    check(&cfg(), |src| {
        let op = src.u64_any();
        let attempt = src.u32_any();
        let payload = ByteBuf::from(src.vec_of(0..64, |s| s.u8_any()));
        let wrapped = epoch::wrap(op, attempt, &payload);

        // Sanity: the unmutated frame round-trips.
        let (o, a, p) = epoch::unwrap(wrapped.clone()).expect("clean frame unwraps");
        tk_assert!(o == op && a == attempt && p.to_vec() == payload.to_vec());

        let mut bytes = wrapped.to_vec();
        let mutations = src.usize_in(1..4);
        for _ in 0..mutations {
            match src.usize_in(0..3) {
                // Flip one to eight bits of a random byte (never a no-op).
                0 if !bytes.is_empty() => {
                    let i = src.usize_in(0..bytes.len());
                    let mask = src.u8_any() | 1;
                    bytes[i] ^= mask;
                }
                // Truncate to a strict prefix.
                1 if !bytes.is_empty() => bytes.truncate(src.usize_in(0..bytes.len())),
                // Append trailing garbage (and the fallback once a previous
                // truncation emptied the frame).
                _ => bytes.extend(src.vec_of(1..16, |s| s.u8_any())),
            }
        }
        if bytes == wrapped.to_vec() {
            return Ok(()); // two identical flips cancelled out: nothing to test
        }
        match epoch::unwrap(ByteBuf::from(bytes)) {
            Err(NetError::Codec(_)) => Ok(()),
            Err(e) => Err(sparker_testkit::PropError::new(format!(
                "mutation surfaced as {e} instead of Codec"
            ))),
            Ok(_) => {
                Err(sparker_testkit::PropError::new("mutated epoch frame unwrapped successfully"))
            }
        }
    });
}

#[test]
fn length_prefix_larger_than_frame_is_rejected() {
    check(&cfg(), |src| {
        let len = src.u64_in(9..u64::MAX);
        // A frame claiming `len` elements but containing none.
        let mut enc = sparker_net::codec::Encoder::new();
        enc.put_u64(len);
        let frame = enc.finish();
        tk_assert!(F64Array::from_frame(frame.clone()).is_err(), "len {len} accepted");
        tk_assert!(Vec::<u64>::from_frame(frame).is_err(), "len {len} accepted");
        Ok(())
    });
}
