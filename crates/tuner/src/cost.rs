//! Alpha-beta cost model per link class.
//!
//! The classic Hockney model: sending `b` bytes over a link costs
//! `alpha + b·beta` seconds. Sparker's aggregation wall-clock is dominated
//! by exactly two link classes — intra-node (shared memory / loopback) and
//! inter-node (the NIC) — plus the per-byte merge cost, so five scalars
//! predict every algorithm in the family well enough to *rank* them, which
//! is all a selector needs. The scalars are either defaults, derived from
//! a [`sparker_net::NetProfile`], or fitted offline from obs-recorded step
//! spans (see [`crate::calibrate`]).

use sparker_net::profile::NetProfile;

/// The algorithm menu the selector ranks. One entry per reduction path the
/// engine can actually run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Flat unpipelined ring reduce-scatter over all executors.
    FlatRing,
    /// Flat ring with `C` pipeline chunks per segment, `C in 2..=8`.
    ChunkedRing(u8),
    /// Recursive halving (Rabenseifner) reduce-scatter.
    Halving,
    /// Binomial tree over whole aggregators (the non-splitting baseline,
    /// and the engine's degradation target).
    Tree,
    /// Two-level: intra-node fold to node leaders, ring over leaders.
    Hierarchical,
}

impl Algo {
    /// Stable metric/label name (chunk count elided — it is a parameter of
    /// the ring, not a different algorithm).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::FlatRing => "ring",
            Algo::ChunkedRing(_) => "chunked_ring",
            Algo::Halving => "halving",
            Algo::Tree => "tree",
            Algo::Hierarchical => "hier",
        }
    }

    /// The full candidate set, in canonical (tie-break) order.
    pub fn candidates() -> Vec<Algo> {
        let mut v = vec![Algo::FlatRing];
        v.extend((2..=8).map(Algo::ChunkedRing));
        v.push(Algo::Halving);
        v.push(Algo::Tree);
        v.push(Algo::Hierarchical);
        v
    }

    /// Pipeline chunk count this choice implies.
    pub fn chunks(&self) -> usize {
        match self {
            Algo::ChunkedRing(c) => *c as usize,
            _ => 1,
        }
    }
}

/// One link class: `alpha + bytes · beta` seconds per transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Fixed per-transfer cost (latency + framing), seconds.
    pub alpha_s: f64,
    /// Inverse bandwidth, seconds per byte.
    pub beta_s_per_byte: f64,
}

impl LinkParams {
    pub fn transfer_secs(&self, bytes: f64) -> f64 {
        self.alpha_s + bytes * self.beta_s_per_byte
    }
}

/// The shape of one aggregation job, as far as the cost model cares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobShape {
    /// Dense wire size of one aggregator (8 bytes per f64 element).
    pub bytes: u64,
    /// Non-zero fraction in permille; 1000 = fully dense.
    pub density_permille: u32,
    /// Ring width `N`.
    pub executors: usize,
    /// Physical nodes `L` the executors spread over.
    pub nodes: usize,
    /// PDR channel parallelism `P`.
    pub parallelism: usize,
}

impl JobShape {
    /// Dense shape helper.
    pub fn dense(bytes: u64, executors: usize, nodes: usize, parallelism: usize) -> Self {
        Self { bytes, density_permille: 1000, executors, nodes, parallelism }
    }
}

/// Per-chunk framing overhead on the ring step alpha: each extra pipeline
/// chunk adds another frame's fixed cost, partially hidden by the overlap.
const CHUNK_ALPHA_OVERHEAD: f64 = 0.1;
/// A sparse coordinate costs an index + a value on the wire (~2x the dense
/// per-element bytes), so sparse only pays below ~50% density.
const SPARSE_WIRE_FACTOR: f64 = 2.0;

/// The calibrated model: two link classes + merge throughput + the
/// selector's tolerance margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub intra: LinkParams,
    pub inter: LinkParams,
    /// Per-byte cost of merging one incoming segment into an accumulator.
    pub merge_s_per_byte: f64,
    /// Selector tolerance: predicted-best may trail true-best by at most
    /// this much (permille) before we call it a misprediction.
    pub margin_permille: u32,
}

impl CostModel {
    /// Uncalibrated defaults: 10 GbE-class NIC, shared-memory intra links,
    /// ~8 GB/s merge. Good enough to rank algorithms before any trace
    /// exists; calibration replaces them with fitted values.
    pub fn default_model() -> Self {
        Self {
            intra: LinkParams { alpha_s: 5e-6, beta_s_per_byte: 1.0 / 10e9 },
            inter: LinkParams { alpha_s: 120e-6, beta_s_per_byte: 1.0 / 1.17e9 },
            merge_s_per_byte: 1.0 / 8e9,
            margin_permille: 150,
        }
    }

    /// Derives the model from a shaped [`NetProfile`] (the DES and the
    /// in-process mesh use the same profiles, so this is the exact model
    /// for simulated ground truth).
    pub fn from_profile(profile: &NetProfile, merge_bandwidth: f64, margin_permille: u32) -> Self {
        Self {
            intra: LinkParams {
                alpha_s: profile.intra_node.latency.as_secs_f64(),
                beta_s_per_byte: 1.0 / profile.intra_node.bandwidth,
            },
            inter: LinkParams {
                alpha_s: profile.inter_node.latency.as_secs_f64(),
                beta_s_per_byte: 1.0 / profile.inter_node.bandwidth,
            },
            merge_s_per_byte: 1.0 / merge_bandwidth,
            margin_permille,
        }
    }

    /// Wire bytes after the density-adaptive representation choice: sparse
    /// coordinates below the break-even density, dense above.
    pub fn wire_bytes(&self, shape: &JobShape) -> f64 {
        let dense = shape.bytes as f64;
        let sparse = dense * (shape.density_permille as f64 / 1000.0) * SPARSE_WIRE_FACTOR;
        sparse.min(dense)
    }

    /// Whether the sparse representation is the cheaper one for `shape`.
    pub fn prefers_sparse(&self, shape: &JobShape) -> bool {
        (shape.density_permille as f64 / 1000.0) * SPARSE_WIRE_FACTOR < 1.0
    }

    /// Predicted wall-clock seconds for running `algo` on `shape`
    /// (reduce-scatter phase; the gather-to-driver tail is common to every
    /// algorithm and cancels out of the ranking).
    ///
    /// Strictly monotonic in `bytes` for every algorithm: all terms are
    /// `alpha`-affine plus positive per-byte slopes.
    pub fn predict(&self, algo: Algo, shape: &JobShape) -> f64 {
        let n = shape.executors.max(1) as f64;
        let l = (shape.nodes.max(1) as f64).min(n);
        let m = (n / l).ceil(); // executors per node = concurrent NIC flows
        let p = shape.parallelism.max(1) as f64;
        let w = self.wire_bytes(shape);
        // Striped segment merges run P-wide across channels.
        let mgp = self.merge_s_per_byte / p;
        // With topology-aware ordering every ring step still bottlenecks on
        // its slowest concurrent link: inter-node whenever L > 1 — but only
        // ONE flow per NIC (the paper's Figure 14 argument).
        let link = if l > 1.0 { self.inter } else { self.intra };
        match algo {
            Algo::FlatRing => {
                (n - 1.0) * link.alpha_s + frac(n) * w * (link.beta_s_per_byte + mgp)
            }
            Algo::ChunkedRing(c) => {
                let c = f64::from(c).max(1.0);
                let (fast, slow) = if link.beta_s_per_byte > mgp {
                    (mgp, link.beta_s_per_byte)
                } else {
                    (link.beta_s_per_byte, mgp)
                };
                // Pipelining overlaps the cheaper of wire/merge behind the
                // dearer one, at the price of C frames' worth of alpha.
                (n - 1.0) * link.alpha_s * (1.0 + CHUNK_ALPHA_OVERHEAD * (c - 1.0))
                    + frac(n) * w * (slow + fast / c)
            }
            Algo::Halving => {
                let rounds = n.log2().ceil();
                if l <= 1.0 {
                    rounds * self.intra.alpha_s
                        + frac(n) * w * (self.intra.beta_s_per_byte + mgp)
                } else {
                    // The long-distance rounds (the first ~log2 L) cross the
                    // NIC with all m of a node's executors sending at once —
                    // the contention the topology-aware ring avoids. The
                    // remaining rounds stay on-node.
                    rounds * self.inter.alpha_s
                        + w * (frac(l) * m * self.inter.beta_s_per_byte
                            + (frac(n) - frac(l)) * self.intra.beta_s_per_byte
                            + frac(n) * mgp)
                }
            }
            Algo::Tree => {
                // Whole aggregators on every level, merged whole (no segment
                // striping) — the anti-scaling baseline of Figures 1-4.
                let rounds = n.log2().ceil();
                let contention = (m / 2.0).max(1.0);
                rounds
                    * (link.alpha_s
                        + w * (link.beta_s_per_byte * contention + self.merge_s_per_byte))
            }
            Algo::Hierarchical => {
                if l >= n {
                    // Every executor its own node: identical to the flat ring.
                    return self.predict(Algo::FlatRing, shape);
                }
                // Fold: members stream concurrently over shared memory; the
                // leader's P-wide striped merges are the critical path.
                let fold = (m - 1.0) * self.intra.alpha_s
                    + w * self.intra.beta_s_per_byte
                    + (m - 1.0) * w * mgp;
                // Then the flat ring recurrence, but over L leaders only.
                let ring = if l > 1.0 {
                    (l - 1.0) * self.inter.alpha_s
                        + frac(l) * w * (self.inter.beta_s_per_byte + mgp)
                } else {
                    0.0
                };
                fold + ring
            }
        }
    }
}

/// The ring's bandwidth term: `(k-1)/k` of one aggregator crosses each rank.
fn frac(k: f64) -> f64 {
    if k <= 1.0 {
        0.0
    } else {
        (k - 1.0) / k
    }
}

// ---------------------------------------------------------------------------
// Calibration text format (DESIGN.md §5j): `key=value` lines, one scalar
// per line, leading `sparker-tuner-calibration v1` magic. f64 values use
// Rust's shortest round-trip Display form.
// ---------------------------------------------------------------------------

const MAGIC: &str = "sparker-tuner-calibration v1";

impl CostModel {
    /// Serializes the model to the calibration text format.
    pub fn to_text(&self) -> String {
        format!(
            "{MAGIC}\n\
             intra.alpha_s={}\n\
             intra.beta_s_per_byte={}\n\
             inter.alpha_s={}\n\
             inter.beta_s_per_byte={}\n\
             merge_s_per_byte={}\n\
             margin_permille={}\n",
            self.intra.alpha_s,
            self.intra.beta_s_per_byte,
            self.inter.alpha_s,
            self.inter.beta_s_per_byte,
            self.merge_s_per_byte,
            self.margin_permille,
        )
    }

    /// Parses the calibration text format; every field is required.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(MAGIC) {
            return Err(format!("missing calibration magic {MAGIC:?}"));
        }
        let mut model = Self::default_model();
        let mut seen = 0u32;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed calibration line {line:?}"))?;
            let f = || value.parse::<f64>().map_err(|e| format!("bad value in {line:?}: {e}"));
            match key {
                "intra.alpha_s" => model.intra.alpha_s = f()?,
                "intra.beta_s_per_byte" => model.intra.beta_s_per_byte = f()?,
                "inter.alpha_s" => model.inter.alpha_s = f()?,
                "inter.beta_s_per_byte" => model.inter.beta_s_per_byte = f()?,
                "merge_s_per_byte" => model.merge_s_per_byte = f()?,
                "margin_permille" => {
                    model.margin_permille =
                        value.parse().map_err(|e| format!("bad value in {line:?}: {e}"))?;
                }
                _ => return Err(format!("unknown calibration key {key:?}")),
            }
            seen += 1;
        }
        if seen < 6 {
            return Err(format!("calibration text has {seen} of 6 required fields"));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(bytes: u64) -> JobShape {
        JobShape::dense(bytes, 48, 8, 4)
    }

    #[test]
    fn every_algorithm_is_monotone_in_bytes() {
        let model = CostModel::default_model();
        for algo in Algo::candidates() {
            let mut last = -1.0;
            for kib in [1u64, 4, 16, 64, 256, 1024, 4096] {
                let t = model.predict(algo, &shape(kib * 1024));
                assert!(
                    t > last,
                    "{algo:?} not monotone: {t} after {last} at {kib} KiB"
                );
                last = t;
            }
        }
    }

    #[test]
    fn tree_loses_badly_at_scale() {
        let model = CostModel::default_model();
        let s = shape(4 << 20);
        assert!(
            model.predict(Algo::Tree, &s) > 3.0 * model.predict(Algo::FlatRing, &s),
            "whole-aggregator tree must anti-scale vs the ring"
        );
    }

    #[test]
    fn hierarchical_beats_flat_multi_node_large() {
        let model = CostModel::default_model();
        // 120 executors over 10 nodes (paper's AWS shape), 4 MiB dense.
        let s = JobShape::dense(4 << 20, 120, 10, 4);
        assert!(model.predict(Algo::Hierarchical, &s) < model.predict(Algo::FlatRing, &s));
    }

    #[test]
    fn hierarchical_degenerates_to_flat_ring() {
        let model = CostModel::default_model();
        let s = JobShape::dense(1 << 20, 8, 8, 2);
        assert_eq!(model.predict(Algo::Hierarchical, &s), model.predict(Algo::FlatRing, &s));
    }

    #[test]
    fn sparse_wire_bytes_cap_at_dense() {
        let model = CostModel::default_model();
        let mut s = shape(1 << 20);
        s.density_permille = 10; // 1% dense -> ~2% of dense wire
        assert!(model.wire_bytes(&s) < 0.03 * (1 << 20) as f64);
        assert!(model.prefers_sparse(&s));
        s.density_permille = 900; // 90%: sparse would cost 1.8x dense
        assert_eq!(model.wire_bytes(&s), (1 << 20) as f64);
        assert!(!model.prefers_sparse(&s));
    }

    #[test]
    fn text_round_trip_is_exact() {
        let mut model = CostModel::default_model();
        model.intra.alpha_s = 3.074659e-6;
        model.merge_s_per_byte = 1.0 / 7.7e9;
        let parsed = CostModel::from_text(&model.to_text()).unwrap();
        assert_eq!(parsed, model);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(CostModel::from_text("not a calibration").is_err());
        assert!(CostModel::from_text(MAGIC).is_err(), "missing fields");
        assert!(
            CostModel::from_text(&format!("{MAGIC}\nintra.alpha_s=xyz")).is_err(),
            "bad float"
        );
        assert!(
            CostModel::from_text(&format!("{MAGIC}\nwhat=1")).is_err(),
            "unknown key"
        );
    }
}
