//! The algorithm selector: rank the candidate menu under the cost model.
//!
//! Deterministic by construction — candidates are scanned in canonical
//! order ([`Algo::candidates`]) with a strict `<` comparison, so for a
//! fixed calibration the same shape always yields the same decision. Every
//! decision bumps a `tuner.selected.{algo}` counter, and feeding the
//! measured wall-clock back via [`Selector::observe`] publishes the
//! `tuner.predict_vs_actual_permille` gauge, making mispredictions visible
//! in exported traces next to the spans they mispredicted.

use crate::cost::{Algo, CostModel, JobShape};

/// What the selector decided for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    pub algo: Algo,
    /// Whether the density-adaptive sparse representation is predicted to
    /// cut wire bytes for this shape.
    pub sparse: bool,
    /// The model's predicted reduce-scatter seconds for `algo`.
    pub predicted_secs: f64,
}

/// A calibrated, deterministic algorithm selector.
#[derive(Debug, Clone)]
pub struct Selector {
    model: CostModel,
}

impl Selector {
    pub fn new(model: CostModel) -> Self {
        Self { model }
    }

    /// Selector over the uncalibrated default model.
    pub fn default_selector() -> Self {
        Self::new(CostModel::default_model())
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Predicted seconds for every candidate, in canonical order (the
    /// decision-table view; used by benches and the DES ground truth).
    pub fn rank(&self, shape: &JobShape) -> Vec<(Algo, f64)> {
        Algo::candidates()
            .into_iter()
            .map(|a| (a, self.model.predict(a, shape)))
            .collect()
    }

    /// Picks the predicted-fastest algorithm for `shape` and records the
    /// decision in the metrics registry.
    pub fn select(&self, shape: &JobShape) -> Decision {
        let mut best = (Algo::FlatRing, f64::INFINITY);
        for (algo, secs) in self.rank(shape) {
            if secs < best.1 {
                best = (algo, secs);
            }
        }
        let (algo, predicted_secs) = best;
        selected_counter(algo).inc();
        Decision { algo, sparse: self.model.prefers_sparse(shape), predicted_secs }
    }

    /// Publishes predicted/actual (permille) for a completed job. 1000
    /// means the model was exact; large deviations flag a stale
    /// calibration. Ignored for non-positive actuals.
    pub fn observe(&self, decision: &Decision, actual_secs: f64) {
        if actual_secs > 0.0 {
            let permille = (decision.predicted_secs / actual_secs * 1000.0).round();
            sparker_obs::metrics::gauge("tuner.predict_vs_actual_permille")
                .set(permille.clamp(0.0, i64::MAX as f64) as i64);
        }
    }
}

fn selected_counter(algo: Algo) -> std::sync::Arc<sparker_obs::metrics::Counter> {
    match algo {
        Algo::FlatRing => sparker_obs::metrics::counter("tuner.selected.ring"),
        Algo::ChunkedRing(_) => sparker_obs::metrics::counter("tuner.selected.chunked_ring"),
        Algo::Halving => sparker_obs::metrics::counter("tuner.selected.halving"),
        Algo::Tree => sparker_obs::metrics::counter("tuner.selected.tree"),
        Algo::Hierarchical => sparker_obs::metrics::counter("tuner.selected.hier"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_deterministic_for_a_fixed_calibration() {
        let shapes = [
            JobShape::dense(1 << 10, 8, 2, 2),
            JobShape::dense(1 << 20, 48, 8, 4),
            JobShape::dense(4 << 20, 120, 10, 4),
            JobShape { density_permille: 5, ..JobShape::dense(1 << 20, 24, 4, 2) },
        ];
        for shape in &shapes {
            let d1 = Selector::default_selector().select(shape);
            for _ in 0..3 {
                let d2 = Selector::default_selector().select(shape);
                assert_eq!(d1, d2, "same calibration, same shape, same decision");
            }
        }
    }

    #[test]
    fn selected_is_the_argmin_of_rank() {
        let sel = Selector::default_selector();
        let shape = JobShape::dense(1 << 20, 48, 8, 4);
        let d = sel.select(&shape);
        let best = sel
            .rank(&shape)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(d.algo, best.0);
        assert_eq!(d.predicted_secs, best.1);
    }

    #[test]
    fn decisions_are_recorded_as_counters() {
        let sel = Selector::default_selector();
        let shape = JobShape::dense(4 << 20, 120, 10, 4);
        let d = sel.select(&shape);
        let snap = sparker_obs::metrics::snapshot();
        let name = format!("tuner.selected.{}", d.algo.name());
        assert!(
            snap.iter().any(|m| m.name == name),
            "counter {name} missing from {snap:?}"
        );
        sel.observe(&d, d.predicted_secs); // exact prediction -> 1000
        let snap = sparker_obs::metrics::snapshot();
        assert!(snap.iter().any(|m| m.name == "tuner.predict_vs_actual_permille"));
    }

    #[test]
    fn big_multi_node_dense_prefers_hierarchical() {
        let sel = Selector::default_selector();
        let d = sel.select(&JobShape::dense(4 << 20, 120, 10, 4));
        assert_eq!(d.algo, Algo::Hierarchical);
        assert!(!d.sparse);
    }

    #[test]
    fn tiny_jobs_avoid_per_chunk_overhead() {
        let sel = Selector::default_selector();
        let d = sel.select(&JobShape::dense(1 << 10, 8, 2, 2));
        assert_eq!(d.algo.chunks(), 1, "1 KiB cannot pay 8 chunk alphas: {d:?}");
    }
}
