//! Offline calibration: fit alpha-beta link parameters from obs step spans.
//!
//! Every collective step emits a `Layer::Step` span (`ring.step`,
//! `allgather.step`, `hier.fold`, `hier.bcast`) carrying `rank`, `peer`,
//! and byte counts — the `collective.step` family. Given a run's span
//! snapshot and a way to classify each (rank, peer) pair as intra- or
//! inter-node, this module least-squares-fits `time = alpha + beta·bytes`
//! per link class. Calibration is a *pass over recorded data*: it never
//! touches the network, so it can run after any traced job, and the fitted
//! [`CostModel`] is then serialized with [`CostModel::to_text`].

use sparker_net::topology::LinkClass;
use sparker_obs::{Layer, SpanRecord};

use crate::cost::{CostModel, LinkParams};

/// Step-span names that count as the `collective.step` family.
const STEP_NAMES: [&str; 4] = ["ring.step", "allgather.step", "hier.fold", "hier.bcast"];

/// One fitted run: parameters per class plus how much data backed them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    pub intra: LinkParams,
    pub inter: LinkParams,
    pub intra_samples: usize,
    pub inter_samples: usize,
}

impl Calibration {
    /// Folds this fit into `base`, keeping `base`'s merge cost and margin.
    /// A class with no samples keeps `base`'s parameters (you cannot fit a
    /// link class the traced run never exercised).
    pub fn apply(&self, base: &CostModel) -> CostModel {
        let mut model = *base;
        if self.intra_samples > 0 {
            model.intra = self.intra;
        }
        if self.inter_samples > 0 {
            model.inter = self.inter;
        }
        model
    }
}

/// Fits link parameters from `spans`. `link_of(rank, peer)` classifies each
/// step's link (ranks are ring ranks, as recorded in the span args);
/// return `None` for pairs that should be skipped (e.g. unknown members).
pub fn calibrate_from_spans<F>(spans: &[SpanRecord], link_of: F) -> Calibration
where
    F: Fn(u64, u64) -> Option<LinkClass>,
{
    let mut intra: Vec<(f64, f64)> = Vec::new();
    let mut inter: Vec<(f64, f64)> = Vec::new();
    for s in spans {
        if s.layer != Layer::Step || !STEP_NAMES.contains(&s.name.as_str()) || s.dur_ns == 0 {
            continue;
        }
        let (Some(rank), Some(peer)) = (s.arg("rank"), s.arg("peer")) else { continue };
        let bytes = s.arg("send_bytes").unwrap_or(0).max(s.arg("recv_bytes").unwrap_or(0));
        if bytes == 0 {
            continue;
        }
        let Some(class) = link_of(rank, peer) else { continue };
        let sample = (bytes as f64, s.dur_ns as f64 / 1e9);
        match class {
            LinkClass::IntraNode => intra.push(sample),
            LinkClass::InterNode => inter.push(sample),
        }
    }
    let defaults = CostModel::default_model();
    Calibration {
        intra: fit(&intra).unwrap_or(defaults.intra),
        inter: fit(&inter).unwrap_or(defaults.inter),
        intra_samples: intra.len(),
        inter_samples: inter.len(),
    }
}

/// Fits link parameters from raw `(bytes, seconds)` samples per class —
/// the span-free entry point used when the samples come from somewhere
/// other than a live traced run, e.g. the DES: `sparker_sim` replays
/// point-to-point transfers through its event engine and feeds the
/// simulated timings here, so the paper-parity selector is calibrated
/// from *DES traces* exactly the way the live selector is calibrated
/// from obs spans. A class with fewer than two samples falls back to the
/// default model's parameters (same rule as [`calibrate_from_spans`]).
pub fn calibrate_from_samples(intra: &[(f64, f64)], inter: &[(f64, f64)]) -> Calibration {
    let defaults = CostModel::default_model();
    Calibration {
        intra: fit(intra).unwrap_or(defaults.intra),
        inter: fit(inter).unwrap_or(defaults.inter),
        intra_samples: intra.len(),
        inter_samples: inter.len(),
    }
}

/// Ordinary least squares for `t = alpha + beta·b`, clamped to physical
/// values (alpha, beta >= 0). Returns `None` without at least two samples;
/// with no spread in `b` the slope is unidentifiable, so beta = 0 and
/// alpha = mean(t).
fn fit(samples: &[(f64, f64)]) -> Option<LinkParams> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mean_b = samples.iter().map(|(b, _)| b).sum::<f64>() / n;
    let mean_t = samples.iter().map(|(_, t)| t).sum::<f64>() / n;
    let var_b: f64 = samples.iter().map(|(b, _)| (b - mean_b).powi(2)).sum();
    if var_b == 0.0 {
        return Some(LinkParams { alpha_s: mean_t.max(0.0), beta_s_per_byte: 0.0 });
    }
    let cov: f64 = samples.iter().map(|(b, t)| (b - mean_b) * (t - mean_t)).sum();
    let beta = (cov / var_b).max(0.0);
    let alpha = (mean_t - beta * mean_b).max(0.0);
    Some(LinkParams { alpha_s: alpha, beta_s_per_byte: beta })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_span(name: &str, rank: u64, peer: u64, bytes: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id: 1,
            parent: 0,
            scope: 0,
            tid: 0,
            layer: Layer::Step,
            name: name.to_string(),
            start_ns: 0,
            dur_ns,
            args: vec![("rank", rank), ("peer", peer), ("send_bytes", bytes)],
        }
    }

    /// Synthetic spans generated from known (alpha, beta) must fit back to
    /// those parameters.
    #[test]
    fn fit_recovers_synthetic_parameters() {
        let (alpha, beta) = (50e-6, 1.0 / 2e9);
        let spans: Vec<SpanRecord> = [1024u64, 4096, 65536, 1 << 20]
            .iter()
            .map(|&b| {
                let t = alpha + b as f64 * beta;
                step_span("ring.step", 0, 1, b, (t * 1e9) as u64)
            })
            .collect();
        let cal = calibrate_from_spans(&spans, |_, _| Some(LinkClass::InterNode));
        assert_eq!(cal.inter_samples, 4);
        assert_eq!(cal.intra_samples, 0);
        assert!((cal.inter.alpha_s - alpha).abs() / alpha < 0.01, "{:?}", cal.inter);
        assert!((cal.inter.beta_s_per_byte - beta).abs() / beta < 0.01, "{:?}", cal.inter);
    }

    #[test]
    fn classes_fit_independently_and_apply_respects_empties() {
        let spans = vec![
            step_span("ring.step", 0, 1, 1000, 10_000),
            step_span("ring.step", 0, 1, 2000, 11_000),
            step_span("hier.fold", 2, 0, 1000, 1_000),
            step_span("hier.fold", 2, 0, 3000, 1_200),
        ];
        let cal = calibrate_from_spans(&spans, |_, peer| {
            Some(if peer == 0 { LinkClass::IntraNode } else { LinkClass::InterNode })
        });
        assert_eq!((cal.inter_samples, cal.intra_samples), (2, 2));
        assert!(cal.inter.alpha_s > cal.intra.alpha_s);

        // A run with no intra traffic keeps the base model's intra params.
        let inter_only: Vec<SpanRecord> =
            spans.iter().filter(|s| s.name == "ring.step").cloned().collect();
        let cal2 = calibrate_from_spans(&inter_only, |_, _| Some(LinkClass::InterNode));
        let base = CostModel::default_model();
        let applied = cal2.apply(&base);
        assert_eq!(applied.intra, base.intra);
        assert_eq!(applied.inter, cal2.inter);
    }

    #[test]
    fn non_step_spans_and_zero_bytes_are_ignored() {
        let mut s1 = step_span("ring.step", 0, 1, 1024, 5_000);
        s1.layer = Layer::Stage;
        let s2 = step_span("ring.step", 0, 1, 0, 5_000);
        let s3 = step_span("unrelated", 0, 1, 1024, 5_000);
        let cal = calibrate_from_spans(&[s1, s2, s3], |_, _| Some(LinkClass::InterNode));
        assert_eq!(cal.inter_samples, 0);
        assert_eq!(cal.inter, CostModel::default_model().inter, "defaults survive");
    }

    #[test]
    fn sample_calibration_matches_span_calibration() {
        // The same data through both entry points must fit identically.
        let (alpha, beta) = (80e-6, 1.0 / 1e9);
        let raw: Vec<(f64, f64)> = [512u64, 4096, 65536]
            .iter()
            .map(|&b| (b as f64, alpha + b as f64 * beta))
            .collect();
        let spans: Vec<SpanRecord> = raw
            .iter()
            .map(|&(b, t)| step_span("ring.step", 0, 1, b as u64, (t * 1e9) as u64))
            .collect();
        let from_spans = calibrate_from_spans(&spans, |_, _| Some(LinkClass::InterNode));
        let from_samples = calibrate_from_samples(&[], &raw);
        assert_eq!(from_samples.inter_samples, from_spans.inter_samples);
        assert!((from_samples.inter.alpha_s - from_spans.inter.alpha_s).abs() < 1e-9);
        assert!(
            (from_samples.inter.beta_s_per_byte - from_spans.inter.beta_s_per_byte).abs() < 1e-15
        );
        // Empty intra class keeps the defaults.
        assert_eq!(from_samples.intra, CostModel::default_model().intra);
    }

    #[test]
    fn constant_bytes_fit_degenerates_to_pure_alpha() {
        let spans = vec![
            step_span("ring.step", 0, 1, 4096, 20_000),
            step_span("ring.step", 0, 1, 4096, 22_000),
            step_span("ring.step", 0, 1, 4096, 24_000),
        ];
        let cal = calibrate_from_spans(&spans, |_, _| Some(LinkClass::InterNode));
        assert_eq!(cal.inter.beta_s_per_byte, 0.0);
        assert!((cal.inter.alpha_s - 22e-6).abs() < 1e-9);
    }
}
