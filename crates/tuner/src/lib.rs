//! # sparker-tuner
//!
//! Auto-tuning for Sparker's collective family: which reduction algorithm
//! should a given aggregation job run?
//!
//! The paper fixes one algorithm (the topology-aware ring) and wins 2.76×
//! over the naive ordering; but the best algorithm is a function of the
//! job — segment size, density, executor count, node topology. This crate
//! closes the loop:
//!
//! 1. [`cost`] — a two-link-class alpha-beta model (intra-node,
//!    inter-node, plus merge throughput) with closed-form predictions for
//!    `{flat ring, chunked ring C, halving, tree, hierarchical}`, and a
//!    text serialization for calibration artifacts.
//! 2. [`calibrate`] — an offline pass fitting those parameters from the
//!    `collective.step` span family (`ring.step`, `hier.fold`, …) that
//!    every collective already records through `sparker-obs`.
//! 3. [`select`] — a deterministic [`Selector`] ranking the candidate
//!    menu per job, exporting `tuner.selected.{algo}` counters and the
//!    `tuner.predict_vs_actual_permille` gauge.
//!
//! The engine consumes decisions through `SplitAggOpts::selector`
//! (`Auto | Forced`), and `crates/sim` asserts ground truth at paper scale:
//! the selector is never worse than the best static choice by more than
//! the calibrated margin. See DESIGN.md §5j for the normative spec.

pub mod calibrate;
pub mod cost;
pub mod select;

pub use calibrate::{calibrate_from_samples, calibrate_from_spans, Calibration};
pub use cost::{Algo, CostModel, JobShape, LinkParams};
pub use select::{Decision, Selector};
