//! Figure 10 — the parallel directed ring (PDR) topology.
//!
//! Renders the ring order, per-hop locality, and NIC-crossing counts for a
//! 2-parallelism communicator, with and without topology awareness.

use sparker_bench::{print_header, Table};
use sparker_net::topology::{round_robin_layout, RingOrder, RingTopology};

fn show(order: RingOrder, label: &str) {
    let execs = round_robin_layout(4, 2, 4);
    let ring = RingTopology::new(execs, order, 2);
    println!("\n{label}:");
    let mut t = Table::new(vec!["Rank", "Executor", "Host", "Next hop"]);
    for rank in 0..ring.size() {
        let e = ring.executor_at(rank);
        let hop = if ring.hop_is_intra_node(rank) { "intra-node" } else { "INTER-NODE" };
        t.row(vec![
            rank.to_string(),
            e.id.to_string(),
            e.host.clone(),
            hop.to_string(),
        ]);
    }
    t.print();
    println!(
        "inter-node hops: {} / {}; max concurrent flows per NIC: {}",
        ring.inter_node_hops(),
        ring.size(),
        ring.max_nic_flows()
    );
}

fn main() {
    print_header(
        "Figure 10",
        "Topology of a scalable communicator with 2-parallelism (PDR)",
        "Executors form a directed ring; P parallel channels per hop. Sorting by hostname\n\
         (topology-awareness) leaves one NIC crossing per node.",
    );
    show(RingOrder::TopologyAware, "Topology-aware (sort by hostname)");
    show(RingOrder::ById, "By executor id (round-robin placement -> every hop crosses nodes)");
}
