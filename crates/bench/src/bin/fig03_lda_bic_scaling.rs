//! Figure 3 — decomposed end-to-end time of LDA-N with varying core counts
//! on BIC (vanilla Spark, 40 iterations).
//!
//! Paper: from 24 to 192 cores compute drops 1152s → 342s (4.47x) while
//! reduction *rises* 111s → 187s (1.69x) — the scalability bottleneck.

use sparker_bench::{print_header, Table};
use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::by_name;

fn main() {
    print_header(
        "Figure 3",
        "Decomposed end-to-end time of LDA-N vs cores on BIC (Spark)",
        "Paper reference: compute 1152s->342s (4.47x); reduce 111s->187s (1.69x anti-scale).",
    );
    let w = by_name("LDA-N").expect("workload");
    let mut t = Table::new(vec![
        "Cores",
        "Nodes",
        "Driver (s)",
        "Non-agg (s)",
        "Agg-compute (s)",
        "Agg-reduce (s)",
        "Total (s)",
    ]);
    for nodes in [1usize, 2, 4, 8] {
        let c = SimCluster::bic().with_nodes(nodes);
        let b = simulate_training(&c, &w, Strategy::Tree, Some(40));
        t.row(vec![
            c.total_cores().to_string(),
            nodes.to_string(),
            format!("{:.0}", b.driver),
            format!("{:.0}", b.non_agg),
            format!("{:.0}", b.agg_compute),
            format!("{:.0}", b.agg_reduce),
            format!("{:.0}", b.total()),
        ]);
    }
    t.print();
    let path = t.write_csv("fig03_lda_bic_scaling").expect("csv");
    println!("\nwrote {}", path.display());
}
