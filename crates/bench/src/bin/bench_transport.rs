//! Transport ladder: in-process channels vs real TCP loopback (`BENCH_6.json`).
//!
//! Quantifies what the socket hop costs on the exact message shapes the ring
//! moves. For each payload size on a ladder from 1 KiB to 4 MiB, both
//! transports run the same two workloads between two ranks:
//!
//! * **ping-pong** — median round-trip time over single-frame exchanges,
//!   the latency a ring hop sees;
//! * **stream** — many frames in flight one way, the throughput a pipelined
//!   chunk train sees.
//!
//! The in-process side is [`MeshTransport::unshaped`] (sender-pays queues,
//! no wire); the TCP side is [`TcpTransport::pair_loopback`] — one real
//! kernel socket per direction pair, length-prefixed `SPKT` frames, the
//! background IO thread, the works (DESIGN.md §5g). Both sides draw payloads
//! from the global [`sparker_net::FramePool`] and recycle every received
//! frame, so `--smoke` can assert the PR-5 invariant survives the socket
//! path: **zero frame allocations in TCP steady state** (pool misses stay
//! flat across hundreds of roundtrips).
//!
//! JSON (no timestamps, diffable across PRs) lands in
//! `results/bench_transport.json` and the repo root `BENCH_6.json`, with the
//! paper's §4.1 communicator latencies recorded alongside for context.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sparker_bench::{print_header, Table};
use sparker_net::error::NetResult;
use sparker_net::pool;
use sparker_net::tcp::TcpTransport;
use sparker_net::topology::{ExecutorId, ExecutorInfo};
use sparker_net::transport::{MeshTransport, Transport};
use sparker_net::ByteBuf;

const CH: usize = 0;
const R0: ExecutorId = ExecutorId(0);
const R1: ExecutorId = ExecutorId(1);

/// A pooled payload of `size` bytes with a little structure in it.
fn payload(size: usize) -> ByteBuf {
    let mut v = pool::global().acquire(size);
    v.resize(size, 0);
    for (i, b) in v.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    ByteBuf::from(v)
}

/// `iters` single-frame round trips rank0→rank1→rank0; returns the median
/// RTT. The echo side bounces the received frame back untouched (the send
/// path recycles it); the origin recycles each returned frame, so in steady
/// state no frame allocates.
fn ping_pong(net: &Arc<dyn Transport>, size: usize, iters: usize) -> Duration {
    let net2 = net.clone();
    let echo = std::thread::spawn(move || {
        for _ in 0..iters {
            let m = net2.recv(R1, R0, CH).expect("echo recv");
            net2.send(R1, R0, CH, m).expect("echo send");
        }
    });
    let mut rtts = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        net.send(R0, R1, CH, payload(size)).expect("ping send");
        let back = net.recv(R0, R1, CH).expect("ping recv");
        rtts.push(t0.elapsed());
        assert_eq!(back.len(), size, "echo changed the frame length");
        pool::global().recycle_frame(back);
    }
    echo.join().expect("echo thread");
    rtts.sort();
    rtts[rtts.len() / 2]
}

/// Streams `frames` one way while the peer drains and recycles; returns
/// payload bytes per second.
fn stream(net: &Arc<dyn Transport>, size: usize, frames: usize) -> f64 {
    let net2 = net.clone();
    let drain = std::thread::spawn(move || {
        for _ in 0..frames {
            let m = net2.recv(R1, R0, CH).expect("stream recv");
            pool::global().recycle_frame(m);
        }
    });
    let t0 = Instant::now();
    for _ in 0..frames {
        net.send(R0, R1, CH, payload(size)).expect("stream send");
    }
    drain.join().expect("drain thread");
    (size * frames) as f64 / t0.elapsed().as_secs_f64()
}

/// Two-rank in-process mesh as a `dyn Transport`.
fn mesh_pair() -> Arc<dyn Transport> {
    let infos: Vec<ExecutorInfo> = (0..2)
        .map(|i| ExecutorInfo {
            id: ExecutorId(i as u32),
            host: format!("proc-{i:03}"),
            node: i,
            cores: 1,
        })
        .collect();
    MeshTransport::unshaped(&infos, 1)
}

/// TCP loopback pair glued into one `dyn Transport` view: rank 0 operations
/// go to side `a`, rank 1 operations to side `b` — each side is a full
/// transport bound to its own end of the same kernel socket.
struct TcpPair {
    a: Arc<TcpTransport>,
    b: Arc<TcpTransport>,
}

impl TcpPair {
    fn side(&self, rank: ExecutorId) -> &TcpTransport {
        if rank.0 == 0 {
            &self.a
        } else {
            &self.b
        }
    }
}

impl Transport for TcpPair {
    fn size(&self) -> usize {
        2
    }
    fn channels(&self) -> usize {
        self.a.channels()
    }
    fn send(
        &self,
        from: ExecutorId,
        to: ExecutorId,
        channel: usize,
        msg: ByteBuf,
    ) -> NetResult<()> {
        self.side(from).send(from, to, channel, msg)
    }
    fn recv(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
    ) -> NetResult<ByteBuf> {
        self.side(at).recv(at, from, channel)
    }
    fn recv_timeout(
        &self,
        at: ExecutorId,
        from: ExecutorId,
        channel: usize,
        timeout: Duration,
    ) -> NetResult<ByteBuf> {
        self.side(at).recv_timeout(at, from, channel, timeout)
    }
}

fn fmt_rtt(d: Duration) -> String {
    format!("{:.1}us", d.as_secs_f64() * 1e6)
}

fn fmt_tput(bps: f64) -> String {
    format!("{:.2} GiB/s", bps / (1u64 << 30) as f64)
}

/// Minimal JSON writer (same shape as bench_hotpath's — the workspace stays
/// dependency-free).
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, key: &str, value: String) -> &mut Self {
        if !self.0.ends_with("{\n") {
            self.0.push_str(",\n");
        }
        self.0.push_str(&format!("  \"{key}\": {value}"));
        self
    }
    fn finish(mut self) -> String {
        self.0.push_str("\n}\n");
        self.0
    }
}

fn obj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print_header(
        "bench_transport",
        "message ladder: in-process mesh vs TCP loopback",
        "Median ping-pong RTT and one-way streaming throughput per payload\n\
         size, on both transports. --smoke also asserts zero steady-state\n\
         frame allocations on the pooled TCP path. JSON lands in\n\
         results/bench_transport.json and BENCH_6.json.",
    );

    let sizes: &[usize] = if smoke {
        &[1 << 10, 64 << 10]
    } else {
        &[1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20]
    };
    let (pp_iters, stream_frames) = if smoke { (80, 200) } else { (300, 600) };

    let mesh = mesh_pair();
    let (a, b) = TcpTransport::pair_loopback(1).expect("tcp loopback pair");
    let tcp: Arc<dyn Transport> = Arc::new(TcpPair { a, b });
    pool::global().set_enabled(true);

    let mut table =
        Table::new(vec!["Size", "mesh RTT", "tcp RTT", "mesh stream", "tcp stream"]);
    let mut rows: Vec<String> = Vec::new();
    for &size in sizes {
        // Warm both directions so the pool's freelists hold this class.
        ping_pong(&mesh, size, 8);
        ping_pong(&tcp, size, 8);
        let mesh_rtt = ping_pong(&mesh, size, pp_iters);
        let tcp_rtt = ping_pong(&tcp, size, pp_iters);
        let mesh_bps = stream(&mesh, size, stream_frames);
        let tcp_bps = stream(&tcp, size, stream_frames);
        table.row(vec![
            format!("{} KiB", size >> 10),
            fmt_rtt(mesh_rtt),
            fmt_rtt(tcp_rtt),
            fmt_tput(mesh_bps),
            fmt_tput(tcp_bps),
        ]);
        rows.push(obj(&[
            ("payload_bytes", size.to_string()),
            ("mesh_rtt_us", format!("{:.2}", mesh_rtt.as_secs_f64() * 1e6)),
            ("tcp_rtt_us", format!("{:.2}", tcp_rtt.as_secs_f64() * 1e6)),
            ("mesh_stream_bytes_per_sec", format!("{mesh_bps:.0}")),
            ("tcp_stream_bytes_per_sec", format!("{tcp_bps:.0}")),
        ]));
    }
    table.print();

    // Steady-state allocation check on the pooled TCP path: after warmup,
    // roundtrips must be served entirely from the frame pool. This is the
    // PR-5 zero-allocation invariant extended across a real kernel socket
    // (wire frames, reassembly, and payload carving included).
    let alloc_size = 16 << 10;
    ping_pong(&tcp, alloc_size, 50);
    let measure = || {
        let before = pool::global().stats();
        ping_pong(&tcp, alloc_size, 200);
        let after = pool::global().stats();
        (after.misses - before.misses, after.hits - before.hits)
    };
    let (mut alloc_delta, mut hits_delta) = measure();
    if alloc_delta != 0 {
        // A scheduling burst can demand one more buffer than warmup seeded;
        // that buffer is pooled now, so a true steady state shows up as a
        // clean second window.
        (alloc_delta, hits_delta) = measure();
    }
    println!(
        "\ntcp steady state over 200 pooled roundtrips: {alloc_delta} frame allocations, \
         {hits_delta} pool hits"
    );
    if smoke {
        assert_eq!(
            alloc_delta, 0,
            "pooled TCP send/recv must add zero steady-state frame allocations"
        );
        assert!(hits_delta > 0, "pooled path should actually exercise the pool");
    }

    let mut json = Json::new();
    json.field("bench", "\"bench_transport\"".to_string());
    json.field("smoke", smoke.to_string());
    json.field(
        "shape",
        obj(&[
            ("pingpong_iters", pp_iters.to_string()),
            ("stream_frames", stream_frames.to_string()),
            ("channels", "1".to_string()),
        ]),
    );
    json.field("ladder", format!("[{}]", rows.join(", ")));
    json.field(
        "tcp_steady_state",
        obj(&[
            ("roundtrips", "200".to_string()),
            ("payload_bytes", alloc_size.to_string()),
            ("frame_allocations", alloc_delta.to_string()),
            ("pool_hits", hits_delta.to_string()),
        ]),
    );
    // Paper §4.1, Table: 1 KiB one-way latency per communicator (µs).
    json.field(
        "paper_reference_us",
        obj(&[
            ("scalable_communicator", "73".to_string()),
            ("block_manager", "3861".to_string()),
            ("mpi", "16".to_string()),
        ]),
    );
    let body = json.finish();

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/bench_transport.json", &body).expect("write results json");
    std::fs::write("BENCH_6.json", &body).expect("write BENCH_6.json");
    println!("wrote results/bench_transport.json and BENCH_6.json");
}
