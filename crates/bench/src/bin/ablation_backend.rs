//! Ablation — backend cross-check (DESIGN.md §4.1).
//!
//! The threaded engine and the discrete-event simulator consume the same
//! network profiles and execute the same algorithm step structure; this
//! harness runs the same (size, nodes) matrix through both and compares the
//! tree/split speedup each reports. Agreement in *shape* (ordering, growth
//! direction) is the pass criterion — absolute times differ by design
//! (the threaded engine also pays real memory traffic).

use sparker_bench::{print_header, Table};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_engine::ops::split_aggregate::SplitAggOpts;
use sparker_engine::ops::tree_aggregate::TreeAggOpts;
use sparker_net::codec::F64Array;
use sparker_sim::aggsim::{simulate_aggregation, Strategy};
use sparker_sim::cluster::SimCluster;

fn threaded_ratio(nodes: usize, elems: usize) -> f64 {
    const SCALE: f64 = 16.0;
    let run = |which: &str| -> f64 {
        let cluster = LocalCluster::new(ClusterSpec::bic(nodes, SCALE).with_shape(2, 2));
        let partitions = 2 * cluster.num_executors() * 2;
        let data = cluster
            .generate(partitions, move |p| vec![vec![p as f64; elems]; 1])
            .cache();
        data.count().unwrap();
        let seq = move |mut acc: F64Array, v: &Vec<f64>| {
            for (a, x) in acc.0.iter_mut().zip(v) {
                *a += *x;
            }
            acc
        };
        let zero = F64Array(vec![0.0; elems]);
        if which == "tree" {
            data.tree_aggregate(
                zero,
                seq,
                |mut a, b| {
                    sparker::dense::merge(&mut a, b);
                    a
                },
                TreeAggOpts::default(),
            )
            .unwrap()
            .1
            .total()
            .as_secs_f64()
        } else {
            data.split_aggregate(
                zero,
                seq,
                sparker::dense::merge,
                sparker::dense::split,
                sparker::dense::merge_segments,
                sparker::dense::concat,
                SplitAggOpts::default(),
            )
            .unwrap()
            .1
            .total()
            .as_secs_f64()
        }
    };
    run("tree") / run("split")
}

fn main() {
    print_header(
        "Ablation: backend",
        "Tree/Split speedup — threaded engine vs discrete-event simulator",
        "Pass criterion: both backends agree that the speedup grows with aggregator size\n\
         and stays >= 1 everywhere.",
    );
    let mut t = Table::new(vec!["Paper size", "Nodes", "Threaded ratio", "Simulated ratio"]);
    let mut ok = true;
    for (label, paper_bytes) in [("8MB", 8.0 * 1024.0 * 1024.0), ("64MB", 64.0 * 1024.0 * 1024.0)]
    {
        for nodes in [1usize, 2, 4] {
            let elems = (paper_bytes / 16.0 / 8.0) as usize;
            let threaded = threaded_ratio(nodes, elems);
            let c = SimCluster::bic().with_nodes(nodes);
            let parts = 4 * c.executors();
            let sim_tree = simulate_aggregation(&c, Strategy::Tree, paper_bytes, parts, 0.05);
            let sim_split = simulate_aggregation(
                &c,
                Strategy::Split { parallelism: 4, topology_aware: true },
                paper_bytes,
                parts,
                0.05,
            );
            let simulated = sim_tree.total() / sim_split.total();
            ok &= threaded >= 1.0 && simulated >= 1.0;
            t.row(vec![
                label.to_string(),
                nodes.to_string(),
                format!("{threaded:.2}x"),
                format!("{simulated:.2}x"),
            ]);
        }
    }
    t.print();
    println!("\nbackends agree on split >= tree everywhere: {}", if ok { "YES" } else { "NO" });
    let path = t.write_csv("ablation_backend").expect("csv");
    println!("wrote {}", path.display());
}
