//! Table 3 — the MLlib models and their paper hyperparameters.

use sparker_bench::{print_header, Table};
use sparker_ml::lda::LdaConfig;
use sparker_ml::logistic::LogisticRegression;
use sparker_ml::svm::LinearSvm;

fn main() {
    print_header(
        "Table 3",
        "MLlib machine learning models used in the experiment",
        "Constructed from this repo's trainers — parameters mirror the paper.",
    );
    let lr = LogisticRegression::default();
    let svm = LinearSvm::default();
    let lda = LdaConfig::new(100, 102_660);
    let mut t = Table::new(vec!["Name", "Parameter", "Task"]);
    t.row(vec![
        "Logistic Regression".to_string(),
        format!("regParam={},elasticNetParam=0", lr.reg_param),
        "classification".to_string(),
    ]);
    t.row(vec![
        "SVM".to_string(),
        format!("miniBatchFrac={},regParam={}", svm.mini_batch_fraction, svm.reg_param),
        "classification".to_string(),
    ]);
    t.row(vec![
        "LDA".to_string(),
        format!("K={}", lda.num_topics),
        "topic model".to_string(),
    ]);
    t.print();
    let path = t.write_csv("tab3_models").expect("csv");
    println!("\nwrote {}", path.display());
}
