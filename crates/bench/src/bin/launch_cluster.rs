//! Multi-process split-aggregation demonstrator: real OS processes, real
//! sockets, the full collective stack.
//!
//! Run with no flags and this binary becomes the *driver*: it binds a
//! rendezvous coordinator on loopback, re-executes itself `--execs` times as
//! executor child processes, waits for them to join (rank assignment + peer
//! address exchange, DESIGN.md §5g), and then drives four jobs through
//! [`sparker_engine::multiproc`] over the resulting TCP mesh:
//!
//! 1. **dense** — chunk-pipelined ring reduce-scatter of [`sparker_net::codec::F64Array`]
//!    segments; must match the driver-side oracle bit-for-bit in one attempt.
//! 2. **sparse** — the same job with density-adaptive
//!    [`sparker_sparse::DenseOrSparse`] segments at 1% density; bit-exact
//!    *and* far fewer gathered bytes than the dense job.
//! 3. **flaky** — rank 1 sprays frames then reports failure on attempt 0.
//!    The gang retry must succeed on attempt 1, with the receivers' epoch
//!    fence discarding the stale attempt-0 frames still sitting in real
//!    socket buffers.
//! 4. **kill** — the highest rank calls `exit(13)` mid-ring. Survivors see
//!    `Disconnected`/timeouts (never a hang), the driver publishes a new
//!    membership view, and the gang retry re-forms the *ring over the
//!    survivors* (DESIGN.md §5h) — partitions recomputed from lineage, the
//!    tree fallback held in reserve. Still bit-exact.
//!
//! Exits non-zero if any job result diverges from the oracle, a child exits
//! with an unexpected status, or anything hangs past the deadlines.
//! `--smoke` shrinks dimensions so the whole run fits in a CI step
//! (check_hermetic step 8); `--executor --driver ADDR` is the child mode.
//! The [`TcpConfig`] tunables are flags (`--hb-ms`, `--suspicion-ms`,
//! `--dials`, `--backoff-ms`, `--cap-ms`, `--window-ms`), forwarded to
//! every executor child; absent flags keep the documented defaults.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sparker_bench::{print_header, Table};
use sparker_engine::multiproc::{
    oracle, run_executor_with, JobOutcome, JobSpec, MultiProcDriver, KILLED_EXIT_CODE,
};
use sparker_net::tcp::rendezvous::Coordinator;
use sparker_net::tcp::TcpConfig;

const CHANNELS: usize = 2;

/// The transport tunables exposed as flags (values in milliseconds),
/// forwarded verbatim from the driver invocation to every executor child.
/// Absent flags keep the documented [`TcpConfig`] defaults.
const TUNABLE_FLAGS: [&str; 6] =
    ["--hb-ms", "--suspicion-ms", "--dials", "--backoff-ms", "--cap-ms", "--window-ms"];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn arg_ms(args: &[String], flag: &str, default: Duration) -> Duration {
    arg_after(args, flag)
        .map(|s| Duration::from_millis(s.parse().unwrap_or_else(|_| panic!("{flag} wants ms"))))
        .unwrap_or(default)
}

fn tcp_config(args: &[String]) -> TcpConfig {
    let mut cfg = TcpConfig::default();
    cfg.health.interval = arg_ms(args, "--hb-ms", cfg.health.interval);
    cfg.health.suspicion = arg_ms(args, "--suspicion-ms", cfg.health.suspicion);
    if let Some(n) = arg_after(args, "--dials") {
        cfg.reconnect.max_rounds = n.parse().expect("--dials wants a count");
    }
    cfg.reconnect.backoff_base = arg_ms(args, "--backoff-ms", cfg.reconnect.backoff_base);
    cfg.reconnect.backoff_cap = arg_ms(args, "--cap-ms", cfg.reconnect.backoff_cap);
    cfg.reconnect.accept_window = arg_ms(args, "--window-ms", cfg.reconnect.accept_window);
    cfg
}

/// Waits up to `deadline` for `child` to exit, then kills it. Returns the
/// exit code (or -1 for signal/forced death).
fn reap(child: &mut Child, deadline: Duration) -> i32 {
    let t0 = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return status.code().unwrap_or(-1),
            Ok(None) if t0.elapsed() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return -1;
            }
        }
    }
}

fn check_exact(name: &str, outcome: &JobOutcome, expect: &[f64]) {
    assert_eq!(
        bits(&outcome.value),
        bits(expect),
        "{name}: result diverged from the driver-side oracle"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Child mode: join the driver and serve jobs until shutdown.
    if args.iter().any(|a| a == "--executor") {
        let addr = arg_after(&args, "--driver").expect("--executor requires --driver ADDR");
        run_executor_with(&addr, Duration::from_secs(30), tcp_config(&args))
            .expect("executor failed");
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let execs: usize = arg_after(&args, "--execs").map(|s| s.parse().expect("--execs N")).unwrap_or(3);
    assert!(execs >= 2, "need at least 2 executors for a ring");
    print_header(
        "launch_cluster",
        "split aggregation across real OS processes over TCP",
        "Spawns executor child processes, rendezvous over loopback, runs the\n\
         dense/sparse/flaky/kill job suite, and checks every result bit-exact\n\
         against the driver-side oracle. --smoke is check_hermetic step 8.",
    );

    let (dim, parts, deadline_ms) = if smoke { (2_048, 9, 1_500) } else { (65_536, 24, 4_000) };

    let mut coordinator = Coordinator::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = coordinator.local_addr().expect("coordinator addr").to_string();
    let exe = std::env::current_exe().expect("current exe");

    let mut forwarded: Vec<String> = Vec::new();
    for flag in TUNABLE_FLAGS {
        if let Some(v) = arg_after(&args, flag) {
            forwarded.push(flag.to_string());
            forwarded.push(v);
        }
    }
    let mut children: Vec<Child> = (0..execs)
        .map(|i| {
            Command::new(&exe)
                .args(["--executor", "--driver", &addr])
                .args(&forwarded)
                .stdin(Stdio::null())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn executor {i}: {e}"))
        })
        .collect();
    println!("driver at {addr}, {execs} executor processes spawned");

    let controls = coordinator
        .wait_for(execs, CHANNELS, Duration::from_secs(30))
        .expect("rendezvous timed out");
    let mut driver = MultiProcDriver::new(controls);
    driver.reply_timeout = Duration::from_secs(60);

    let base = |id: u64| {
        let mut s = JobSpec::dense(id, 0x5EED ^ id, dim, parts);
        s.recv_deadline_ms = deadline_ms;
        s
    };
    let mut table = Table::new(vec!["Job", "Attempts", "Path", "Gathered"]);
    let mut record = |name: &str, o: &JobOutcome| {
        table.row(vec![
            name.to_string(),
            o.attempts.to_string(),
            if o.used_fallback { "tree fallback".into() } else { "ring".into() },
            if o.used_fallback {
                "whole aggregators".into()
            } else {
                format!("{} segments / {} B", o.wire_segments, o.result_bytes)
            },
        ]);
    };

    // 1. Dense: the happy path must finish in one attempt.
    let dense = base(1);
    let o = driver.run_job(&dense).expect("dense job");
    assert_eq!(o.attempts, 1, "dense job should not retry");
    assert!(!o.used_fallback);
    check_exact("dense", &o, &oracle(&dense));
    record("dense", &o);
    let dense_bytes = o.result_bytes;

    // 2. Sparse at 1% density: bit-exact and cheaper on the wire.
    let mut sparse = JobSpec::sparse(2, 0x5EED ^ 2, dim, parts, 0.01);
    sparse.recv_deadline_ms = deadline_ms;
    let o = driver.run_job(&sparse).expect("sparse job");
    assert!(!o.used_fallback);
    check_exact("sparse", &o, &oracle(&sparse));
    assert!(
        o.result_bytes < dense_bytes,
        "sparse gather ({} B) should beat dense ({dense_bytes} B)",
        o.result_bytes
    );
    record("sparse 1%", &o);

    // 3. Flaky: rank 1 fails attempt 0 after leaving stale frames on the
    //    wire; the epoch fence must reject them on the retry.
    let mut flaky = base(3);
    flaky.fail_rank = 1;
    let o = driver.run_job(&flaky).expect("flaky job");
    assert_eq!(o.attempts, 2, "flaky job must fail once then succeed");
    assert!(!o.used_fallback);
    check_exact("flaky", &o, &oracle(&flaky));
    record("flaky (retry)", &o);

    // 4. Kill (last: it costs us an executor): the highest rank dies
    //    mid-ring; the survivors must re-form the ring under a new
    //    membership view and still produce the exact answer.
    let victim = execs as u32 - 1;
    let mut kill = base(4);
    kill.die_rank = victim;
    let o = driver.run_job(&kill).expect("kill job");
    assert!(!o.used_fallback, "survivor ring re-formation must beat the tree fallback");
    assert_eq!(o.ring_size, execs - 1, "retry ring must span exactly the survivors");
    assert!(o.view_generation >= 1, "losing a process must publish a new view");
    check_exact("kill", &o, &oracle(&kill));
    record("kill (survivor ring)", &o);

    driver.shutdown();
    // Ranks are assigned by rendezvous arrival order, not spawn order, so we
    // can't know which child process held the victim rank — but exactly one
    // must have died with the injected code and the rest must exit cleanly.
    let codes: Vec<i32> =
        children.iter_mut().map(|c| reap(c, Duration::from_secs(20))).collect();
    let killed = codes.iter().filter(|&&c| c == KILLED_EXIT_CODE).count();
    let clean = codes.iter().filter(|&&c| c == 0).count();
    assert_eq!(
        (killed, clean),
        (1, execs - 1),
        "expected one injected death (exit {KILLED_EXIT_CODE}) and clean exits, got {codes:?}"
    );

    table.print();
    println!(
        "\nall 4 jobs bit-exact across {execs} OS processes ({} survived the kill)",
        execs - 1
    );
}
