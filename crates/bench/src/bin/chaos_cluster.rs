//! Seeded OS-level chaos harness for the self-healing multi-process cluster
//! (DESIGN.md §5h).
//!
//! Where `launch_cluster` proves the happy paths plus protocol-level fault
//! *injection*, this binary attacks the cluster from the operating system:
//! it spawns ≥4 real executor processes, then — on a deterministic schedule
//! derived from `--seed` — SIGKILLs them mid-job, freezes them with
//! SIGSTOP/SIGCONT to manufacture stragglers, and severs live data-plane
//! connections. After every fault it checks the two invariants the design
//! promises:
//!
//! * **bit-exact or typed error** — every job either matches the
//!   driver-side [`oracle`] bit-for-bit or fails with a typed
//!   `EngineError` naming the rank and view generation. Silent corruption
//!   and untyped panics are both failures.
//! * **never hang** — a watchdog thread enforces a hard wall-clock
//!   deadline; if the cluster wedges, the harness kills every child and
//!   exits 86 (so CI sees a distinct "hung" verdict, not a timeout).
//!
//! Recovery is expected to be *layered* exactly as specified: severed
//! connections heal by reconnection (no view change), SIGSTOP'd stragglers
//! are suspected by heartbeat and re-admitted by reconnection when they
//! wake, and SIGKILL'd executors trigger survivor ring re-formation under a
//! new membership view — with a respawned process re-admitted at the next
//! job boundary via [`MultiProcDriver::try_readmit`].
//!
//! Modes:
//! * `--smoke` — the deterministic six-act script (baseline, drop, freeze,
//!   kill, re-admit, scheduled view change) used as the CI tier-2 gate.
//! * `--plan kill|stop|drop` — one fault class only; `--plan kill` is
//!   check_hermetic step 9.
//! * default — `--jobs N` jobs with a seeded random fault before each.
//!
//! Child mode is `--executor --driver ADDR` plus the `--hb-ms`,
//! `--suspicion-ms`, `--dials`, `--backoff-ms`, `--cap-ms`, `--window-ms`
//! knobs that override [`TcpConfig`] defaults (the parent always passes the
//! chaos profile: 100 ms heartbeats, 500 ms suspicion, 5 dial rounds).

use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sparker_bench::print_header;
use sparker_engine::multiproc::{
    oracle, run_executor_with, JobOutcome, JobSpec, MultiProcDriver, ALGO_HIER, KILLED_EXIT_CODE,
};
use sparker_net::tcp::rendezvous::Coordinator;
use sparker_net::tcp::TcpConfig;
use sparker_obs::metrics::{self, MetricValue};
use sparker_sched::{Fifo, JobRequest, MultiProcBackend, SchedConfig, SchedError, Scheduler};

const CHANNELS: usize = 2;
/// Watchdog exit code: the run *hung* (distinct from assertion failures).
const HUNG_EXIT_CODE: i32 = 86;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    arg_after(args, flag).map(|s| s.parse().unwrap_or_else(|_| panic!("{flag} wants a number"))).unwrap_or(default)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fast-detection transport profile both sides of the chaos cluster run
/// with: suspicion fires in 500 ms instead of 3 s, and the reconnect budget
/// (5 rounds, 40 ms base backoff, 500 ms cap) exhausts in roughly 1.2 s —
/// comfortably inside the 4 s collective receive deadline, so a dead peer
/// becomes a typed error well before anything could be called a hang.
fn chaos_config(args: &[String]) -> TcpConfig {
    let mut cfg = TcpConfig::default();
    cfg.health.interval = Duration::from_millis(arg_u64(args, "--hb-ms", 100));
    cfg.health.suspicion = Duration::from_millis(arg_u64(args, "--suspicion-ms", 500));
    cfg.reconnect.max_rounds = arg_u64(args, "--dials", 5) as u32;
    cfg.reconnect.backoff_base = Duration::from_millis(arg_u64(args, "--backoff-ms", 40));
    cfg.reconnect.backoff_cap = Duration::from_millis(arg_u64(args, "--cap-ms", 500));
    cfg.reconnect.accept_window = Duration::from_millis(arg_u64(args, "--window-ms", 1500));
    cfg
}

fn cfg_flags(cfg: &TcpConfig) -> Vec<String> {
    vec![
        "--hb-ms".into(),
        cfg.health.interval.as_millis().to_string(),
        "--suspicion-ms".into(),
        cfg.health.suspicion.as_millis().to_string(),
        "--dials".into(),
        cfg.reconnect.max_rounds.to_string(),
        "--backoff-ms".into(),
        cfg.reconnect.backoff_base.as_millis().to_string(),
        "--cap-ms".into(),
        cfg.reconnect.backoff_cap.as_millis().to_string(),
        "--window-ms".into(),
        cfg.reconnect.accept_window.as_millis().to_string(),
    ]
}

/// Sends `sig` (a `kill -SIG` name) to a process — std-only, via `sh`.
fn signal(pid: u32, sig: &str) {
    let _ = Command::new("sh").arg("-c").arg(format!("kill -{sig} {pid}")).status();
}

/// One executor child process and what the harness did to it.
struct Exec {
    child: Child,
    /// Set when the harness SIGKILLed it (expected reap code: signal death).
    killed: bool,
}

struct Cluster {
    execs: Vec<Exec>,
    exe: std::path::PathBuf,
    addr: String,
    cfg: TcpConfig,
}

impl Cluster {
    fn spawn_exec(&mut self) {
        let mut cmd = Command::new(&self.exe);
        cmd.args(["--executor", "--driver", &self.addr]).args(cfg_flags(&self.cfg)).stdin(Stdio::null());
        let child = cmd.spawn().expect("spawn executor");
        self.execs.push(Exec { child, killed: false });
    }

    /// Indexes of children still running.
    fn running(&mut self) -> Vec<usize> {
        (0..self.execs.len())
            .filter(|&i| matches!(self.execs[i].child.try_wait(), Ok(None)))
            .collect()
    }

    fn pids(&self) -> Vec<u32> {
        self.execs.iter().map(|e| e.child.id()).collect()
    }

    /// SIGKILLs the running child at `pick` (an index into `running()`),
    /// returning its pid. The rank it held is discovered by the driver.
    fn kill_one(&mut self, pick: usize) -> Option<u32> {
        let running = self.running();
        let &i = running.get(pick % running.len().max(1))?;
        self.execs[i].killed = true;
        let pid = self.execs[i].child.id();
        let _ = self.execs[i].child.kill();
        Some(pid)
    }

    /// SIGSTOPs one running child and schedules its SIGCONT after `freeze`
    /// on a timer thread, returning the pid.
    fn freeze_one(&mut self, pick: usize, freeze: Duration) -> Option<u32> {
        let running = self.running();
        let &i = running.get(pick % running.len().max(1))?;
        let pid = self.execs[i].child.id();
        signal(pid, "STOP");
        std::thread::spawn(move || {
            std::thread::sleep(freeze);
            signal(pid, "CONT");
        });
        Some(pid)
    }

    /// Waits for every child to exit (bounded), returning exit codes
    /// (-1 = signal death or forced kill).
    fn reap_all(&mut self, deadline: Duration) -> Vec<i32> {
        let t0 = Instant::now();
        self.execs
            .iter_mut()
            .map(|e| loop {
                match e.child.try_wait() {
                    Ok(Some(status)) => break status.code().unwrap_or(-1),
                    Ok(None) if t0.elapsed() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = e.child.kill();
                        let _ = e.child.wait();
                        break -1;
                    }
                }
            })
            .collect()
    }
}

/// Reads a named counter out of the driver process's own metric registry.
fn driver_counter(name: &str) -> u64 {
    metrics::snapshot()
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| match m.value {
            MetricValue::Counter(v) => v,
            MetricValue::Gauge(v) => v.max(0) as u64,
            MetricValue::Histogram(count, _, _) => count,
        })
        .unwrap_or(0)
}

/// Sums a named counter across every live executor's metrics reply.
fn cluster_counter(driver: &mut MultiProcDriver, name: &str) -> u64 {
    driver
        .collect_metrics()
        .iter()
        .flat_map(|(_, pairs)| pairs.iter())
        .filter(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .sum()
}

fn check_job(name: &str, outcome: &JobOutcome, expect: &[f64]) {
    assert_eq!(
        bits(&outcome.value),
        bits(expect),
        "{name}: result diverged from the driver-side oracle"
    );
    println!(
        "  {name}: ok in {} attempt(s), {} (view {}, ring {})",
        outcome.attempts,
        if outcome.used_fallback { "tree fallback" } else { "ring" },
        outcome.view_generation,
        outcome.ring_size,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Child mode: serve jobs under the chaos transport profile.
    if args.iter().any(|a| a == "--executor") {
        let addr = arg_after(&args, "--driver").expect("--executor requires --driver ADDR");
        let cfg = chaos_config(&args);
        run_executor_with(&addr, Duration::from_secs(30), cfg).expect("executor failed");
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let plan = arg_after(&args, "--plan");
    let seed = arg_u64(&args, "--seed", 1);
    let execs = arg_u64(&args, "--execs", 4) as usize;
    let jobs = arg_u64(&args, "--jobs", 6) as usize;
    let deadline_secs = arg_u64(&args, "--deadline-secs", if smoke || plan.is_some() { 120 } else { 240 });
    assert!(execs >= 4, "chaos needs >= 4 executors (a ring must survive a kill)");

    print_header(
        "chaos_cluster",
        "OS-level chaos against the self-healing multi-process cluster",
        "SIGKILL, SIGSTOP/SIGCONT stragglers, and severed connections against\n\
         real executor processes. Every job must be bit-exact against the\n\
         oracle or fail with a typed error; a watchdog turns any hang into\n\
         exit 86. --smoke is the CI tier-2 gate; --plan kill is\n\
         check_hermetic step 9.",
    );

    let cfg = chaos_config(&args);
    let (dim, parts) = if smoke || plan.is_some() { (2_048, 8) } else { (16_384, 16) };

    let mut coordinator = Coordinator::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = coordinator.local_addr().expect("coordinator addr").to_string();
    let exe = std::env::current_exe().expect("current exe");
    let mut cluster = Cluster { execs: Vec::new(), exe, addr: addr.clone(), cfg };
    for _ in 0..execs {
        cluster.spawn_exec();
    }
    println!("driver at {addr}, {execs} executor processes under chaos profile");

    // Watchdog: the never-hang invariant, enforced from outside the cluster.
    let watch_pids: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(cluster.pids()));
    let finished = Arc::new(AtomicBool::new(false));
    {
        let watch_pids = Arc::clone(&watch_pids);
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(deadline_secs);
            while Instant::now() < deadline {
                if finished.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            eprintln!("chaos_cluster: HUNG — {deadline_secs}s wall-clock deadline exceeded");
            for pid in watch_pids.lock().unwrap().iter() {
                signal(*pid, "KILL");
            }
            std::process::exit(HUNG_EXIT_CODE);
        });
    }

    let controls = coordinator
        .wait_for(execs, CHANNELS, Duration::from_secs(30))
        .expect("rendezvous timed out");
    let mut driver = MultiProcDriver::new(controls);
    // Must dominate the worst-case ring stall: chunked pipelining can stack
    // several per-recv deadlines (4 s each) before a survivor gives up and
    // reports a typed error. Evicting a live-but-stalled executor here would
    // cascade (the driver would treat a straggler as dead).
    driver.reply_timeout = Duration::from_secs(30);

    let base = |id: u64| {
        let mut s = JobSpec::dense(id, 0xC405 ^ id, dim, parts);
        s.recv_deadline_ms = 4_000;
        s
    };

    match plan.as_deref() {
        _ if smoke => {
            driver = run_smoke(driver, &mut cluster, &mut coordinator, execs, &watch_pids, &base)
        }
        Some("kill") => run_plan_kill(&mut driver, &mut cluster, execs, &base),
        Some("stop") => run_plan_stop(&mut driver, &mut cluster, &base),
        Some("drop") => run_plan_drop(&mut driver, &base),
        Some(other) => panic!("unknown --plan {other:?} (want kill|stop|drop)"),
        None => run_random(&mut driver, &mut cluster, &mut coordinator, seed, jobs, &watch_pids, &base),
    }

    driver.shutdown();
    let codes = cluster.reap_all(Duration::from_secs(20));
    let hard_deaths =
        codes.iter().filter(|&&c| c == -1 || c == KILLED_EXIT_CODE).count();
    let expected_deaths = cluster.execs.iter().filter(|e| e.killed).count();
    let clean = codes.iter().filter(|&&c| c == 0).count();
    assert_eq!(
        (hard_deaths, clean),
        (expected_deaths, codes.len() - expected_deaths),
        "exit codes {codes:?}: every SIGKILLed child must die by signal, everyone else cleanly"
    );

    finished.store(true, Ordering::Relaxed);
    println!(
        "\nchaos run complete: {} child processes, {expected_deaths} killed, all surviving jobs bit-exact",
        codes.len()
    );
}

/// The deterministic seven-act CI script. Takes the driver by value because
/// act 6 loans it to a [`Scheduler`] (behind the backend's shared mutex) and
/// recovers it afterwards.
fn run_smoke(
    mut driver: MultiProcDriver,
    cluster: &mut Cluster,
    coordinator: &mut Coordinator,
    execs: usize,
    watch_pids: &Arc<Mutex<Vec<u32>>>,
    base: &dyn Fn(u64) -> JobSpec,
) -> MultiProcDriver {
    println!("\n--- smoke: baseline / drop / freeze / kill / re-admit / scheduled view change / hier leader kill ---");

    // Act 1: baseline — full ring, one attempt, founding view.
    let spec = base(1);
    let o = driver.run_job(&spec).expect("baseline job");
    assert_eq!((o.attempts, o.used_fallback, o.ring_size), (1, false, execs));
    assert_eq!(o.view_generation, 0);
    check_job("baseline", &o, &oracle(&spec));

    // Act 2: severed connection — rank 1 drops its link to rank 2 just
    // before the ring. Reconnection must heal it with no view change.
    let mut spec = base(2);
    spec.drop_rank = 1;
    spec.drop_peer = 2;
    let o = driver.run_job(&spec).expect("drop job");
    assert!(!o.used_fallback, "a severed connection must heal, not fallback");
    assert_eq!(o.view_generation, 0, "healing must not change membership");
    assert_eq!(o.ring_size, execs);
    check_job("drop", &o, &oracle(&spec));
    let healed = cluster_counter(&mut driver, "net.reconnect.healed");
    assert!(healed >= 1, "at least one reconnection heal expected, metrics say {healed}");

    // Act 3: straggler — freeze one executor for 1.2 s (past suspicion,
    // inside the reconnect budget). The job may burn an attempt on the
    // receive deadline but must complete on the same membership.
    cluster.freeze_one(0, Duration::from_millis(1_200)).expect("freeze a child");
    let spec = base(3);
    let o = driver.run_job(&spec).expect("freeze job");
    assert!(!o.used_fallback, "a straggler must heal, not fallback");
    assert_eq!(o.view_generation, 0, "a straggler must not change membership");
    assert_eq!(o.ring_size, execs);
    check_job("freeze", &o, &oracle(&spec));

    // Act 4: SIGKILL — a process vanishes. The driver must publish a new
    // view and the retry must run the ring over the survivors.
    cluster.kill_one(0).expect("kill a child");
    let spec = base(4);
    let o = driver.run_job(&spec).expect("kill job");
    assert!(!o.used_fallback, "survivor ring re-formation must beat the fallback");
    assert_eq!(o.ring_size, execs - 1, "retry ring must span exactly the survivors");
    assert!(o.view_generation >= 1, "losing a process must publish a new view");
    check_job("kill", &o, &oracle(&spec));

    // Act 5: re-admission — a respawned process knocks at the rendezvous
    // and takes over the vacated rank; the next job runs the full ring.
    cluster.spawn_exec();
    *watch_pids.lock().unwrap() = cluster.pids();
    let readmitted = driver
        .try_readmit(coordinator, Duration::from_secs(15))
        .expect("readmit poll")
        .expect("respawned executor should be re-admitted");
    println!("  re-admitted replacement executor at rank {readmitted}");
    let spec = base(5);
    let o = driver.run_job(&spec).expect("post-readmit job");
    assert!(!o.used_fallback);
    assert_eq!(o.ring_size, execs, "re-admission must restore the full ring");
    assert!(o.view_generation >= 2, "re-admission must publish another view");
    check_job("re-admit", &o, &oracle(&spec));

    let view_changes = driver_counter("multiproc.view_changes");
    let readmissions = driver_counter("multiproc.readmissions");
    assert!(view_changes >= 2, "kill + re-admit must publish >= 2 views, saw {view_changes}");
    assert!(readmissions >= 1, "re-admission counter must advance, saw {readmissions}");

    // Act 6: view change under a loaded scheduler queue — an executor dies
    // mid-ring while two more jobs sit in the admission queue. Only the
    // in-flight job may fail, and it must fail *typed*; the queued jobs run
    // on the survivor ring, bit-exact. Retries and the tree fallback are
    // disabled so the failure is the scheduler-visible event, not something
    // the driver quietly absorbs.
    println!("  act 6: view change with two jobs queued behind the dying one");
    driver.max_attempts = 1;
    driver.allow_fallback = false;
    let shared = Arc::new(sparker_net::sync::Mutex::new(driver));
    let sched = Scheduler::new(
        MultiProcBackend::new(Arc::clone(&shared)),
        Box::new(Fifo),
        SchedConfig { capacity: 8, ..SchedConfig::default() },
    );
    let mut doomed = base(6);
    doomed.die_rank = 1;
    let spec7 = base(7);
    let spec8 = base(8);
    let h6 = sched.submit(JobRequest::new(0, doomed)).expect("doomed job admitted");
    let h7 = sched.submit(JobRequest::new(1, spec7.clone())).expect("queued job admitted");
    let h8 = sched.submit(JobRequest::new(2, spec8.clone())).expect("queued job admitted");
    match h6.wait() {
        Err(SchedError::TaskFailed { job, reason }) => {
            println!("  in-flight job {job} failed typed across the view change: {reason}");
        }
        Ok(_) => panic!("the job whose executor died mid-ring must fail (fallback disabled)"),
        Err(other) => panic!("expected TaskFailed for the in-flight job, got {other}"),
    }
    let o7 = h7.wait().expect("first queued job must survive the view change");
    let o8 = h8.wait().expect("second queued job must survive the view change");
    for (o, spec, name) in [(&o7, &spec7, "queued-1"), (&o8, &spec8, "queued-2")] {
        assert!(!o.used_fallback, "{name}: survivor ring must beat the fallback");
        assert_eq!(o.ring_size, execs - 1, "{name}: retry ring must span the survivors");
        assert!(o.view_generation >= 3, "{name}: the mid-ring death must publish a new view");
        check_job(name, o, &oracle(spec));
    }
    drop(sched);
    let mut driver = Arc::try_unwrap(shared)
        .ok()
        .expect("scheduler must release the driver on shutdown")
        .into_inner();
    driver.max_attempts = 4;
    driver.allow_fallback = true;

    // The die_rank fault really killed a process (exit code 13): find the
    // newly dead child and mark it so final exit-code accounting balances.
    let deadline = Instant::now() + Duration::from_secs(10);
    'find: loop {
        for e in cluster.execs.iter_mut() {
            if !e.killed && matches!(e.child.try_wait(), Ok(Some(_))) {
                e.killed = true;
                break 'find;
            }
        }
        assert!(Instant::now() < deadline, "the die_rank victim never exited");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Act 7: hierarchical collective under chaos — a replacement is
    // re-admitted to restore the full ring, the job runs the two-level path
    // over two *emulated* nodes, and the leader of the second node group is
    // SIGKILLed mid-allreduce. The retry must re-form the hierarchy over
    // the survivors (groups and leaders are re-derived from ring positions,
    // so the re-election is automatic): same bits, new view, no hang.
    println!("  act 7: SIGKILL a node leader mid-hierarchical-allreduce");
    cluster.spawn_exec();
    *watch_pids.lock().unwrap() = cluster.pids();
    let readmitted = driver
        .try_readmit(coordinator, Duration::from_secs(15))
        .expect("readmit poll")
        .expect("replacement executor should be re-admitted for act 7");
    println!("  re-admitted replacement executor at rank {readmitted}");
    let hier = |id: u64| {
        let mut s = base(id);
        s.algo = ALGO_HIER;
        s.nodes = 2;
        s
    };
    let spec = hier(9);
    let o = driver.run_job(&spec).expect("hierarchical baseline job");
    assert_eq!(
        (o.attempts, o.used_fallback, o.ring_size),
        (1, false, execs),
        "hierarchical baseline must run clean on the restored ring"
    );
    check_job("hier-baseline", &o, &oracle(&spec));

    let pre_kill_views = driver_counter("multiproc.view_changes");
    let mut doomed = hier(10);
    // Emulated node groups split the view-ordered ring by position, so the
    // member at position N/2 leads the second group.
    doomed.die_rank = (driver.alive().len() / 2) as u32;
    let o = driver.run_job(&doomed).expect("hierarchical job must survive its leader dying");
    assert!(!o.used_fallback, "hierarchy re-formation must beat the tree fallback");
    assert_eq!(o.ring_size, execs - 1, "retry ring must span exactly the survivors");
    assert!(
        driver_counter("multiproc.view_changes") > pre_kill_views,
        "losing a node leader must publish a new view"
    );
    check_job("hier-leader-kill", &o, &oracle(&doomed));

    // Account for the leader's death so exit codes balance at teardown.
    let deadline = Instant::now() + Duration::from_secs(10);
    'find2: loop {
        for e in cluster.execs.iter_mut() {
            if !e.killed && matches!(e.child.try_wait(), Ok(Some(_))) {
                e.killed = true;
                break 'find2;
            }
        }
        assert!(Instant::now() < deadline, "the act-7 leader victim never exited");
        std::thread::sleep(Duration::from_millis(20));
    }
    driver
}

/// `--plan kill`: one SIGKILL, prove survivor ring re-formation
/// (check_hermetic step 9).
fn run_plan_kill(
    driver: &mut MultiProcDriver,
    cluster: &mut Cluster,
    execs: usize,
    base: &dyn Fn(u64) -> JobSpec,
) {
    println!("\n--- plan: kill one executor, re-form the ring over survivors ---");
    let spec = base(1);
    let o = driver.run_job(&spec).expect("baseline job");
    assert_eq!((o.attempts, o.ring_size), (1, execs));
    check_job("baseline", &o, &oracle(&spec));

    cluster.kill_one(0).expect("kill a child");
    let spec = base(2);
    let o = driver.run_job(&spec).expect("kill job");
    assert!(!o.used_fallback, "survivor ring re-formation must beat the fallback");
    assert_eq!(o.ring_size, execs - 1);
    assert!(o.view_generation >= 1);
    check_job("kill", &o, &oracle(&spec));
}

/// `--plan stop`: one SIGSTOP/SIGCONT straggler.
fn run_plan_stop(driver: &mut MultiProcDriver, cluster: &mut Cluster, base: &dyn Fn(u64) -> JobSpec) {
    println!("\n--- plan: freeze one executor past suspicion, heal on wake ---");
    let spec = base(1);
    let o = driver.run_job(&spec).expect("baseline job");
    check_job("baseline", &o, &oracle(&spec));
    cluster.freeze_one(0, Duration::from_millis(1_200)).expect("freeze a child");
    let spec = base(2);
    let o = driver.run_job(&spec).expect("freeze job");
    assert!(!o.used_fallback);
    assert_eq!(o.view_generation, 0);
    check_job("freeze", &o, &oracle(&spec));
}

/// `--plan drop`: one severed data-plane connection.
fn run_plan_drop(driver: &mut MultiProcDriver, base: &dyn Fn(u64) -> JobSpec) {
    println!("\n--- plan: sever one data-plane connection, heal by reconnect ---");
    let spec = base(1);
    let o = driver.run_job(&spec).expect("baseline job");
    check_job("baseline", &o, &oracle(&spec));
    let mut spec = base(2);
    spec.drop_rank = 1;
    spec.drop_peer = 0;
    let o = driver.run_job(&spec).expect("drop job");
    assert!(!o.used_fallback);
    assert_eq!(o.view_generation, 0);
    check_job("drop", &o, &oracle(&spec));
    let healed = cluster_counter(driver, "net.reconnect.healed");
    assert!(healed >= 1, "expected a reconnection heal, metrics say {healed}");
}

/// Default mode: `jobs` jobs, a seeded random fault before each. Kills are
/// followed by a respawn + re-admission attempt at the next job boundary.
fn run_random(
    driver: &mut MultiProcDriver,
    cluster: &mut Cluster,
    coordinator: &mut Coordinator,
    seed: u64,
    jobs: usize,
    watch_pids: &Arc<Mutex<Vec<u32>>>,
    base: &dyn Fn(u64) -> JobSpec,
) {
    println!("\n--- random chaos: seed {seed}, {jobs} jobs ---");
    // Chaos starts from a *healthy* cluster: the fault-free warmup only
    // completes once every executor has finished forming the mesh, so a
    // SIGKILL can never land while siblings are still dialing the victim
    // during their join.
    let warm = base(99);
    let o = driver.run_job(&warm).expect("fault-free warmup job");
    check_job("warmup", &o, &oracle(&warm));
    let mut rng = splitmix64(seed);
    let mut pending_respawn = false;
    for job in 0..jobs as u64 {
        rng = splitmix64(rng);
        if pending_respawn {
            cluster.spawn_exec();
            *watch_pids.lock().unwrap() = cluster.pids();
            match driver.try_readmit(coordinator, Duration::from_secs(15)) {
                Ok(Some(rank)) => {
                    println!("  re-admitted replacement at rank {rank}");
                    for (dialer, err) in &driver.last_admit_errors {
                        println!("  admit dial from rank {dialer} failed: {err}");
                    }
                }
                Ok(None) => println!("  replacement did not arrive in time"),
                Err(e) => println!("  re-admission failed (typed): {e}"),
            }
            pending_respawn = false;
        }
        let fault = rng % 4;
        let pick = (rng >> 8) as usize;
        let mut spec = base(100 + job);
        match fault {
            1 => {
                let n = driver.alive().len() as u64;
                if n >= 2 {
                    let from = (rng >> 16) % n;
                    let to = ((rng >> 24) % (n - 1) + from + 1) % n;
                    spec.drop_rank = driver.alive()[from as usize] as u32;
                    spec.drop_peer = driver.alive()[to as usize] as u32;
                    println!("job {job}: sever {} -> {}", spec.drop_rank, spec.drop_peer);
                }
            }
            2 => {
                if let Some(pid) = cluster.freeze_one(pick, Duration::from_millis(1_200)) {
                    println!("job {job}: SIGSTOP pid {pid} for 1.2s");
                }
            }
            3 => {
                // Keep at least 3 running so the survivor ring stays a ring.
                if cluster.running().len() > 3 {
                    if let Some(pid) = cluster.kill_one(pick) {
                        println!("job {job}: SIGKILL pid {pid}");
                        pending_respawn = true;
                    }
                }
            }
            _ => println!("job {job}: no fault"),
        }
        match driver.run_job(&spec) {
            Ok(o) => {
                check_job(&format!("job {job}"), &o, &oracle(&spec));
                if o.used_fallback || o.attempts > 2 {
                    println!("    last ring error: {}", driver.last_ring_error);
                }
            }
            Err(e) => println!("  job {job}: typed failure (accepted): {e}"),
        }
    }
    let view_changes = driver_counter("multiproc.view_changes");
    println!("random chaos done: {view_changes} membership views published");
}
