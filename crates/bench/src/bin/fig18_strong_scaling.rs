//! Figure 18 — strong scalability and time decomposition of LDA-N on AWS:
//! Spark (left bar) vs Sparker (right bar) at each core count.
//!
//! Paper reference: at 8 cores reduction 26.36 s vs 6.29 s (4.19×); at 960
//! cores 111.26 s vs 15.41 s (7.22×); Sparker's compute also drops at scale
//! (IMM removes serialization); the driver becomes the new bottleneck.

use sparker_bench::{print_header, Table};
use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::by_name;

fn main() {
    print_header(
        "Figure 18",
        "Strong scalability of LDA-N on AWS: Spark vs Sparker decomposition",
        "Paper reference: reduce speedup 4.19x @8 cores -> 7.22x @960 cores; driver becomes\n\
         the new bottleneck at scale.",
    );
    let w = by_name("LDA-N").expect("workload");
    let split = Strategy::Split { parallelism: 4, topology_aware: true };
    let intra = SimCluster::aws().with_executors(24, 4);
    let mut t = Table::new(vec![
        "Cores",
        "Spark compute",
        "Sparker compute",
        "Spark reduce",
        "Sparker reduce",
        "Reduce speedup",
        "Sparker driver",
    ]);
    for cores in [8usize, 24, 96, 240, 480, 960] {
        let c = if cores <= 96 {
            intra.shaped_for_cores(cores)
        } else {
            SimCluster::aws().shaped_for_cores(cores)
        };
        let spark = simulate_training(&c, &w, Strategy::Tree, Some(15));
        let sparker = simulate_training(&c, &w, split, Some(15));
        t.row(vec![
            cores.to_string(),
            format!("{:.1}", spark.agg_compute),
            format!("{:.1}", sparker.agg_compute),
            format!("{:.1}", spark.agg_reduce),
            format!("{:.1}", sparker.agg_reduce),
            format!("{:.2}x", spark.agg_reduce / sparker.agg_reduce),
            format!("{:.1}", sparker.driver),
        ]);
    }
    t.print();
    let path = t.write_csv("fig18_strong_scaling").expect("csv");
    println!("\nwrote {}", path.display());
}
