//! Figure 2 — end-to-end time decomposed into aggregation, non-aggregation
//! and non-scalable (driver) computation per workload (8-node BIC, MLlib).
//!
//! Paper: tree aggregation occupies a geometric mean of ~67% of end-to-end
//! time, making it the hot-spot the rest of the paper attacks.

use sparker_bench::{geo_mean, print_header, Table};
use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::all_workloads;

fn main() {
    print_header(
        "Figure 2",
        "Time decomposition per workload on MLlib (8-node BIC)",
        "Paper reference: aggregation ~67% of end-to-end time (geo-mean).",
    );
    let mut t = Table::new(vec![
        "Workload",
        "Agg (s)",
        "Non-agg (s)",
        "Driver (s)",
        "Agg share",
    ]);
    let mut shares = Vec::new();
    for w in all_workloads() {
        let b = simulate_training(&SimCluster::bic(), &w, Strategy::Tree, None);
        let agg = b.agg_compute + b.agg_reduce;
        shares.push(b.agg_fraction());
        t.row(vec![
            w.name.to_string(),
            format!("{agg:.1}"),
            format!("{:.1}", b.non_agg),
            format!("{:.1}", b.driver),
            format!("{:.0}%", b.agg_fraction() * 100.0),
        ]);
    }
    t.print();
    println!(
        "\ngeo-mean aggregation share: {:.1}%  (paper: 67.2%)",
        geo_mean(&shares) * 100.0
    );
    let path = t.write_csv("fig02_time_breakdown").expect("csv");
    println!("wrote {}", path.display());
}
