//! Figure 4 — decomposed end-to-end time of LDA-N with 4..960 cores on AWS
//! (vanilla Spark, 15 iterations).
//!
//! Paper: compute 272s → 58s (4.66x) while reduction rises 26s → 111s
//! (4.22x); the reduction share grows from 7% to 45% of end-to-end time.

use sparker_bench::{print_header, Table};
use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::by_name;

fn main() {
    print_header(
        "Figure 4",
        "Decomposed end-to-end time of LDA-N vs cores on AWS (Spark)",
        "Paper reference: compute 272s->58s; reduce 26s->111s; reduce share 7%->45%.",
    );
    let w = by_name("LDA-N").expect("workload");
    // Below one node the paper shrinks executors to 4 cores each.
    let intra = SimCluster::aws().with_executors(24, 4);
    let mut t = Table::new(vec![
        "Cores",
        "Driver (s)",
        "Non-agg (s)",
        "Agg-compute (s)",
        "Agg-reduce (s)",
        "Reduce share",
    ]);
    for cores in [8usize, 24, 48, 96, 192, 384, 960] {
        let c = if cores <= 96 {
            intra.shaped_for_cores(cores)
        } else {
            SimCluster::aws().shaped_for_cores(cores)
        };
        let b = simulate_training(&c, &w, Strategy::Tree, Some(15));
        t.row(vec![
            cores.to_string(),
            format!("{:.0}", b.driver),
            format!("{:.0}", b.non_agg),
            format!("{:.0}", b.agg_compute),
            format!("{:.0}", b.agg_reduce),
            format!("{:.0}%", b.agg_reduce / b.total() * 100.0),
        ]);
    }
    t.print();
    let path = t.write_csv("fig04_lda_aws_scaling").expect("csv");
    println!("\nwrote {}", path.display());
}
