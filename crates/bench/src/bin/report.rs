//! One-shot reproduction report: runs every simulator-backed experiment and
//! writes a consolidated markdown summary (`results/report.md`) with
//! paper-vs-measured values — the numbers EXPERIMENTS.md tracks, regenerated
//! in one command.
//!
//! (The wall-clock-measured figures — 12, 13, 16-threaded, ablations — run
//! real shaped transports and take minutes; run their binaries directly.)


use sparker_bench::geo_mean;
use sparker_net::profile::TransportKind;
use sparker_sim::aggsim::{simulate_aggregation, simulate_reduce_scatter, Strategy};
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::p2p::latency;
use sparker_sim::workloads::{all_workloads, by_name};

struct Report {
    body: String,
    checks: Vec<(String, bool)>,
}

impl Report {
    fn new() -> Self {
        Self { body: String::new(), checks: Vec::new() }
    }

    fn line(&mut self, s: &str) {
        self.body.push_str(s);
        self.body.push('\n');
        println!("{s}");
    }

    fn check(&mut self, name: &str, paper: &str, measured: &str, ok: bool) {
        self.line(&format!(
            "| {name} | {paper} | {measured} | {} |",
            if ok { "✅" } else { "🟡" }
        ));
        self.checks.push((name.to_string(), ok));
    }
}

fn main() {
    let mut r = Report::new();
    r.line("# Sparker reproduction report (simulator-backed experiments)");
    r.line("");
    r.line("| experiment | paper | measured | shape |");
    r.line("|---|---|---|---|");

    let split = Strategy::Split { parallelism: 4, topology_aware: true };
    let mb = 1024.0 * 1024.0;

    // Figure 1.
    let speedups: Vec<f64> = all_workloads()
        .iter()
        .map(|w| {
            simulate_training(&SimCluster::bic().with_nodes(1), w, Strategy::Tree, None).total()
                / simulate_training(&SimCluster::bic(), w, Strategy::Tree, None).total()
        })
        .collect();
    let gm = geo_mean(&speedups);
    r.check("Fig 1: MLlib 8-node geo-mean speedup", "1.25x", &format!("{gm:.2}x"), (0.8..2.0).contains(&gm));

    // Figure 2.
    let shares: Vec<f64> = all_workloads()
        .iter()
        .map(|w| simulate_training(&SimCluster::bic(), w, Strategy::Tree, None).agg_fraction())
        .collect();
    let gm = geo_mean(&shares);
    r.check("Fig 2: aggregation share (geo-mean)", "67%", &format!("{:.0}%", gm * 100.0), (0.45..0.9).contains(&gm));

    // Figure 3.
    let w = by_name("LDA-N").unwrap();
    let one = simulate_training(&SimCluster::bic().with_nodes(1), &w, Strategy::Tree, Some(40));
    let eight = simulate_training(&SimCluster::bic(), &w, Strategy::Tree, Some(40));
    r.check(
        "Fig 3: LDA-N compute speedup 24->192 cores",
        "4.47x",
        &format!("{:.2}x", one.agg_compute / eight.agg_compute),
        one.agg_compute / eight.agg_compute > 3.0,
    );
    r.check(
        "Fig 3: LDA-N reduce anti-scales",
        "111s -> 187s",
        &format!("{:.0}s -> {:.0}s", one.agg_reduce, eight.agg_reduce),
        eight.agg_reduce > one.agg_reduce,
    );

    // Figure 12 (model side).
    let c = SimCluster::bic();
    let mpi = latency(&c, TransportKind::MpiRef) * 1e6;
    let sc = latency(&c, TransportKind::ScalableComm) * 1e6;
    let bm = latency(&c, TransportKind::BlockManager) * 1e6;
    r.check("Fig 12: MPI / SC / BM latency", "16 / 73 / 3861 us",
        &format!("{mpi:.0} / {sc:.0} / {bm:.0} us"),
        (sc / mpi) > 3.5 && (bm / mpi) > 150.0);

    // Figure 14.
    let p1 = simulate_reduce_scatter(&c, 256.0 * mb, 1, true);
    let p8 = simulate_reduce_scatter(&c, 256.0 * mb, 8, true);
    r.check("Fig 14: parallelism speedup P1->P8", "3.06x", &format!("{:.2}x", p1 / p8), (2.0..4.5).contains(&(p1 / p8)));
    let un = simulate_reduce_scatter(&c, 256.0 * mb, 4, false);
    let aw = simulate_reduce_scatter(&c, 256.0 * mb, 4, true);
    r.check("Fig 14: topology-awareness", "2.76x", &format!("{:.2}x", un / aw), (1.8..4.5).contains(&(un / aw)));

    // Figure 15.
    let s6 = simulate_reduce_scatter(&SimCluster::bic().with_total_executors(6), 256.0 * 1024.0, 4, true);
    let s48 = simulate_reduce_scatter(&SimCluster::bic(), 256.0 * 1024.0, 4, true);
    r.check("Fig 15: 256KB growth 6->48 execs", "5.30x", &format!("{:.2}x", s48 / s6), (3.0..9.0).contains(&(s48 / s6)));
    let l6 = simulate_reduce_scatter(&SimCluster::bic().with_total_executors(6), 256.0 * mb, 4, true);
    let l48 = simulate_reduce_scatter(&SimCluster::bic(), 256.0 * mb, 4, true);
    r.check("Fig 15: 256MB growth 6->48 execs", "1.27x", &format!("{:.2}x", l48 / l6), l48 / l6 < 2.0);

    // Figure 16.
    let parts = 4 * SimCluster::bic().executors();
    let tree = simulate_aggregation(&c, Strategy::Tree, 256.0 * mb, parts, 0.05).total();
    let imm = simulate_aggregation(&c, Strategy::TreeImm, 256.0 * mb, parts, 0.05).total();
    let spl = simulate_aggregation(&c, split, 256.0 * mb, parts, 0.05).total();
    r.check("Fig 16: split vs tree @256MB/8 nodes", "6.48x", &format!("{:.2}x", tree / spl), (4.0..13.0).contains(&(tree / spl)));
    r.check("Fig 16: IMM vs tree @256MB", "1.46x", &format!("{:.2}x", tree / imm), (1.1..2.2).contains(&(tree / imm)));
    let t1k = simulate_aggregation(&c, Strategy::Tree, 1024.0, parts, 0.05).total();
    let s1k = simulate_aggregation(&c, split, 1024.0, parts, 0.05).total();
    r.check("Fig 16: tie at 1KB", "~1x", &format!("{:.2}x", t1k / s1k), (0.7..1.5).contains(&(t1k / s1k)));

    // Figure 17.
    let mut bic_s = Vec::new();
    let mut aws_s = Vec::new();
    for w in all_workloads() {
        let b = SimCluster::bic();
        let a = SimCluster::aws();
        bic_s.push(
            simulate_training(&b, &w, Strategy::Tree, None).total()
                / simulate_training(&b, &w, split, None).total(),
        );
        aws_s.push(
            simulate_training(&a, &w, Strategy::Tree, None).total()
                / simulate_training(&a, &w, split, None).total(),
        );
    }
    r.check("Fig 17: end-to-end geo-mean (BIC)", "1.60x", &format!("{:.2}x", geo_mean(&bic_s)), geo_mean(&bic_s) > 1.2);
    r.check("Fig 17: end-to-end geo-mean (AWS)", "1.81x", &format!("{:.2}x", geo_mean(&aws_s)), geo_mean(&aws_s) > 1.2);

    // Figure 18.
    let aws8 = SimCluster::aws().with_executors(24, 4).shaped_for_cores(8);
    let sp8 = simulate_training(&aws8, &w, Strategy::Tree, Some(15));
    let sk8 = simulate_training(&aws8, &w, split, Some(15));
    r.check(
        "Fig 18: reduce speedup @8 cores",
        "4.19x",
        &format!("{:.2}x", sp8.agg_reduce / sk8.agg_reduce),
        (2.5..8.0).contains(&(sp8.agg_reduce / sk8.agg_reduce)),
    );
    let aws960 = SimCluster::aws();
    let sk960 = simulate_training(&aws960, &w, split, Some(15));
    r.check(
        "Fig 18/§6: driver dominates Sparker at 960 cores",
        "qualitative",
        &format!("driver {:.0}s vs reduce {:.0}s", sk960.driver, sk960.agg_reduce),
        sk960.driver > sk960.agg_reduce,
    );

    let ok = r.checks.iter().filter(|(_, ok)| *ok).count();
    let total = r.checks.len();
    r.line("");
    r.line(&format!("**{ok}/{total} shape checks within the expected bands.**"));

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/report.md", &r.body).expect("write report");
    println!("\nwrote results/report.md");
}
