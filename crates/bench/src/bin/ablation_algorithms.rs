//! Ablation — reduce-scatter algorithm choice (DESIGN.md §4.3).
//!
//! Sparker picks the ring; the MPI literature also uses recursive halving.
//! This harness runs split aggregation with both algorithms on the threaded
//! engine under BIC shaping and reports their times, plus the ring's
//! blocked-segment-range assignment against a hypothetical strided one
//! (computed analytically: strided assignment interleaves channels over
//! segments, which does not change traffic on the PDR — documented here for
//! completeness).

use sparker_bench::{fmt_secs, print_header, Table};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_engine::ops::split_aggregate::{RsAlgorithm, SplitAggOpts};
use sparker_net::codec::F64Array;

fn run(nodes: usize, elems: usize, algorithm: RsAlgorithm) -> f64 {
    const SCALE: f64 = 16.0;
    let cluster = LocalCluster::new(ClusterSpec::bic(nodes, SCALE).with_shape(2, 2));
    let partitions = 2 * cluster.num_executors();
    let data = cluster
        .generate(partitions, move |p| vec![vec![p as f64; elems]; 1])
        .cache();
    data.count().unwrap();
    let seq = move |mut acc: F64Array, v: &Vec<f64>| {
        for (a, x) in acc.0.iter_mut().zip(v) {
            *a += *x;
        }
        acc
    };
    data.split_aggregate(
        F64Array(vec![0.0; elems]),
        seq,
        sparker::dense::merge,
        sparker::dense::split,
        sparker::dense::merge_segments,
        sparker::dense::concat,
        SplitAggOpts { parallelism: Some(4), algorithm, ..Default::default() },
    )
    .unwrap()
    .1
    .reduce
    .as_secs_f64()
}

fn main() {
    print_header(
        "Ablation: reduce-scatter algorithm",
        "Ring (paper's choice) vs recursive halving, split-aggregation reduce time",
        "Both move (N-1)/N of one aggregator per executor; the ring sends smaller messages\n\
         over neighbours only (topology-friendly), halving sends log2(N) larger exchanges\n\
         across node boundaries.",
    );
    let mut t = Table::new(vec!["Paper size", "Nodes", "Ring reduce", "Halving reduce"]);
    for (label, paper_bytes) in [("8MB", 8.0 * 1024.0 * 1024.0), ("64MB", 64.0 * 1024.0 * 1024.0)]
    {
        for nodes in [2usize, 4] {
            let elems = (paper_bytes / 16.0 / 8.0) as usize;
            let ring = run(nodes, elems, RsAlgorithm::Ring);
            let halving = run(nodes, elems, RsAlgorithm::Halving);
            t.row(vec![
                label.to_string(),
                nodes.to_string(),
                fmt_secs(ring),
                fmt_secs(halving),
            ]);
        }
    }
    t.print();
    let path = t.write_csv("ablation_algorithms").expect("csv");
    println!("\nwrote {}", path.display());
}
