//! Figure 15 — scalability of the scalable communicator's reduce-scatter,
//! with MPI as the reference, at 256 KB and 256 MB message sizes.
//!
//! Paper reference: at 256 MB time grows 784 ms → 993 ms (1.27×) from 6 to
//! 48 executors; at 256 KB it grows 1.51 ms → 7.98 ms (5.30×, latency
//! bound). The communicator scales *better* than this MPI implementation,
//! which picks a latency-linear algorithm.

use sparker_bench::{fmt_secs, print_header, Table};
use sparker_sim::aggsim::{mpi_reduce_scatter, simulate_reduce_scatter};
use sparker_sim::cluster::SimCluster;

fn main() {
    print_header(
        "Figure 15",
        "Reduce-scatter scalability: SC vs MPI, 256KB and 256MB",
        "Paper reference: 256MB 784ms->993ms (1.27x); 256KB 1.51ms->7.98ms (5.30x).",
    );
    let kb = 256.0 * 1024.0;
    let mb = 256.0 * 1024.0 * 1024.0;
    let mut t = Table::new(vec![
        "Executors",
        "SC 256KB",
        "MPI 256KB",
        "SC 256MB",
        "MPI 256MB",
    ]);
    let mut first = None;
    let mut last = None;
    for e in [6usize, 12, 24, 48] {
        // The paper's sweep spreads executors over the fixed 8-node cluster.
        let c = SimCluster::bic().with_total_executors(e);
        let sc_small = simulate_reduce_scatter(&c, kb, 4, true);
        let sc_large = simulate_reduce_scatter(&c, mb, 4, true);
        if e == 6 {
            first = Some((sc_small, sc_large));
        }
        if e == 48 {
            last = Some((sc_small, sc_large));
        }
        t.row(vec![
            e.to_string(),
            fmt_secs(sc_small),
            fmt_secs(mpi_reduce_scatter(&c, kb)),
            fmt_secs(sc_large),
            fmt_secs(mpi_reduce_scatter(&c, mb)),
        ]);
    }
    t.print();
    let (f, l) = (first.unwrap(), last.unwrap());
    println!(
        "\nSC growth 6->48 executors: 256KB {:.2}x (paper 5.30x); 256MB {:.2}x (paper 1.27x)",
        l.0 / f.0,
        l.1 / f.1
    );
    let path = t.write_csv("fig15_rs_scalability").expect("csv");
    println!("wrote {}", path.display());
}
