//! Multi-job scheduler load generator and fairness gate (PR 8's `BENCH_8.json`).
//!
//! Drives `sparker-sched` the way a serving tier would — many clients,
//! thousands of small `split_aggregate` jobs — and asserts its own
//! acceptance bounds, so `--smoke` doubles as CI step 10 of
//! `tools/check_hermetic.sh`:
//!
//! * **throughput** — 4 client threads, closed-loop window 8, over a
//!   4-lane [`EngineBackend`]. Every result is compared bit-for-bit
//!   against [`EngineBackend::oracle`]; reports jobs/s and closed-loop
//!   p50/p99/p999, asserts a jobs/s floor.
//! * **fairness** — a bursty adversary keeps ~12 expensive jobs queued on
//!   one lane while a well-behaved victim submits small jobs one at a
//!   time. Under FIFO the victim's p99 sits behind the whole burst; under
//!   fair-share (DRR) it is bounded by ~one adversary job. The bench
//!   asserts fair-share (and strict-priority) keep victim p99 within
//!   4x the measured mean big-job service time, and that FIFO does *not*.
//! * **queue_full** — a bounded queue at capacity rejects with the typed
//!   [`SchedError::QueueFull`] and recovers once drained.
//! * **backpressure** — with the global frame pool saturated (held
//!   buffers), a low-priority submission is shed with the typed
//!   [`SchedError::PoolSaturated`] and admits again after release.
//!
//! Emits machine-readable JSON (no commit hash, no timestamps) to
//! `results/bench_jobs.json` and the repo root `BENCH_8.json`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

use sparker_bench::{print_header, Table};
use sparker_net::pool;
use sparker_sched::{
    AggJob, Backend, EngineBackend, FairShare, Fifo, JobCtx, JobHandle, JobRequest, Policy,
    Priority, SchedConfig, SchedError, Scheduler, StrictPriority,
};

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    assert!(!sorted_us.is_empty());
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Closed-loop throughput: `clients` threads each run `jobs_per_client`
/// small jobs with `window` outstanding, verifying every result against the
/// serial oracle. Returns (jobs/s, sorted closed-loop latencies in us).
fn run_throughput(
    sched: &Scheduler<EngineBackend>,
    clients: u32,
    jobs_per_client: usize,
    window: usize,
    dim: usize,
    parts: usize,
) -> (f64, Vec<u64>) {
    let t0 = Instant::now();
    let mut lat_us: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(jobs_per_client);
                    type Pending = VecDeque<(Instant, AggJob, JobHandle<Vec<f64>>)>;
                    let mut pending: Pending = VecDeque::with_capacity(window);
                    let drain = |q: &mut Pending, lat: &mut Vec<u64>| {
                            let (sub, job, h) = q.pop_front().unwrap();
                            let got = h.wait().expect("job runs");
                            lat.push(sub.elapsed().as_micros() as u64);
                            let want = EngineBackend::oracle(&job);
                            assert_eq!(
                                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                                "client {client} job diverged from serial oracle"
                            );
                        };
                    for i in 0..jobs_per_client {
                        let job = AggJob {
                            seed: (client as u64) << 32 | i as u64,
                            dim,
                            parts,
                        };
                        // Bounded queue: retry QueueFull (the typed reject is
                        // the backoff signal a serving client acts on).
                        let h = loop {
                            match sched.submit(JobRequest::new(client, job)) {
                                Ok(h) => break h,
                                Err(SchedError::QueueFull { .. }) => {
                                    drain(&mut pending, &mut lat)
                                }
                                Err(e) => panic!("unexpected reject: {e}"),
                            }
                        };
                        pending.push_back((Instant::now(), job, h));
                        if pending.len() >= window {
                            drain(&mut pending, &mut lat);
                        }
                    }
                    while !pending.is_empty() {
                        drain(&mut pending, &mut lat);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    ((clients as usize * jobs_per_client) as f64 / secs, lat_us)
}

/// Victim latencies (sorted, us) under `policy` while an adversary keeps
/// `burst` big jobs outstanding on a single lane.
fn run_fairness(
    policy: Box<dyn Policy>,
    victim_jobs: usize,
    victim_priority: Priority,
    burst: usize,
    small: AggJob,
    big: AggJob,
) -> (Vec<u64>, u64) {
    let backend = EngineBackend::new(1, 2, 1);
    let cfg = SchedConfig { capacity: 64, ..SchedConfig::default() };
    let sched = Scheduler::new(backend, policy, cfg);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Adversary: client 1, bursty — tops the queue back up the moment a
        // big job finishes, so the victim always contends with `burst` of
        // them.
        let adversary = s.spawn(|| {
            let mut done = 0u64;
            let mut pending = VecDeque::with_capacity(burst);
            loop {
                while pending.len() < burst && !stop.load(Ordering::Relaxed) {
                    let req = JobRequest {
                        client: 1,
                        priority: Priority::Normal,
                        cost: 8,
                        job: big,
                    };
                    pending.push_back(sched.submit(req).expect("adversary admitted"));
                }
                match pending.pop_front() {
                    Some(h) => {
                        h.wait().expect("big job runs");
                        done += 1;
                    }
                    None => break,
                }
                if stop.load(Ordering::Relaxed) && pending.is_empty() {
                    break;
                }
            }
            done
        });
        // Victim: client 0, one small job at a time, each latency measured.
        let mut lat = Vec::with_capacity(victim_jobs);
        // Let the adversary's burst build up first.
        while sched.queue_depth() < burst - 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..victim_jobs {
            let mut job = small;
            job.seed = 0xF00D + i as u64;
            let req = JobRequest { client: 0, priority: victim_priority, cost: 1, job };
            let t0 = Instant::now();
            let h = sched.submit(req).expect("victim admitted");
            let got = h.wait().expect("victim job runs");
            lat.push(t0.elapsed().as_micros() as u64);
            let want = EngineBackend::oracle(&job);
            assert_eq!(
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "victim job diverged from serial oracle under contention"
            );
        }
        stop.store(true, Ordering::Relaxed);
        let adversary_done = adversary.join().expect("adversary thread");
        lat.sort_unstable();
        (lat, adversary_done)
    })
}

/// Holds every dispatched job until opened — pins jobs in the queue so the
/// queue-full path is deterministic, not timing-dependent.
struct Gate {
    open: std::sync::Mutex<bool>,
    cv: Condvar,
}

#[derive(Clone)]
struct GateBackend(Arc<Gate>);

impl Backend for GateBackend {
    type Job = u64;
    type Output = u64;

    fn lanes(&self) -> usize {
        1
    }

    fn run(&self, _lane: usize, _ctx: JobCtx, job: &u64) -> Result<u64, String> {
        let mut open = self.0.open.lock().unwrap();
        while !*open {
            open = self.0.cv.wait(open).unwrap();
        }
        Ok(*job)
    }
}

/// Minimal JSON writer (same convention as the other benches: flat schema,
/// dependency-free).
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, key: &str, value: String) -> &mut Self {
        if !self.0.ends_with("{\n") {
            self.0.push_str(",\n");
        }
        self.0.push_str(&format!("  \"{key}\": {value}"));
        self
    }
    fn finish(mut self) -> String {
        self.0.push_str("\n}\n");
        self.0
    }
}

fn obj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print_header(
        "bench_jobs",
        "multi-job scheduler: throughput, fairness, typed admission control",
        "Every section asserts its own acceptance bound; --smoke is CI step 10\n\
         of tools/check_hermetic.sh. JSON lands in results/bench_jobs.json\n\
         and BENCH_8.json.",
    );
    let (jobs_per_client, floor_jobs_per_sec, victim_jobs, big_dim) = if smoke {
        (150usize, 150.0, 10usize, 1 << 16)
    } else {
        (1000usize, 1000.0, 40usize, 1 << 18)
    };
    let clients = 4u32;
    let small = AggJob { seed: 0, dim: 64, parts: 2 };
    let big = AggJob { seed: 1, dim: big_dim, parts: 4 };
    let burst = 12usize;

    // --- Throughput ------------------------------------------------------
    let sched = Scheduler::new(
        EngineBackend::new(4, 2, 1),
        Box::new(Fifo),
        SchedConfig { capacity: 256, ..SchedConfig::default() },
    );
    let (jobs_per_sec, lat) =
        run_throughput(&sched, clients, jobs_per_client, 8, small.dim, small.parts);
    drop(sched);
    let (p50, p99, p999) =
        (percentile(&lat, 50.0), percentile(&lat, 99.0), percentile(&lat, 99.9));
    assert!(
        jobs_per_sec >= floor_jobs_per_sec,
        "throughput floor: {jobs_per_sec:.0} jobs/s < {floor_jobs_per_sec:.0}"
    );

    // --- Fairness --------------------------------------------------------
    // Calibrate the bound from the uncontended big-job service time.
    let calib = EngineBackend::new(1, 2, 1);
    let mut big_us = Vec::new();
    for i in 0..3u64 {
        let t0 = Instant::now();
        calib
            .run(0, JobCtx { job_id: 1 + i, epoch_ns: 1 }, &big)
            .expect("calibration job runs");
        big_us.push(t0.elapsed().as_micros() as u64);
    }
    drop(calib);
    let big_mean_us = big_us.iter().sum::<u64>() / big_us.len() as u64;
    let bound_us = 4 * big_mean_us;

    let (fifo_lat, fifo_adv) =
        run_fairness(Box::new(Fifo), victim_jobs, Priority::Normal, burst, small, big);
    let (fair_lat, fair_adv) = run_fairness(
        Box::new(FairShare::new(8)),
        victim_jobs,
        Priority::Normal,
        burst,
        small,
        big,
    );
    let (strict_lat, strict_adv) = run_fairness(
        Box::new(StrictPriority),
        victim_jobs,
        Priority::High,
        burst,
        small,
        big,
    );
    let fifo_p99 = percentile(&fifo_lat, 99.0);
    let fair_p99 = percentile(&fair_lat, 99.0);
    let strict_p99 = percentile(&strict_lat, 99.0);
    assert!(
        fair_p99 <= bound_us,
        "fair-share must bound victim p99 to ~one adversary job: {fair_p99}us > {bound_us}us"
    );
    assert!(
        strict_p99 <= bound_us,
        "strict-priority must bound a High victim's p99: {strict_p99}us > {bound_us}us"
    );
    assert!(
        fifo_p99 > bound_us,
        "FIFO should NOT hold the bound under a {burst}-deep burst: \
         {fifo_p99}us <= {bound_us}us (adversary too cheap?)"
    );

    // --- Queue full ------------------------------------------------------
    let gate = Arc::new(Gate { open: std::sync::Mutex::new(false), cv: Condvar::new() });
    let qcap = 4usize;
    let qsched = Scheduler::new(
        GateBackend(gate.clone()),
        Box::new(Fifo),
        SchedConfig { capacity: qcap, ..SchedConfig::default() },
    );
    let first = qsched.submit(JobRequest::new(0, 0)).expect("dispatches");
    while qsched.inflight() != 1 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let queued: Vec<_> = (1..=qcap as u64)
        .map(|j| qsched.submit(JobRequest::new(0, j)).expect("fills the queue"))
        .collect();
    let rejected = match qsched.submit(JobRequest::new(0, 99)) {
        Err(SchedError::QueueFull { capacity }) => {
            assert_eq!(capacity, qcap);
            true
        }
        Ok(_) => panic!("submission beyond capacity must reject"),
        Err(e) => panic!("expected QueueFull, got {e}"),
    };
    *gate.open.lock().unwrap() = true;
    gate.cv.notify_all();
    assert_eq!(first.wait().expect("runs"), 0);
    for (j, h) in queued.into_iter().enumerate() {
        assert_eq!(h.wait().expect("runs"), j as u64 + 1);
    }
    let recovered = qsched.submit(JobRequest::new(0, 5)).expect("space again");
    assert_eq!(recovered.wait().expect("runs"), 5);
    drop(qsched);

    // --- Backpressure ----------------------------------------------------
    let g = pool::global();
    let held: Vec<Vec<u8>> = (0..80).map(|_| g.acquire(1 << 20)).collect();
    let pressure = g.pressure_permille();
    let bsched = Scheduler::new(
        EngineBackend::new(1, 2, 1),
        Box::new(Fifo),
        SchedConfig::default(),
    );
    let low = JobRequest { client: 0, priority: Priority::Low, cost: 1, job: small };
    let shed = match bsched.submit(low.clone()) {
        Err(SchedError::PoolSaturated { pressure_permille, limit_permille }) => {
            assert!(pressure_permille >= limit_permille);
            true
        }
        Ok(_) => panic!("low-priority job must shed under pool saturation"),
        Err(e) => panic!("expected PoolSaturated, got {e}"),
    };
    for buf in held {
        g.recycle_vec(buf);
    }
    let after = bsched.submit(low).expect("admits after release");
    let got = after.wait().expect("runs after release");
    let want = EngineBackend::oracle(&small);
    assert_eq!(
        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    drop(bsched);

    // --- Report ----------------------------------------------------------
    let mut t = Table::new(vec!["Section", "Metric", "Value", "Bound"]);
    t.row(vec![
        "throughput".to_string(),
        "jobs/s".to_string(),
        format!("{jobs_per_sec:.0}"),
        format!(">= {floor_jobs_per_sec:.0}"),
    ]);
    t.row(vec![
        "throughput".to_string(),
        "p50/p99/p999 us".to_string(),
        format!("{p50}/{p99}/{p999}"),
        "bit-exact".to_string(),
    ]);
    t.row(vec![
        "fairness".to_string(),
        "victim p99 us (fifo)".to_string(),
        fifo_p99.to_string(),
        format!("> {bound_us} (burst-exposed)"),
    ]);
    t.row(vec![
        "fairness".to_string(),
        "victim p99 us (fair-share)".to_string(),
        fair_p99.to_string(),
        format!("<= {bound_us}"),
    ]);
    t.row(vec![
        "fairness".to_string(),
        "victim p99 us (strict)".to_string(),
        strict_p99.to_string(),
        format!("<= {bound_us}"),
    ]);
    t.row(vec![
        "admission".to_string(),
        "queue_full / pool_shed".to_string(),
        format!("{rejected}/{shed}"),
        "typed".to_string(),
    ]);
    t.print();

    let lat_obj = |l: &[u64]| {
        obj(&[
            ("p50_us", percentile(l, 50.0).to_string()),
            ("p99_us", percentile(l, 99.0).to_string()),
            ("p999_us", percentile(l, 99.9).to_string()),
        ])
    };
    let mut json = Json::new();
    json.field("bench", "\"bench_jobs\"".to_string());
    json.field("mode", format!("\"{}\"", if smoke { "smoke" } else { "full" }));
    json.field(
        "throughput",
        obj(&[
            ("clients", clients.to_string()),
            ("jobs_per_client", jobs_per_client.to_string()),
            ("lanes", "4".to_string()),
            ("dim", small.dim.to_string()),
            ("parts", small.parts.to_string()),
            ("jobs_per_sec", format!("{jobs_per_sec:.1}")),
            ("p50_us", p50.to_string()),
            ("p99_us", p99.to_string()),
            ("p999_us", p999.to_string()),
            ("floor_jobs_per_sec", format!("{floor_jobs_per_sec:.0}")),
            ("bit_exact", "true".to_string()),
        ]),
    );
    json.field(
        "fairness",
        obj(&[
            ("burst", burst.to_string()),
            ("victim_jobs", victim_jobs.to_string()),
            ("big_dim", big.dim.to_string()),
            ("big_service_mean_us", big_mean_us.to_string()),
            ("victim_p99_bound_us", bound_us.to_string()),
            ("fifo", lat_obj(&fifo_lat)),
            ("fair_share", lat_obj(&fair_lat)),
            ("strict_priority", lat_obj(&strict_lat)),
            ("adversary_jobs_fifo", fifo_adv.to_string()),
            ("adversary_jobs_fair", fair_adv.to_string()),
            ("adversary_jobs_strict", strict_adv.to_string()),
            ("fair_share_holds_bound", (fair_p99 <= bound_us).to_string()),
            ("strict_holds_bound", (strict_p99 <= bound_us).to_string()),
            ("fifo_breaks_bound", (fifo_p99 > bound_us).to_string()),
        ]),
    );
    json.field(
        "admission",
        obj(&[
            ("queue_capacity", qcap.to_string()),
            ("queue_full_typed", rejected.to_string()),
            ("pool_pressure_permille", pressure.to_string()),
            ("pool_shed_typed", shed.to_string()),
            ("recovered_after_release", "true".to_string()),
        ]),
    );
    let body = json.finish();

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/bench_jobs.json", &body).expect("write results json");
    std::fs::write("BENCH_8.json", &body).expect("write BENCH_8.json");
    println!("\nwrote results/bench_jobs.json and BENCH_8.json");
    println!("all scheduler bounds held");
}
