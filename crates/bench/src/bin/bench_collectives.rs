//! Collective-algorithm ladder and tuner acceptance gate (PR 9's
//! `BENCH_9.json`).
//!
//! Two halves, both self-asserting so `--smoke` doubles as CI step 11 of
//! `tools/check_hermetic.sh`:
//!
//! * **DES ladder** — every algorithm in the tuner's menu
//!   ([`sparker_tuner::Algo`]) simulated over 1 KiB–4 MiB × dense/sparse
//!   densities at paper scale ([`SimCluster::aws`], 120 executors /
//!   960 cores; full mode adds BIC). Bounds: hierarchical beats the flat
//!   ring for ≥ 1 MiB dense on the multi-node cluster, and the calibrated
//!   selector is never worse than the best static choice by more than the
//!   ground-truth margin ([`sparker_sim::ground_truth_margin`]) anywhere
//!   on the ladder.
//! * **Calibrate → select → run** — a real threaded 2-node-emulated ring
//!   cluster runs flat rings under span tracing; the recorded `ring.step`
//!   spans are least-squares-fitted into a [`CostModel`]
//!   ([`calibrate_from_spans`]), the fitted selector picks an algorithm
//!   for a 4 MiB job, and the hierarchical path runs on the same cluster.
//!   Bounds: calibration yields samples for both link classes, the
//!   hierarchical result is bit-exact against the sequential oracle, and
//!   the `tuner.selected.*` counter plus `tuner.predict_vs_actual_permille`
//!   gauge are published.
//!
//! Emits machine-readable JSON (no commit hash, no timestamps) to
//! `results/bench_collectives.json` and the repo root `BENCH_9.json`.

use std::time::Instant;

use sparker_bench::{fmt_secs, print_header, Table};
use sparker_collectives::hierarchical::{
    hierarchical_reduce_scatter_chunked_by, hierarchical_segment_count, node_topology_of,
};
use sparker_collectives::ring::ring_reduce_scatter_chunked;
use sparker_collectives::segment::{Segment, U64SumSegment};
use sparker_collectives::testing::{run_ring_cluster, RingClusterSpec};
use sparker_net::topology::{round_robin_layout, RingOrder, RingTopology};
use sparker_sim::{ground_truth_margin, model_for, simulate_algo, SimCluster};
use sparker_tuner::{calibrate_from_spans, Algo, CostModel, JobShape, Selector};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// One ladder entry: DES seconds per algorithm plus the selector's pick.
struct LadderRow {
    cluster: &'static str,
    bytes: u64,
    density_permille: u32,
    selected: Algo,
    selected_secs: f64,
    best: Algo,
    best_secs: f64,
    flat_secs: f64,
    hier_secs: f64,
}

/// Sweeps the full algorithm menu through the DES for one cluster, checking
/// the selector bound on every entry.
fn run_ladder(
    cluster: &SimCluster,
    sizes: &[u64],
    densities: &[u32],
    parallelism: usize,
) -> Vec<LadderRow> {
    let model = model_for(cluster, 150);
    let sel = Selector::new(model);
    let mut rows = Vec::new();
    for &bytes in sizes {
        for &density in densities {
            let shape = JobShape {
                bytes,
                density_permille: density,
                executors: cluster.executors(),
                nodes: cluster.nodes,
                parallelism,
            };
            // The DES sees the wire representation the density-adaptive
            // codec would put on the network.
            let wire = model.wire_bytes(&shape);
            let times: Vec<(Algo, f64)> = Algo::candidates()
                .into_iter()
                .map(|a| (a, simulate_algo(cluster, a, wire, parallelism)))
                .collect();
            let d = sel.select(&shape);
            let (best, best_secs) = times
                .iter()
                .copied()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            let of = |algo: Algo| times.iter().find(|(a, _)| *a == algo).unwrap().1;
            let selected_secs = of(d.algo);
            let margin = ground_truth_margin(&model, wire);
            assert!(
                selected_secs <= best_secs * margin,
                "{} {bytes} B d={density}: selected {:?} = {selected_secs:.4}s, \
                 best {best:?} = {best_secs:.4}s exceeds margin {margin:.2}",
                cluster.name,
                d.algo,
            );
            assert_eq!(
                d.sparse,
                model.prefers_sparse(&shape),
                "selector's wire-format choice must follow the model"
            );
            rows.push(LadderRow {
                cluster: cluster.name,
                bytes,
                density_permille: density,
                selected: d.algo,
                selected_secs,
                best,
                best_secs,
                flat_secs: of(Algo::FlatRing),
                hier_secs: of(Algo::Hierarchical),
            });
        }
    }
    rows
}

/// Seeds `total` deterministic integer segments for `rank`.
fn seed_segments(rank: usize, total: usize, elems: usize) -> Vec<U64SumSegment> {
    (0..total)
        .map(|g| U64SumSegment(vec![(rank as u64 + 1) * 1000 + g as u64; elems]))
        .collect()
}

/// The sequential oracle for `seed_segments` summed over `n` ranks.
fn expected_sum(n: usize, g: usize) -> u64 {
    (1000 * n * (n + 1) / 2 + n * g) as u64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print_header(
        "bench_collectives",
        "auto-tuned collectives: DES algorithm ladder + calibrate/select/run",
        "Every section asserts its own acceptance bound; --smoke is CI step 11\n\
         of tools/check_hermetic.sh. JSON lands in results/bench_collectives.json\n\
         and BENCH_9.json.",
    );

    // --- DES ladder -----------------------------------------------------
    let parallelism = 4;
    let (sizes, densities): (Vec<u64>, Vec<u32>) = if smoke {
        (vec![4 * KB, 64 * KB, MB, 4 * MB], vec![1000, 10])
    } else {
        (
            vec![KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, MB, 4 * MB],
            vec![1000, 100, 10],
        )
    };
    let aws = SimCluster::aws();
    let mut rows = run_ladder(&aws, &sizes, &densities, parallelism);
    if !smoke {
        rows.extend(run_ladder(&SimCluster::bic(), &sizes, &densities, parallelism));
    }

    // Headline bound: two-level beats the flat ring for every >=1 MiB dense
    // entry at paper scale (10 nodes x 12 executors).
    for r in rows.iter().filter(|r| {
        r.cluster == "aws" && r.density_permille == 1000 && r.bytes >= MB
    }) {
        assert!(
            r.hier_secs < r.flat_secs,
            "aws {} B dense: hierarchical {:.4}s must beat flat ring {:.4}s",
            r.bytes,
            r.hier_secs,
            r.flat_secs
        );
    }

    let mut t = Table::new(vec!["cluster", "bytes", "density", "selected", "t(sel)", "best", "t(best)"]);
    for r in &rows {
        t.row(vec![
            r.cluster.to_string(),
            r.bytes.to_string(),
            r.density_permille.to_string(),
            format!("{:?}", r.selected),
            fmt_secs(r.selected_secs),
            format!("{:?}", r.best),
            fmt_secs(r.best_secs),
        ]);
    }
    t.print();

    // --- Calibrate -> select -> hierarchical run ------------------------
    let (nodes, epn, p, chunks, elems) = if smoke { (2, 4, 2, 2, 512) } else { (2, 4, 2, 2, 4096) };
    let spec = RingClusterSpec::unshaped(nodes, epn, p);
    let n = spec.total_executors();

    // 1. Trace flat-ring runs at spread-out sizes so the fit sees both link
    //    classes and a byte slope.
    sparker_obs::trace::enable();
    sparker_obs::trace::clear();
    for seed_elems in [64usize, 1024, 8 * 1024] {
        let total = p * n;
        run_ring_cluster(&spec, move |comm| {
            let segs = seed_segments(comm.rank(), total, seed_elems);
            ring_reduce_scatter_chunked(&comm, segs, 1).unwrap()
        });
    }
    let spans = sparker_obs::trace::snapshot();
    sparker_obs::trace::disable();

    // 2. Fit link parameters, classifying ring hops through the same
    //    topology-aware ring the harness built.
    let ring = RingTopology::new(
        round_robin_layout(nodes, epn, 1),
        RingOrder::TopologyAware,
        p,
    );
    let topo = node_topology_of(&ring);
    let cal = calibrate_from_spans(&spans, |r, peer| {
        let (r, peer) = (r as usize, peer as usize);
        if r >= ring.size() || peer >= ring.size() || r == peer {
            return None;
        }
        Some(topo.link_class(ring.executor_at(r).id, ring.executor_at(peer).id))
    });
    assert!(
        cal.intra_samples > 0 && cal.inter_samples > 0,
        "calibration must see both link classes: intra {} inter {}",
        cal.intra_samples,
        cal.inter_samples
    );
    let fitted = cal.apply(&CostModel::default_model());
    let roundtrip = CostModel::from_text(&fitted.to_text()).expect("calibration text");
    assert_eq!(roundtrip, fitted, "calibration text must round-trip");

    // 3. Select for a 4 MiB dense job on this cluster shape.
    let sel = Selector::new(fitted);
    let shape = JobShape::dense(4 * MB, n, nodes, p);
    let decision = sel.select(&shape);

    // 4. Run the hierarchical path on the real cluster, bit-exact.
    let t0 = Instant::now();
    let per_rank = run_ring_cluster(&spec, move |comm| {
        let total = hierarchical_segment_count(comm.ring(), chunks);
        let segs = seed_segments(comm.rank(), total, elems);
        hierarchical_reduce_scatter_chunked_by(
            &comm,
            segs,
            &|a: &mut U64SumSegment, b: U64SumSegment| a.merge_from(&b),
            chunks,
        )
        .unwrap()
    });
    let hier_secs = t0.elapsed().as_secs_f64();
    let mut owned: Vec<(usize, Vec<u64>)> = per_rank
        .into_iter()
        .flatten()
        .map(|o| (o.index, o.segment.0))
        .collect();
    owned.sort_by_key(|(i, _)| *i);
    assert_eq!(owned.len(), p * nodes * chunks, "every global chunk owned exactly once");
    for (g, vals) in &owned {
        let want = expected_sum(n, *g);
        assert!(
            vals.iter().all(|&v| v == want),
            "chunk {g}: got {:?}.., want {want}",
            &vals[..vals.len().min(3)]
        );
    }

    // 5. Feed the measured wall-clock back; both tuner metrics must exist.
    sel.observe(&decision, hier_secs);
    let snap = sparker_obs::metrics::snapshot();
    let counter = format!("tuner.selected.{}", decision.algo.name());
    assert!(
        snap.iter().any(|m| m.name == counter),
        "{counter} missing from metrics snapshot"
    );
    assert!(
        snap.iter().any(|m| m.name == "tuner.predict_vs_actual_permille"),
        "predict_vs_actual gauge missing from metrics snapshot"
    );

    let mut t = Table::new(vec!["stage", "value"]);
    t.row(vec!["calib intra samples".to_string(), cal.intra_samples.to_string()]);
    t.row(vec!["calib inter samples".to_string(), cal.inter_samples.to_string()]);
    t.row(vec!["selected".to_string(), format!("{:?}", decision.algo)]);
    t.row(vec!["predicted".to_string(), fmt_secs(decision.predicted_secs)]);
    t.row(vec!["hier run (wall)".to_string(), fmt_secs(hier_secs)]);
    t.row(vec!["bit-exact".to_string(), "yes".to_string()]);
    t.print();

    // --- Report ---------------------------------------------------------
    let mut json = Json::new();
    json.field("bench", "\"bench_collectives\"".to_string());
    json.field("smoke", smoke.to_string());
    let ladder: Vec<String> = rows
        .iter()
        .map(|r| {
            obj(&[
                ("cluster", format!("\"{}\"", r.cluster)),
                ("bytes", r.bytes.to_string()),
                ("density_permille", r.density_permille.to_string()),
                ("selected", format!("\"{}\"", r.selected.name())),
                ("selected_secs", format!("{:.6}", r.selected_secs)),
                ("best", format!("\"{}\"", r.best.name())),
                ("best_secs", format!("{:.6}", r.best_secs)),
                ("flat_secs", format!("{:.6}", r.flat_secs)),
                ("hier_secs", format!("{:.6}", r.hier_secs)),
            ])
        })
        .collect();
    json.field("ladder", format!("[{}]", ladder.join(", ")));
    json.field(
        "calibration",
        obj(&[
            ("intra_samples", cal.intra_samples.to_string()),
            ("inter_samples", cal.inter_samples.to_string()),
            ("intra_alpha_s", format!("{:.9}", fitted.intra.alpha_s)),
            ("inter_alpha_s", format!("{:.9}", fitted.inter.alpha_s)),
        ]),
    );
    json.field(
        "run",
        obj(&[
            ("executors", n.to_string()),
            ("nodes", nodes.to_string()),
            ("parallelism", p.to_string()),
            ("chunks", chunks.to_string()),
            ("selected", format!("\"{}\"", decision.algo.name())),
            ("hier_wall_secs", format!("{:.6}", hier_secs)),
            ("bit_exact", "true".to_string()),
        ]),
    );
    let body = json.finish();

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/bench_collectives.json", &body).expect("write results json");
    std::fs::write("BENCH_9.json", &body).expect("write BENCH_9.json");
    println!("\nwrote results/bench_collectives.json and BENCH_9.json");
    println!("all collective-ladder and tuner bounds held");
}

/// Minimal JSON writer (same shape as the other bench binaries — flat
/// enough that hand-rolling keeps the workspace dependency-free).
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, key: &str, value: String) -> &mut Self {
        if !self.0.ends_with("{\n") {
            self.0.push_str(",\n");
        }
        self.0.push_str(&format!("  \"{key}\": {value}"));
        self
    }
    fn finish(mut self) -> String {
        self.0.push_str("\n}\n");
        self.0
    }
}

fn obj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}
