//! Hot-path micro-benchmark and perf-regression gate (PR 5's `BENCH_5.json`).
//!
//! Measures the three reduction hot-path knobs this trajectory introduced
//! and asserts its own acceptance bounds, so `--smoke` doubles as CI step 7
//! of `tools/check_hermetic.sh`:
//!
//! * **pool** — the same chunk-pipelined reduce-scatter workload with the
//!   global [`sparker_net::FramePool`] enabled vs disabled. Frame
//!   allocations are the pool's *miss* counter (a disabled pool counts every
//!   acquire as a miss, so the two runs are directly comparable). Bound:
//!   pooled allocations ≥10× below unpooled, identical reduced values.
//! * **pipeline** — ring reduce-scatter with `C = 1` (classic) vs `C > 1`
//!   (chunk-pipelined sends overlap merges). Integer-valued segments, so
//!   any merge association is exact: results must match bitwise. Reports
//!   element throughput for both.
//! * **imm** — [`sparker_engine::objects::MutableObjectManager`] with 1
//!   stripe (the old single-lock slot) vs 8 stripes, hammered by 8 merge
//!   threads. Identical totals required; reports merges/s for both.
//!
//! Emits machine-readable JSON (no commit hash, no timestamps — fields are
//! diffable across PRs) to `results/bench_hotpath.json` and the repo root
//! `BENCH_5.json`.

use std::time::Instant;

use sparker_bench::{fmt_secs, print_header, Table};
use sparker_collectives::ring::ring_reduce_scatter_chunked;
use sparker_collectives::segment::U64SumSegment;
use sparker_collectives::testing::{run_ring_cluster, RingClusterSpec};
use sparker_engine::objects::{MutableObjectManager, ObjectId};
use sparker_net::pool;

/// One measured reduce-scatter pass: every rank seeds `P·N·C` integer
/// segments of `elems` elements and reduces; returns each rank's owned
/// values flattened as `(global_index, elements)` for bitwise comparison.
fn run_rs(
    spec: &RingClusterSpec,
    chunks: usize,
    elems: usize,
    rounds: usize,
) -> (Vec<(usize, Vec<u64>)>, f64) {
    let n = spec.total_executors();
    let total = spec.parallelism * n * chunks;
    let t0 = Instant::now();
    let mut out: Vec<(usize, Vec<u64>)> = Vec::new();
    for round in 0..rounds {
        let per_rank = run_ring_cluster(spec, move |comm| {
            let segs: Vec<U64SumSegment> = (0..total)
                .map(|g| {
                    U64SumSegment(vec![
                        (comm.rank() as u64 + 1) * 1000 + g as u64 + round as u64;
                        elems
                    ])
                })
                .collect();
            ring_reduce_scatter_chunked(&comm, segs, chunks).unwrap()
        });
        out = per_rank
            .into_iter()
            .flatten()
            .map(|o| (o.index, o.segment.0))
            .collect();
        out.sort_by_key(|(i, _)| *i);
    }
    let secs = t0.elapsed().as_secs_f64();
    (out, secs)
}

/// Concurrent merge workload against a manager; returns (total, merges/s).
fn run_imm(stripes: usize, threads: u64, per_thread: u64) -> (u64, f64) {
    let m = std::sync::Arc::new(MutableObjectManager::with_stripes(stripes));
    let id = ObjectId { op: 1, slot: 0 };
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let m = m.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    m.merge_in(id, t * per_thread + i, |a, b| *a += b);
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let total = m.take::<u64>(id).expect("merged value present");
    (total, (threads * per_thread) as f64 / secs)
}

/// Minimal JSON writer: the schema is flat enough that hand-rolling keeps
/// the workspace dependency-free.
struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, key: &str, value: String) -> &mut Self {
        if !self.0.ends_with("{\n") {
            self.0.push_str(",\n");
        }
        self.0.push_str(&format!("  \"{key}\": {value}"));
        self
    }
    fn finish(mut self) -> String {
        self.0.push_str("\n}\n");
        self.0
    }
}

fn obj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> =
        fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print_header(
        "bench_hotpath",
        "hot-path knobs: frame pool, chunk-pipelined ring, striped IMM",
        "Every section asserts its own acceptance bound; --smoke is CI step 7\n\
         of tools/check_hermetic.sh. JSON lands in results/bench_hotpath.json\n\
         and BENCH_5.json.",
    );
    let (nodes, epn, parallelism, chunks, elems, rounds, imm_per_thread) = if smoke {
        (2, 2, 2, 4, 256, 2, 20_000u64)
    } else {
        (2, 4, 4, 4, 4096, 4, 200_000u64)
    };
    let spec = RingClusterSpec::unshaped(nodes, epn, parallelism);
    let n = spec.total_executors();
    let elements_moved = (parallelism * n * chunks * elems * rounds) as f64;

    // --- Pool A/B -------------------------------------------------------
    // Warm up first so the pooled measurement sees steady state (the claim
    // is "zero allocation in steady state", not "on the first frame").
    let g = pool::global();
    g.set_enabled(true);
    let _ = run_rs(&spec, chunks, elems, 1);
    g.reset_stats();
    let (pooled_vals, pooled_secs) = run_rs(&spec, chunks, elems, rounds);
    let pooled = g.stats();

    g.set_enabled(false);
    g.reset_stats();
    let (unpooled_vals, unpooled_secs) = run_rs(&spec, chunks, elems, rounds);
    let unpooled = g.stats();
    g.set_enabled(true);

    assert_eq!(pooled_vals, unpooled_vals, "pooling changed the reduced values");
    assert!(
        pooled.misses * 10 <= unpooled.misses,
        "pooling must cut hot-path frame allocations >=10x: pooled {} vs unpooled {}",
        pooled.misses,
        unpooled.misses
    );

    // --- Pipeline A/B ---------------------------------------------------
    // Same physical segmentation both ways: the unpipelined run uses width
    // P·C with C=1, the pipelined run width P with C chunks, so both reduce
    // the same P·N·C integer segments and must agree bitwise.
    let wide = RingClusterSpec::unshaped(nodes, epn, parallelism * chunks);
    let (unpiped_vals, unpiped_secs) = run_rs(&wide, 1, elems, rounds);
    let (piped_vals, piped_secs) = run_rs(&spec, chunks, elems, rounds);
    let piped_sorted: Vec<Vec<u64>> = piped_vals.iter().map(|(_, v)| v.clone()).collect();
    let mut unpiped_sorted: Vec<Vec<u64>> =
        unpiped_vals.iter().map(|(_, v)| v.clone()).collect();
    let mut piped_sorted = piped_sorted;
    piped_sorted.sort();
    unpiped_sorted.sort();
    assert_eq!(
        piped_sorted, unpiped_sorted,
        "pipelined reduction diverged from unpipelined"
    );

    // --- IMM A/B --------------------------------------------------------
    let threads = 8u64;
    let (locked_total, locked_rate) = run_imm(1, threads, imm_per_thread);
    let (sharded_total, sharded_rate) = run_imm(8, threads, imm_per_thread);
    assert_eq!(locked_total, sharded_total, "striping changed the merged total");

    // --- Report ---------------------------------------------------------
    let mut t = Table::new(vec!["Knob", "Off", "On", "Bound"]);
    t.row(vec![
        "pool (frame allocs)".to_string(),
        unpooled.misses.to_string(),
        pooled.misses.to_string(),
        format!("{:.0}x fewer (>=10x)", unpooled.misses as f64 / pooled.misses.max(1) as f64),
    ]);
    t.row(vec![
        "pipeline (wall)".to_string(),
        fmt_secs(unpiped_secs),
        fmt_secs(piped_secs),
        "bit-exact".to_string(),
    ]);
    t.row(vec![
        "imm (merges/s)".to_string(),
        format!("{locked_rate:.0}"),
        format!("{sharded_rate:.0}"),
        "equal totals".to_string(),
    ]);
    t.print();

    let mut json = Json::new();
    json.field("bench", "\"bench_hotpath\"".to_string());
    json.field("smoke", smoke.to_string());
    json.field(
        "shape",
        obj(&[
            ("executors", n.to_string()),
            ("parallelism", parallelism.to_string()),
            ("chunks", chunks.to_string()),
            ("elems_per_segment", elems.to_string()),
            ("rounds", rounds.to_string()),
        ]),
    );
    json.field(
        "pool",
        obj(&[
            ("on_frame_allocs", pooled.misses.to_string()),
            ("on_hits", pooled.hits.to_string()),
            ("on_bytes_reused", pooled.bytes_reused.to_string()),
            ("on_elems_per_sec", format!("{:.1}", elements_moved / pooled_secs)),
            ("off_frame_allocs", unpooled.misses.to_string()),
            ("off_elems_per_sec", format!("{:.1}", elements_moved / unpooled_secs)),
            (
                "alloc_ratio",
                format!("{:.1}", unpooled.misses as f64 / pooled.misses.max(1) as f64),
            ),
        ]),
    );
    json.field(
        "pipeline",
        obj(&[
            ("on_elems_per_sec", format!("{:.1}", elements_moved / piped_secs)),
            ("off_elems_per_sec", format!("{:.1}", elements_moved / unpiped_secs)),
            (
                "bytes_per_round",
                ((parallelism * n * chunks * elems * 8) as u64).to_string(),
            ),
            ("bit_exact", "true".to_string()),
        ]),
    );
    json.field(
        "imm",
        obj(&[
            ("sharded_merges_per_sec", format!("{sharded_rate:.1}")),
            ("locked_merges_per_sec", format!("{locked_rate:.1}")),
            ("threads", threads.to_string()),
            ("merges_per_thread", imm_per_thread.to_string()),
            ("equal_totals", "true".to_string()),
        ]),
    );
    let body = json.finish();

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/bench_hotpath.json", &body).expect("write results json");
    std::fs::write("BENCH_5.json", &body).expect("write BENCH_5.json");
    println!("\nwrote results/bench_hotpath.json and BENCH_5.json");
    println!("all hot-path bounds held");
}
