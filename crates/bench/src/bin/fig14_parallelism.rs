//! Figure 14 — reduce-scatter time at 48 executors / 256 MB, varying the
//! communicator parallelism, plus the topology-awareness comparison.
//!
//! Paper reference: 1-parallelism 3.04 s → 8-parallelism 0.99 s (3.06×);
//! topology-aware 0.99 s vs id-ordered 2.77 s (2.76×).

use sparker_bench::{print_header, Table};
use sparker_sim::aggsim::simulate_reduce_scatter;
use sparker_sim::cluster::SimCluster;

fn main() {
    print_header(
        "Figure 14",
        "Reduce-scatter at 48 executors / 256MB: parallelism & topology sweep",
        "Paper reference: P1 3.04s -> P8 0.99s (3.06x); topology-aware 2.76x over id-order.",
    );
    let c = SimCluster::bic();
    let mb = 256.0 * 1024.0 * 1024.0;

    let mut t = Table::new(vec!["Parallelism", "Topology-aware (s)", "Id-ordered (s)"]);
    let mut p1_aware = 0.0;
    let mut p8_aware = 0.0;
    let mut p4_unaware = 0.0;
    let mut p4_aware = 0.0;
    for p in [1usize, 2, 4, 8] {
        let aware = simulate_reduce_scatter(&c, mb, p, true);
        let unaware = simulate_reduce_scatter(&c, mb, p, false);
        if p == 1 {
            p1_aware = aware;
        }
        if p == 8 {
            p8_aware = aware;
        }
        if p == 4 {
            p4_aware = aware;
            p4_unaware = unaware;
        }
        t.row(vec![p.to_string(), format!("{aware:.2}"), format!("{unaware:.2}")]);
    }
    t.print();
    println!(
        "\nparallelism speedup P1->P8: {:.2}x (paper 3.06x)",
        p1_aware / p8_aware
    );
    println!(
        "topology-awareness speedup at P4: {:.2}x (paper 2.76x)",
        p4_unaware / p4_aware
    );
    let path = t.write_csv("fig14_parallelism").expect("csv");
    println!("wrote {}", path.display());
}
