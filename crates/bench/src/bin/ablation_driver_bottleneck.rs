//! Ablation — attacking the paper's §6 open problem.
//!
//! "Another limitation of this work is that we just remove the reduction
//! bottleneck for Spark. But as shown in Figure 18, the driver overhead
//! becomes the new bottleneck, which deserves further investigation."
//!
//! This harness runs that investigation at paper scale through the
//! simulator: LDA-N on AWS with (a) vanilla Spark, (b) Sparker, and
//! (c) Sparker + the allreduce extension, where the reduced model stays
//! resident on executors — no per-iteration driver fan-in, no model
//! broadcast, executor-side update.

use sparker_bench::{print_header, Table};
use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::by_name;

fn main() {
    print_header(
        "Ablation: driver bottleneck (paper §6)",
        "LDA-N on AWS, 15 iterations: Spark vs Sparker vs Sparker+allreduce",
        "Totals per run; 'driver+non-agg' is the non-scalable share Sparker leaves behind\n\
         and the allreduce extension attacks.",
    );
    let w = by_name("LDA-N").expect("workload");
    let split = Strategy::Split { parallelism: 4, topology_aware: true };
    let allred = Strategy::SplitAllReduce { parallelism: 4, topology_aware: true };
    let mut t = Table::new(vec![
        "Cores",
        "Spark total",
        "Sparker total",
        "+Allreduce total",
        "Sparker driver+non-agg",
        "+Allreduce driver+non-agg",
    ]);
    for cores in [96usize, 240, 480, 960] {
        let c = SimCluster::aws().shaped_for_cores(cores);
        let spark = simulate_training(&c, &w, Strategy::Tree, Some(15));
        let sparker = simulate_training(&c, &w, split, Some(15));
        let ext = simulate_training(&c, &w, allred, Some(15));
        t.row(vec![
            cores.to_string(),
            format!("{:.1}s", spark.total()),
            format!("{:.1}s", sparker.total()),
            format!("{:.1}s", ext.total()),
            format!("{:.1}s", sparker.driver + sparker.non_agg),
            format!("{:.1}s", ext.driver + ext.non_agg),
        ]);
    }
    t.print();
    let c = SimCluster::aws();
    let sparker = simulate_training(&c, &w, split, Some(15));
    let ext = simulate_training(&c, &w, allred, Some(15));
    println!(
        "\nfinding: at 960 cores the extension removes only {:.1}s (model fan-in + broadcast\n\
         + update) of Sparker's {:.1}s driver/non-agg share — the dominant remaining cost is\n\
         per-task scheduling ({} tasks x ~1ms per iteration), which neither split aggregation\n\
         nor allreduce touches. The paper's \"driver deserves further investigation\" points at\n\
         the scheduler, not the data path. (Allreduce also pays ~2x ring traffic, so its\n\
         end-to-end total is slightly higher; its win materializes when the model no longer\n\
         fits the driver or broadcast dominates.)",
        (sparker.driver + sparker.non_agg) - (ext.driver + ext.non_agg),
        sparker.driver + sparker.non_agg,
        sparker_sim::mlrun::default_partitions(&c),
    );
    let path = t.write_csv("ablation_driver_bottleneck").expect("csv");
    println!("wrote {}", path.display());
}
