//! Figure 2, threaded counterpart — the same stage-history analysis the
//! paper ran on Spark's history logs (§2.3), replayed on the real engine:
//! train LR and LDA at laptop scale on a shaped cluster and decompose the
//! recorded stage time into aggregation vs everything else.

use sparker_bench::{fmt_secs, print_header, Table};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_ml::glm::AggregationMode;
use sparker_ml::lda::{train as lda_train, LdaConfig};
use sparker_ml::logistic::LogisticRegression;
use sparker_ml::point::LabeledPoint;

fn run_workload(cluster: &LocalCluster, which: &str, mode: AggregationMode) {
    cluster.history().clear();
    match which {
        "LR" => {
            let gen = sparker_data::profiles::avazu()
                .feature_scaled(2e-3) // 2000 features
                .classification_gen();
            let parts = 2 * cluster.num_executors();
            let data = cluster
                .generate(parts, move |p| {
                    gen.partition(p, parts, 2000)
                        .into_iter()
                        .map(LabeledPoint::from)
                        .collect()
                })
                .cache();
            data.count().unwrap();
            LogisticRegression { iterations: 5, ..Default::default() }
                .with_mode(mode)
                .train(&data, 2000)
                .unwrap();
        }
        _ => {
            let profile = sparker_data::profiles::enron().scaled(5e-3).feature_scaled(0.02);
            let gen = profile.corpus_gen(8);
            let docs = profile.samples();
            let vocab = profile.features();
            let parts = 2 * cluster.num_executors();
            let data = cluster.generate(parts, move |p| gen.partition(p, parts, docs)).cache();
            data.count().unwrap();
            lda_train(
                &data,
                LdaConfig { iterations: 5, ..LdaConfig::new(8, vocab) }.with_mode(mode),
            )
            .unwrap();
        }
    }
}

fn main() {
    print_header(
        "Figure 2 (threaded)",
        "Stage-history decomposition of real training runs (shaped engine)",
        "Replays the paper's history-log methodology on this engine; compare the\n\
         aggregation share against Figure 2's 67% geo-mean (at our laptop scale the\n\
         aggregators are smaller, so shares are lower for LR and high for LDA).",
    );
    let mut t = Table::new(vec!["Workload", "Mode", "Agg share", "Top stage kinds"]);
    for which in ["LR", "LDA"] {
        for mode in [AggregationMode::Tree, AggregationMode::split()] {
            let cluster = LocalCluster::new(ClusterSpec::bic(2, 16.0).with_shape(2, 2));
            run_workload(&cluster, which, mode);
            let share = cluster.history().aggregation_share();
            let top: Vec<String> = cluster
                .history()
                .summary()
                .into_iter()
                .take(3)
                .map(|(k, d, _)| format!("{k}={}", fmt_secs(d.as_secs_f64())))
                .collect();
            t.row(vec![
                which.to_string(),
                mode.name().to_string(),
                format!("{:.0}%", share * 100.0),
                top.join("  "),
            ]);
        }
    }
    t.print();
    let path = t.write_csv("fig02_history_threaded").expect("csv");
    println!("\nwrote {}", path.display());
}
