//! Figure 16 — scalability of tree aggregation, tree aggregation with
//! in-memory merge, and split aggregation on small/medium/large aggregators,
//! varying the number of nodes.
//!
//! Two sections:
//! * **threaded engine (measured)** — the real engine summing an RDD of
//!   fixed-length `u64` arrays (the paper's micro-benchmark), on a
//!   16×-scaled BIC profile with 16×-smaller messages (byte·time products
//!   preserved; strategy *ratios* are the signal);
//! * **simulator (paper scale)** — the DES at the full 1–8 node, 1 KB /
//!   8 MB / 256 MB sweep.
//!
//! Paper reference: at 256 MB split aggregation is 6.48× faster than tree
//! and nearly flat in node count (8-node time = 1.12× 1-node); IMM alone
//! gives 1.46×; at 1 KB all three tie.

use sparker_bench::{fmt_bytes, fmt_secs, print_header, MetricsCsv, Table};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_engine::metrics::AggMetrics;
use sparker_engine::ops::split_aggregate::SplitAggOpts;
use sparker_engine::ops::tree_aggregate::TreeAggOpts;
use sparker_net::codec::F64Array;
use sparker_sim::aggsim::{simulate_aggregation, Strategy};
use sparker_sim::cluster::SimCluster;

/// Measures one (strategy, size, nodes) point on the threaded engine.
fn measure_threaded(nodes: usize, elems: usize, which: &str) -> AggMetrics {
    const SCALE: f64 = 16.0;
    let spec = ClusterSpec::bic(nodes, SCALE).with_shape(2, 2);
    let cluster = LocalCluster::new(spec);
    let execs = cluster.num_executors();
    let partitions = 2 * execs * 2;
    let data = cluster.generate(partitions, move |p| vec![vec![p as f64; elems]; 1]);
    let cached = data.cache();
    cached.count().expect("preload");

    let seq = move |mut acc: F64Array, v: &Vec<f64>| {
        for (a, x) in acc.0.iter_mut().zip(v) {
            *a += *x;
        }
        acc
    };
    let zero = F64Array(vec![0.0; elems]);
    let metrics = match which {
        "tree" => {
            cached
                .tree_aggregate(zero, seq, merge_owned, TreeAggOpts { depth: 2, imm: false })
                .unwrap()
                .1
        }
        "tree+imm" => {
            cached
                .tree_aggregate(zero, seq, merge_owned, TreeAggOpts { depth: 2, imm: true })
                .unwrap()
                .1
        }
        _ => {
            cached
                .split_aggregate(
                    zero,
                    seq,
                    sparker::dense::merge,
                    sparker::dense::split,
                    sparker::dense::merge_segments,
                    sparker::dense::concat,
                    SplitAggOpts::default(),
                )
                .unwrap()
                .1
        }
    };
    metrics
}

fn merge_owned(mut a: F64Array, b: F64Array) -> F64Array {
    sparker::dense::merge(&mut a, b);
    a
}

fn main() {
    print_header(
        "Figure 16",
        "Tree vs Tree+IMM vs Split aggregation scalability (1KB / 8MB / 256MB)",
        "Paper reference: split 6.48x over tree at 256MB/8 nodes; IMM 1.46x; ties at 1KB.",
    );

    println!("\n--- threaded engine, measured (16x-scaled BIC; sizes are paper-equivalent) ---");
    println!("(capped at 64MB-equivalent so real CPU work stays negligible next to shaped");
    println!(" waits on small hosts; the simulator section below covers the 256MB row)");
    let mut tm = Table::new(vec!["Size", "Nodes", "Tree", "Tree+IMM", "Split", "Tree/Split"]);
    let mut csv = MetricsCsv::new(vec!["size", "nodes"]);
    for (label, paper_bytes) in [("1KB", 1024.0f64), ("8MB", 8.0 * 1024.0 * 1024.0), ("64MB", 64.0 * 1024.0 * 1024.0)] {
        // Scaled message: paper/16, in f64 elements.
        let elems = ((paper_bytes / 16.0 / 8.0) as usize).max(8);
        for nodes in [1usize, 2, 4] {
            let tree = measure_threaded(nodes, elems, "tree");
            let imm = measure_threaded(nodes, elems, "tree+imm");
            let split = measure_threaded(nodes, elems, "split");
            for m in [&tree, &imm, &split] {
                csv.row(vec![label.to_string(), nodes.to_string()], m);
            }
            let (tree, imm, split) = (
                tree.total().as_secs_f64(),
                imm.total().as_secs_f64(),
                split.total().as_secs_f64(),
            );
            tm.row(vec![
                label.to_string(),
                nodes.to_string(),
                fmt_secs(tree),
                fmt_secs(imm),
                fmt_secs(split),
                format!("{:.2}x", tree / split),
            ]);
        }
    }
    tm.print();
    csv.write("fig16_aggregation_threaded").expect("csv");

    println!("\n--- simulator, paper scale (BIC, partitions = 4 per executor) ---");
    let mut ts = Table::new(vec!["Size", "Nodes", "Tree", "Tree+IMM", "Split", "Tree/Split"]);
    for (label, bytes) in [("1KB", 1024.0f64), ("8MB", 8.0 * 1024.0 * 1024.0), ("256MB", 256.0 * 1024.0 * 1024.0)] {
        for nodes in [1usize, 2, 4, 8] {
            let c = SimCluster::bic().with_nodes(nodes);
            let parts = 4 * c.executors();
            let tree = simulate_aggregation(&c, Strategy::Tree, bytes, parts, 0.05).total();
            let imm = simulate_aggregation(&c, Strategy::TreeImm, bytes, parts, 0.05).total();
            let split = simulate_aggregation(
                &c,
                Strategy::Split { parallelism: 4, topology_aware: true },
                bytes,
                parts,
                0.05,
            )
            .total();
            ts.row(vec![
                label.to_string(),
                nodes.to_string(),
                fmt_secs(tree),
                fmt_secs(imm),
                fmt_secs(split),
                format!("{:.2}x", tree / split),
            ]);
        }
        let _ = fmt_bytes(bytes);
    }
    ts.print();
    let path = ts.write_csv("fig16_aggregation_sim").expect("csv");
    println!("\nwrote {}", path.display());
}
