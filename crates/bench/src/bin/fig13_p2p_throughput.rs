//! Figure 13 — point-to-point throughput vs message size, varying the
//! scalable communicator's parallelism among 1, 2 and 4, with MPI as the
//! reference.
//!
//! Measured rows use the real shaped transports at 1/32 of paper message
//! sizes with a 32×-slowed profile (same byte·time products — see
//! `NetProfile::scaled`); model rows evaluate the closed form at paper
//! scale. Paper reference: MPI peaks at 1185.43 MB/s; SC with 4 channels
//! reaches 1151.80 MB/s (97.1% of line rate); one TCP stream cannot fill
//! the pipe.

use std::sync::Arc;

use sparker_bench::{fmt_bytes, print_header, Table};
use sparker_net::bench::measure_throughput;
use sparker_net::profile::{NetProfile, TransportKind};
use sparker_net::topology::round_robin_layout;
use sparker_net::transport::{MeshTransport, Transport};
use sparker_sim::cluster::SimCluster;
use sparker_sim::p2p::throughput;

fn main() {
    print_header(
        "Figure 13",
        "P2P throughput vs message size: SC parallelism 1/2/4 vs MPI",
        "Paper reference: MPI 1185 MB/s max; SC@4 1152 MB/s (97.1% of line rate).",
    );
    const SCALE: f64 = 32.0;
    let execs = round_robin_layout(2, 1, 1);
    let profile = NetProfile::bic().scaled(SCALE);
    let sc = MeshTransport::new(&execs, 4, profile.clone(), TransportKind::ScalableComm);
    // MPI over verbs fills the pipe with a single stream: lift the TCP
    // single-stream cap to the wire rate for its mesh.
    let mut mpi_profile = profile.clone();
    mpi_profile.inter_node.bandwidth = mpi_profile.mpi_bandwidth;
    mpi_profile.per_channel_bandwidth = mpi_profile.mpi_bandwidth;
    let mpi = MeshTransport::new(&execs, 1, mpi_profile, TransportKind::MpiRef);
    let sim = SimCluster::bic();

    let mut t = Table::new(vec![
        "Msg size",
        "SC P=1 (MB/s)",
        "SC P=2 (MB/s)",
        "SC P=4 (MB/s)",
        "MPI (MB/s)",
        "model SC@4",
        "model MPI",
    ]);
    // Paper sweeps 1KB..256MB; we measure the scaled-down equivalents and
    // report at paper-equivalent sizes.
    for exp in [10u32, 13, 16, 19, 21, 23, 25, 28] {
        let paper_bytes = 2f64.powi(exp as i32);
        let scaled_bytes = ((paper_bytes / SCALE) as usize).max(64);
        let count = (64.0 * 1024.0 * 1024.0 / SCALE / scaled_bytes as f64).clamp(4.0, 256.0) as usize;
        let mut cells = vec![fmt_bytes(paper_bytes)];
        for p in [1usize, 2, 4] {
            let r = measure_throughput(sc.clone() as Arc<dyn Transport>, scaled_bytes, count, p);
            // Scaled profile runs SCALE-times slower on SCALE-times smaller
            // messages: goodput multiplies back.
            cells.push(format!("{:.0}", r.mb_per_sec() * SCALE / SCALE)); // measured in scaled domain
        }
        let r = measure_throughput(mpi.clone() as Arc<dyn Transport>, scaled_bytes, count, 1);
        cells.push(format!("{:.0}", r.mb_per_sec()));
        let mbs = 1024.0 * 1024.0;
        cells.push(format!(
            "{:.0}",
            throughput(&sim, TransportKind::ScalableComm, paper_bytes, 4) / mbs
        ));
        cells.push(format!(
            "{:.0}",
            throughput(&sim, TransportKind::MpiRef, paper_bytes, 1) / mbs
        ));
        t.row(cells);
    }
    t.print();
    println!(
        "\nNote: measured columns are in the 32x-scaled domain (divide paper MB/s by 32 to\n\
         compare; ratios between columns are the figure's signal and are scale-invariant)."
    );
    let path = t.write_csv("fig13_p2p_throughput").expect("csv");
    println!("wrote {}", path.display());
}
