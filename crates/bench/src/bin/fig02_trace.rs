//! Figure 2, trace-derived — the same stage-time decomposition as
//! `fig02_history_threaded`, but computed twice from the **same run**:
//! once through the `History` API (the engine's Spark-history-log view) and
//! once from the raw span trace via `sparker_obs::export::stage_breakdown`.
//! Both views derive from the same `Stage`-layer spans, so they must agree;
//! printing them side by side is the harness-level cross-check behind the
//! observability PR (the test-level one lives in `tests/obs_trace.rs`).
//!
//! Also exports the full span trace (driver phases, stages, tasks,
//! collective steps, transport ops, ML iterations) as Chrome trace-event
//! JSON under `results/fig02_trace.json` — load it in Perfetto
//! (<https://ui.perfetto.dev>) to see the paper's bottleneck visually.

use sparker_bench::{fmt_secs, print_header, Table};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_ml::glm::AggregationMode;
use sparker_ml::lda::{train as lda_train, LdaConfig};
use sparker_ml::logistic::LogisticRegression;
use sparker_ml::point::LabeledPoint;
use sparker_obs::{export, trace};

fn run_workload(cluster: &LocalCluster, which: &str, mode: AggregationMode) {
    cluster.history().clear();
    match which {
        "LR" => {
            let gen = sparker_data::profiles::avazu()
                .feature_scaled(1e-3) // 1000 features
                .classification_gen();
            let parts = 2 * cluster.num_executors();
            let data = cluster
                .generate(parts, move |p| {
                    gen.partition(p, parts, 1000)
                        .into_iter()
                        .map(LabeledPoint::from)
                        .collect()
                })
                .cache();
            data.count().unwrap();
            LogisticRegression { iterations: 3, ..Default::default() }
                .with_mode(mode)
                .train(&data, 1000)
                .unwrap();
        }
        _ => {
            let profile = sparker_data::profiles::enron().scaled(2e-3).feature_scaled(0.02);
            let gen = profile.corpus_gen(8);
            let docs = profile.samples();
            let vocab = profile.features();
            let parts = 2 * cluster.num_executors();
            let data = cluster.generate(parts, move |p| gen.partition(p, parts, docs)).cache();
            data.count().unwrap();
            lda_train(
                &data,
                LdaConfig { iterations: 3, ..LdaConfig::new(8, vocab) }.with_mode(mode),
            )
            .unwrap();
        }
    }
}

fn main() {
    print_header(
        "Figure 2 (trace)",
        "Stage-time breakdown, derived independently from History and from the trace",
        "One run, two views over the same Stage-layer spans: the History API and the\n\
         sparker-obs exporter. Shares must match; the full trace (all layers) lands\n\
         in results/fig02_trace.json for Perfetto.",
    );
    trace::enable();

    let mut t = Table::new(vec![
        "Workload",
        "Mode",
        "History share",
        "Trace share",
        "Trace top kind",
    ]);
    let mut all_spans = Vec::new();
    for which in ["LR", "LDA"] {
        for mode in [AggregationMode::Tree, AggregationMode::split()] {
            let cluster = LocalCluster::new(ClusterSpec::bic(2, 16.0).with_shape(2, 2));
            run_workload(&cluster, which, mode);

            let history_share = cluster.history().aggregation_share();
            let spans = trace::snapshot_scope(cluster.history().scope());
            let breakdown = export::stage_breakdown(&spans);
            let trace_share = breakdown.aggregation_share();
            assert!(
                (history_share - trace_share).abs() <= 0.05,
                "History ({history_share:.3}) and trace ({trace_share:.3}) views diverged"
            );
            let top = breakdown
                .rows
                .first()
                .map(|r| format!("{}={}", r.kind, fmt_secs(r.total.as_secs_f64())))
                .unwrap_or_default();
            t.row(vec![
                format!("{which}"),
                mode.name().to_string(),
                format!("{:.1}%", history_share * 100.0),
                format!("{:.1}%", trace_share * 100.0),
                top,
            ]);
            // Collect before the cluster (and its History scope) drops. The
            // drain also grabs this run's gated spans (scope 0); the scoped
            // (stage/driver-phase) spans are already in `spans`.
            all_spans.extend(spans);
            all_spans.extend(trace::take().into_iter().filter(|s| s.scope == 0));
        }
    }
    trace::disable();
    t.print();
    t.write_csv("fig02_trace").expect("csv");

    let json = export::chrome_trace_json(&all_spans);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/fig02_trace.json", &json).expect("trace json");
    println!(
        "\nwrote results/fig02_trace.csv and results/fig02_trace.json ({} spans — load in Perfetto)",
        all_spans.len()
    );
}
