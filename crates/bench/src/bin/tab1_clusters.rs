//! Table 1 — configuration of the two evaluation clusters.

use sparker_bench::{print_header, Table};
use sparker_sim::cluster::SimCluster;

fn main() {
    print_header(
        "Table 1",
        "Configuration of the two clusters used for experiments",
        "Paper: BIC = 8-node 100Gbps IPoIB in-house cluster; AWS = 10x m5d.24xlarge, 25Gbps.",
    );
    let bic = SimCluster::bic();
    let aws = SimCluster::aws();
    let mb = 1024.0 * 1024.0;
    let mut t = Table::new(vec!["Configuration", "BIC", "AWS"]);
    t.row(vec!["Number of nodes".to_string(), bic.nodes.to_string(), aws.nodes.to_string()]);
    t.row(vec![
        "Executors per node".to_string(),
        bic.executors_per_node.to_string(),
        aws.executors_per_node.to_string(),
    ]);
    t.row(vec![
        "Executor cores".to_string(),
        bic.cores_per_executor.to_string(),
        aws.cores_per_executor.to_string(),
    ]);
    t.row(vec![
        "Total executors".to_string(),
        bic.executors().to_string(),
        aws.executors().to_string(),
    ]);
    t.row(vec![
        "Total cores".to_string(),
        bic.total_cores().to_string(),
        aws.total_cores().to_string(),
    ]);
    t.row(vec![
        "Effective line rate (MB/s)".to_string(),
        format!("{:.0}", bic.profile.nic_bandwidth / mb),
        format!("{:.0}", aws.profile.nic_bandwidth / mb),
    ]);
    t.row(vec![
        "Single-stream cap (MB/s)".to_string(),
        format!("{:.0}", bic.profile.per_channel_bandwidth / mb),
        format!("{:.0}", aws.profile.per_channel_bandwidth / mb),
    ]);
    t.row(vec![
        "Inter-node latency (us)".to_string(),
        format!("{:.0}", bic.profile.inter_node.latency.as_secs_f64() * 1e6),
        format!("{:.0}", aws.profile.inter_node.latency.as_secs_f64() * 1e6),
    ]);
    t.print();
    let path = t.write_csv("tab1_clusters").expect("csv");
    println!("\nwrote {}", path.display());
}
