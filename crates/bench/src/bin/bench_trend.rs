//! `BENCH_*.json` trajectory validator — the engine behind
//! `tools/bench_trend.sh` (CI tier 1).
//!
//! The repo root carries one consolidated benchmark artifact per PR that
//! shipped one (`BENCH_5` hot path, `BENCH_6` transport, `BENCH_8` jobs,
//! `BENCH_9` collectives, `BENCH_10` paper parity). This binary turns that
//! pile into a checked time series:
//!
//! 1. every `BENCH_*.json` passed on the command line must parse with the
//!    in-tree JSON parser ([`sparker_obs::json`] — the same parser CI
//!    uses, so a file that only external tools can read fails here);
//! 2. each known bench family must carry its required top-level keys
//!    (schema drift in a committed artifact is a failure, not a warning);
//! 3. with `--baseline <file>`, `BENCH_10.json`'s headline metrics must
//!    not regress beyond the stated margin against the previous committed
//!    run, and its bound-failure count must be zero.
//!
//! Numbering holes are tolerated **by design**: PR 7 (chaos/self-healing)
//! intentionally shipped no bench artifact, so there is no `BENCH_7.json`
//! and the checker never requires contiguous numbering — it validates the
//! files it is given, nothing more.
//!
//! Exit status: 0 when every file validates (and the trend check, if
//! requested, holds); 1 with a per-file diagnostic otherwise.

use sparker_obs::json::{parse, Json};

/// Headline metrics of `BENCH_10.json` that must not regress, with the
/// stated tolerated regression margin (new >= old × MARGIN). DES outputs
/// are deterministic, so the margin only absorbs deliberate retuning of
/// the simulation — not noise.
const TREND_MARGIN: f64 = 0.85;
const TREND_KEYS: [&str; 3] = ["agg_speedup_max", "geo_mean_e2e", "stacked_speedup"];

/// Required top-level keys per bench family (`"bench"` field value).
fn required_keys(family: &str) -> &'static [&'static str] {
    match family {
        "bench_hotpath" => &["smoke", "shape", "pool", "pipeline", "imm"],
        "bench_transport" => &["smoke", "shape", "ladder", "tcp_steady_state"],
        "bench_jobs" => &["mode", "throughput", "fairness", "admission"],
        "bench_collectives" => &["smoke", "ladder", "calibration", "run"],
        "paper_eval" => &["smoke", "seed", "headline", "bounds"],
        _ => &[],
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_trend: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Json {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{path}: unreadable: {e}")));
    parse(&body).unwrap_or_else(|e| fail(&format!("{path}: in-tree parser rejected it: {e:?}")))
}

fn headline_metric(doc: &Json, key: &str, path: &str) -> f64 {
    doc.get("headline")
        .and_then(|h| h.get(key))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail(&format!("{path}: missing headline.{key}")))
}

fn main() {
    let mut baseline: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--baseline" {
            baseline = Some(it.next().unwrap_or_else(|| fail("--baseline needs a path")));
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        fail("no BENCH_*.json files given (usage: bench_trend [--baseline OLD_BENCH_10] FILES..)");
    }

    let mut bench10: Option<(String, Json)> = None;
    for path in &files {
        let doc = load(path);
        let family = doc
            .get("bench")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| fail(&format!("{path}: missing \"bench\" family field")))
            .to_string();
        let required = required_keys(&family);
        if required.is_empty() {
            fail(&format!("{path}: unknown bench family \"{family}\""));
        }
        for key in required {
            if doc.get(key).is_none() {
                fail(&format!("{path}: family \"{family}\" requires top-level key \"{key}\""));
            }
        }
        println!("bench_trend: {path}: family \"{family}\" ok ({} required keys)", required.len());
        if family == "paper_eval" {
            bench10 = Some((path.to_string(), doc));
        }
    }

    if let Some((path, doc)) = &bench10 {
        let failed = doc
            .get("bounds")
            .and_then(|b| b.get("failed"))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| fail(&format!("{path}: missing bounds.failed")));
        if failed != 0.0 {
            fail(&format!("{path}: committed run has {failed} failed bounds"));
        }
        if doc.get("smoke").and_then(|v| v.as_bool()) != Some(false) {
            fail(&format!("{path}: committed BENCH_10 must be a full-shape run (smoke: false)"));
        }
        if let Some(base_path) = &baseline {
            let base = load(base_path);
            for key in TREND_KEYS {
                let old = headline_metric(&base, key, base_path);
                let new = headline_metric(doc, key, path);
                if new < old * TREND_MARGIN {
                    fail(&format!(
                        "{path}: headline {key} regressed: {new:.3} < {old:.3} x {TREND_MARGIN}"
                    ));
                }
                println!(
                    "bench_trend: {key}: {old:.3} -> {new:.3} (floor {:.3})",
                    old * TREND_MARGIN
                );
            }
        } else {
            println!("bench_trend: no --baseline; headline trend check skipped");
        }
    }
    println!("bench_trend: all {} file(s) validate", files.len());
}
