//! Ablation — allreduce vs split aggregation (the extension addressing the
//! paper's §6 limitation that the driver becomes the next bottleneck).
//!
//! Split aggregation still funnels one aggregator into the driver per
//! iteration and broadcasts the model back. Allreduce leaves the reduced
//! value resident on every executor; the driver gets a single monitoring
//! copy. This harness compares their reduce times and driver traffic on
//! the shaped threaded engine.

use sparker_bench::{fmt_secs, print_header, MetricsCsv, Table};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_engine::ops::split_aggregate::SplitAggOpts;
use sparker_net::codec::F64Array;

fn main() {
    print_header(
        "Ablation: allreduce extension",
        "Split aggregation (gather to driver) vs allreduce (resident everywhere)",
        "Same IMM + ring reduce-scatter; allreduce swaps the driver gather for an\n\
         allgather. Driver bytes stop depending on anything.",
    );
    const SCALE: f64 = 16.0;
    let mut t = Table::new(vec![
        "Paper size",
        "Nodes",
        "Split reduce",
        "Allreduce reduce",
        "Split driver KiB",
        "Allreduce driver KiB",
    ]);
    // Both variants report `strategy = split`; the `variant` key tells the
    // gather-to-driver and allgather rows apart.
    let mut csv = MetricsCsv::new(vec!["size", "nodes", "variant"]);
    for (label, paper_bytes) in [("8MB", 8.0 * 1024.0 * 1024.0), ("64MB", 64.0 * 1024.0 * 1024.0)] {
        for nodes in [2usize, 4] {
            let elems = (paper_bytes / SCALE / 8.0) as usize;
            let cluster = LocalCluster::new(ClusterSpec::bic(nodes, SCALE).with_shape(2, 2));
            let partitions = 2 * cluster.num_executors();
            let data = cluster
                .generate(partitions, move |p| vec![vec![p as f64; elems]; 1])
                .cache();
            data.count().unwrap();
            let seq = move |mut acc: F64Array, v: &Vec<f64>| {
                for (a, x) in acc.0.iter_mut().zip(v) {
                    *a += *x;
                }
                acc
            };
            let (_, split) = data
                .split_aggregate(
                    F64Array(vec![0.0; elems]),
                    seq,
                    sparker::dense::merge,
                    sparker::dense::split,
                    sparker::dense::merge_segments,
                    sparker::dense::concat,
                    SplitAggOpts::default(),
                )
                .unwrap();
            let out = data
                .allreduce_aggregate(
                    F64Array(vec![0.0; elems]),
                    seq,
                    sparker::dense::merge,
                    sparker::dense::split,
                    sparker::dense::merge_segments,
                    sparker::dense::concat,
                    None,
                )
                .unwrap();
            csv.row(vec![label.to_string(), nodes.to_string(), "split".into()], &split);
            csv.row(vec![label.to_string(), nodes.to_string(), "allreduce".into()], &out.metrics);
            t.row(vec![
                label.to_string(),
                nodes.to_string(),
                fmt_secs(split.reduce.as_secs_f64()),
                fmt_secs(out.metrics.reduce.as_secs_f64()),
                (split.bytes_to_driver / 1024).to_string(),
                (out.metrics.bytes_to_driver / 1024).to_string(),
            ]);
        }
    }
    t.print();
    println!("\n(allreduce moves more data between executors — the allgather — but frees the");
    println!(" driver; in iterative training it also replaces the next broadcast)");
    let path = csv.write("ablation_allreduce").expect("csv");
    println!("wrote {}", path.display());
}
