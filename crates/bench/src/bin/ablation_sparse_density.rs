//! Ablation — dense vs sparse vs adaptive segments across update density.
//!
//! Sweeps the density of per-partition aggregator updates from 100% down to
//! 0.01% (indices drawn by the data layer's Zipf sampler, the same power
//! law the synthetic corpora use) and runs the identical split aggregation
//! with three segment representations:
//!
//! * `dense`    — the baseline `SumSegment` path: every element on the wire;
//! * `sparse`   — `DenseOrSparse` forced sparse (never densifies);
//! * `adaptive` — `DenseOrSparse` at the default threshold: sparse on the
//!                wire until merge fill-in crosses it, then dense
//!                (SparCML-style SSAR).
//!
//! All three must produce the identical reduced vector (the drawn values
//! are small integers, so `f64` summation is exact in any order). The
//! harness asserts the acceptance bounds: at ≤1% density sparse/adaptive
//! wire bytes are ≥5× below dense, and at 100% density adaptive costs at
//! most the per-frame header (tag + threshold) over dense.
//!
//! `--smoke` runs one small shape at two densities for CI
//! (`tools/check_hermetic.sh` step 6).

use sparker::sparse::SparseAccum;
use sparker_bench::{fmt_bytes, fmt_secs, print_header, MetricsCsv, Table};
use sparker_data::rng::{SplitMix64, Zipf};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::metrics::AggMetrics;
use sparker_engine::ops::split_aggregate::SplitAggOpts;
use sparker_net::codec::F64Array;

/// One partition's updates: sparse (index, delta) batches.
fn gen_partition(partition: usize, dim: usize, density: f64, items: usize) -> Vec<Vec<(u32, f64)>> {
    if density >= 1.0 {
        // Fully dense updates: every coordinate touched.
        let full: Vec<(u32, f64)> = (0..dim).map(|i| (i as u32, 1.0)).collect();
        return vec![full; items];
    }
    let zipf = Zipf::new(dim, 1.05);
    let mut g = SplitMix64::for_stream(0x5EED_D1CE, partition as u64);
    let draws = ((dim as f64 * density) as usize).max(1);
    (0..items)
        .map(|_| {
            let mut acc = std::collections::BTreeMap::new();
            for _ in 0..draws {
                *acc.entry(zipf.sample(&mut g) as u32).or_insert(0.0) += 1.0;
            }
            acc.into_iter().collect()
        })
        .collect()
}

fn run_dense(cluster: &LocalCluster, dim: usize, density: f64, items: usize) -> (Vec<f64>, AggMetrics) {
    let partitions = 2 * cluster.num_executors();
    let data = cluster.generate(partitions, move |p| gen_partition(p, dim, density, items));
    let (v, m) = data
        .split_aggregate(
            F64Array(vec![0.0; dim]),
            |mut acc: F64Array, item: &Vec<(u32, f64)>| {
                for &(i, d) in item {
                    acc.0[i as usize] += d;
                }
                acc
            },
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            SplitAggOpts::default(),
        )
        .unwrap();
    (sparker::dense::to_vec(v), m)
}

fn run_sparse(
    cluster: &LocalCluster,
    dim: usize,
    density: f64,
    items: usize,
    adaptive: bool,
) -> (Vec<f64>, AggMetrics) {
    let partitions = 2 * cluster.num_executors();
    let data = cluster.generate(partitions, move |p| gen_partition(p, dim, density, items));
    let split = if adaptive { sparker::sparse::split } else { sparker::sparse::split_sparse };
    let (v, m) = data
        .split_aggregate(
            sparker::sparse::zeros(dim),
            |mut acc: SparseAccum, item: &Vec<(u32, f64)>| {
                for &(i, d) in item {
                    acc.add(i, d);
                }
                acc
            },
            sparker::sparse::merge,
            split,
            sparker::sparse::merge_segments,
            sparker::sparse::concat,
            SplitAggOpts::default(),
        )
        .unwrap();
    (v.to_dense(), m)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print_header(
        "Ablation: sparse segment density sweep",
        "dense vs forced-sparse vs adaptive (SSAR) segments on Zipf updates",
        "Same split aggregation, same data; only the segment representation\n\
         changes. wire_bytes is the unified Payload::size_hint accounting.",
    );
    let (dim, items, densities): (usize, usize, &[f64]) = if smoke {
        (4096, 4, &[1.0, 0.01])
    } else {
        (65536, 4, &[1.0, 0.5, 0.1, 0.01, 0.001, 0.0001])
    };
    let cluster = LocalCluster::local(4, 2);

    let mut t = Table::new(vec![
        "Density",
        "Dense bytes",
        "Sparse bytes",
        "Adaptive bytes",
        "Dense time",
        "Sparse time",
        "Adaptive time",
        "Sparse ratio",
    ]);
    let mut csv = MetricsCsv::new(vec!["density", "dim", "variant"]);

    let seg_encodes = sparker_obs::metrics::counter("sparse.segments");
    for &density in densities {
        let (dv, dm) = run_dense(&cluster, dim, density, items);
        let (sv, sm) = run_sparse(&cluster, dim, density, items, false);
        let encodes_before = seg_encodes.get();
        let (av, am) = run_sparse(&cluster, dim, density, items, true);
        let adaptive_encodes = seg_encodes.get() - encodes_before;
        assert_eq!(dv, sv, "forced-sparse result diverged at density {density}");
        assert_eq!(dv, av, "adaptive result diverged at density {density}");

        let key = |variant: &str| vec![density.to_string(), dim.to_string(), variant.to_string()];
        csv.row(key("dense"), &dm);
        csv.row(key("sparse"), &sm);
        csv.row(key("adaptive"), &am);
        t.row(vec![
            format!("{:.4}%", density * 100.0),
            fmt_bytes(dm.wire_bytes() as f64),
            fmt_bytes(sm.wire_bytes() as f64),
            fmt_bytes(am.wire_bytes() as f64),
            fmt_secs(dm.total().as_secs_f64()),
            fmt_secs(sm.total().as_secs_f64()),
            fmt_secs(am.total().as_secs_f64()),
            format!("{:.1}x", dm.wire_bytes() as f64 / sm.wire_bytes() as f64),
        ]);

        // Acceptance bounds (the harness is its own gate — CI runs --smoke).
        if density <= 0.01 {
            assert!(
                sm.wire_bytes() * 5 <= dm.wire_bytes(),
                "sparse not >=5x below dense at density {density}: {} vs {}",
                sm.wire_bytes(),
                dm.wire_bytes()
            );
            assert!(
                am.wire_bytes() * 5 <= dm.wire_bytes(),
                "adaptive not >=5x below dense at density {density}: {} vs {}",
                am.wire_bytes(),
                dm.wire_bytes()
            );
        }
        if density >= 1.0 {
            // DenseOrSparse adds a 9-byte header (f64 threshold + u8 tag)
            // per encoded segment over the raw dense encoding; the obs
            // counter gives the exact encode count.
            let allowance = 9 * adaptive_encodes;
            assert!(
                am.wire_bytes() <= dm.wire_bytes() + allowance,
                "adaptive exceeded dense + header overhead at 100%: {} vs {} (+{allowance})",
                am.wire_bytes(),
                dm.wire_bytes()
            );
        }
    }
    t.print();

    let wire = sparker_obs::metrics::counter("sparse.wire_bytes").get();
    let equiv = sparker_obs::metrics::counter("sparse.dense_equiv_bytes").get();
    println!(
        "\nobs counters: sparse.wire_bytes={} sparse.dense_equiv_bytes={} ({:.1}% of dense)",
        wire,
        equiv,
        100.0 * wire as f64 / equiv.max(1) as f64
    );
    let path = csv.write("ablation_sparse_density").expect("csv");
    println!("wrote {}", path.display());
    println!("all density/equivalence bounds held");
}
