//! Figure 1 — 8-node vs 1-node speedup of the nine MLlib workloads (BIC,
//! vanilla tree aggregation).
//!
//! Paper: all workloads fall far from the perfect speedup of 8; best is
//! LDA-N at 2.49x, worst LR-K at 0.73x, average 1.25x.

use sparker_bench::{geo_mean, print_header, Table};
use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::all_workloads;

fn main() {
    print_header(
        "Figure 1",
        "Speedup of MLlib workloads on 8 nodes w.r.t. 1-node performance",
        "Paper reference: geo-mean 1.25x; LDA-N best (2.49x); LR-K worst (0.73x).",
    );
    let mut t = Table::new(vec!["Workload", "1-node (s)", "8-node (s)", "Speedup"]);
    let mut speedups = Vec::new();
    for w in all_workloads() {
        let one = simulate_training(&SimCluster::bic().with_nodes(1), &w, Strategy::Tree, None);
        let eight = simulate_training(&SimCluster::bic(), &w, Strategy::Tree, None);
        let s = one.total() / eight.total();
        speedups.push(s);
        t.row(vec![
            w.name.to_string(),
            format!("{:.1}", one.total()),
            format!("{:.1}", eight.total()),
            format!("{s:.2}x"),
        ]);
    }
    t.print();
    println!(
        "\ngeo-mean speedup: {:.2}x  (paper: 1.25x; perfect would be 8x)",
        geo_mean(&speedups)
    );
    let path = t.write_csv("fig01_mllib_speedup").expect("csv");
    println!("wrote {}", path.display());
}
