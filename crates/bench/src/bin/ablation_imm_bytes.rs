//! Ablation — what In-Memory Merge actually saves (DESIGN.md §4.2).
//!
//! IMM's benefit is measured in *bytes never serialized*: without it, every
//! task result crosses the codec; with it, one aggregator per executor does.
//! This harness runs the unshaped engine (so byte counters, not wall time,
//! are the signal) and prints serialized-byte and message counts per
//! strategy at several partition counts.

use sparker_bench::{print_header, MetricsCsv, Table};
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_engine::ops::split_aggregate::SplitAggOpts;
use sparker_engine::ops::tree_aggregate::TreeAggOpts;
use sparker_net::codec::F64Array;

fn main() {
    print_header(
        "Ablation: IMM serialized bytes",
        "Serialized bytes & messages per aggregation strategy (unshaped engine)",
        "Aggregator = 1 MiB of f64. IMM shrinks serialized volume from O(partitions) to\n\
         O(executors); split aggregation shrinks driver traffic to O(1) aggregators.",
    );
    let elems = 128 * 1024; // 1 MiB
    let cluster = LocalCluster::new(ClusterSpec::local(4, 2));
    let mut t = Table::new(vec![
        "Partitions",
        "Strategy",
        "Ser MiB",
        "Messages",
        "Driver MiB",
    ]);
    let mut csv = MetricsCsv::new(vec!["partitions"]);
    for partitions in [8usize, 32, 128] {
        let data = cluster
            .generate(partitions, move |p| vec![vec![p as f64; elems]; 1])
            .cache();
        data.count().unwrap();
        let seq = move |mut acc: F64Array, v: &Vec<f64>| {
            for (a, x) in acc.0.iter_mut().zip(v) {
                *a += *x;
            }
            acc
        };
        let zero = F64Array(vec![0.0; elems]);
        let mib = |b: u64| format!("{:.1}", b as f64 / (1024.0 * 1024.0));
        for (name, imm) in [("tree", false), ("tree+imm", true)] {
            let (_, m) = data
                .tree_aggregate(
                    zero.clone(),
                    seq,
                    |mut a, b| {
                        sparker::dense::merge(&mut a, b);
                        a
                    },
                    TreeAggOpts { depth: 2, imm },
                )
                .unwrap();
            csv.row(vec![partitions.to_string()], &m);
            t.row(vec![
                partitions.to_string(),
                name.to_string(),
                mib(m.ser_bytes),
                m.messages.to_string(),
                mib(m.bytes_to_driver),
            ]);
        }
        let (_, m) = data
            .split_aggregate(
                zero,
                seq,
                sparker::dense::merge,
                sparker::dense::split,
                sparker::dense::merge_segments,
                sparker::dense::concat,
                SplitAggOpts::default(),
            )
            .unwrap();
        csv.row(vec![partitions.to_string()], &m);
        t.row(vec![
            partitions.to_string(),
            "split".to_string(),
            mib(m.ser_bytes),
            m.messages.to_string(),
            mib(m.bytes_to_driver),
        ]);
    }
    t.print();
    let path = csv.write("ablation_imm_bytes").expect("csv");
    println!("\nwrote {}", path.display());
}
