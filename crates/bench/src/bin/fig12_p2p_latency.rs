//! Figure 12 — point-to-point latency: BlockManager-based messaging vs the
//! scalable communicator vs MPI.
//!
//! Two modes, both reported:
//! * **measured** — real ping-pong over the in-process transports with BIC
//!   shaping enforced by the precise waiter;
//! * **model** — the closed-form profile numbers the simulator uses.
//!
//! Paper reference (BIC): MPI 15.94 µs, SC 72.73 µs (4.56×), BM 3861.25 µs
//! (242×).

use std::sync::Arc;

use sparker_bench::{print_header, Table};
use sparker_net::bench::measure_latency;
use sparker_net::blockmanager::BlockManagerTransport;
use sparker_net::profile::{NetProfile, TransportKind};
use sparker_net::topology::round_robin_layout;
use sparker_net::transport::{MeshTransport, Transport};
use sparker_sim::cluster::SimCluster;
use sparker_sim::p2p::latency;

fn main() {
    print_header(
        "Figure 12",
        "Point-to-point one-way latency on BIC: BM vs SC vs MPI",
        "Paper reference: MPI 15.94us; SC 72.73us (4.56x MPI); BM 3861.25us (242x MPI).",
    );
    // One executor per node so the path is inter-node.
    let execs = round_robin_layout(2, 1, 1);
    let profile = NetProfile::bic();
    let iters = 200;

    let mpi = MeshTransport::new(&execs, 1, profile.clone(), TransportKind::MpiRef);
    let sc = MeshTransport::new(&execs, 1, profile.clone(), TransportKind::ScalableComm);
    let bm_wire = MeshTransport::new(&execs, 1, profile.clone(), TransportKind::MpiRef);
    let bm = BlockManagerTransport::with_default_costs(bm_wire);

    let measured = [
        ("MPI", measure_latency(mpi as Arc<dyn Transport>, 8, 20, iters)),
        ("SC", measure_latency(sc as Arc<dyn Transport>, 8, 20, iters)),
        ("BM", measure_latency(bm as Arc<dyn Transport>, 8, 20, 50)),
    ];

    let sim = SimCluster::bic();
    let modeled = [
        ("MPI", latency(&sim, TransportKind::MpiRef)),
        ("SC", latency(&sim, TransportKind::ScalableComm)),
        ("BM", latency(&sim, TransportKind::BlockManager)),
    ];

    let mut t = Table::new(vec![
        "Transport",
        "Measured (us)",
        "Model (us)",
        "Paper (us)",
        "x MPI (measured)",
    ]);
    let paper = [15.94, 72.73, 3861.25];
    let mpi_us = measured[0].1.one_way.as_secs_f64() * 1e6;
    for i in 0..3 {
        let m_us = measured[i].1.one_way.as_secs_f64() * 1e6;
        t.row(vec![
            measured[i].0.to_string(),
            format!("{m_us:.2}"),
            format!("{:.2}", modeled[i].1 * 1e6),
            format!("{:.2}", paper[i]),
            format!("{:.1}x", m_us / mpi_us),
        ]);
    }
    t.print();
    let path = t.write_csv("fig12_p2p_latency").expect("csv");
    println!("\nwrote {}", path.display());
}
