//! Figure 11 — the ring-based reduce-scatter walkthrough.
//!
//! Reproduces the paper's 4-executor example live on the real collectives
//! code: executor i contributes V_i, segment j of the result lands on
//! executor (j + N − 1) mod N fully reduced after N−1 iterations.

use sparker_bench::print_header;
use sparker_collectives::ring::ring_reduce_scatter;
use sparker_collectives::segment::U64SumSegment;
use sparker_collectives::testing::{run_ring_cluster, RingClusterSpec};

fn main() {
    print_header(
        "Figure 11",
        "Ring-based reduce-scatter (live trace of the paper's 4-executor example)",
        "Each rank starts with V_i split into 4 segments V_{i,0..3}; after 3 iterations\n\
         each rank owns one fully-reduced segment.",
    );
    let spec = RingClusterSpec::unshaped(1, 4, 1);
    let n = 4;
    println!("initial state: executor i holds V_i with V_{{i,j}} = 10*(i+1) + j\n");
    let per_rank = run_ring_cluster(&spec, |comm| {
        let segs: Vec<U64SumSegment> = (0..n)
            .map(|j| U64SumSegment(vec![10 * (comm.rank() as u64 + 1) + j as u64]))
            .collect();
        ring_reduce_scatter(&comm, segs).unwrap()
    });
    for (rank, owned) in per_rank.iter().enumerate() {
        for o in owned {
            let expected: u64 = (0..n as u64).map(|i| 10 * (i + 1) + o.index as u64).sum();
            println!(
                "executor {rank} owns segment {}: value {} (= sum over ranks: {expected})",
                o.index, o.segment.0[0]
            );
            assert_eq!(o.segment.0[0], expected);
        }
    }
    println!("\nall segments reduced exactly once — matches Figure 11's final state.");
}
