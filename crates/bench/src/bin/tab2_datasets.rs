//! Table 2 — the real-world datasets and their synthetic stand-ins.

use sparker_bench::{print_header, Table};
use sparker_data::profiles::{all_profiles, TaskKind};

fn main() {
    print_header(
        "Table 2",
        "Real-world datasets used in the experiment (synthetic stand-ins)",
        "Shapes match the paper; `scale`/`feature_scale` shrink them for local runs.",
    );
    let mut t = Table::new(vec![
        "Dataset",
        "Samples/Docs",
        "Features/Vocab",
        "nnz/sample",
        "Task",
        "GLM agg (MiB)",
    ]);
    let mb = 1024.0 * 1024.0;
    for p in all_profiles() {
        let task = match p.task {
            TaskKind::Classification => "classification",
            TaskKind::TopicModel => "topic model",
        };
        let agg = match p.task {
            TaskKind::Classification => format!("{:.1}", p.glm_aggregator_bytes() as f64 / mb),
            TaskKind::TopicModel => {
                format!("{:.1} (LDA K=100)", p.lda_aggregator_bytes(100) as f64 / mb)
            }
        };
        t.row(vec![
            p.name.to_string(),
            p.paper_samples.to_string(),
            p.paper_features.to_string(),
            p.nnz_per_sample.to_string(),
            task.to_string(),
            agg,
        ]);
    }
    t.print();
    let path = t.write_csv("tab2_datasets").expect("csv");
    println!("\nwrote {}", path.display());
}
