//! Figure 17 — end-to-end speedup of Sparker over vanilla Spark for the
//! nine workloads on both clusters.
//!
//! Paper reference: geo-mean 1.60× on BIC, 1.81× on AWS; best SVM-K at
//! 2.62× (BIC) and 3.69× (AWS); LDA-N/LR-K/SVM-K/SVM-K12 all above 2× on
//! AWS because their aggregators are large.

use sparker_bench::{geo_mean, print_header, Table};
use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::all_workloads;

fn main() {
    print_header(
        "Figure 17",
        "End-to-end speedup of Sparker over vanilla Spark (BIC and AWS)",
        "Paper reference: geo-mean 1.60x (BIC) / 1.81x (AWS); max 2.62x / 3.69x (SVM-K).",
    );
    let split = Strategy::Split { parallelism: 4, topology_aware: true };
    let mut t = Table::new(vec!["Workload", "BIC speedup", "AWS speedup"]);
    let mut bic_speedups = Vec::new();
    let mut aws_speedups = Vec::new();
    for w in all_workloads() {
        let bic = SimCluster::bic();
        let aws = SimCluster::aws();
        let s_bic = simulate_training(&bic, &w, Strategy::Tree, None).total()
            / simulate_training(&bic, &w, split, None).total();
        let s_aws = simulate_training(&aws, &w, Strategy::Tree, None).total()
            / simulate_training(&aws, &w, split, None).total();
        bic_speedups.push(s_bic);
        aws_speedups.push(s_aws);
        t.row(vec![
            w.name.to_string(),
            format!("{s_bic:.2}x"),
            format!("{s_aws:.2}x"),
        ]);
    }
    t.print();
    println!(
        "\ngeo-mean: BIC {:.2}x (paper 1.60x), AWS {:.2}x (paper 1.81x)",
        geo_mean(&bic_speedups),
        geo_mean(&aws_speedups)
    );
    println!(
        "max:      BIC {:.2}x (paper 2.62x), AWS {:.2}x (paper 3.69x)",
        bic_speedups.iter().copied().fold(0.0, f64::max),
        aws_speedups.iter().copied().fold(0.0, f64::max)
    );
    let path = t.write_csv("fig17_endtoend").expect("csv");
    println!("wrote {}", path.display());
}
