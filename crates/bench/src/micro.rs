//! Std-only micro-benchmark harness: the workspace's in-repo replacement
//! for Criterion, so `cargo bench` needs no external dependencies.
//!
//! Scope is deliberately small — the benches under `benches/` measure
//! operations in the microseconds-and-up range, where a plain
//! [`std::time::Instant`] sample per iteration is accurate. Each benchmark
//! runs a fixed warmup, then N timed iterations, and reports min / mean /
//! median / p95 plus derived throughput when a byte count is given. Results
//! print as an aligned table and land as JSON under `results/micro/` for
//! diffing across commits.
//!
//! ```no_run
//! let mut b = sparker_bench::micro::Bench::new("codec");
//! b.run("encode/1024", Some(8 * 1024), || {
//!     // ... the operation under test ...
//! });
//! b.finish().unwrap();
//! ```

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use crate::{fmt_secs, Table};

/// Per-benchmark summary statistics, in seconds.
#[derive(Debug, Clone)]
pub struct Stats {
    pub name: String,
    pub samples: usize,
    pub min: f64,
    pub mean: f64,
    pub median: f64,
    pub p95: f64,
    /// Bytes processed per iteration, if the caller declared them.
    pub bytes: Option<u64>,
}

impl Stats {
    /// MB/s at the median, when a byte count was declared.
    pub fn throughput_mbps(&self) -> Option<f64> {
        self.bytes.map(|b| b as f64 / self.median / 1e6)
    }

    fn from_samples(name: &str, mut secs: Vec<f64>, bytes: Option<u64>) -> Self {
        assert!(!secs.is_empty());
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = secs.len();
        let median = if n % 2 == 1 {
            secs[n / 2]
        } else {
            (secs[n / 2 - 1] + secs[n / 2]) / 2.0
        };
        // Nearest-rank percentile: smallest sample >= 95% of the mass.
        let p95 = secs[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        Self {
            name: name.to_string(),
            samples: n,
            min: secs[0],
            mean: secs.iter().sum::<f64>() / n as f64,
            median,
            p95,
            bytes,
        }
    }
}

/// A named group of micro-benchmarks; mirrors a Criterion benchmark group.
pub struct Bench {
    group: String,
    warmup: u32,
    samples: u32,
    results: Vec<Stats>,
}

impl Bench {
    /// Defaults: 5 warmup iterations, 30 timed samples. Override the sample
    /// count with `SPARKER_BENCH_SAMPLES` for quicker smoke runs.
    pub fn new(group: &str) -> Self {
        let samples = std::env::var("SPARKER_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(30);
        Self { group: group.to_string(), warmup: 5, samples, results: Vec::new() }
    }

    pub fn warmup(mut self, iters: u32) -> Self {
        self.warmup = iters;
        self
    }

    pub fn samples(mut self, n: u32) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark: warmup, then one timed sample per iteration.
    /// `bytes` is the payload size an iteration processes (for throughput).
    pub fn run<T>(&mut self, name: &str, bytes: Option<u64>, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let secs: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        self.results.push(Stats::from_samples(name, secs, bytes));
    }

    /// Prints the group table and writes `results/micro/<group>.json`.
    pub fn finish(self) -> std::io::Result<()> {
        let mut t = Table::new(vec!["benchmark", "min", "median", "p95", "throughput"]);
        for s in &self.results {
            t.row(vec![
                s.name.clone(),
                fmt_secs(s.min),
                fmt_secs(s.median),
                fmt_secs(s.p95),
                s.throughput_mbps().map(|m| format!("{m:.0} MB/s")).unwrap_or_else(|| "-".into()),
            ]);
        }
        println!("group: {}", self.group);
        t.print();

        let dir = std::path::Path::new("results").join("micro");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.group));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        println!("wrote {}", path.display());
        Ok(())
    }

    /// Hand-rolled JSON: flat enough that pulling in a serializer would be
    /// all cost and no benefit (names are straight from the source, no
    /// escaping needed beyond quotes).
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"group\":\"{}\",\"results\":[", self.group.replace('"', "\\\"")));
        for (i, s) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"samples\":{},\"min_s\":{:e},\"mean_s\":{:e},\"median_s\":{:e},\"p95_s\":{:e}",
                s.name.replace('"', "\\\""),
                s.samples,
                s.min,
                s.mean,
                s.median,
                s.p95,
            ));
            if let Some(b) = s.bytes {
                out.push_str(&format!(",\"bytes\":{b}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = Stats::from_samples("t", vec![5.0, 1.0, 3.0, 2.0, 4.0], Some(1_000_000));
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p95, 5.0);
        // 1 MB at 3 s median = 1/3 MB/s.
        assert!((s.throughput_mbps().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn even_sample_count_interpolates_median() {
        let s = Stats::from_samples("t", vec![1.0, 2.0, 3.0, 4.0], None);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.p95, 4.0);
        assert!(s.throughput_mbps().is_none());
    }

    #[test]
    fn bench_runs_and_records() {
        let mut b = Bench::new("test_group").warmup(1).samples(3);
        let mut calls = 0u32;
        b.run("noop", None, || calls += 1);
        assert_eq!(calls, 4); // 1 warmup + 3 samples
        assert_eq!(b.results.len(), 1);
        assert_eq!(b.results[0].samples, 3);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut b = Bench::new("g").warmup(0).samples(2);
        b.run("op", Some(64), || ());
        let j = b.to_json();
        assert!(j.starts_with("{\"group\":\"g\",\"results\":[{\"name\":\"op\""));
        assert!(j.contains("\"bytes\":64"));
        assert!(j.ends_with("}]}"));
    }
}
