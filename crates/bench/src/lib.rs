//! Shared infrastructure for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper:
//! it prints an aligned text table of the same series the paper plots, notes
//! the paper's reference numbers next to ours, and (optionally) drops a CSV
//! under `results/` for external plotting.

pub mod micro;

use std::fmt::Write as _;
use std::io::Write as _;

/// Prints the standard harness header for a figure/table binary.
pub fn print_header(id: &str, title: &str, note: &str) {
    println!("==================================================================");
    println!("{id} — {title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("==================================================================");
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with per-column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = width[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = width[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Formats seconds compactly (µs/ms/s) for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.2}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a byte count as a power-of-two unit string.
pub fn fmt_bytes(b: f64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    if b >= MB {
        format!("{:.0}MB", b / MB)
    } else if b >= KB {
        format!("{:.0}KB", b / KB)
    } else {
        format!("{b:.0}B")
    }
}

/// Geometric mean (duplicated from sparker-sim for bin convenience).
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(5e-6), "5.00us");
        assert_eq!(fmt_secs(0.015), "15.00ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_bytes(1024.0), "1KB");
        assert_eq!(fmt_bytes(8.0 * 1024.0 * 1024.0), "8MB");
        assert_eq!(fmt_bytes(100.0), "100B");
    }

    #[test]
    fn geo_mean_matches_hand_calc() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
