//! Shared infrastructure for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper:
//! it prints an aligned text table of the same series the paper plots, notes
//! the paper's reference numbers next to ours, and (optionally) drops a CSV
//! under `results/` for external plotting.

pub mod micro;

use std::fmt::Write as _;
use std::io::Write as _;

/// Prints the standard harness header for a figure/table binary.
pub fn print_header(id: &str, title: &str, note: &str) {
    println!("==================================================================");
    println!("{id} — {title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("==================================================================");
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with per-column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = width[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = width[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Full-fidelity `AggMetrics` CSV: key columns chosen by the harness
/// (size, nodes, …) followed by every [`AggMetrics`] field via
/// [`AggMetrics::csv_header`] / [`AggMetrics::csv_row`], so all harnesses
/// export the same machine-readable schema instead of hand-formatting a
/// subset of the fields.
///
/// [`AggMetrics`]: sparker_engine::metrics::AggMetrics
/// [`AggMetrics::csv_header`]: sparker_engine::metrics::AggMetrics::csv_header
/// [`AggMetrics::csv_row`]: sparker_engine::metrics::AggMetrics::csv_row
#[derive(Debug, Clone)]
pub struct MetricsCsv {
    key_headers: Vec<String>,
    rows: Vec<String>,
}

impl MetricsCsv {
    pub fn new<S: Into<String>>(key_headers: Vec<S>) -> Self {
        Self { key_headers: key_headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one measurement: the harness's key cells plus the metrics row.
    pub fn row<S: Into<String>>(
        &mut self,
        keys: Vec<S>,
        m: &sparker_engine::metrics::AggMetrics,
    ) -> &mut Self {
        let keys: Vec<String> = keys.into_iter().map(Into::into).collect();
        assert_eq!(keys.len(), self.key_headers.len(), "key width mismatch");
        self.rows.push(format!("{},{}", keys.join(","), m.csv_row()));
        self
    }

    /// Writes `results/<name>.csv` with the combined header.
    pub fn write(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(
            f,
            "{},{}",
            self.key_headers.join(","),
            sparker_engine::metrics::AggMetrics::csv_header()
        )?;
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(path)
    }
}

/// Formats seconds compactly (µs/ms/s) for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.2}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a byte count as a power-of-two unit string.
pub fn fmt_bytes(b: f64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    if b >= MB {
        format!("{:.0}MB", b / MB)
    } else if b >= KB {
        format!("{:.0}KB", b / KB)
    } else {
        format!("{b:.0}B")
    }
}

/// Geometric mean (duplicated from sparker-sim for bin convenience).
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(5e-6), "5.00us");
        assert_eq!(fmt_secs(0.015), "15.00ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_bytes(1024.0), "1KB");
        assert_eq!(fmt_bytes(8.0 * 1024.0 * 1024.0), "8MB");
        assert_eq!(fmt_bytes(100.0), "100B");
    }

    #[test]
    fn geo_mean_matches_hand_calc() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_csv_rows_align_with_header() {
        use sparker_engine::metrics::{AggMetrics, AggStrategy};
        let mut c = MetricsCsv::new(vec!["size", "nodes"]);
        c.row(vec!["8MB", "4"], &AggMetrics::new(AggStrategy::Tree));
        let cols = 2 + AggMetrics::csv_header().split(',').count();
        assert_eq!(c.rows[0].split(',').count(), cols);
        assert!(c.rows[0].starts_with("8MB,4,tree,"));
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn metrics_csv_mismatched_keys_panic() {
        use sparker_engine::metrics::{AggMetrics, AggStrategy};
        MetricsCsv::new(vec!["a", "b"]).row(vec!["only"], &AggMetrics::new(AggStrategy::Tree));
    }
}
