//! Engine-level aggregation — tree vs tree+IMM vs split on an unshaped
//! local cluster (pure engine + codec overheads).

use sparker_bench::micro::Bench;
use sparker_engine::cluster::LocalCluster;
use sparker_engine::config::ClusterSpec;
use sparker_engine::dataset::Dataset;
use sparker_engine::ops::split_aggregate::SplitAggOpts;
use sparker_engine::ops::tree_aggregate::TreeAggOpts;
use sparker_net::codec::F64Array;

fn make_data(cluster: &LocalCluster, elems: usize) -> Dataset<Vec<f64>> {
    let data = cluster
        .generate(8, move |p| vec![vec![p as f64; elems]; 1])
        .cache();
    data.count().unwrap();
    data
}

fn seq(mut acc: F64Array, v: &Vec<f64>) -> F64Array {
    for (a, x) in acc.0.iter_mut().zip(v) {
        *a += *x;
    }
    acc
}

fn main() {
    let cluster = LocalCluster::new(ClusterSpec::local(4, 2));
    let mut b = Bench::new("aggregation_unshaped").samples(10);
    for &elems in &[4096usize, 128 * 1024] {
        let data = make_data(&cluster, elems);
        let bytes = Some((elems * 8) as u64);
        b.run(&format!("tree/{elems}"), bytes, || {
            data.tree_aggregate(
                F64Array(vec![0.0; elems]),
                seq,
                |mut a, bb| {
                    sparker::dense::merge(&mut a, bb);
                    a
                },
                TreeAggOpts::default(),
            )
            .unwrap()
        });
        b.run(&format!("tree_imm/{elems}"), bytes, || {
            data.tree_aggregate(
                F64Array(vec![0.0; elems]),
                seq,
                |mut a, bb| {
                    sparker::dense::merge(&mut a, bb);
                    a
                },
                TreeAggOpts { depth: 2, imm: true },
            )
            .unwrap()
        });
        b.run(&format!("split/{elems}"), bytes, || {
            data.split_aggregate(
                F64Array(vec![0.0; elems]),
                seq,
                sparker::dense::merge,
                sparker::dense::split,
                sparker::dense::merge_segments,
                sparker::dense::concat,
                SplitAggOpts::default(),
            )
            .unwrap()
        });
    }
    b.finish().unwrap();
}
