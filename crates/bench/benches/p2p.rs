//! Raw point-to-point overhead of the in-process mesh (unshaped) — the
//! substrate's own cost floor, beneath any modeled network delay.

use std::sync::Arc;

use sparker_bench::micro::Bench;
use sparker_net::topology::{round_robin_layout, ExecutorId};
use sparker_net::transport::{MeshTransport, Transport};
use sparker_net::ByteBuf;

fn main() {
    let execs = round_robin_layout(2, 1, 1);
    let net: Arc<MeshTransport> = MeshTransport::unshaped(&execs, 1);
    let mut b = Bench::new("p2p_unshaped");
    for &size in &[8usize, 1024, 64 * 1024] {
        let payload = ByteBuf::from(vec![0u8; size]);
        b.run(&format!("send_recv/{size}"), Some(size as u64), || {
            net.send(ExecutorId(0), ExecutorId(1), 0, payload.clone()).unwrap();
            net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()
        });
    }
    b.finish().unwrap();
}
