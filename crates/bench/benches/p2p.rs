//! Criterion: raw point-to-point overhead of the in-process mesh (unshaped)
//! — the substrate's own cost floor, beneath any modeled network delay.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparker_net::topology::{round_robin_layout, ExecutorId};
use sparker_net::transport::{MeshTransport, Transport};

fn bench_p2p(c: &mut Criterion) {
    let execs = round_robin_layout(2, 1, 1);
    let net: Arc<MeshTransport> = MeshTransport::unshaped(&execs, 1);
    let mut g = c.benchmark_group("p2p_unshaped");
    g.sample_size(30);
    for &size in &[8usize, 1024, 64 * 1024] {
        let payload = Bytes::from(vec![0u8; size]);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("send_recv", size), &payload, |b, payload| {
            b.iter(|| {
                net.send(ExecutorId(0), ExecutorId(1), 0, payload.clone()).unwrap();
                net.recv(ExecutorId(1), ExecutorId(0), 0).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_p2p);
criterion_main!(benches);
