//! Criterion: codec throughput — the serialization boundary every
//! aggregator crosses. Bulk `f64` slices (the hot path) vs element-wise
//! encoding, plus decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparker_net::codec::{Decoder, Encoder, F64Array, Payload};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    for &elems in &[1024usize, 64 * 1024] {
        let data: Vec<f64> = (0..elems).map(|i| i as f64 * 0.5).collect();
        g.throughput(Throughput::Bytes((elems * 8) as u64));
        g.bench_with_input(BenchmarkId::new("encode_bulk", elems), &data, |b, data| {
            b.iter(|| {
                let mut enc = Encoder::with_capacity(data.len() * 8 + 8);
                enc.put_f64_slice(data);
                enc.finish()
            })
        });
        g.bench_with_input(BenchmarkId::new("encode_elementwise", elems), &data, |b, data| {
            b.iter(|| {
                let mut enc = Encoder::with_capacity(data.len() * 8 + 8);
                enc.put_usize(data.len());
                for &x in data {
                    enc.put_f64(x);
                }
                enc.finish()
            })
        });
        let frame = F64Array(data.clone()).to_frame();
        g.bench_with_input(BenchmarkId::new("decode_bulk", elems), &frame, |b, frame| {
            b.iter(|| {
                let mut dec = Decoder::new(frame.clone());
                dec.get_f64_vec().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
