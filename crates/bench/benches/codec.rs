//! Codec throughput — the serialization boundary every aggregator crosses.
//! Bulk `f64` slices (the hot path) vs element-wise encoding, plus decode.

use sparker_bench::micro::Bench;
use sparker_net::codec::{Decoder, Encoder, F64Array, Payload};

fn main() {
    let mut b = Bench::new("codec").samples(20);
    for &elems in &[1024usize, 64 * 1024] {
        let data: Vec<f64> = (0..elems).map(|i| i as f64 * 0.5).collect();
        let bytes = Some((elems * 8) as u64);
        b.run(&format!("encode_bulk/{elems}"), bytes, || {
            let mut enc = Encoder::with_capacity(data.len() * 8 + 8);
            enc.put_f64_slice(&data);
            enc.finish()
        });
        b.run(&format!("encode_elementwise/{elems}"), bytes, || {
            let mut enc = Encoder::with_capacity(data.len() * 8 + 8);
            enc.put_usize(data.len());
            for &x in &data {
                enc.put_f64(x);
            }
            enc.finish()
        });
        let frame = F64Array(data.clone()).to_frame();
        b.run(&format!("decode_bulk/{elems}"), bytes, || {
            let mut dec = Decoder::new(frame.clone());
            dec.get_f64_vec().unwrap()
        });
    }
    b.finish().unwrap();
}
