//! One gradient-descent iteration of each model family — the unit of work
//! every end-to-end figure multiplies.

use sparker_bench::micro::Bench;
use sparker_data::synth::{ClassificationGen, CorpusGen};
use sparker_engine::cluster::LocalCluster;
use sparker_ml::glm::{run_gradient_descent, GdConfig, GradientKind};
use sparker_ml::lda::{train as lda_train, LdaConfig};
use sparker_ml::point::LabeledPoint;

fn main() {
    let cluster = LocalCluster::local(2, 2);
    let mut b = Bench::new("ml_iteration").samples(10);

    let gen = ClassificationGen::new(5, 256, 10);
    let lr_data = {
        let g2 = gen.clone();
        cluster
            .generate(4, move |p| {
                g2.partition(p, 4, 2000).into_iter().map(LabeledPoint::from).collect()
            })
            .cache()
    };
    lr_data.count().unwrap();
    b.run("logistic_iteration_2000x256", None, || {
        run_gradient_descent(
            &lr_data,
            256,
            GradientKind::Logistic,
            GdConfig { iterations: 1, ..Default::default() },
        )
        .unwrap()
    });

    let corpus = CorpusGen::new(7, 500, 5, 80);
    let lda_data = {
        let g2 = corpus.clone();
        cluster.generate(4, move |p| g2.partition(p, 4, 100)).cache()
    };
    lda_data.count().unwrap();
    b.run("lda_iteration_100docs_k5_v500", None, || {
        lda_train(&lda_data, LdaConfig { iterations: 1, ..LdaConfig::new(5, 500) }).unwrap()
    });
    b.finish().unwrap();
}
