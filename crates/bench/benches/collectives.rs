//! The collective algorithms on an unshaped 4-rank ring — pure algorithm +
//! codec cost, no modeled network.

use sparker_bench::micro::Bench;
use sparker_collectives::allreduce::ring_allreduce;
use sparker_collectives::halving::recursive_halving_reduce_scatter;
use sparker_collectives::ring::ring_reduce_scatter;
use sparker_collectives::segment::U64SumSegment;
use sparker_collectives::testing::{run_ring_cluster, RingClusterSpec};

fn main() {
    let mut b = Bench::new("collectives_4ranks").samples(10);
    for &elems in &[1024usize, 32 * 1024] {
        let total_bytes = Some((elems * 8 * 4) as u64); // per-rank aggregator x 4
        let spec = RingClusterSpec::unshaped(1, 4, 1);
        b.run(&format!("ring_reduce_scatter/{elems}"), total_bytes, || {
            run_ring_cluster(&spec, move |comm| {
                let segs: Vec<U64SumSegment> =
                    (0..4).map(|_| U64SumSegment(vec![1; elems / 4])).collect();
                ring_reduce_scatter(&comm, segs).unwrap()
            })
        });
        b.run(&format!("recursive_halving/{elems}"), total_bytes, || {
            run_ring_cluster(&spec, move |comm| {
                let segs: Vec<U64SumSegment> =
                    (0..4).map(|_| U64SumSegment(vec![1; elems / 4])).collect();
                recursive_halving_reduce_scatter(&comm, segs).unwrap()
            })
        });
        b.run(&format!("ring_allreduce/{elems}"), total_bytes, || {
            run_ring_cluster(&spec, move |comm| {
                let segs: Vec<U64SumSegment> =
                    (0..4).map(|_| U64SumSegment(vec![1; elems / 4])).collect();
                ring_allreduce(&comm, segs).unwrap()
            })
        });
    }
    b.finish().unwrap();
}
