//! Criterion: the collective algorithms on an unshaped 4-rank ring —
//! pure algorithm + codec cost, no modeled network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparker_collectives::allreduce::ring_allreduce;
use sparker_collectives::halving::recursive_halving_reduce_scatter;
use sparker_collectives::ring::ring_reduce_scatter;
use sparker_collectives::segment::U64SumSegment;
use sparker_collectives::testing::{run_ring_cluster, RingClusterSpec};

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_4ranks");
    g.sample_size(10);
    for &elems in &[1024usize, 32 * 1024] {
        let total_bytes = (elems * 8 * 4) as u64; // per-rank aggregator x 4
        g.throughput(Throughput::Bytes(total_bytes));
        let spec = RingClusterSpec::unshaped(1, 4, 1);
        g.bench_with_input(BenchmarkId::new("ring_reduce_scatter", elems), &spec, |b, spec| {
            b.iter(|| {
                run_ring_cluster(spec, |comm| {
                    let segs: Vec<U64SumSegment> =
                        (0..4).map(|_| U64SumSegment(vec![1; elems / 4])).collect();
                    ring_reduce_scatter(&comm, segs).unwrap()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("recursive_halving", elems), &spec, |b, spec| {
            b.iter(|| {
                run_ring_cluster(spec, |comm| {
                    let segs: Vec<U64SumSegment> =
                        (0..4).map(|_| U64SumSegment(vec![1; elems / 4])).collect();
                    recursive_halving_reduce_scatter(&comm, segs).unwrap()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("ring_allreduce", elems), &spec, |b, spec| {
            b.iter(|| {
                run_ring_cluster(spec, |comm| {
                    let segs: Vec<U64SumSegment> =
                        (0..4).map(|_| U64SumSegment(vec![1; elems / 4])).collect();
                    ring_allreduce(&comm, segs).unwrap()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
