//! Hierarchical span tracing with a near-zero-cost disabled path.
//!
//! See the crate docs for the two recording tiers. Key invariants:
//!
//! * With tracing disabled, [`span`]/[`event`]/[`event_dur`] perform one
//!   relaxed atomic load and return — no lock, no allocation, no
//!   thread-local buffer creation ([`thread_buffers_created`] stays flat).
//! * Gated spans buffer in a per-thread `Vec` and flush to the global sink
//!   only when the thread's span stack empties (or the buffer exceeds a
//!   batch cap while spans are still open). Each flush appends whole
//!   records under one lock, so concurrent emitters can interleave
//!   *batches* but never corrupt a record.
//! * Scoped spans ([`ScopedSpan`], [`record_manual`]) are always recorded,
//!   written directly to the sink at completion time; per-scope insertion
//!   order is completion order, which the engine's `History` relies on.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Which layer of the system emitted a span. Doubles as the Chrome trace
/// category, and as the "≥1 span per layer" checklist in the smoke test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Driver-side op phases (compute / reduce / driver-merge stopwatches).
    Driver,
    /// Stage completions — the history-log tier the paper's Fig 2 mines.
    Stage,
    /// Individual task attempts inside a stage.
    Task,
    /// Collective steps (ring / halving / allgather), one per hop.
    Step,
    /// Transport events: sends, receives, BlockManager put/fetch, faults.
    Net,
    /// ML driver loop iterations (GLM / L-BFGS / LDA).
    Ml,
}

impl Layer {
    /// Every layer, in taxonomy order (driver-out → wire-in).
    pub const ALL: [Layer; 6] =
        [Layer::Driver, Layer::Stage, Layer::Task, Layer::Step, Layer::Net, Layer::Ml];

    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Driver => "driver",
            Layer::Stage => "stage",
            Layer::Task => "task",
            Layer::Step => "step",
            Layer::Net => "net",
            Layer::Ml => "ml",
        }
    }
}

/// One completed span (or instant event, when `dur_ns == 0`).
///
/// Timestamps are nanoseconds since the process trace epoch (the first
/// time any part of this module touched the clock).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (process-wide, never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Scope id tying the span to one cluster / history instance
    /// (0 = unscoped).
    pub scope: u64,
    /// Stable per-thread id (dense, assigned at first emission).
    pub tid: u64,
    pub layer: Layer,
    pub name: String,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Numeric attributes: task index, attempt, bytes, peer rank, epoch…
    pub args: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SCOPE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static BUFFERS_CREATED: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// A sink write never blocks on a poisoned lock: a panicking emitter only
/// ever leaves whole records behind, so the data is still consistent.
fn sink() -> MutexGuard<'static, Vec<SpanRecord>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Allocates a fresh scope id (one per cluster / history instance).
pub fn next_scope() -> u64 {
    NEXT_SCOPE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Turn fine-grained (task/step/net/ml) tracing on.
pub fn enable() {
    epoch(); // pin the epoch before the first gated span
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn fine-grained tracing off. Buffered spans on other threads still
/// flush when their outermost span closes.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The hot-path gate: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// How many per-thread trace buffers have ever been allocated. The
/// disabled-overhead test asserts this stays flat across a traced-off run.
pub fn thread_buffers_created() -> u64 {
    BUFFERS_CREATED.load(Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Reading the sink
// ---------------------------------------------------------------------------

/// Clones every record currently in the sink. Gated spans appear once
/// their thread's outermost span has closed (whole-batch flush).
pub fn snapshot() -> Vec<SpanRecord> {
    sink().clone()
}

/// Clones the records belonging to one scope, in completion order.
pub fn snapshot_scope(scope: u64) -> Vec<SpanRecord> {
    sink().iter().filter(|r| r.scope == scope).cloned().collect()
}

/// Drains the sink (all scopes). Intended for end-of-process export; a
/// live `History` whose scope is drained simply reports empty afterwards.
pub fn take() -> Vec<SpanRecord> {
    std::mem::take(&mut *sink())
}

/// Drops every record in one scope (called by `History::drop` so
/// long-lived processes don't accumulate dead clusters' stage spans).
pub fn clear_scope(scope: u64) {
    sink().retain(|r| r.scope != scope);
}

/// Drops everything.
pub fn clear() {
    sink().clear();
}

// ---------------------------------------------------------------------------
// Gated tier: per-thread buffers
// ---------------------------------------------------------------------------

/// Closed-but-unflushed records are batched out if they pile past this
/// while an outer span is still open (keeps long tasks' memory bounded).
const FLUSH_BATCH: usize = 4096;

struct ThreadBuf {
    tid: u64,
    /// Open span ids, innermost last.
    stack: Vec<u64>,
    /// Closed records awaiting flush.
    done: Vec<SpanRecord>,
}

thread_local! {
    static TBUF: RefCell<Option<ThreadBuf>> = const { RefCell::new(None) };
}

fn with_buf<R>(f: impl FnOnce(&mut ThreadBuf) -> R) -> R {
    TBUF.with(|cell| {
        let mut slot = cell.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            BUFFERS_CREATED.fetch_add(1, Ordering::SeqCst);
            ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                stack: Vec::new(),
                done: Vec::new(),
            }
        });
        f(buf)
    })
}

fn push_done(buf: &mut ThreadBuf, record: SpanRecord) {
    buf.done.push(record);
    if buf.stack.is_empty() || buf.done.len() >= FLUSH_BATCH {
        sink().append(&mut buf.done);
    }
}

/// RAII guard for a gated span. Obtained from [`span`] /
/// [`span_with_parent`]; a no-op shell when tracing is disabled.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

struct OpenSpan {
    id: u64,
    parent: u64,
    scope: u64,
    layer: Layer,
    name: String,
    start: Instant,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Attach a numeric attribute. No-op when disabled.
    pub fn arg(&mut self, key: &'static str, value: u64) -> &mut Self {
        if let Some(s) = self.inner.as_mut() {
            s.args.push((key, value));
        }
        self
    }

    /// The span id (0 when disabled) — for parenting cross-thread children.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }

    /// Is this guard actually recording?
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else { return };
        let dur = open.start.elapsed();
        let start_ns = (open.start - epoch()).as_nanos() as u64;
        with_buf(|buf| {
            // Pop this span off the open stack (it is the innermost one on
            // this thread unless guards were dropped out of order; `retain`
            // keeps the stack sane either way).
            if buf.stack.last() == Some(&open.id) {
                buf.stack.pop();
            } else {
                buf.stack.retain(|&id| id != open.id);
            }
            push_done(
                buf,
                SpanRecord {
                    id: open.id,
                    parent: open.parent,
                    scope: open.scope,
                    tid: buf.tid,
                    layer: open.layer,
                    name: open.name,
                    start_ns,
                    dur_ns: dur.as_nanos() as u64,
                    args: open.args,
                },
            );
        });
    }
}

/// Opens a gated span on the current thread. Parent = the thread's
/// innermost open span, if any.
#[inline]
pub fn span(layer: Layer, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    open_span(layer, name.into(), None)
}

/// Opens a gated span with an explicit parent (e.g. a task span parented
/// to the driver's stage span across threads). Falls back to the thread's
/// innermost open span when `parent` is 0 and one exists.
#[inline]
pub fn span_with_parent(layer: Layer, name: impl Into<String>, parent: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    open_span(layer, name.into(), Some(parent))
}

fn open_span(layer: Layer, name: String, parent: Option<u64>) -> SpanGuard {
    let id = next_span_id();
    let start = Instant::now();
    let parent = with_buf(|buf| {
        let p = match parent {
            Some(0) | None => buf.stack.last().copied().unwrap_or(0),
            Some(p) => p,
        };
        buf.stack.push(id);
        p
    });
    SpanGuard {
        inner: Some(OpenSpan { id, parent, scope: 0, layer, name, start, args: Vec::new() }),
    }
}

/// Records a gated instant event (duration 0).
#[inline]
pub fn event(layer: Layer, name: &str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    record_gated(layer, name, now_ns(), 0, args);
}

/// Records a gated completed span from a start `Instant` captured by the
/// caller — the "measure only successful operations" pattern:
///
/// ```ignore
/// let t0 = obs::trace::enabled().then(Instant::now);
/// let msg = transport.recv(...)?;           // early return records nothing
/// if let Some(t0) = t0 {
///     obs::trace::event_dur(Layer::Net, "sc.recv", t0, &[("bytes", n)]);
/// }
/// ```
#[inline]
pub fn event_dur(layer: Layer, name: &str, start: Instant, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let e = epoch();
    let start_ns = start.checked_duration_since(e).unwrap_or(Duration::ZERO).as_nanos() as u64;
    let dur_ns = start.elapsed().as_nanos() as u64;
    record_gated(layer, name, start_ns, dur_ns, args);
}

fn record_gated(layer: Layer, name: &str, start_ns: u64, dur_ns: u64, args: &[(&'static str, u64)]) {
    let id = next_span_id();
    with_buf(|buf| {
        let parent = buf.stack.last().copied().unwrap_or(0);
        push_done(
            buf,
            SpanRecord {
                id,
                parent,
                scope: 0,
                tid: buf.tid,
                layer,
                name: name.to_string(),
                start_ns,
                dur_ns,
                args: args.to_vec(),
            },
        );
    });
}

// ---------------------------------------------------------------------------
// Always-on tier: scoped spans
// ---------------------------------------------------------------------------

/// A driver-side span that is **always recorded** (tracing flag ignored),
/// tagged with a scope id. The engine's `History` and `AggMetrics` are
/// derived views over these records.
///
/// Recording happens on [`finish`](ScopedSpan::finish) only — a dropped
/// (not finished) span records nothing, matching the engine's historical
/// behaviour of not logging failed stages.
pub struct ScopedSpan {
    id: u64,
    parent: u64,
    scope: u64,
    layer: Layer,
    name: String,
    start: Instant,
    args: Vec<(&'static str, u64)>,
}

impl ScopedSpan {
    pub fn begin(scope: u64, layer: Layer, name: impl Into<String>) -> Self {
        ScopedSpan {
            id: next_span_id(),
            parent: 0,
            scope,
            layer,
            name: name.into(),
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    pub fn with_parent(mut self, parent: u64) -> Self {
        self.parent = parent;
        self
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn arg(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.args.push((key, value));
        self
    }

    /// Close the span, write it to the sink, and return its measured wall
    /// time (so callers can keep using the span as their stopwatch).
    pub fn finish(self) -> Duration {
        let dur = self.start.elapsed();
        let e = epoch();
        let start_ns =
            self.start.checked_duration_since(e).unwrap_or(Duration::ZERO).as_nanos() as u64;
        sink().push(SpanRecord {
            id: self.id,
            parent: self.parent,
            scope: self.scope,
            tid: 0,
            layer: self.layer,
            name: self.name,
            start_ns,
            dur_ns: dur.as_nanos() as u64,
            args: self.args,
        });
        dur
    }
}

/// Records a completed scoped span whose duration was measured externally
/// (start is back-dated to `now - wall`). Used by `History::record`.
pub fn record_manual(
    scope: u64,
    layer: Layer,
    name: impl Into<String>,
    wall: Duration,
    args: &[(&'static str, u64)],
) -> u64 {
    let id = next_span_id();
    let end_ns = now_ns();
    let wall_ns = wall.as_nanos() as u64;
    sink().push(SpanRecord {
        id,
        parent: 0,
        scope,
        tid: 0,
        layer,
        name: name.into(),
        start_ns: end_ns.saturating_sub(wall_ns),
        dur_ns: wall_ns,
        args: args.to_vec(),
    });
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enable/disable toggles are process-global; tests that flip them
    /// serialize through this lock (ignoring poison from failed tests).
    static TOGGLE: Mutex<()> = Mutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        TOGGLE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_is_inert() {
        let _l = locked();
        disable();
        let before = thread_buffers_created();
        {
            let mut g = span(Layer::Task, "noop");
            g.arg("x", 1);
            assert_eq!(g.id(), 0);
            assert!(!g.active());
        }
        event(Layer::Net, "noop", &[("bytes", 7)]);
        assert_eq!(thread_buffers_created(), before, "disabled path allocated a buffer");
    }

    #[test]
    fn nesting_and_flush_on_outermost_close() {
        let _l = locked();
        enable();
        clear();
        let outer_id;
        {
            let outer = span(Layer::Task, "outer");
            outer_id = outer.id();
            {
                let inner = span(Layer::Step, "inner");
                assert_ne!(inner.id(), 0);
                // inner closes first but nothing is flushed yet…
            }
            assert!(
                snapshot().iter().all(|r| r.name != "inner"),
                "inner flushed before outermost close"
            );
        }
        let spans = snapshot();
        disable();
        let inner = spans.iter().find(|r| r.name == "inner").expect("inner recorded");
        let outer = spans.iter().find(|r| r.name == "outer").expect("outer recorded");
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, 0);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns() + 1_000, "child must not outlive parent");
        clear();
    }

    #[test]
    fn scoped_spans_ignore_enable_flag_and_keep_order() {
        let _l = locked();
        disable();
        let scope = next_scope();
        for i in 0..5u64 {
            record_manual(scope, Layer::Stage, format!("s{i}"), Duration::from_millis(i), &[]);
        }
        let got = snapshot_scope(scope);
        assert_eq!(got.len(), 5);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.name, format!("s{i}"), "completion order preserved");
        }
        clear_scope(scope);
        assert!(snapshot_scope(scope).is_empty());
    }

    #[test]
    fn parallel_emission_yields_whole_records() {
        let _l = locked();
        enable();
        clear();
        const THREADS: usize = 8;
        const PER: usize = 500;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER {
                        let mut g = span(Layer::Step, format!("t{t}-i{i}"));
                        g.arg("t", t as u64).arg("i", i as u64);
                    }
                });
            }
        });
        let spans: Vec<SpanRecord> =
            snapshot().into_iter().filter(|r| r.layer == Layer::Step).collect();
        disable();
        assert_eq!(spans.len(), THREADS * PER);
        let mut ids: Vec<u64> = spans.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), THREADS * PER, "duplicate span ids");
        for r in &spans {
            // Every record is internally consistent: its name encodes the
            // same (thread, index) pair as its args — a torn or interleaved
            // record would disagree.
            let want = format!("t{}-i{}", r.arg("t").unwrap(), r.arg("i").unwrap());
            assert_eq!(r.name, want, "corrupt record");
        }
        clear();
    }

    #[test]
    fn event_dur_backdates_start() {
        let _l = locked();
        enable();
        clear();
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(5));
        event_dur(Layer::Net, "waited", t0, &[("bytes", 3)]);
        // events flush immediately when no span is open on this thread
        let spans = snapshot();
        disable();
        let e = spans.iter().find(|r| r.name == "waited").expect("event recorded");
        assert!(e.dur_ns >= 4_000_000, "dur {} too short", e.dur_ns);
        assert_eq!(e.arg("bytes"), Some(3));
        clear();
    }
}
