//! A minimal recursive-descent JSON parser (std-only — the workspace is
//! hermetic, no serde). Used to validate exported Chrome traces in tests
//! and the `trace_run` smoke example.
//!
//! Supports the full JSON grammar except `\uXXXX` surrogate pairs are
//! decoded individually (unpaired surrogates become U+FFFD). Numbers
//! parse as `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in document order (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// First value under `key` (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse failure: byte offset + message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            kv.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so this is safe
                    // to do bytewise on char boundaries).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                        |_| JsonError { offset: start, message: "invalid utf-8".into() },
                    )?);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("bad \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\\u0041\"").unwrap(), Json::Str("a\nbA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, []], "d": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(|b| b.as_str()), Some("c"));
        assert_eq!(a[2].as_array().map(|x| x.len()), Some(0));
        assert_eq!(v.get("d"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn utf8_and_escapes_roundtrip() {
        let v = parse("\"héllo ✓ \\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓ é"));
    }
}
