//! # sparker-obs — observability substrate
//!
//! The paper's whole argument starts from observability: §2.3 mines Spark
//! history logs to attribute 67% of end-to-end time to `treeAggregate`
//! (Fig 2) and to split it into scaling compute vs anti-scaling reduce
//! (Figs 3–4). This crate is the reproduction's equivalent of that history
//! log: a hierarchical span tracer (driver → stage → task → collective
//! step, with attempt/epoch labels) plus a process-wide metrics registry,
//! and exporters that regenerate the Fig 2 breakdown directly from spans.
//!
//! ## Two recording tiers
//!
//! * **Always-on, scoped spans** ([`trace::ScopedSpan`],
//!   [`trace::record_manual`]) — low-rate driver-side records (stage
//!   completions, op phases). These are the source of truth behind the
//!   engine's `History` and `AggMetrics` views and are written directly to
//!   the global sink under one short lock. They work with tracing
//!   *disabled*; each cluster tags them with a scope id so concurrent
//!   clusters don't mix.
//! * **Gated fine-grained spans** ([`trace::span`], [`trace::event`],
//!   [`trace::event_dur`]) — per-task, per-collective-step, per-message
//!   records. Behind a single relaxed atomic flag; when disabled the cost
//!   is one atomic load and **no allocation** (guarded by a test on
//!   [`trace::thread_buffers_created`]). When enabled, records accumulate
//!   in per-thread buffers and flush to the sink in one batch when the
//!   thread's outermost span closes — so parallel gang tasks never
//!   interleave partial records.
//!
//! ## Exporters
//!
//! * [`export::chrome_trace_json`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! * [`export::stage_breakdown`] — the Fig 2 per-kind time-breakdown table
//!   (text and CSV), derived purely from `Stage`-layer spans.
//!
//! [`json`] is a minimal std-only JSON parser used to validate exported
//! traces in tests and the `trace_run` example (the workspace is hermetic:
//! no serde).

pub mod export;
pub mod json;
pub mod metrics;
pub mod trace;

pub use trace::{enabled, Layer, SpanRecord};
