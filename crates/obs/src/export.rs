//! Trace exporters: Chrome trace-event JSON, and the paper's Fig 2
//! time-breakdown table derived from `Stage`-layer spans.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::trace::{Layer, SpanRecord};

// ---------------------------------------------------------------------------
// Stage-label classification (shared with engine::history::StageEvent::kind)
// ---------------------------------------------------------------------------

/// Strips the engine's op/suffix decorations from a stage label, leaving
/// the stage *kind* the paper's Fig 2 groups by.
///
/// Labels look like `tree-compute-op12`, `tree-shuffle-op7-l1`, or
/// `split-ring-op9-l2-r1`: a kind, then `-op<digits>`, then optional
/// level/round suffixes. The kind is everything before the **first**
/// `-op` that is immediately followed by at least one ASCII digit —
/// scanning from the left means multi-suffix labels keep nothing after
/// the op marker, and a literal `-op` inside the kind (not digit-followed)
/// is not a marker:
///
/// ```
/// use sparker_obs::export::stage_kind;
/// assert_eq!(stage_kind("tree-compute-op12"), "tree-compute");
/// assert_eq!(stage_kind("split-ring-op9-l2-r1"), "split-ring");
/// assert_eq!(stage_kind("collect"), "collect");             // no -op
/// assert_eq!(stage_kind("weird-op"), "weird-op");           // no digits
/// assert_eq!(stage_kind("x-op-y-op7-l1"), "x-op-y");        // first match wins
/// ```
pub fn stage_kind(label: &str) -> &str {
    let bytes = label.as_bytes();
    let mut from = 0;
    while let Some(pos) = label[from..].find("-op") {
        let at = from + pos;
        let after = at + 3;
        if bytes.get(after).is_some_and(|b| b.is_ascii_digit()) {
            return &label[..at];
        }
        from = at + 1; // not a marker — keep scanning past this occurrence
    }
    label
}

/// Is this stage kind part of an aggregation (the paper's Fig 2 numerator:
/// everything `treeAggregate` spends, plus our split/allreduce variants)?
pub fn is_aggregation_kind(kind: &str) -> bool {
    kind.starts_with("tree-") || kind.starts_with("split-") || kind.starts_with("allreduce-")
}

// ---------------------------------------------------------------------------
// Fig 2 breakdown
// ---------------------------------------------------------------------------

/// One row of the Fig 2 table: total wall time attributed to one stage kind.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    pub kind: String,
    pub total: Duration,
    pub stages: u64,
    pub aggregation: bool,
}

/// The Fig 2 per-kind time breakdown, derived from `Stage`-layer spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Rows sorted by descending total time.
    pub rows: Vec<BreakdownRow>,
}

impl Breakdown {
    /// Sum of all stage wall time.
    pub fn total(&self) -> Duration {
        self.rows.iter().map(|r| r.total).sum()
    }

    /// Fraction of stage time spent in aggregation kinds — the paper's
    /// headline "67% of time in treeAggregate" number.
    pub fn aggregation_share(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let agg: f64 =
            self.rows.iter().filter(|r| r.aggregation).map(|r| r.total.as_secs_f64()).sum();
        agg / total
    }

    /// Human-readable table (what `fig02_trace` prints).
    pub fn to_text(&self) -> String {
        let total = self.total().as_secs_f64();
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>8} {:>12} {:>7}  agg", "kind", "stages", "total_s", "share");
        for r in &self.rows {
            let share = if total > 0.0 { r.total.as_secs_f64() / total } else { 0.0 };
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12.6} {:>6.1}%  {}",
                r.kind,
                r.stages,
                r.total.as_secs_f64(),
                share * 100.0,
                if r.aggregation { "*" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "aggregation share: {:.1}%  (kinds marked *)",
            self.aggregation_share() * 100.0
        );
        out
    }

    /// CSV with header `kind,stages,total_s,share,aggregation`.
    pub fn to_csv(&self) -> String {
        let total = self.total().as_secs_f64();
        let mut out = String::from("kind,stages,total_s,share,aggregation\n");
        for r in &self.rows {
            let share = if total > 0.0 { r.total.as_secs_f64() / total } else { 0.0 };
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.6},{}",
                r.kind,
                r.stages,
                r.total.as_secs_f64(),
                share,
                r.aggregation as u8
            );
        }
        out
    }
}

/// Groups `Stage`-layer spans by [`stage_kind`] into a [`Breakdown`].
/// Non-stage spans are ignored, so a full mixed trace can be passed in.
pub fn stage_breakdown(spans: &[SpanRecord]) -> Breakdown {
    let mut by_kind: BTreeMap<&str, (Duration, u64)> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.layer == Layer::Stage) {
        let e = by_kind.entry(stage_kind(&s.name)).or_default();
        e.0 += Duration::from_nanos(s.dur_ns);
        e.1 += 1;
    }
    let mut rows: Vec<BreakdownRow> = by_kind
        .into_iter()
        .map(|(kind, (total, stages))| BreakdownRow {
            aggregation: is_aggregation_kind(kind),
            kind: kind.to_string(),
            total,
            stages,
        })
        .collect();
    rows.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.kind.cmp(&b.kind)));
    Breakdown { rows }
}

// ---------------------------------------------------------------------------
// Figure series (paper-parity evaluation exporter)
// ---------------------------------------------------------------------------

/// One plotted series of a paper figure: `(x, y)` points plus axis labels.
/// The paper-parity harness (`bin/paper_eval`) emits its per-figure curves
/// as a list of these, so every headline claim ships with the exact series
/// that backs it.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Figure identifier, e.g. `"fig03_anti_scaling"`.
    pub figure: String,
    /// Series name within the figure, e.g. `"tree-reduce"`.
    pub series: String,
    /// X-axis meaning, e.g. `"nodes"`.
    pub x_label: String,
    /// Y-axis meaning, e.g. `"seconds"`.
    pub y_label: String,
    /// The series, in plot order.
    pub points: Vec<(f64, f64)>,
}

impl FigureSeries {
    /// Convenience constructor for string-literal call sites.
    pub fn new(
        figure: &str,
        series: &str,
        x_label: &str,
        y_label: &str,
        points: Vec<(f64, f64)>,
    ) -> Self {
        Self {
            figure: figure.to_string(),
            series: series.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            points,
        }
    }
}

/// Serializes figure series as a deterministic JSON array (no timestamps,
/// fixed 9-digit precision — two identical runs produce byte-identical
/// output), parseable by the in-repo [`crate::json`] parser.
pub fn figures_json(figures: &[FigureSeries]) -> String {
    let mut out = String::from("[");
    for (i, f) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"figure\":\"");
        escape_json(&f.figure, &mut out);
        out.push_str("\",\"series\":\"");
        escape_json(&f.series, &mut out);
        out.push_str("\",\"x_label\":\"");
        escape_json(&f.x_label, &mut out);
        out.push_str("\",\"y_label\":\"");
        escape_json(&f.y_label, &mut out);
        out.push_str("\",\"points\":[");
        for (j, (x, y)) in f.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{x:.9},{y:.9}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n]\n");
    out
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_us(ns: u64, out: &mut String) {
    // Microseconds with nanosecond precision, no float rounding.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Serializes spans as Chrome trace-event JSON (`[{...}, ...]` of
/// complete `"ph":"X"` events), loadable in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
///
/// * `pid` = span scope (each cluster gets its own process track;
///   unscoped gated spans land on pid 0),
/// * `tid` = emitting thread,
/// * `cat` = layer name,
/// * `args` = numeric attributes plus `id`/`parent` for hierarchy.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 * spans.len() + 2);
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json(&s.name, &mut out);
        let _ = write!(out, "\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":", s.layer.as_str());
        write_us(s.start_ns, &mut out);
        out.push_str(",\"dur\":");
        write_us(s.dur_ns, &mut out);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", s.scope, s.tid);
        let _ = write!(out, ",\"args\":{{\"id\":{},\"parent\":{}", s.id, s.parent);
        for (k, v) in &s.args {
            out.push_str(",\"");
            escape_json(k, &mut out);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn stage(name: &str, dur_ms: u64) -> SpanRecord {
        SpanRecord {
            id: 1,
            parent: 0,
            scope: 1,
            tid: 0,
            layer: Layer::Stage,
            name: name.to_string(),
            start_ns: 0,
            dur_ns: dur_ms * 1_000_000,
            args: vec![("tasks", 4)],
        }
    }

    #[test]
    fn stage_kind_multi_suffix_cases() {
        assert_eq!(stage_kind("tree-compute-op12"), "tree-compute");
        assert_eq!(stage_kind("tree-shuffle-op7-l1"), "tree-shuffle");
        assert_eq!(stage_kind("split-ring-op9-l2-r1"), "split-ring");
        assert_eq!(stage_kind("split-ring-op3"), "split-ring");
        assert_eq!(stage_kind("collect"), "collect");
        assert_eq!(stage_kind("my-opaque-label"), "my-opaque-label");
        assert_eq!(stage_kind("weird-op"), "weird-op");
        assert_eq!(stage_kind("trailing-op-"), "trailing-op-");
        assert_eq!(stage_kind("x-op-y-op7-l1"), "x-op-y");
        assert_eq!(stage_kind("-op1"), "");
    }

    #[test]
    fn breakdown_groups_and_shares() {
        let spans = vec![
            stage("tree-compute-op1", 60),
            stage("tree-compute-op2", 40),
            stage("count-op3", 25),
            stage("broadcast-op3", 75),
        ];
        let b = stage_breakdown(&spans);
        assert_eq!(b.rows.len(), 3);
        assert_eq!(b.rows[0].kind, "tree-compute");
        assert_eq!(b.rows[0].stages, 2);
        assert_eq!(b.rows[0].total, Duration::from_millis(100));
        assert!(b.rows[0].aggregation);
        assert!((b.aggregation_share() - 0.5).abs() < 1e-9);
        let csv = b.to_csv();
        assert!(csv.starts_with("kind,stages,total_s,share,aggregation\n"));
        assert!(csv.contains("tree-compute,2,0.100000000,0.500000,1"));
        assert!(b.to_text().contains("aggregation share: 50.0%"));
    }

    #[test]
    fn chrome_json_parses_with_in_repo_parser() {
        let mut s = stage("tree-\"quoted\"\nlabel-op1", 2);
        s.tid = 7;
        let out = chrome_trace_json(&[s]);
        let v = json::parse(&out).expect("valid json");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 1);
        let e = &arr[0];
        assert_eq!(e.get("name").and_then(|n| n.as_str()), Some("tree-\"quoted\"\nlabel-op1"));
        assert_eq!(e.get("cat").and_then(|c| c.as_str()), Some("stage"));
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(e.get("dur").and_then(|d| d.as_f64()), Some(2000.0));
        assert_eq!(e.get("tid").and_then(|t| t.as_f64()), Some(7.0));
        let args = e.get("args").expect("args");
        assert_eq!(args.get("tasks").and_then(|t| t.as_f64()), Some(4.0));
    }

    #[test]
    fn figures_json_round_trips_through_in_repo_parser() {
        let figs = vec![
            FigureSeries::new(
                "fig03_anti_scaling",
                "tree-\"reduce\"",
                "nodes",
                "seconds",
                vec![(1.0, 111.25), (8.0, 187.5)],
            ),
            FigureSeries::new("fig17_e2e", "speedup", "workload", "x", vec![]),
        ];
        let out = figures_json(&figs);
        let v = json::parse(&out).expect("valid json");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("figure").and_then(|f| f.as_str()), Some("fig03_anti_scaling"));
        assert_eq!(arr[0].get("series").and_then(|f| f.as_str()), Some("tree-\"reduce\""));
        let pts = arr[0].get("points").and_then(|p| p.as_array()).expect("points");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].as_array().unwrap()[1].as_f64(), Some(187.5));
        assert_eq!(arr[1].get("points").and_then(|p| p.as_array()).map(|p| p.len()), Some(0));
        // Determinism: rendering is a pure function of the input.
        assert_eq!(out, figures_json(&figs));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let out = chrome_trace_json(&[]);
        let v = json::parse(&out).expect("valid json");
        assert_eq!(v.as_array().map(|a| a.len()), Some(0));
    }
}
