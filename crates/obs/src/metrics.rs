//! Process-wide metrics registry: named counters, gauges, and log2-bucket
//! histograms.
//!
//! Handles are `Arc`s to lock-free atomics — the registry lock is taken
//! only at registration (get-or-create) time, so instrumentation sites
//! should cache their handle (e.g. in a `OnceLock`) and update it with a
//! single atomic op per observation:
//!
//! ```
//! use std::sync::OnceLock;
//! use sparker_obs::metrics::{self, Counter};
//! use std::sync::Arc;
//!
//! static SENDS: OnceLock<Arc<Counter>> = OnceLock::new();
//! SENDS.get_or_init(|| metrics::counter("net.sends")).add(1);
//! assert!(metrics::snapshot().iter().any(|m| m.name == "net.sends"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Power-of-two bucketed histogram over `u64` observations.
///
/// Bucket `i` counts values whose bit length is `i`, i.e. values in
/// `[2^(i-1), 2^i)`; bucket 0 counts zeros. 65 buckets cover the full
/// `u64` range with no saturation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn observe(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // bit length; 0 for v == 0
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(lower_bound_inclusive, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        (0..self.buckets.len())
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Get-or-create a counter. Panics if `name` is registered as another kind.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Get-or-create a gauge. Panics if `name` is registered as another kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = registry();
    match reg.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Get-or-create a histogram. Panics if `name` is registered as another kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
    {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// A point-in-time view of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    /// `(count, sum, non-empty (bucket_lower_bound, count) pairs)`.
    Histogram(u64, u64, Vec<(u64, u64)>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    pub name: String,
    pub value: MetricValue,
}

/// Snapshot every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    registry()
        .iter()
        .map(|(name, m)| MetricSnapshot {
            name: name.clone(),
            value: match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.count(), h.sum(), h.buckets()),
            },
        })
        .collect()
}

/// Zero every registered metric (handles stay valid — sites cache them).
pub fn reset() {
    for m in registry().values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test.counter_roundtrip");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(Arc::ptr_eq(&c, &counter("test.counter_roundtrip")), true);

        let g = gauge("test.gauge_roundtrip");
        g.set(-5);
        g.add(2);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = histogram("test.hist_log2");
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 11);
        let buckets: BTreeMap<u64, u64> = h.buckets().into_iter().collect();
        assert_eq!(buckets.get(&0), Some(&1)); // v = 0
        assert_eq!(buckets.get(&1), Some(&2)); // v = 1, 1
        assert_eq!(buckets.get(&2), Some(&2)); // v = 2, 3
        assert_eq!(buckets.get(&4), Some(&2)); // v = 4, 7
        assert_eq!(buckets.get(&8), Some(&1)); // v = 8
        assert_eq!(buckets.get(&512), Some(&1)); // v = 1023
        assert_eq!(buckets.get(&1024), Some(&1)); // v = 1024
        assert_eq!(buckets.get(&(1u64 << 63)), Some(&1)); // v = u64::MAX
    }

    #[test]
    fn snapshot_and_reset() {
        let c = counter("test.snap.c");
        c.add(9);
        let snap = snapshot();
        let me = snap.iter().find(|m| m.name == "test.snap.c").unwrap();
        assert_eq!(me.value, MetricValue::Counter(9));
        reset();
        assert_eq!(c.get(), 0, "cached handle observes reset");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("test.kind_mismatch");
        gauge("test.kind_mismatch");
    }
}
