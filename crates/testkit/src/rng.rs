//! SplitMix64: the harness's only entropy source.
//!
//! Chosen because it is tiny (one u64 of state, three xor-shift-multiply
//! steps), passes BigCrush, and — unlike `rand` — costs the workspace no
//! external dependency. Determinism matters more than statistical quality
//! here: the same seed must replay the same choice stream forever.

/// Deterministic 64-bit generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives a per-case seed from the base seed and case index.
pub fn mix(seed: u64, case: u64) -> u64 {
    let mut r = SplitMix64::new(seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    r.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut r0 = SplitMix64::new(0);
        let mut r1 = SplitMix64::new(1);
        let same = (0..64).filter(|_| r0.next_u64() == r1.next_u64()).count();
        assert_eq!(same, 0);
    }
}
