//! [`Source`]: the choice stream a property draws its random values from.
//!
//! Every draw consumes exactly one recorded `u64` choice, and each generator
//! maps the all-zero choice to its simplest value (range minimum, empty vec,
//! `0.0`, `false`). Both facts are load-bearing for shrinking: the harness
//! minimizes the recorded `u64`s, and "smaller choices" must mean "simpler
//! values" for the reported counterexample to be minimal.

use crate::rng::SplitMix64;
use std::ops::Range;

enum Mode {
    /// Fresh generation: draws beyond any prefix come from the RNG.
    Random(SplitMix64),
    /// Shrink replay: draws beyond the recorded prefix come back as 0.
    Replay,
}

/// A recorded stream of `u64` choices; the sole argument to a property.
pub struct Source {
    mode: Mode,
    prefix: Vec<u64>,
    drawn: Vec<u64>,
}

impl Source {
    pub(crate) fn random(seed: u64) -> Self {
        Self { mode: Mode::Random(SplitMix64::new(seed)), prefix: Vec::new(), drawn: Vec::new() }
    }

    pub(crate) fn replay(prefix: Vec<u64>) -> Self {
        Self { mode: Mode::Replay, prefix, drawn: Vec::new() }
    }

    pub(crate) fn into_drawn(self) -> Vec<u64> {
        self.drawn
    }

    fn next_raw(&mut self) -> u64 {
        let i = self.drawn.len();
        let v = if i < self.prefix.len() {
            self.prefix[i]
        } else {
            match &mut self.mode {
                Mode::Random(rng) => rng.next_u64(),
                Mode::Replay => 0,
            }
        };
        self.drawn.push(v);
        v
    }

    /// A uniform `u64`.
    pub fn u64_any(&mut self) -> u64 {
        self.next_raw()
    }

    /// A `u64` in `[range.start, range.end)`. Shrinks toward `range.start`.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "u64_in: empty range {range:?}");
        let span = range.end - range.start;
        range.start + self.next_raw() % span
    }

    /// A `usize` in `[range.start, range.end)`. Shrinks toward `range.start`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `u32`.
    pub fn u32_any(&mut self) -> u32 {
        self.next_raw() as u32
    }

    /// A uniform `u8`.
    pub fn u8_any(&mut self) -> u8 {
        self.next_raw() as u8
    }

    /// A uniform `i64`. Shrinks toward 0 (choice 0 maps to 0).
    pub fn i64_any(&mut self) -> i64 {
        // Zig-zag decode so small choices mean small magnitudes.
        let raw = self.next_raw();
        ((raw >> 1) as i64) ^ -((raw & 1) as i64)
    }

    /// `true` or `false`; choice 0 maps to `false`.
    pub fn bool_any(&mut self) -> bool {
        self.next_raw() & 1 == 1
    }

    /// An arbitrary `f64` bit pattern — includes NaN, infinities and
    /// subnormals. Choice 0 maps to `0.0`.
    pub fn f64_any(&mut self) -> f64 {
        f64::from_bits(self.next_raw())
    }

    /// A finite `f64` in `[range.start, range.end)`. Shrinks toward
    /// `range.start`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "f64_in: empty range {range:?}");
        // 53 mantissa bits of uniform fraction in [0, 1).
        let frac = (self.next_raw() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + (range.end - range.start) * frac
    }

    /// A vec with length drawn from `len` and elements from `gen`.
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut gen: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| gen(self)).collect()
    }

    /// One element of `items`, cloned. Choice 0 maps to `items[0]`.
    pub fn choose<T: Clone>(&mut self, items: &[T]) -> T {
        assert!(!items.is_empty(), "choose: empty slice");
        items[self.usize_in(0..items.len())].clone()
    }

    /// A string with char count drawn from `len`, over a palette that mixes
    /// ASCII with multi-byte chars so codec tests exercise non-trivial UTF-8.
    pub fn string_of(&mut self, len: Range<usize>) -> String {
        const PALETTE: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', ':', '"', '\\', '\t',
            'é', 'ü', 'ß', 'λ', 'Ω', '中', '文', '🚀', '🧪', '\u{0}', '\u{7f}', '\u{80}',
        ];
        let n = self.usize_in(len);
        (0..n).map(|_| self.choose(PALETTE)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_choices_map_to_simplest_values() {
        let mut s = Source::replay(Vec::new());
        assert_eq!(s.u64_in(3..10), 3);
        assert_eq!(s.usize_in(5..6), 5);
        assert_eq!(s.i64_any(), 0);
        assert!(!s.bool_any());
        assert_eq!(s.f64_any(), 0.0);
        assert_eq!(s.f64_in(-2.5..7.0), -2.5);
        assert!(s.vec_of(0..4, |s| s.u8_any()).is_empty());
        assert_eq!(s.choose(&[10, 20, 30]), 10);
        assert_eq!(s.string_of(0..8), "");
    }

    #[test]
    fn replay_reproduces_recording() {
        let mut a = Source::random(7);
        let xs: Vec<i64> = (0..16).map(|_| a.i64_any()).collect();
        let rec = a.into_drawn();
        let mut b = Source::replay(rec);
        let ys: Vec<i64> = (0..16).map(|_| b.i64_any()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut s = Source::random(99);
        for _ in 0..200 {
            let v = s.usize_in(2..17);
            assert!((2..17).contains(&v));
            let f = s.f64_in(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}
