//! # sparker-testkit
//!
//! A small, std-only property-testing harness: the workspace's in-repo
//! replacement for `proptest`, so the test suite builds with zero external
//! dependencies (see DESIGN.md §"Dependencies").
//!
//! The design is choice-stream ("Hypothesis-style") generation with
//! integrated shrinking:
//!
//! * A property is a closure over a [`Source`]. Every random decision the
//!   closure makes ([`Source::usize_in`], [`Source::f64_any`],
//!   [`Source::vec_of`], ...) draws one `u64` *choice* from a seeded
//!   [`rng::SplitMix64`] stream, and the harness records the sequence.
//! * When a case fails (returns an error via [`tk_assert!`] /
//!   [`tk_assert_eq!`], or panics), the harness **shrinks the recorded
//!   choice sequence, not the generated values**: it re-runs the same
//!   generator closure against truncated / chunk-deleted / per-choice
//!   binary-searched variants of the recording (draws past the end replay
//!   as 0). Because any choice sequence maps to a valid value, shrinking
//!   never needs type-specific shrinkers, and `map`-style derived data
//!   shrinks for free — this is why the harness stays ~200 lines where a
//!   value-shrinking framework would not.
//! * Choices shrink toward 0, and every generator maps 0 to its simplest
//!   output (the range minimum, an empty vec, `0.0`, `false`), so reported
//!   counterexamples are minimal in the usual sense.
//!
//! Runs are fully deterministic: the per-case seed is derived from
//! [`Config::seed`] and the case index, and a failure report prints both so
//! a failure reproduces exactly under `cargo test`.
//!
//! ```
//! use sparker_testkit::{check, Config, tk_assert};
//!
//! check(&Config::with_cases(64), |src| {
//!     let xs = src.vec_of(0..20, |s| s.i64_any());
//!     let mut sorted = xs.clone();
//!     sorted.sort();
//!     sorted.sort(); // sorting twice equals sorting once
//!     let mut once = xs.clone();
//!     once.sort();
//!     tk_assert!(sorted == once, "{sorted:?} != {once:?}");
//!     Ok(())
//! });
//! ```

pub mod rng;
pub mod source;

pub use source::Source;

/// A property failure: the message reported after shrinking.
#[derive(Debug, Clone)]
pub struct PropError {
    pub message: String,
}

impl PropError {
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

/// What a property closure returns per case.
pub type PropResult = Result<(), PropError>;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds derive from it deterministically.
    pub seed: u64,
    /// Budget of candidate re-runs during shrinking.
    pub max_shrink_trials: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64, seed: 0x5eed_0f_c0ffee_01, max_shrink_trials: 2000 }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Fails the enclosing property with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        $crate::tk_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::PropError::new(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property unless both sides compare equal.
#[macro_export]
macro_rules! tk_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::tk_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::tk_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

fn run_once<F>(prop: &F, choices: Option<&[u64]>, seed: u64) -> Result<Vec<u64>, (Vec<u64>, PropError)>
where
    F: Fn(&mut Source) -> PropResult,
{
    let mut src = match choices {
        Some(c) => Source::replay(c.to_vec()),
        None => Source::random(seed),
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut src)));
    let drawn = src.into_drawn();
    match outcome {
        Ok(Ok(())) => Ok(drawn),
        Ok(Err(e)) => Err((drawn, e)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "property panicked (non-string payload)".to_string());
            Err((drawn, PropError::new(format!("panic: {msg}"))))
        }
    }
}

/// Tries `candidate`; returns the new (choices, error) if it still fails.
fn try_candidate<F>(prop: &F, candidate: &[u64]) -> Option<(Vec<u64>, PropError)>
where
    F: Fn(&mut Source) -> PropResult,
{
    run_once(prop, Some(candidate), 0).err()
}

/// Shrinks a failing choice sequence to a (locally) minimal one.
fn shrink<F>(prop: &F, mut choices: Vec<u64>, mut err: PropError, budget: u32) -> (Vec<u64>, PropError)
where
    F: Fn(&mut Source) -> PropResult,
{
    let mut trials = 0u32;
    let spend = |prop: &F, cand: &[u64], trials: &mut u32| -> Option<(Vec<u64>, PropError)> {
        if *trials >= budget {
            return None;
        }
        *trials += 1;
        try_candidate(prop, cand)
    };
    loop {
        let mut improved = false;

        // Pass 1: truncate the tail (halving first, then single steps).
        let mut cut = choices.len() / 2;
        while cut > 0 && !choices.is_empty() {
            let cand = choices[..choices.len().saturating_sub(cut)].to_vec();
            if let Some((_, e)) = spend(prop, &cand, &mut trials) {
                choices = cand;
                err = e;
                improved = true;
                cut = choices.len() / 2;
            } else {
                cut /= 2;
            }
        }

        // Pass 2: delete interior chunks.
        for chunk in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + chunk <= choices.len() {
                let mut cand = choices.clone();
                cand.drain(i..i + chunk);
                if let Some((_, e)) = spend(prop, &cand, &mut trials) {
                    choices = cand;
                    err = e;
                    improved = true;
                    // Same index now holds the next chunk; retry in place.
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2.5: decrement a choice and delete the draw after it, as one
        // move. Length-prefix encodings (vec_of) need this: shortening a
        // collection by one means lowering its length draw *and* removing
        // one element draw, and neither change survives alone.
        // One attempt per index per round: the outer loop repeats while
        // anything improves, so multi-step shortenings still converge
        // without this pass linearly decrementing large values.
        let mut i = 0;
        while i < choices.len() {
            if choices[i] > 0 {
                let mut cand = choices.clone();
                cand[i] -= 1;
                if i + 1 < cand.len() {
                    cand.remove(i + 1);
                }
                if let Some((_, e)) = spend(prop, &cand, &mut trials) {
                    choices = cand;
                    err = e;
                    improved = true;
                }
            }
            i += 1;
        }

        // Pass 3: minimize each choice value by binary search toward 0.
        for i in 0..choices.len() {
            if choices[i] == 0 {
                continue;
            }
            let (mut lo, mut hi) = (0u64, choices[i]);
            // Invariant: `hi` fails; find smallest failing value in [lo, hi].
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut cand = choices.clone();
                cand[i] = mid;
                if let Some((_, e)) = spend(prop, &cand, &mut trials) {
                    hi = mid;
                    err = e;
                } else {
                    lo = mid + 1;
                }
            }
            if hi != choices[i] {
                choices[i] = hi;
                improved = true;
            }
        }

        // Pass 4: lower *pairs* of equal choices together. Failures that
        // hinge on two drawn values colliding (a[0] == b[0]) can't shrink
        // either value alone — lowering one breaks the collision — so the
        // per-choice pass above stalls on them.
        for i in 0..choices.len() {
            if choices[i] == 0 {
                continue;
            }
            for j in i + 1..choices.len() {
                if choices[j] != choices[i] {
                    continue;
                }
                let (mut lo, mut hi) = (0u64, choices[i]);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    let mut cand = choices.clone();
                    cand[i] = mid;
                    cand[j] = mid;
                    if let Some((_, e)) = spend(prop, &cand, &mut trials) {
                        hi = mid;
                        err = e;
                    } else {
                        lo = mid + 1;
                    }
                }
                if hi != choices[i] {
                    choices[i] = hi;
                    choices[j] = hi;
                    improved = true;
                }
            }
        }

        if !improved || trials >= budget {
            return (choices, err);
        }
    }
}

/// Runs `prop` for [`Config::cases`] random cases; on failure, shrinks the
/// recorded choice stream and panics with the minimal counterexample.
pub fn check<F>(cfg: &Config, prop: F)
where
    F: Fn(&mut Source) -> PropResult,
{
    for case in 0..cfg.cases {
        let case_seed = rng::mix(cfg.seed, case as u64);
        if let Err((drawn, err)) = run_once(&prop, None, case_seed) {
            let (min_choices, min_err) = shrink(&prop, drawn, err, cfg.max_shrink_trials);
            panic!(
                "property failed at case {case} (base seed {:#018x}, case seed {:#018x})\n\
                 minimal failure: {}\n\
                 shrunk choices ({} draws): {:?}",
                cfg.seed,
                case_seed,
                min_err.message,
                min_choices.len(),
                min_choices
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `check` expecting a failure; returns the panic report text.
    fn failure_report<F>(cfg: &Config, prop: F) -> String
    where
        F: Fn(&mut Source) -> PropResult,
    {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(cfg, prop)));
        match outcome {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("check panics with a String report"),
        }
    }

    #[test]
    fn passing_property_runs_quietly() {
        check(&Config::with_cases(32), |src| {
            let v = src.vec_of(0..16, |s| s.u8_any());
            let mut w = v.clone();
            w.reverse();
            w.reverse();
            tk_assert_eq!(v, w);
            Ok(())
        });
    }

    /// The documented minimal case: `x < 101` over `0..1000` must shrink to
    /// exactly `x = 101`, the smallest failing input — the binary-search
    /// pass canonicalizes the raw choice to the boundary value.
    #[test]
    fn shrinks_threshold_to_boundary() {
        let report = failure_report(&Config::with_cases(256), |src| {
            let x = src.usize_in(0..1000);
            tk_assert!(x < 101, "x={x}");
            Ok(())
        });
        assert!(report.contains("x=101"), "report was: {report}");
    }

    /// A two-element interaction ("both lists non-empty and first elements
    /// equal") shrinks to the shortest vecs with the smallest elements.
    #[test]
    fn shrinks_vec_interaction() {
        let report = failure_report(&Config::with_cases(512), |src| {
            let a = src.vec_of(0..8, |s| s.usize_in(0..10));
            let b = src.vec_of(0..8, |s| s.usize_in(0..10));
            let collide = !a.is_empty() && !b.is_empty() && a[0] == b[0];
            tk_assert!(!collide, "a={a:?} b={b:?}");
            Ok(())
        });
        // Minimal: both singletons, both zero.
        assert!(report.contains("a=[0] b=[0]"), "report was: {report}");
    }

    /// Panics inside the property shrink just like `tk_assert!` failures.
    #[test]
    fn shrinks_panicking_property() {
        let report = failure_report(&Config::with_cases(128), |src| {
            let n = src.u64_in(0..1_000_000);
            assert!(n < 5000, "n too big: {n}");
            Ok(())
        });
        assert!(report.contains("n too big: 5000"), "report was: {report}");
    }

    /// The shrink-trial budget is a hard cap even for slow-to-shrink cases.
    #[test]
    fn shrink_budget_respected() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let runs = AtomicU32::new(0);
        let cfg = Config { cases: 1, seed: 3, max_shrink_trials: 10 };
        let _ = failure_report(&cfg, |src| {
            runs.fetch_add(1, Ordering::Relaxed);
            let _ = src.vec_of(32..64, |s| s.u64_any());
            Err(PropError::new("always fails"))
        });
        // 1 generation run + at most budget shrink trials (+1 slack for the
        // final bookkeeping pass).
        assert!(runs.load(Ordering::Relaxed) <= 12);
    }
}
