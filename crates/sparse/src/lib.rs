//! Sparse aggregation for the Sparker reproduction.
//!
//! Power-law workloads (Zipfian text for LDA, hashed high-dimensional
//! features for classification) produce per-partition aggregator updates
//! that are mostly zeros, yet the dense `SumSegment` path ships every
//! element of every segment. This crate adds the sparse representation
//! layer on top of the existing [`Segment`] abstraction:
//!
//! * [`SparseSegment`] — sorted `(u32 index, f64 value)` pairs with a
//!   validating wire codec; merge is a sorted union.
//! * [`DenseOrSparse`] — picks dense or sparse per segment by a density
//!   threshold and switches to dense mid-reduction when merge fill-in
//!   crosses it (the switch rule of SparCML's SSAR).
//! * [`SparseAccum`] — an executor-side ordered-map accumulator whose
//!   `splitOp` is a range query producing rebased [`DenseOrSparse`]
//!   segments.
//!
//! Both segment types implement [`Segment`], so ring reduce-scatter,
//! recursive halving, the tree fallback, and the epoch-fenced fault
//! machinery in `sparker-collectives`/`sparker-engine` run them unchanged.
//! Every encode records actual vs dense-equivalent bytes and the segment
//! density in the `sparker-obs` metrics registry (`sparse.wire_bytes`,
//! `sparse.dense_equiv_bytes`, `sparse.density_permille`).
//!
//! [`Segment`]: sparker_collectives::segment::Segment

pub mod accum;
pub mod segment;

pub use accum::SparseAccum;
pub use segment::{
    dense_wire_bytes, DenseOrSparse, SegmentRepr, SparseSegment, DEFAULT_DENSITY_THRESHOLD,
    NEVER_DENSIFY,
};
