//! Executor-side sparse accumulator — the `U` of the split-aggregation
//! interface when updates are sparse.
//!
//! Per-partition folds (a batch of `SparseExample` gradients, LDA word
//! counts) touch few coordinates of a large model, so the executor-local
//! aggregator is an ordered index→value map instead of a dense vector.
//! `splitOp` then becomes a range query: segment `i` of `n` is the map
//! entries inside [`slice_bounds`]`(len, i, n)`, rebased to segment-local
//! indices and wrapped in a [`DenseOrSparse`] that picks its own wire
//! representation.
//!
//! [`slice_bounds`]: sparker_collectives::segment::slice_bounds

use std::collections::BTreeMap;

use sparker_collectives::segment::slice_bounds;

use crate::segment::{DenseOrSparse, SparseSegment};

/// An ordered sparse accumulator over a logical `f64` vector of length
/// `len`. Entries that cancel to zero are kept (cheap, and `nnz` stays an
/// upper bound just like [`SparseSegment`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseAccum {
    len: usize,
    map: BTreeMap<u32, f64>,
}

impl SparseAccum {
    /// The empty accumulator over a logical length.
    pub fn zeros(len: usize) -> Self {
        assert!(len <= u32::MAX as usize + 1, "length exceeds u32 index space");
        Self { len, map: BTreeMap::new() }
    }

    /// Collects the non-zeros of a dense slice.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut acc = Self::zeros(dense.len());
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                acc.map.insert(i as u32, v);
            }
        }
        acc
    }

    /// Logical (dense) length.
    pub fn dense_len(&self) -> usize {
        self.len
    }

    /// Stored entries (≥ mathematical non-zeros).
    pub fn nnz(&self) -> usize {
        self.map.len()
    }

    /// `nnz / len`; 0 for the empty-length accumulator.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.map.len() as f64 / self.len as f64
        }
    }

    /// Adds `delta` at coordinate `index`.
    pub fn add(&mut self, index: u32, delta: f64) {
        assert!((index as usize) < self.len, "index {index} out of bounds for len {}", self.len);
        *self.map.entry(index).or_insert(0.0) += delta;
    }

    /// Merges another accumulator of the same shape (the IMM `mergeOp`).
    pub fn merge(&mut self, other: &SparseAccum) {
        assert_eq!(self.len, other.len, "accumulator shape mismatch");
        for (&i, &v) in &other.map {
            *self.map.entry(i).or_insert(0.0) += v;
        }
    }

    /// Materializes the full dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        for (&i, &v) in &self.map {
            out[i as usize] = v;
        }
        out
    }

    /// The `splitOp`: segment `i` of `n`, covering the same index range
    /// dense `slice_bounds` splitting would, with indices rebased to the
    /// segment's origin. The returned segment applies `threshold` to choose
    /// its wire representation.
    pub fn segment(&self, i: usize, n: usize, threshold: f64) -> DenseOrSparse {
        let (lo, hi) = slice_bounds(self.len, i, n);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (&idx, &v) in self.map.range(lo as u32..hi as u32) {
            indices.push(idx - lo as u32);
            values.push(v);
        }
        DenseOrSparse::from_sparse(SparseSegment::new(hi - lo, indices, values), threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::NEVER_DENSIFY;

    #[test]
    fn add_and_merge_accumulate() {
        let mut a = SparseAccum::zeros(10);
        a.add(3, 1.5);
        a.add(3, 0.5);
        a.add(7, -1.0);
        let mut b = SparseAccum::zeros(10);
        b.add(7, 1.0);
        b.add(0, 4.0);
        a.merge(&b);
        let mut want = vec![0.0; 10];
        want[0] = 4.0;
        want[3] = 2.0;
        assert_eq!(a.to_dense(), want);
        assert_eq!(a.nnz(), 3, "cancelled entry kept");
    }

    #[test]
    fn segments_tile_the_dense_vector() {
        let dense: Vec<f64> =
            (0..17).map(|i| if i % 3 == 0 { i as f64 } else { 0.0 }).collect();
        let acc = SparseAccum::from_dense(&dense);
        for n in [1usize, 2, 3, 5] {
            let mut rebuilt = Vec::new();
            for i in 0..n {
                rebuilt.extend(acc.segment(i, n, NEVER_DENSIFY).to_dense());
            }
            assert_eq!(rebuilt, dense, "n = {n}");
        }
    }

    #[test]
    fn segment_indices_are_rebased() {
        let mut acc = SparseAccum::zeros(8);
        acc.add(5, 2.0);
        // Segment 1 of 2 covers [4, 8); global index 5 is local index 1.
        let seg = acc.segment(1, 2, NEVER_DENSIFY);
        assert_eq!(seg.to_dense(), vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_rejects_out_of_bounds() {
        SparseAccum::zeros(4).add(4, 1.0);
    }
}
