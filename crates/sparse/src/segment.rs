//! Sparse and density-adaptive aggregator segments.
//!
//! Partition-local gradients on power-law data (Zipfian corpora, hashed
//! criteo-style features) are mostly zeros, yet [`SumSegment`] ships every
//! element. [`SparseSegment`] stores only the non-zeros as sorted
//! `(index, value)` pairs, and [`DenseOrSparse`] picks the cheaper wire
//! representation *per segment* by a density threshold — switching to dense
//! mid-reduction when merge fill-in crosses it, the switch rule of SparCML's
//! SSAR (Renggli et al.) and Zhao & Canny's sparse allreduce.
//!
//! Both types implement [`Segment`], so ring reduce-scatter, recursive
//! halving, allreduce, the gather path and the epoch-fenced fault machinery
//! all work unchanged; nothing in `collectives` or `engine` knows sparsity
//! exists.
//!
//! [`SumSegment`]: sparker_collectives::segment::SumSegment

use std::sync::{Arc, OnceLock};

use sparker_collectives::segment::Segment;
use sparker_net::codec::{Decoder, Encoder, Payload};
use sparker_net::error::{NetError, NetResult};
use sparker_obs::metrics::{Counter, Gauge};

/// Default density above which a segment is cheaper shipped dense.
///
/// The sparse encoding costs 12 bytes per non-zero (`u32` index + `f64`
/// value) against 8 bytes per element dense, so the bytes break-even sits at
/// density 2/3; 0.5 leaves margin for the fill-in one more merge causes.
pub const DEFAULT_DENSITY_THRESHOLD: f64 = 0.5;

/// A threshold that never densifies — the forced-sparse ablation arm.
pub const NEVER_DENSIFY: f64 = 2.0;

fn wire_counters() -> &'static (Arc<Counter>, Arc<Counter>, Arc<Counter>, Arc<Gauge>) {
    static HANDLES: OnceLock<(Arc<Counter>, Arc<Counter>, Arc<Counter>, Arc<Gauge>)> =
        OnceLock::new();
    HANDLES.get_or_init(|| {
        (
            sparker_obs::metrics::counter("sparse.wire_bytes"),
            sparker_obs::metrics::counter("sparse.dense_equiv_bytes"),
            sparker_obs::metrics::counter("sparse.segments"),
            sparker_obs::metrics::gauge("sparse.density_permille"),
        )
    })
}

/// Records one encoded segment in the metrics registry: actual wire bytes,
/// what the dense encoding would have cost, the encode count, and the
/// segment's density.
fn record_wire(actual: usize, dense_equiv: usize, density: f64) {
    let (wire, dense, segments, gauge) = wire_counters();
    wire.add(actual as u64);
    dense.add(dense_equiv as u64);
    segments.inc();
    gauge.set((density * 1000.0) as i64);
}

/// Wire size of a dense [`SumSegment`] of `len` elements (length prefix +
/// packed `f64`s) — the baseline the byte counters compare against.
///
/// [`SumSegment`]: sparker_collectives::segment::SumSegment
pub fn dense_wire_bytes(len: usize) -> usize {
    8 + 8 * len
}

/// A sparse aggregator segment: the non-zeros of a logical `f64` vector of
/// length `len`, as strictly-increasing indices with matching values.
///
/// Invariants (checked on construction and on decode):
/// * `indices.len() == values.len()`,
/// * indices strictly increasing and `< len`.
///
/// Explicit zeros are representable (merges never drop entries that cancel
/// to zero), so `nnz` is an upper bound on the mathematical support.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseSegment {
    len: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseSegment {
    /// Builds a segment from parts, asserting the invariants.
    pub fn new(len: usize, indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        assert!(len <= u32::MAX as usize + 1, "segment length exceeds u32 index space");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        if let Some(&last) = indices.last() {
            assert!((last as usize) < len, "index {last} out of bounds for len {len}");
        }
        Self { len, indices, values }
    }

    /// The empty segment over a logical length.
    pub fn zeros(len: usize) -> Self {
        Self { len, indices: Vec::new(), values: Vec::new() }
    }

    /// Collects the non-zeros of a dense slice.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                indices.push(i as u32);
                values.push(v);
            }
        }
        Self { len: dense.len(), indices, values }
    }

    /// Materializes the full dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Logical (dense) length.
    pub fn dense_len(&self) -> usize {
        self.len
    }

    /// Stored entries (≥ mathematical non-zeros; see type docs).
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `nnz / len`; 0 for the empty-length segment.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.len as f64
        }
    }

    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sorted-union merge: entries at equal indices sum, others interleave.
    /// O(nnz(self) + nnz(other)); entries summing to zero are kept.
    pub fn merge_sparse(&mut self, other: &SparseSegment) {
        assert_eq!(self.len, other.len, "segment shape mismatch");
        if other.indices.is_empty() {
            return;
        }
        let mut indices = Vec::with_capacity(self.indices.len() + other.indices.len());
        let mut values = Vec::with_capacity(indices.capacity());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => {
                    indices.push(self.indices[a]);
                    values.push(self.values[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    indices.push(other.indices[b]);
                    values.push(other.values[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    indices.push(self.indices[a]);
                    values.push(self.values[a] + other.values[b]);
                    a += 1;
                    b += 1;
                }
            }
        }
        indices.extend_from_slice(&self.indices[a..]);
        values.extend_from_slice(&self.values[a..]);
        indices.extend_from_slice(&other.indices[b..]);
        values.extend_from_slice(&other.values[b..]);
        self.indices = indices;
        self.values = values;
    }

    /// Scatter-adds this segment's entries into a dense slice of equal length.
    pub fn add_into_dense(&self, dense: &mut [f64]) {
        assert_eq!(dense.len(), self.len, "segment shape mismatch");
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            dense[i as usize] += v;
        }
    }
}

impl SparseSegment {
    /// Encodes the fields without touching the wire counters — used by
    /// wrappers ([`DenseOrSparse`]) that record their own totals.
    fn encode_raw(&self, enc: &mut Encoder) {
        enc.put_usize(self.len);
        enc.put_u32_slice(&self.indices);
        enc.put_f64_slice(&self.values);
    }
}

impl Payload for SparseSegment {
    fn encode_into(&self, enc: &mut Encoder) {
        self.encode_raw(enc);
        record_wire(self.size_hint(), dense_wire_bytes(self.len), self.density());
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        let len = dec.get_usize()?;
        let indices = dec.get_u32_vec()?;
        let values = dec.get_f64_vec()?;
        if indices.len() != values.len() {
            return Err(NetError::Codec(format!(
                "sparse segment: {} indices but {} values",
                indices.len(),
                values.len()
            )));
        }
        if !indices.windows(2).all(|w| w[0] < w[1]) {
            return Err(NetError::Codec("sparse segment: indices not strictly increasing".into()));
        }
        if let Some(&last) = indices.last() {
            if last as usize >= len {
                return Err(NetError::Codec(format!(
                    "sparse segment: index {last} out of bounds for len {len}"
                )));
            }
        }
        Ok(Self { len, indices, values })
    }

    fn size_hint(&self) -> usize {
        // len prefix + (len-prefixed u32 slice) + (len-prefixed f64 slice).
        8 + (8 + 4 * self.indices.len()) + (8 + 8 * self.values.len())
    }
}

impl Segment for SparseSegment {
    fn merge_from(&mut self, other: &Self) {
        self.merge_sparse(other);
    }
}

/// The two wire representations an adaptive segment can be in.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentRepr {
    Dense(Vec<f64>),
    Sparse(SparseSegment),
}

/// A segment that picks dense or sparse per instance by a density threshold
/// and switches to dense mid-reduction once merge fill-in crosses it.
///
/// The representation rule is: sparse iff `density <= threshold`. The switch
/// is one-way (sparse → dense) — fill-in only grows under summation, so
/// re-sparsifying would thrash. The threshold travels on the wire so a
/// decoded segment keeps switching at the same point on every rank.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseOrSparse {
    repr: SegmentRepr,
    threshold: f64,
}

impl DenseOrSparse {
    /// Wraps a dense vector, sparsifying it when below the threshold.
    pub fn from_dense(dense: Vec<f64>, threshold: f64) -> Self {
        let seg = SparseSegment::from_dense(&dense);
        if seg.density() <= threshold {
            Self { repr: SegmentRepr::Sparse(seg), threshold }
        } else {
            Self { repr: SegmentRepr::Dense(dense), threshold }
        }
    }

    /// Wraps an already-sparse segment, densifying it when above the
    /// threshold.
    pub fn from_sparse(seg: SparseSegment, threshold: f64) -> Self {
        let mut s = Self { repr: SegmentRepr::Sparse(seg), threshold };
        s.maybe_densify();
        s
    }

    /// The empty segment over a logical length (always sparse).
    pub fn zeros(len: usize, threshold: f64) -> Self {
        Self { repr: SegmentRepr::Sparse(SparseSegment::zeros(len)), threshold }
    }

    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, SegmentRepr::Sparse(_))
    }

    pub fn dense_len(&self) -> usize {
        match &self.repr {
            SegmentRepr::Dense(d) => d.len(),
            SegmentRepr::Sparse(s) => s.dense_len(),
        }
    }

    /// Stored entries: `len` when dense, `nnz` when sparse.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            SegmentRepr::Dense(d) => d.len(),
            SegmentRepr::Sparse(s) => s.nnz(),
        }
    }

    /// Density of the *values*: stored non-zero fraction regardless of
    /// representation (a dense repr full of zeros has density 0).
    pub fn density(&self) -> f64 {
        match &self.repr {
            SegmentRepr::Dense(d) => {
                if d.is_empty() {
                    0.0
                } else {
                    d.iter().filter(|&&v| v != 0.0).count() as f64 / d.len() as f64
                }
            }
            SegmentRepr::Sparse(s) => s.density(),
        }
    }

    /// Materializes the full dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        match &self.repr {
            SegmentRepr::Dense(d) => d.clone(),
            SegmentRepr::Sparse(s) => s.to_dense(),
        }
    }

    /// Consumes into the full dense vector without cloning the dense arm.
    pub fn into_dense(self) -> Vec<f64> {
        match self.repr {
            SegmentRepr::Dense(d) => d,
            SegmentRepr::Sparse(s) => s.to_dense(),
        }
    }

    /// What the always-dense encoding of this segment would cost.
    pub fn dense_equiv_bytes(&self) -> usize {
        dense_wire_bytes(self.dense_len())
    }

    /// The SSAR switch: densify when the sparse repr's stored density
    /// crossed the threshold.
    fn maybe_densify(&mut self) {
        if let SegmentRepr::Sparse(s) = &self.repr {
            if s.density() > self.threshold {
                self.repr = SegmentRepr::Dense(s.to_dense());
            }
        }
    }

    /// Merges `other` into `self`, switching representation as needed.
    ///
    /// Value-preserving in every arm: the result equals the element-wise sum
    /// of both dense materializations.
    pub fn merge(&mut self, other: &DenseOrSparse) {
        match (&mut self.repr, &other.repr) {
            (SegmentRepr::Dense(a), SegmentRepr::Dense(b)) => {
                assert_eq!(a.len(), b.len(), "segment shape mismatch");
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            }
            (SegmentRepr::Dense(a), SegmentRepr::Sparse(b)) => {
                b.add_into_dense(a);
            }
            (SegmentRepr::Sparse(a), SegmentRepr::Dense(b)) => {
                // Incoming dense forces the switch: scatter self into it.
                assert_eq!(a.dense_len(), b.len(), "segment shape mismatch");
                let mut dense = b.clone();
                a.add_into_dense(&mut dense);
                self.repr = SegmentRepr::Dense(dense);
            }
            (SegmentRepr::Sparse(a), SegmentRepr::Sparse(b)) => {
                a.merge_sparse(b);
                self.maybe_densify();
            }
        }
    }
}

impl Payload for DenseOrSparse {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_f64(self.threshold);
        match &self.repr {
            SegmentRepr::Dense(d) => {
                enc.put_u8(0);
                enc.put_f64_slice(d);
            }
            SegmentRepr::Sparse(s) => {
                enc.put_u8(1);
                s.encode_raw(enc);
            }
        }
        record_wire(self.size_hint(), self.dense_equiv_bytes(), self.density());
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        let threshold = dec.get_f64()?;
        if threshold.is_nan() {
            return Err(NetError::Codec("adaptive segment: NaN threshold".into()));
        }
        match dec.get_u8()? {
            0 => Ok(Self { repr: SegmentRepr::Dense(dec.get_f64_vec()?), threshold }),
            1 => Ok(Self { repr: SegmentRepr::Sparse(SparseSegment::decode_from(dec)?), threshold }),
            tag => Err(NetError::Codec(format!("adaptive segment: invalid tag {tag}"))),
        }
    }

    fn size_hint(&self) -> usize {
        // threshold + tag + payload.
        8 + 1
            + match &self.repr {
                SegmentRepr::Dense(d) => 8 + 8 * d.len(),
                SegmentRepr::Sparse(s) => s.size_hint(),
            }
    }
}

impl Segment for DenseOrSparse {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_roundtrips() {
        let dense = vec![0.0, 1.5, 0.0, -2.0, 0.0];
        let s = SparseSegment::from_dense(&dense);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.to_dense(), dense);
    }

    #[test]
    fn sparse_merge_equals_dense_merge() {
        let a = vec![1.0, 0.0, 2.0, 0.0];
        let b = vec![0.0, 3.0, -2.0, 0.0];
        let mut s = SparseSegment::from_dense(&a);
        s.merge_sparse(&SparseSegment::from_dense(&b));
        let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(s.to_dense(), want);
        // The cancelled entry (index 2) is kept as an explicit zero.
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn codec_roundtrip_and_exact_size_hint() {
        let s = SparseSegment::new(100, vec![3, 17, 99], vec![1.0, -2.5, 7.0]);
        let frame = s.to_frame();
        assert_eq!(frame.len(), s.size_hint());
        assert_eq!(SparseSegment::from_frame(frame).unwrap(), s);
    }

    #[test]
    fn decode_rejects_malformed_segments() {
        // Unsorted indices.
        let mut enc = Encoder::new();
        enc.put_usize(10);
        enc.put_u32_slice(&[5, 3]);
        enc.put_f64_slice(&[1.0, 2.0]);
        assert!(SparseSegment::from_frame(enc.finish()).is_err());
        // Out-of-bounds index.
        let mut enc = Encoder::new();
        enc.put_usize(4);
        enc.put_u32_slice(&[9]);
        enc.put_f64_slice(&[1.0]);
        assert!(SparseSegment::from_frame(enc.finish()).is_err());
        // Arity mismatch.
        let mut enc = Encoder::new();
        enc.put_usize(4);
        enc.put_u32_slice(&[1]);
        enc.put_f64_slice(&[1.0, 2.0]);
        assert!(SparseSegment::from_frame(enc.finish()).is_err());
    }

    #[test]
    fn adaptive_picks_representation_by_threshold() {
        let sparse_vec = vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let dense_vec = vec![1.0; 8];
        assert!(DenseOrSparse::from_dense(sparse_vec, 0.5).is_sparse());
        assert!(!DenseOrSparse::from_dense(dense_vec.clone(), 0.5).is_sparse());
        // Forced-sparse threshold keeps even a full vector sparse.
        assert!(DenseOrSparse::from_dense(dense_vec, NEVER_DENSIFY).is_sparse());
    }

    #[test]
    fn merge_fill_in_switches_to_dense_exactly_past_threshold() {
        // len 8, threshold 0.5: 4 entries stays sparse, the 5th densifies.
        let mut a = DenseOrSparse::from_dense(vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0], 0.5);
        assert!(a.is_sparse(), "at the boundary (density == threshold) stays sparse");
        let b = DenseOrSparse::from_dense(vec![0.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0], 0.5);
        a.merge(&b);
        assert!(!a.is_sparse(), "fill-in past the threshold must densify");
        assert_eq!(a.to_dense(), vec![1.0, 1.0, 1.0, 1.0, 2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn all_merge_arms_are_value_preserving() {
        let u = vec![1.0, 0.0, 2.0, 0.0, 0.0, -1.0];
        let v = vec![0.5, 0.0, -2.0, 0.0, 3.0, 0.0];
        let want: Vec<f64> = u.iter().zip(&v).map(|(x, y)| x + y).collect();
        for (ta, tb) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            // threshold 0.0 forces dense (density > 0), 1.0 keeps sparse.
            let mut a = DenseOrSparse::from_dense(u.clone(), ta);
            let b = DenseOrSparse::from_dense(v.clone(), tb);
            a.merge(&b);
            assert_eq!(a.to_dense(), want, "arms ({ta}, {tb})");
        }
    }

    #[test]
    fn adaptive_codec_roundtrips_both_arms() {
        for threshold in [0.0, 0.5, NEVER_DENSIFY] {
            let s = DenseOrSparse::from_dense(vec![0.0, 4.0, 0.0, 0.0], threshold);
            let frame = s.to_frame();
            assert_eq!(frame.len(), s.size_hint());
            assert_eq!(DenseOrSparse::from_frame(frame).unwrap(), s);
        }
    }

    #[test]
    fn adaptive_dense_overhead_is_nine_bytes() {
        let dense = DenseOrSparse::from_dense(vec![1.0; 64], 0.0);
        assert_eq!(dense.size_hint(), dense_wire_bytes(64) + 9);
    }

    #[test]
    fn invalid_adaptive_frames_rejected() {
        let mut enc = Encoder::new();
        enc.put_f64(0.5);
        enc.put_u8(7); // bad tag
        assert!(DenseOrSparse::from_frame(enc.finish()).is_err());
        let mut enc = Encoder::new();
        enc.put_f64(f64::NAN);
        enc.put_u8(0);
        enc.put_f64_slice(&[]);
        assert!(DenseOrSparse::from_frame(enc.finish()).is_err());
    }

    #[test]
    fn zero_length_segments_work() {
        let mut z = DenseOrSparse::zeros(0, 0.5);
        let z2 = DenseOrSparse::zeros(0, 0.5);
        z.merge(&z2);
        assert_eq!(z.to_dense(), Vec::<f64>::new());
        assert_eq!(z.density(), 0.0);
        let back = DenseOrSparse::from_frame(z.to_frame()).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn wire_counters_accumulate() {
        let before: u64 = sparker_obs::metrics::counter("sparse.wire_bytes").get();
        let s = SparseSegment::from_dense(&[0.0, 1.0, 0.0, 0.0]);
        let _ = s.to_frame();
        let after = sparker_obs::metrics::counter("sparse.wire_bytes").get();
        assert_eq!(after - before, s.size_hint() as u64);
    }
}
